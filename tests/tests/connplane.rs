//! The event-driven connection plane (DESIGN.md §13): bounded I/O
//! threads, sharded fast-path dispatch, eager reaping under churn, and
//! resilience to short-read fault injection at the transport.

mod common;

use common::{connect, start};
use da_proto::command::DeviceCommand;
use da_proto::fault::{FaultKind, FaultPlan, FaultyDuplex};
use da_proto::types::{DeviceClass, SoundType, WireType};
use da_server::{AudioServer, ServerConfig};
use std::time::Duration;

/// OS threads of this process, from /proc/self/status.
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn fast_path_carries_single_client_traffic() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    let pcm = da_dsp::tone::sine(8000, 440.0, 1600, 3000);
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    // map_loud punts (activation is cross-shard); everything above is
    // own-shard and must have run on the fast path.
    conn.map_loud(loud).unwrap();
    // Requests without replies are fire-and-forget; Sync round-trips,
    // so everything before it has been dispatched once it returns.
    conn.sync().unwrap();
    let (fast, slow) = server
        .control()
        .with_core(|c| (c.tel.metrics.dispatch_fast_total.get(), c.tel.metrics.dispatch_slow_total.get()));
    assert!(fast >= 5, "expected fast-path dispatches, saw {fast}");
    assert!(slow >= 1, "map_loud must punt to the slow path, saw {slow}");
    server.shutdown();
}

#[test]
fn io_threads_bounded_by_worker_pool() {
    let before = process_threads();
    let server = AudioServer::start(ServerConfig {
        io_workers: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    assert_eq!(server.io_workers(), 2);
    // 32 concurrent clients: thread-per-client would add 64 threads
    // here; the plane adds exactly io_workers + engine, regardless.
    let conns: Vec<_> = (0..32).map(|i| connect(&server, &format!("swarm-{i}"))).collect();
    let during = process_threads();
    assert!(
        during <= before + 3,
        "I/O threads must be O(workers): {before} -> {during} with 32 clients"
    );
    let workers = server
        .control()
        .with_core(|c| c.tel.metrics.conn_plane_workers.get());
    assert_eq!(workers, 2);
    drop(conns);
    server.shutdown();
}

#[test]
fn connection_churn_reaps_eagerly() {
    let server = AudioServer::start(ServerConfig::default()).expect("server");
    let control = server.control();
    let baseline = process_threads();
    // 60 connect/work/disconnect cycles. Under the old model each cycle
    // spawned two threads whose handles accumulated until shutdown;
    // the plane must reap every finished connection as it dies.
    for i in 0..60 {
        let mut conn = connect(&server, &format!("churn-{i}"));
        let loud = conn.create_loud(None).unwrap();
        let _ = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
        drop(conn);
    }
    // All sessions must drain from the core and the plane.
    assert!(
        control.run_until(Duration::from_secs(10), |c| c.clients.is_empty()),
        "churned clients leaked from the core"
    );
    assert!(
        control.run_until(Duration::from_secs(10), |c| {
            c.tel.metrics.conn_plane_connections.get() == 0
        }),
        "plane still tracks connections after churn"
    );
    let after = process_threads();
    assert!(
        after <= baseline + 1,
        "thread count grew under churn: {baseline} -> {after}"
    );
    server.shutdown();
}

#[test]
fn short_reads_never_corrupt_dispatch() {
    let server = AudioServer::start(ServerConfig::default()).expect("server");
    // Heavy short-read injection: every frame crossing the transport is
    // likely to arrive in several pieces, so the plane's incremental
    // reassembly is exercised on real traffic, not just scripted bytes.
    let plan = FaultPlan::quiet(42).with_rate(FaultKind::ShortRead, 900);
    let (duplex, stats) = FaultyDuplex::wrap(server.connect_pipe(), &plan);
    let mut conn = da_alib::Connection::establish(duplex, "short-read").expect("connect");
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    // A multi-kilobyte upload guarantees fragmented request payloads.
    let pcm = da_dsp::tone::sine(8000, 600.0, 8000, 3000);
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    assert!(stats.count(FaultKind::ShortRead) > 0, "plan injected no short reads");
    // The server's world must be fully consistent despite the torn I/O.
    server.control().with_core(|c| {
        da_server::validate::check(c).expect("invariants hold under short reads");
    });
    drop(conn);
    let control = server.control();
    assert!(
        control.run_until(Duration::from_secs(10), |c| c.clients.is_empty()),
        "short-read client leaked"
    );
    server.shutdown();
}
