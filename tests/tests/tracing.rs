//! End-to-end causal tracing: a `Play` driven through a live server
//! leaves a fully-stamped flight-recorder trace — reassembly, dispatch
//! (fast or slow), engine tick, outbound enqueue, writer drain — with
//! monotone timestamps, retrievable over the wire via `QueryTraces`.

use da_alib::Connection;
use da_proto::event::Event;
use da_proto::reply::TraceStage;
use da_proto::request::Request;
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::PlayLoud;
use da_toolkit::sounds::SoundHandle;
use std::time::Duration;

/// A manual-tick server recording every request (sampling 1-in-1, no
/// latency threshold), plus a connected client.
fn start_traced() -> (AudioServer, Connection) {
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    server.control().with_core(|c| c.tel.recorder.set_sampling(1, 0));
    let conn = Connection::establish(server.connect_pipe(), "itest").expect("connect");
    (server, conn)
}

#[test]
fn play_leaves_fully_stamped_trace_with_monotone_stages() {
    let (server, mut conn) = start_traced();
    let control = server.control();

    // Drive a play end to end: enqueue + start, tick the engine until
    // the sound finishes, and wait for its CommandDone to drain back.
    let play = PlayLoud::build(&mut conn, vec![]).expect("play loud");
    let pcm = da_dsp::tone::sine(8000, 440.0, 800, 12000);
    let sound = SoundHandle::from_pcm(&mut conn, 8000, &pcm).expect("upload");
    play.play(&mut conn, sound.id).expect("play");
    conn.sync().expect("sync");
    control.tick_n(20);
    let loud = play.loud;
    conn.wait_event(Duration::from_secs(5), |e| {
        matches!(e, Event::CommandDone { loud: l, .. } if *l == loud)
    })
    .expect("command done");

    let traces = conn.query_traces(64).expect("query traces");
    assert!(!traces.is_empty(), "no traces retained");

    // The Enqueue request's trace completed at the CommandDone drain,
    // so it carries every stage of the pipeline.
    let enqueue = traces
        .iter()
        .find(|t| Request::opcode_name(t.opcode) == Some("Enqueue"))
        .expect("enqueue trace retained");
    assert_eq!(enqueue.client, conn.setup().client);
    assert_eq!(
        enqueue.stages.len(),
        TraceStage::COUNT,
        "expected all stages, got {:?}",
        enqueue.stages
    );
    for (i, sample) in enqueue.stages.iter().enumerate() {
        assert_eq!(sample.stage as usize, i, "stage order: {:?}", enqueue.stages);
    }
    for pair in enqueue.stages.windows(2) {
        assert!(
            pair[1].at_us >= pair[0].at_us,
            "timestamps regress: {:?}",
            enqueue.stages
        );
    }
    // Dispatch ran on one concrete path and the engine stamped its tick:
    // the queue action was serviced after start, within our 20 ticks.
    assert!(enqueue.engine_tick < 20, "engine tick {}", enqueue.engine_tick);
    assert_eq!(enqueue.total_us(), {
        let first = enqueue.stages.first().expect("stages").at_us;
        let last = enqueue.stages.last().expect("stages").at_us;
        last - first
    });

    // Every retained trace — whatever its depth — is stamped in order.
    for t in &traces {
        for pair in t.stages.windows(2) {
            assert!(pair[1].at_us >= pair[0].at_us, "regress in {t:?}");
        }
    }

    server.shutdown();
}

#[test]
fn trace_ids_correlate_requests_with_their_traces() {
    let (server, mut conn) = start_traced();

    // Mint the id before sending: the next request is the sync below.
    let id = conn.next_trace_id();
    conn.sync().expect("sync");
    assert_eq!(id, conn.last_trace_id());

    let traces = conn.query_traces(64).expect("query traces");
    let matched: Vec<_> = traces.iter().filter(|t| id.matches(t)).collect();
    assert_eq!(matched.len(), 1, "exactly one trace per request id");
    let t = matched[0];
    assert_eq!(Request::opcode_name(t.opcode), Some("Sync"));
    // A plain reply-path trace: no engine stage, but ingress through
    // drain are all present and ordered.
    assert!(t.stage_at(TraceStage::Ingress).is_some());
    assert!(t.stage_at(TraceStage::Dispatch).is_some());
    assert!(t.stage_at(TraceStage::Outbound).is_some());
    assert!(t.stage_at(TraceStage::Drain).is_some());
    assert!(t.stage_at(TraceStage::Engine).is_none());

    server.shutdown();
}

#[test]
fn query_traces_respects_max_and_orders_slowest_first() {
    let (server, mut conn) = start_traced();
    for _ in 0..6 {
        conn.sync().expect("sync");
    }
    let all = conn.query_traces(64).expect("all traces");
    assert!(all.len() >= 6, "retained {} traces", all.len());
    for pair in all.windows(2) {
        assert!(pair[0].total_us() >= pair[1].total_us(), "not slowest-first");
    }
    let capped = conn.query_traces(2).expect("capped traces");
    assert_eq!(capped.len(), 2);
    assert_eq!(capped[0].total_us(), all[0].total_us());

    server.shutdown();
}
