//! Optional recorder behaviours (paper §5.1 attributes): AGC, pause
//! compression, pause-detection termination — plus the §5.2 hard-wired
//! wiring rule.

mod common;

use common::{start, start_with_hw};
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::event::{Event, EventMask};
use da_proto::types::{Attribute, DeviceClass, Encoding, SoundType, WireType};
use std::time::Duration;

fn record_rig(
    conn: &mut da_alib::Connection,
) -> (da_proto::LoudId, da_proto::VDeviceId, da_proto::VDeviceId) {
    let loud = conn.create_loud(None).unwrap();
    let input = conn.create_vdevice(loud, DeviceClass::Input, vec![]).unwrap();
    let rec = conn.create_vdevice(loud, DeviceClass::Recorder, vec![]).unwrap();
    conn.create_wire(input, 0, rec, 0, WireType::Any).unwrap();
    conn.select_events(rec, EventMask::DEVICE).unwrap();
    (loud, input, rec)
}

#[test]
fn agc_control_boosts_quiet_recording() {
    let (server, mut conn) = start();
    let control = server.control();
    // A very quiet voice at the microphone.
    control.speak_into_microphone(0, &da_dsp::tone::sine(8000, 440.0, 80_000, 1200));

    let (loud, _input, rec) = record_rig(&mut conn);
    let agc_atom = conn.intern_atom("AGC").unwrap();
    conn.set_device_control(rec, agc_atom, vec![1]).unwrap();
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, rec, DeviceCommand::Record(sound, RecordTermination::MaxFrames(64_000)))
        .unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(30), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    let data = conn.read_sound_all(sound).unwrap();
    let pcm = da_alib::connection::decode_from(SoundType::TELEPHONE, &data);
    // The tail (after AGC settles) should be much louder than the source.
    let tail = &pcm[pcm.len() - 16_000..];
    let rms = da_dsp::analysis::rms(tail);
    assert!(rms > 2500.0, "AGC did not boost: tail rms {rms}");
    server.shutdown();
}

#[test]
fn pause_compression_control_shrinks_recording() {
    let (server, mut conn) = start();
    let control = server.control();
    // Speech – long pause – speech.
    let mut signal = da_dsp::tone::sine(8000, 440.0, 8000, 10_000);
    signal.extend(std::iter::repeat_n(0i16, 16_000)); // 2 s pause
    signal.extend(da_dsp::tone::sine(8000, 440.0, 8000, 10_000));
    let total = signal.len() as u64;
    control.speak_into_microphone(0, &signal);

    let (loud, _input, rec) = record_rig(&mut conn);
    let pc_atom = conn.intern_atom("PAUSE_COMPRESSION").unwrap();
    conn.set_device_control(rec, pc_atom, vec![1]).unwrap();
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, rec, DeviceCommand::Record(sound, RecordTermination::MaxFrames(total)))
        .unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(30), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    let (_, _, frames, _) = conn.query_sound(sound).unwrap();
    // 2 s of pause squeezed to 250 ms: expect roughly 16000 + 2000 frames.
    assert!(frames < total - 10_000, "pause not compressed: {frames} of {total}");
    assert!(frames > 16_000, "speech content lost: {frames}");
    server.shutdown();
}

#[test]
fn pause_detection_terminates_recording() {
    let (server, mut conn) = start();
    let control = server.control();
    let mut signal = da_dsp::tone::sine(8000, 440.0, 8000, 10_000); // 1 s speech
    signal.extend(std::iter::repeat_n(0i16, 32_000)); // long silence
    control.speak_into_microphone(0, &signal);

    let (loud, _input, rec) = record_rig(&mut conn);
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(
        loud,
        rec,
        DeviceCommand::Record(
            sound,
            RecordTermination::OnPause { threshold: 300, min_silence_frames: 8000 },
        ),
    )
    .unwrap();
    conn.start_queue(loud).unwrap();
    let ev = conn
        .wait_event(Duration::from_secs(30), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    match ev {
        Event::RecordStopped { reason, frames, .. } => {
            assert_eq!(reason, da_proto::event::RecordStopReason::PauseDetected);
            // ~1 s of speech + ~1 s of trailing silence until detection.
            assert!((12_000..24_000).contains(&frames), "frames {frames}");
        }
        _ => unreachable!(),
    }
    server.shutdown();
}

#[test]
fn recording_in_adpcm_halves_stored_bytes() {
    // The representation is below the application (paper §2): record the
    // same audio in µ-law and ADPCM; the protocol hides the difference.
    let (server, mut conn) = start();
    let control = server.control();
    control.speak_into_microphone(0, &da_dsp::tone::sine(8000, 440.0, 64_000, 10_000));
    let (loud, _input, rec) = record_rig(&mut conn);
    conn.map_loud(loud).unwrap();
    let adpcm = conn
        .create_sound(SoundType { encoding: Encoding::ImaAdpcm, sample_rate: 8000, channels: 1 })
        .unwrap();
    conn.enqueue_cmd(loud, rec, DeviceCommand::Record(adpcm, RecordTermination::MaxFrames(16_000)))
        .unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(30), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    let (stype, bytes, frames, complete) = conn.query_sound(adpcm).unwrap();
    assert!(complete);
    assert_eq!(stype.encoding, Encoding::ImaAdpcm);
    assert_eq!(frames, 16_000);
    assert!((7_990..=8_010).contains(&bytes), "ADPCM bytes {bytes} for {frames} frames");
    server.shutdown();
}

#[test]
fn hard_wired_devices_constrain_virtual_wiring() {
    // Paper §5.2: the speaker-phone's line, mic and speaker are
    // permanently connected; virtual wires between devices pinned to
    // that hardware must follow the physical topology.
    let (server, mut conn) = start_with_hw(da_hw::registry::HwSpec::desktop_with_speakerphone());
    let (devices, hard_wires) = conn.query_device_loud().unwrap();
    assert_eq!(hard_wires.len(), 2);
    let find = |name: &str| {
        devices
            .iter()
            .find(|d| d.attrs.iter().any(|a| matches!(a, Attribute::Name(n) if n == name)))
            .map(|d| d.id)
            .expect("device present")
    };
    let sp_line = find("speakerphone line");
    let sp_speaker = find("speakerphone speaker");
    let desk_speaker = find("speaker");

    let loud = conn.create_loud(None).unwrap();
    let tel = conn
        .create_vdevice(loud, DeviceClass::Telephone, vec![Attribute::Device(sp_line)])
        .unwrap();
    let good_out = conn
        .create_vdevice(loud, DeviceClass::Output, vec![Attribute::Device(sp_speaker)])
        .unwrap();
    let bad_out = conn
        .create_vdevice(loud, DeviceClass::Output, vec![Attribute::Device(desk_speaker)])
        .unwrap();

    // Following the hard wire (line → its own speaker): allowed.
    conn.create_wire(tel, 0, good_out, 0, WireType::Any).unwrap();
    conn.sync().unwrap();
    assert!(conn.take_error().is_none(), "hard-wired path should be allowed");

    // Crossing the hard-wired unit (line → the desk speaker): rejected.
    conn.create_wire(tel, 0, bad_out, 0, WireType::Any).unwrap();
    conn.sync().unwrap();
    let (_, err) = conn.take_error().expect("mismatched wiring must fail");
    assert_eq!(err.code, da_proto::ErrorCode::BadMatch);
    server.shutdown();
}
