//! Command-queue semantics across the protocol (paper §5.5, §6.2).

mod common;

use common::start;
use da_proto::command::DeviceCommand;
use da_proto::event::{Event, EventMask, QueueStopReason};
use da_proto::ids::SoundId;
use da_proto::types::{DeviceClass, QueueState, SoundType, WireType};
use da_proto::QueueEntry;
use std::time::Duration;

fn tone_sound(conn: &mut da_alib::Connection, freq: f64, frames: usize) -> SoundId {
    let pcm = da_dsp::tone::sine(8000, freq, frames, 10000);
    conn.upload_pcm(SoundType::TELEPHONE, &pcm).expect("upload")
}

#[test]
fn cobegin_starts_players_simultaneously() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 200_000);

    // Two players into a mixer into the output (the paper's CoBegin
    // example: both sounds must start at the same time).
    let loud = conn.create_loud(None).unwrap();
    let p1 = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let p2 = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let mixer = conn.create_vdevice(loud, DeviceClass::Mixer, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(p1, 0, mixer, 0, WireType::Any).unwrap();
    conn.create_wire(p2, 0, mixer, 1, WireType::Any).unwrap();
    conn.create_wire(mixer, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();

    let a = tone_sound(&mut conn, 400.0, 8000);
    let b = tone_sound(&mut conn, 1100.0, 8000);
    let c = tone_sound(&mut conn, 700.0, 4000);

    conn.map_loud(loud).unwrap();
    conn.enqueue(
        loud,
        vec![
            QueueEntry::CoBegin,
            QueueEntry::Device { vdev: p1, cmd: DeviceCommand::Play(a) },
            QueueEntry::Device { vdev: p2, cmd: DeviceCommand::Play(b) },
            QueueEntry::CoEnd,
            QueueEntry::Device { vdev: p1, cmd: DeviceCommand::Play(c) },
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();

    // Three CommandDone events.
    for _ in 0..3 {
        conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
            .unwrap();
    }
    control.run_until(Duration::from_secs(5), |c| {
        c.hw.speakers[0].captured().len() >= 12000
    });
    let cap = control.take_captured(0);
    let start = cap.iter().position(|&s| s != 0).unwrap_or(0);
    // During the first second both tones sound simultaneously...
    let dual = &cap[start..start + 8000];
    assert!(da_dsp::analysis::goertzel_power(dual, 8000, 400.0) > 100_000.0);
    assert!(da_dsp::analysis::goertzel_power(dual, 8000, 1100.0) > 100_000.0);
    // ...and C starts only after both finish.
    let tail = &cap[start + 8000..start + 12000];
    assert!(da_dsp::analysis::goertzel_power(tail, 8000, 700.0) > 100_000.0);
    assert!(da_dsp::analysis::goertzel_power(tail, 8000, 400.0) < 10_000.0);
    server.shutdown();
}

#[test]
fn paper_delay_example_stops_first_play() {
    // §5.5: "plays sound A, waits 5 seconds and then starts playing B.
    // When B is finished, sound A is stopped." (500 ms here.)
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 200_000);

    let loud = conn.create_loud(None).unwrap();
    let p1 = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let p2 = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let mixer = conn.create_vdevice(loud, DeviceClass::Mixer, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(p1, 0, mixer, 0, WireType::Any).unwrap();
    conn.create_wire(p2, 0, mixer, 1, WireType::Any).unwrap();
    conn.create_wire(mixer, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();

    let a = tone_sound(&mut conn, 400.0, 40_000); // 5 s, would run long
    let b = tone_sound(&mut conn, 1100.0, 2000); // 250 ms

    conn.map_loud(loud).unwrap();
    conn.enqueue(
        loud,
        vec![
            QueueEntry::CoBegin,
            QueueEntry::Device { vdev: p1, cmd: DeviceCommand::Play(a) },
            QueueEntry::Delay { ms: 500 },
            QueueEntry::Device { vdev: p2, cmd: DeviceCommand::Play(b) },
            QueueEntry::Device { vdev: p1, cmd: DeviceCommand::Stop },
            QueueEntry::DelayEnd,
            QueueEntry::CoEnd,
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();

    // A is stopped early: its CommandDone arrives well before 5 s of
    // queue-relative time.
    let mut done = 0;
    while done < 3 {
        let ev = conn.next_event(Duration::from_secs(15)).unwrap().expect("event");
        if matches!(ev, Event::CommandDone { .. }) {
            done += 1;
        }
    }
    let (_, _, relative) = conn.query_queue(loud).unwrap();
    // 500 ms delay + 250 ms of B = 6000 frames; generous bound well under
    // the 40000 frames sound A would have needed.
    assert!(relative < 20_000, "queue ran {relative} frames; stop did not cut A short");
    server.shutdown();
}

#[test]
fn queued_change_gain_between_plays() {
    // Footnote 4 of the paper: Play, queued ChangeGain, Play — the gain
    // change happens exactly between the sounds.
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 100_000);

    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();

    let a = tone_sound(&mut conn, 500.0, 4000);
    let b = tone_sound(&mut conn, 500.0, 4000);

    conn.map_loud(loud).unwrap();
    conn.enqueue(
        loud,
        vec![
            QueueEntry::Device { vdev: player, cmd: DeviceCommand::Play(a) },
            QueueEntry::Device { vdev: player, cmd: DeviceCommand::ChangeGain(250) },
            QueueEntry::Device { vdev: player, cmd: DeviceCommand::Play(b) },
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();
    for _ in 0..3 {
        conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
            .unwrap();
    }
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 8000);
    let cap = control.take_captured(0);
    let start = cap.iter().position(|&s| s != 0).unwrap_or(0);
    let first = da_dsp::analysis::rms(&cap[start + 500..start + 3500]);
    let second = da_dsp::analysis::rms(&cap[start + 4500..start + 7500]);
    let ratio = first / second.max(1.0);
    assert!((3.0..5.5).contains(&ratio), "gain ratio {ratio}, want ~4");
    server.shutdown();
}

#[test]
fn pause_suspends_relative_time_and_position() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    let a = tone_sound(&mut conn, 500.0, 80_000); // 10 s

    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(a)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::QueueStarted { .. }))
        .unwrap();

    conn.pause_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| {
        matches!(e, Event::QueuePaused { by_server: false, .. })
    })
    .unwrap();
    let (state, _, t1) = conn.query_queue(loud).unwrap();
    assert_eq!(state, QueueState::ClientPaused);
    // Relative time must not advance while paused.
    std::thread::sleep(Duration::from_millis(100));
    let (_, _, t2) = conn.query_queue(loud).unwrap();
    assert_eq!(t1, t2, "relative time advanced while paused");

    conn.resume_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::QueueResumed { .. }))
        .unwrap();
    let (state, _, t3) = conn.query_queue(loud).unwrap();
    assert_eq!(state, QueueState::Started);
    // After resuming, time moves again.
    std::thread::sleep(Duration::from_millis(50));
    let (_, _, t4) = conn.query_queue(loud).unwrap();
    assert!(t4 > t3, "relative time stuck after resume");
    server.shutdown();
}

#[test]
fn immediate_stop_aborts_queued_play() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    let a = tone_sound(&mut conn, 500.0, 800_000); // 100 s

    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(a)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::QueueStarted { .. }))
        .unwrap();

    // Immediate-mode Stop "can stop processing of a queued command".
    conn.immediate(player, DeviceCommand::Stop).unwrap();
    let done = conn
        .wait_event(Duration::from_secs(10), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    assert!(matches!(done, Event::CommandDone { .. }));
    server.shutdown();
}

#[test]
fn stop_queue_emits_reason() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    let a = tone_sound(&mut conn, 500.0, 800_000);
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(a)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::QueueStarted { .. }))
        .unwrap();
    conn.stop_queue(loud).unwrap();
    let stopped = conn
        .wait_event(Duration::from_secs(10), |e| matches!(e, Event::QueueStopped { .. }))
        .unwrap();
    assert!(matches!(
        stopped,
        Event::QueueStopped { reason: QueueStopReason::ClientRequest, .. }
    ));
    let (state, ..) = conn.query_queue(loud).unwrap();
    assert_eq!(state, QueueState::Stopped);
    server.shutdown();
}

#[test]
fn flush_discards_pending_only() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let a = tone_sound(&mut conn, 500.0, 800);
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(a)).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(a)).unwrap();
    let (_, pending, _) = conn.query_queue(loud).unwrap();
    assert_eq!(pending, 2);
    conn.flush_queue(loud).unwrap();
    let (_, pending, _) = conn.query_queue(loud).unwrap();
    assert_eq!(pending, 0);
    server.shutdown();
}

#[test]
fn queue_survives_unmap_and_resumes() {
    // Deactivation pauses the queue (server-paused); remapping restores
    // the device state saved in the virtual devices (paper §5.4).
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 300_000);
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE | EventMask::LOUD_STATE).unwrap();
    let a = tone_sound(&mut conn, 500.0, 16_000); // 2 s

    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(a)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::QueueStarted { .. }))
        .unwrap();

    // Unmap mid-play: queue goes server-paused.
    conn.unmap_loud(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::UnmapNotify { .. }))
        .unwrap();
    let (state, ..) = conn.query_queue(loud).unwrap();
    assert_eq!(state, QueueState::ServerPaused);

    // Remap: queue resumes automatically and playback completes.
    conn.map_loud(loud).unwrap();
    let done = conn
        .wait_event(Duration::from_secs(20), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    assert!(matches!(done, Event::CommandDone { .. }));
    server.shutdown();
}
