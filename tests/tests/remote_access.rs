//! Telephone-based remote access (paper §1.2): "Speech synthesis and
//! recognition allow for remote, telephone-based access to information
//! accessible by the workstation." Voice commands over the phone line,
//! pause-terminated message taking, and robustness when clients vanish.

mod common;

use common::start;
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::event::{Event, EventMask};
use da_proto::types::{DeviceClass, SoundType, WireType};
use std::time::Duration;

#[test]
fn voice_command_recognised_over_the_phone() {
    let (server, mut conn) = start();
    let control = server.control();

    // Telephone source feeds a speech recognizer: the remote caller's
    // words become WordRecognized events.
    let loud = conn.create_loud(None).unwrap();
    let tel = conn.create_vdevice(loud, DeviceClass::Telephone, vec![]).unwrap();
    let recog = conn.create_vdevice(loud, DeviceClass::SpeechRecognizer, vec![]).unwrap();
    conn.create_wire(tel, 0, recog, 0, WireType::Any).unwrap();
    conn.select_events(tel, EventMask::DEVICE).unwrap();
    conn.select_events(recog, EventMask::DEVICE).unwrap();

    // Train over the protocol with synthesized utterances.
    let tts = da_synth::tts::Synthesizer::new(8000);
    for word in ["mail", "calendar"] {
        let template = conn.upload_pcm(SoundType::TELEPHONE, &tts.speak(word)).unwrap();
        conn.immediate(recog, DeviceCommand::Train { word: word.into(), template }).unwrap();
    }
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();

    // The remote caller dials in and says "calendar".
    let caller = control.add_remote_party("555-6000");
    control.with_party(caller, |p, pstn| {
        let mut utterance = vec![0i16; 2400];
        utterance.extend(tts.speak("calendar"));
        utterance.extend(std::iter::repeat_n(0i16, 8000));
        p.say(&utterance);
        p.call(pstn, "555-0100");
    });

    // Answer when it rings.
    conn.wait_event(Duration::from_secs(15), |e| {
        matches!(
            e,
            Event::CallProgress { state: da_proto::event::CallState::Ringing, .. }
        )
    })
    .unwrap();
    conn.enqueue_cmd(loud, tel, DeviceCommand::Answer).unwrap();
    conn.start_queue(loud).unwrap();

    let ev = conn
        .wait_event(Duration::from_secs(20), |e| matches!(e, Event::WordRecognized { .. }))
        .unwrap();
    match ev {
        Event::WordRecognized { word, .. } => assert_eq!(word, "calendar"),
        _ => unreachable!(),
    }
    server.shutdown();
}

#[test]
fn answering_machine_pause_termination_over_pstn() {
    // The §5.9 termination alternative: "after a pause" instead of on
    // hangup — the caller stops talking and the machine stops recording.
    let (server, mut conn) = start();
    let control = server.control();

    let loud = conn.create_loud(None).unwrap();
    let tel = conn.create_vdevice(loud, DeviceClass::Telephone, vec![]).unwrap();
    let rec = conn.create_vdevice(loud, DeviceClass::Recorder, vec![]).unwrap();
    conn.create_wire(tel, 0, rec, 0, WireType::Any).unwrap();
    conn.select_events(tel, EventMask::DEVICE).unwrap();
    conn.select_events(rec, EventMask::DEVICE).unwrap();

    let message = conn.create_sound(SoundType::TELEPHONE).unwrap();
    conn.enqueue(
        loud,
        vec![
            da_proto::QueueEntry::Device { vdev: tel, cmd: DeviceCommand::Answer },
            da_proto::QueueEntry::Device {
                vdev: rec,
                cmd: DeviceCommand::Record(
                    message,
                    RecordTermination::OnPause { threshold: 300, min_silence_frames: 8000 },
                ),
            },
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();

    // Caller speaks 1.5 s then stays silent (without hanging up).
    let caller = control.add_remote_party("555-6001");
    control.with_party(caller, |p, pstn| {
        p.say(&da_dsp::tone::sine(8000, 350.0, 12_000, 11_000));
        p.call(pstn, "555-0100");
    });

    let stopped = conn
        .wait_event(Duration::from_secs(30), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    match stopped {
        Event::RecordStopped { reason, frames, .. } => {
            assert_eq!(reason, da_proto::event::RecordStopReason::PauseDetected);
            // ~1.5 s of speech + ~1 s of silence before the detector fires.
            assert!((16_000..32_000).contains(&frames), "frames {frames}");
        }
        _ => unreachable!(),
    }
    server.shutdown();
}

#[test]
fn client_vanishing_mid_call_releases_the_line() {
    let (server, mut survivor) = start();
    let control = server.control();
    let mut doomed =
        da_alib::Connection::establish(server.connect_pipe(), "doomed").expect("connect");

    // The doomed client holds a connected call.
    let loud = doomed.create_loud(None).unwrap();
    let tel = doomed.create_vdevice(loud, DeviceClass::Telephone, vec![]).unwrap();
    doomed.select_events(tel, EventMask::DEVICE).unwrap();
    doomed.map_loud(loud).unwrap();
    doomed.sync().unwrap();
    let remote = control.add_remote_party("555-6002");
    control.with_party(remote, |p, _| p.auto_answer_after = Some(800));
    doomed.enqueue_cmd(loud, tel, DeviceCommand::Dial("555-6002".into())).unwrap();
    doomed.start_queue(loud).unwrap();
    doomed
        .wait_event(Duration::from_secs(15), |e| {
            matches!(
                e,
                Event::CallProgress { state: da_proto::event::CallState::Connected, .. }
            )
        })
        .unwrap();

    // The client dies; the server reaps its resources. The line is
    // released so the survivor can use it.
    drop(doomed);
    let reaped = control.run_until(Duration::from_secs(5), |c| c.louds.is_empty());
    assert!(reaped, "resources not reaped after disconnect");

    // The zombie call was torn down: the server line is back on-hook.
    let on_hook = control.run_until(Duration::from_secs(5), |c| {
        match c.hw.slot(2) {
            Some(da_hw::registry::HwSlot::Line(l)) => {
                c.hw.pstn.state(l) == da_hw::pstn::LineState::OnHook
            }
            _ => false,
        }
    });
    assert!(on_hook, "line left off-hook after owner died");

    let loud2 = survivor.create_loud(None).unwrap();
    let tel2 = survivor.create_vdevice(loud2, DeviceClass::Telephone, vec![]).unwrap();
    survivor.select_events(tel2, EventMask::DEVICE).unwrap();
    survivor.map_loud(loud2).unwrap();
    survivor.sync().unwrap();
    // The survivor's LOUD is active and bound to the line.
    let (_, mapped) = survivor.query_vdevice(tel2).unwrap();
    assert!(mapped.is_some(), "line not rebindable after owner died");
    server.shutdown();
}
