//! Coverage for the remaining request paths: activation requests,
//! sub-LOUD device binding, manual record stop, mixer gain clamping.

mod common;

use common::{connect, start};
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::event::{Event, EventMask};
use da_proto::request::Request;
use da_proto::types::{Attribute, DeviceClass, SoundType, WireType};
use std::time::Duration;

#[test]
fn request_activate_and_deactivate() {
    // Two exclusive-output LOUDs from two clients; RequestActivate and
    // RequestDeactivate express preference through stack position.
    let (server, mut a) = start();
    let mut b = connect(&server, "contender");
    let la = a.create_loud(None).unwrap();
    a.create_vdevice(la, DeviceClass::Output, vec![Attribute::ExclusiveUse]).unwrap();
    a.select_events(la, EventMask::LOUD_STATE).unwrap();
    a.map_loud(la).unwrap();
    a.sync().unwrap(); // A's map lands before B's, so B ends up on top
    let lb = b.create_loud(None).unwrap();
    b.create_vdevice(lb, DeviceClass::Output, vec![Attribute::ExclusiveUse]).unwrap();
    b.select_events(lb, EventMask::LOUD_STATE).unwrap();
    b.map_loud(lb).unwrap();
    b.sync().unwrap();
    // B mapped last, so B is active.
    let stack = a.query_active_stack().unwrap();
    assert!(stack[0].active && stack[0].loud == lb);

    // A asks to be activated.
    a.send(&Request::RequestActivate { id: la }).unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();
    let stack = a.query_active_stack().unwrap();
    assert!(stack[0].active && stack[0].loud == la);

    // A asks to be deactivated; B takes over again.
    a.send(&Request::RequestDeactivate { id: la }).unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::DeactivateNotify { .. }))
        .unwrap();
    let stack = a.query_active_stack().unwrap();
    assert!(stack.iter().find(|e| e.loud == lb).unwrap().active);
    server.shutdown();
}

#[test]
fn sub_loud_devices_bind_and_play() {
    // Figure 5-1 structure: the player lives in a sub-LOUD; commands go
    // to the root's queue and the device binds when the root maps.
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 100_000);
    let root = conn.create_loud(None).unwrap();
    let sub = conn.create_loud(Some(root)).unwrap();
    let player = conn.create_vdevice(sub, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(root, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(root, EventMask::QUEUE).unwrap();
    conn.map_loud(root).unwrap();
    let sound = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 550.0, 4000, 11_000))
        .unwrap();
    conn.enqueue_cmd(root, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(root).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 4000);
    let cap = control.take_captured(0);
    assert!(da_dsp::analysis::goertzel_power(&cap, 8000, 550.0) > 100_000.0);
    server.shutdown();
}

#[test]
fn manual_record_stops_on_immediate_stop() {
    let (server, mut conn) = start();
    let control = server.control();
    control.speak_into_microphone(0, &da_dsp::tone::sine(8000, 440.0, 160_000, 9000));
    let loud = conn.create_loud(None).unwrap();
    let input = conn.create_vdevice(loud, DeviceClass::Input, vec![]).unwrap();
    let rec = conn.create_vdevice(loud, DeviceClass::Recorder, vec![]).unwrap();
    conn.create_wire(input, 0, rec, 0, WireType::Any).unwrap();
    conn.select_events(rec, EventMask::DEVICE).unwrap();
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, rec, DeviceCommand::Record(sound, RecordTermination::Manual))
        .unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::RecordStarted { .. }))
        .unwrap();
    conn.immediate(rec, DeviceCommand::Stop).unwrap();
    let stopped = conn
        .wait_event(Duration::from_secs(10), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    match stopped {
        Event::RecordStopped { reason, .. } => {
            assert_eq!(reason, da_proto::event::RecordStopReason::Manual);
        }
        _ => unreachable!(),
    }
    // The sound is complete and usable afterwards.
    let (_, _, frames, complete) = conn.query_sound(sound).unwrap();
    assert!(complete);
    assert!(frames > 0);
    server.shutdown();
}

#[test]
fn mix_gain_percent_clamped_to_100() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 100_000);
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let mixer = conn.create_vdevice(loud, DeviceClass::Mixer, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, mixer, 0, WireType::Any).unwrap();
    conn.create_wire(mixer, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    // A 250% request is clamped to 100%: output equals input level.
    conn.immediate(mixer, DeviceCommand::SetMixGain { input: 0, percent: 250 }).unwrap();
    conn.map_loud(loud).unwrap();
    let pcm = da_dsp::tone::sine(8000, 500.0, 4000, 8000);
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 4000);
    let cap = control.take_captured(0);
    let start = cap.iter().position(|&s| s.unsigned_abs() > 100).unwrap_or(0);
    let rms = da_dsp::analysis::rms(&cap[start..start + 3000]);
    // 8000-peak sine RMS ~5657; clamped unity keeps it there (not 2.5x).
    assert!((4500.0..6500.0).contains(&rms), "gain not clamped: rms {rms}");
    server.shutdown();
}

#[test]
fn out_of_range_mixer_input_ignored() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let mixer = conn.create_vdevice(loud, DeviceClass::Mixer, vec![]).unwrap();
    // Input 99 does not exist; the command is accepted and ignored (the
    // paper's mixers have fixed per-input percentages; bad indexes are a
    // no-op rather than a fatal error).
    conn.immediate(mixer, DeviceCommand::SetMixGain { input: 99, percent: 50 }).unwrap();
    conn.sync().unwrap();
    assert!(conn.take_error().is_none());
    server.shutdown();
}
