//! Shared fixture for integration tests.
//!
//! Each integration binary includes this module separately, so any one
//! binary may use only a subset of the helpers.
#![allow(dead_code)]

use da_alib::Connection;
use da_server::{AudioServer, ServerConfig};

/// Starts a default virtual-paced server with a connected client.
pub fn start() -> (AudioServer, Connection) {
    let server = AudioServer::start(ServerConfig::default()).expect("server");
    let conn = Connection::establish(server.connect_pipe(), "itest").expect("connect");
    (server, conn)
}

/// Starts a server with a specific hardware inventory.
pub fn start_with_hw(hw: da_hw::registry::HwSpec) -> (AudioServer, Connection) {
    let config = ServerConfig { hw, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let conn = Connection::establish(server.connect_pipe(), "itest").expect("connect");
    (server, conn)
}

/// Connects an additional client to a running server.
pub fn connect(server: &AudioServer, name: &str) -> Connection {
    Connection::establish(server.connect_pipe(), name).expect("connect")
}
