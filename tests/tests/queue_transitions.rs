//! Table-driven check of the queue state machine (paper §5.5): every
//! (state × command) pair is driven through a live server and compared
//! against the legal-transition matrix that the `core::queue` typestate
//! API encodes at compile time. The table is the runtime half of that
//! guarantee: the typestate makes illegal transitions unrepresentable
//! in server code, this test pins down which transitions the protocol
//! actually performs, including the silent no-ops.

mod common;

use common::start;
use da_alib::Connection;
use da_proto::command::DeviceCommand;
use da_proto::event::{Event, EventMask};
use da_proto::ids::LoudId;
use da_proto::types::{DeviceClass, QueueState, SoundType, WireType};
use std::time::Duration;

#[derive(Clone, Copy, Debug)]
enum Cmd {
    Start,
    Stop,
    Pause,
    Resume,
}

/// The queue event the command must (or must not) emit.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Emits {
    Started,
    Stopped,
    PausedByClient,
    Resumed,
    Nothing,
}

/// The legal-transition matrix, spelled out row by row.
/// (from-state, command, to-state, emitted event)
const MATRIX: &[(QueueState, Cmd, QueueState, Emits)] = &[
    // StartQueue: starts a stopped queue, resumes a client pause
    // ("StartQueue on a paused queue acts as resume"), and is a silent
    // no-op on a queue that is already running or server-paused.
    (QueueState::Stopped, Cmd::Start, QueueState::Started, Emits::Started),
    (QueueState::Started, Cmd::Start, QueueState::Started, Emits::Nothing),
    (QueueState::ClientPaused, Cmd::Start, QueueState::Started, Emits::Resumed),
    (QueueState::ServerPaused, Cmd::Start, QueueState::ServerPaused, Emits::Nothing),
    // StopQueue: always lands in Stopped and always reports it, even
    // when the queue was already stopped.
    (QueueState::Stopped, Cmd::Stop, QueueState::Stopped, Emits::Stopped),
    (QueueState::Started, Cmd::Stop, QueueState::Stopped, Emits::Stopped),
    (QueueState::ClientPaused, Cmd::Stop, QueueState::Stopped, Emits::Stopped),
    (QueueState::ServerPaused, Cmd::Stop, QueueState::Stopped, Emits::Stopped),
    // PauseQueue: only a running queue can be client-paused.
    (QueueState::Stopped, Cmd::Pause, QueueState::Stopped, Emits::Nothing),
    (QueueState::Started, Cmd::Pause, QueueState::ClientPaused, Emits::PausedByClient),
    (QueueState::ClientPaused, Cmd::Pause, QueueState::ClientPaused, Emits::Nothing),
    (QueueState::ServerPaused, Cmd::Pause, QueueState::ServerPaused, Emits::Nothing),
    // ResumeQueue: only undoes a *client* pause; a server pause ends
    // when the LOUD reactivates, not when the client asks.
    (QueueState::Stopped, Cmd::Resume, QueueState::Stopped, Emits::Nothing),
    (QueueState::Started, Cmd::Resume, QueueState::Started, Emits::Nothing),
    (QueueState::ClientPaused, Cmd::Resume, QueueState::Started, Emits::Resumed),
    (QueueState::ServerPaused, Cmd::Resume, QueueState::ServerPaused, Emits::Nothing),
];

fn is_queue_event_for(e: &Event, loud: LoudId) -> bool {
    matches!(e,
        Event::QueueStarted { loud: l }
        | Event::QueueStopped { loud: l, .. }
        | Event::QueuePaused { loud: l, .. }
        | Event::QueueResumed { loud: l }
        if *l == loud
    )
}

fn drain_queue_events(conn: &mut Connection, loud: LoudId) {
    while conn
        .wait_event(Duration::from_millis(80), |e| is_queue_event_for(e, loud))
        .is_ok()
    {}
}

/// Builds a mapped playing topology and drives its queue into `state`.
fn reach(conn: &mut Connection, state: QueueState) -> LoudId {
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    // Long enough that a started queue cannot drain mid-case.
    let pcm = da_dsp::tone::sine(8000, 440.0, 400_000, 10000);
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    if state != QueueState::Stopped {
        conn.start_queue(loud).unwrap();
        conn.wait_event(Duration::from_secs(10), |e| {
            matches!(e, Event::QueueStarted { loud: l } if *l == loud)
        })
        .unwrap();
    }
    match state {
        QueueState::Stopped | QueueState::Started => {}
        QueueState::ClientPaused => {
            conn.pause_queue(loud).unwrap();
            conn.wait_event(Duration::from_secs(10), |e| {
                matches!(e, Event::QueuePaused { loud: l, by_server: false } if *l == loud)
            })
            .unwrap();
        }
        QueueState::ServerPaused => {
            // Deactivation pauses the queue on the server's initiative;
            // unmapping is the simplest way to force it.
            conn.unmap_loud(loud).unwrap();
            conn.sync().unwrap();
        }
    }
    let (got, ..) = conn.query_queue(loud).unwrap();
    assert_eq!(got, state, "fixture failed to reach {state:?}");
    drain_queue_events(conn, loud);
    loud
}

#[test]
fn every_state_command_pair_matches_the_matrix() {
    let (server, mut conn) = start();
    for &(from, cmd, to, emits) in MATRIX {
        let loud = reach(&mut conn, from);
        match cmd {
            Cmd::Start => conn.start_queue(loud).unwrap(),
            Cmd::Stop => conn.stop_queue(loud).unwrap(),
            Cmd::Pause => conn.pause_queue(loud).unwrap(),
            Cmd::Resume => conn.resume_queue(loud).unwrap(),
        }
        conn.sync().unwrap();
        let case = format!("{from:?} × {cmd:?}");
        match emits {
            Emits::Nothing => {
                let got = conn.wait_event(Duration::from_millis(200), |e| {
                    is_queue_event_for(e, loud)
                });
                assert!(got.is_err(), "{case}: unexpected event {got:?}");
            }
            _ => {
                let ev = conn
                    .wait_event(Duration::from_secs(10), |e| is_queue_event_for(e, loud))
                    .unwrap_or_else(|e| panic!("{case}: no event: {e}"));
                let matched = match emits {
                    Emits::Started => matches!(ev, Event::QueueStarted { .. }),
                    Emits::Stopped => matches!(ev, Event::QueueStopped { .. }),
                    Emits::PausedByClient => {
                        matches!(ev, Event::QueuePaused { by_server: false, .. })
                    }
                    Emits::Resumed => matches!(ev, Event::QueueResumed { .. }),
                    Emits::Nothing => unreachable!(),
                };
                assert!(matched, "{case}: expected {emits:?}, got {ev:?}");
            }
        }
        let (state, ..) = conn.query_queue(loud).unwrap();
        assert_eq!(state, to, "{case}: wrong resulting state");
        // Tear the case down so later rows start from a quiet server.
        conn.stop_queue(loud).unwrap();
        conn.destroy_loud(loud).unwrap();
        conn.sync().unwrap();
    }
    server.shutdown();
}

/// The two server-initiated edges the client cannot command directly:
/// deactivation (unmap) pauses a running queue, reactivation (map)
/// resumes it with a `QueueResumed` notification.
#[test]
fn server_pause_and_reactivate_round_trip() {
    let (server, mut conn) = start();
    let loud = reach(&mut conn, QueueState::Started);

    conn.unmap_loud(loud).unwrap();
    conn.sync().unwrap();
    let (state, ..) = conn.query_queue(loud).unwrap();
    assert_eq!(state, QueueState::ServerPaused);

    conn.map_loud(loud).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| {
        matches!(e, Event::QueueResumed { loud: l } if *l == loud)
    })
    .unwrap();
    let (state, ..) = conn.query_queue(loud).unwrap();
    assert_eq!(state, QueueState::Started);
    server.shutdown();
}
