//! Connection-lifecycle hardening (DESIGN.md §12): a disconnect storm
//! must leave zero state behind, a server shutdown must flush every
//! pending reply, and a slow client must be evicted rather than allowed
//! to wedge the engine.

mod common;

use common::{connect, start};
use da_proto::codec::{Frame, FrameKind, WireWriter};
use da_proto::command::{DeviceCommand, QueueEntry};
use da_proto::event::EventMask;
use da_proto::ids::{ClientId, LoudId, ResourceId, VDeviceId};
use da_proto::reply::Reply;
use da_proto::request::Request;
use da_proto::setup::{SetupReply, SetupRequest};
use da_proto::transport::Duplex;
use da_proto::types::{DeviceClass, SoundType, WireType};
use da_proto::{WireRead, WireWrite};
use da_server::core::ServerMsg;
use da_server::validate;
use da_server::AudioServer;
use std::time::Duration;

/// Counts of every per-client resource class in the core — the storm
/// must return all of them to their pre-storm values.
#[derive(Debug, PartialEq, Eq)]
struct StateFootprint {
    clients: usize,
    louds: usize,
    vdevs: usize,
    wires: usize,
    sounds: usize,
    properties: usize,
    selections: usize,
}

fn footprint(server: &AudioServer) -> StateFootprint {
    server.control().with_core(|c| StateFootprint {
        clients: c.clients.len(),
        louds: c.louds.len(),
        vdevs: c.vdevs.len(),
        wires: c.wires.len(),
        sounds: c.sounds.len(),
        properties: c.properties.len(),
        selections: c.clients.values().map(|cs| cs.selections.len()).sum(),
    })
}

fn req_frame(seq: u32, req: &Request) -> Frame {
    let mut w = WireWriter::new();
    w.u32(seq);
    req.write(&mut w);
    Frame { kind: FrameKind::Request, payload: w.finish() }
}

/// Performs the setup handshake on a raw duplex, bypassing Alib, so the
/// test can later send deliberately malformed frames.
fn raw_handshake(server: &AudioServer, name: &str) -> (Duplex, SetupReply) {
    let mut duplex = server.connect_pipe();
    let mut w = WireWriter::new();
    SetupRequest {
        protocol_major: da_proto::PROTOCOL_MAJOR,
        protocol_minor: da_proto::PROTOCOL_MINOR,
        client_name: name.to_string(),
    }
    .write(&mut w);
    duplex.send(&Frame { kind: FrameKind::Setup, payload: w.finish() }).expect("setup send");
    let setup = loop {
        match duplex.recv(Some(Duration::from_secs(5))).expect("setup recv") {
            Some(f) if f.kind == FrameKind::SetupReply => {
                break SetupReply::from_wire(&f.payload).expect("setup reply decodes");
            }
            Some(_) => continue,
            None => panic!("no setup reply"),
        }
    };
    (duplex, setup)
}

/// N clients build live state (mapped LOUD, running queue, selected
/// events, uploaded sound, properties), then all die messily at once:
/// half vanish with replies still in flight, half after emitting a torn
/// request frame. The server must shed every trace of them — V1–V13
/// clean, resource counts back to the pre-storm footprint — and keep
/// answering a fresh client.
#[test]
fn disconnect_storm_leaves_no_state_behind() {
    let (server, control_conn) = start();
    let control = server.control();
    let before = footprint(&server);
    let ticks_before = control.stats().ticks;

    // Half the storm: full Alib sessions with the richest state we can
    // give them, killed with requests outstanding ("mid-reply").
    let mut alib_clients = Vec::new();
    for i in 0..6 {
        let mut conn = connect(&server, &format!("storm-alib-{i}"));
        let loud = conn.create_loud(None).expect("loud");
        let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).expect("player");
        let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).expect("out");
        conn.create_wire(player, 0, out, 0, WireType::Any).expect("wire");
        conn.select_events(ResourceId::Loud(loud), EventMask::all()).expect("select");
        let sound =
            conn.upload_sound(SoundType::TELEPHONE, &[0x55u8; 400]).expect("sound");
        let atom = conn.intern_atom("STORM").expect("atom");
        conn.change_property(ResourceId::Sound(sound), atom, atom, vec![1, 2, 3])
            .expect("property");
        conn.map_loud(loud).expect("map");
        conn.enqueue(loud, vec![QueueEntry::Device { vdev: player, cmd: DeviceCommand::Play(sound) }])
            .expect("enqueue");
        conn.start_queue(loud).expect("start");
        conn.sync().expect("sync");
        // Leave replies in flight: these Syncs are answered into the
        // client channel but never read.
        for _ in 0..5 {
            conn.send(&Request::Sync).expect("pending sync");
        }
        alib_clients.push(conn);
    }

    // The other half: raw connections that die mid-frame — their last
    // transmission is a valid frame truncated partway through its
    // payload, exactly what a crash during a write produces.
    let mut raw_clients = Vec::new();
    for i in 0..6 {
        let (mut duplex, setup) = raw_handshake(&server, &format!("storm-raw-{i}"));
        let loud = LoudId(setup.id_base | 1);
        let vdev = VDeviceId(setup.id_base | 2);
        duplex.send(&req_frame(1, &Request::CreateLoud { id: loud, parent: None })).expect("loud");
        duplex
            .send(&req_frame(
                2,
                &Request::CreateVDevice {
                    id: vdev,
                    loud,
                    class: DeviceClass::Player,
                    attrs: vec![],
                },
            ))
            .expect("vdev");
        duplex
            .send(&req_frame(
                3,
                &Request::SelectEvents { target: ResourceId::Loud(loud), mask: EventMask::all() },
            ))
            .expect("select");
        duplex.send(&req_frame(4, &Request::MapLoud { id: loud })).expect("map");
        let whole = req_frame(5, &Request::Sync);
        let torn = Frame {
            kind: FrameKind::Request,
            payload: bytes::Bytes::from(whole.payload[..whole.payload.len() / 2].to_vec()),
        };
        duplex.send(&torn).expect("torn frame");
        raw_clients.push(duplex);
    }

    // Let the storm's requests land, then kill everyone at once.
    assert!(
        control.run_until(Duration::from_secs(5), |c| c.clients.len() == before.clients + 12),
        "all 12 storm clients should be registered"
    );
    drop(alib_clients);
    drop(raw_clients);

    // Every reader notices its dead transport and tears down fully.
    assert!(
        control.run_until(Duration::from_secs(10), |c| c.clients.len() == before.clients),
        "storm clients should all be removed"
    );
    let breaches = control.with_core(|c| validate::check_all(c));
    assert!(breaches.is_empty(), "invariants violated after storm: {breaches:?}");
    assert_eq!(footprint(&server), before, "storm leaked state");

    // The engine never stalled and the server still answers.
    assert!(control.stats().ticks > ticks_before, "engine stalled during storm");
    let mut probe = connect(&server, "post-storm-probe");
    probe.sync().expect("server still answers after the storm");

    drop(control_conn);
    server.shutdown();
}

/// Replies already queued when the server shuts down must still reach
/// the client: the writer drains its channel before exiting (the
/// historical race dropped whatever was still queued at the moment the
/// shutdown flag was observed).
#[test]
fn shutdown_flushes_all_pending_replies() {
    let (server, mut conn) = start();
    let control = server.control();
    let dispatched_before = control.with_core(|c| c.tel.metrics.dispatch_requests_total.get());

    let mut seqs = Vec::new();
    for _ in 0..64 {
        seqs.push(conn.send(&Request::Sync).expect("send sync"));
    }
    // All 64 answered into the client channel, none read yet.
    assert!(control.run_until(Duration::from_secs(5), |c| {
        c.tel.metrics.dispatch_requests_total.get() >= dispatched_before + 64
    }));
    server.shutdown();

    // Every reply must have been flushed to the transport before the
    // writer exited.
    for seq in seqs {
        let reply = conn.wait_reply(seq).expect("reply lost in shutdown");
        assert!(matches!(reply, Reply::Sync), "wrong reply for {seq}: {reply:?}");
    }
}

/// A client that stops reading while the server has replies to deliver
/// gets evicted once its transport and channel are both full — the
/// engine must never block on it, and eviction must leave no trace.
#[test]
fn slow_client_is_evicted_not_blocked() {
    let (server, conn) = start();
    let control = server.control();
    let client = control.with_core(|c| {
        assert_eq!(c.clients.len(), 1);
        ClientId(*c.clients.keys().next().expect("one client"))
    });

    // Fill the pipe (4096 frames) and the bounded channel (256) with
    // replies the client never reads; the overflow sets the eviction
    // flag. try_send semantics mean this loop cannot block the core.
    control.with_core(|c| {
        for i in 0..6000u32 {
            c.send_to_client(client, ServerMsg::Reply(i, Reply::Sync));
        }
    });

    // The reader polls the eviction flag and tears the connection down.
    assert!(
        control.run_until(Duration::from_secs(5), |c| c.clients.is_empty()),
        "slow client should be evicted"
    );
    let (evicted, breaches) = control.with_core(|c| {
        (c.tel.metrics.clients_evicted_total.get(), validate::check_all(c))
    });
    assert_eq!(evicted, 1, "eviction not counted");
    assert!(breaches.is_empty(), "invariants violated after eviction: {breaches:?}");

    // Unblock the writer (it is parked on the full pipe) by dropping
    // the client's receiving end, then shut down cleanly.
    drop(conn);
    server.shutdown();
}
