//! Cross-media synchronization (paper §5.7): "consider an application
//! displaying a set of images while playing a stored digital sound track
//! ... The application monitors the audio server synchronization events
//! on the sound track, and uses them to time the update of the display."
//! Plus the DSP effect extension point (§2).

mod common;

use common::start;
use da_proto::command::DeviceCommand;
use da_proto::event::{Event, EventMask};
use da_proto::types::{DeviceClass, SoundType, WireType};
use da_toolkit::soundviewer::Soundviewer;
use std::time::Duration;

/// A mock slide show: advances one frame per second of audio.
struct SlideShow {
    frames_per_slide: u64,
    current: usize,
    transitions: Vec<u64>,
}

impl SlideShow {
    fn new(frames_per_slide: u64) -> Self {
        SlideShow { frames_per_slide, current: 0, transitions: Vec::new() }
    }

    fn on_audio_position(&mut self, position: u64) {
        let slide = (position / self.frames_per_slide) as usize;
        while self.current < slide {
            self.current += 1;
            self.transitions.push(position);
        }
    }
}

#[test]
fn sync_events_drive_a_slide_show() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.select_events(player, EventMask::SYNC).unwrap();
    conn.map_loud(loud).unwrap();

    // A 3.5 s sound track; one slide per second (the last half-slide
    // keeps the end-of-track mark off a slide boundary).
    let sound = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 440.0, 28_000, 9000))
        .unwrap();
    let mut show = SlideShow::new(8000);
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();

    loop {
        match conn.next_event(Duration::from_secs(15)).unwrap() {
            Some(Event::SyncMark { position, .. }) => show.on_audio_position(position),
            Some(Event::CommandDone { .. }) => break,
            Some(_) => {}
            None => panic!("playback never finished"),
        }
    }
    // Three slide transitions (at 1 s, 2 s, 3 s of audio), each within
    // one sync interval (800 frames) of its nominal time.
    assert_eq!(show.current, 3, "transitions at {:?}", show.transitions);
    for (i, &at) in show.transitions.iter().enumerate() {
        let nominal = (i as u64 + 1) * 8000;
        assert!(
            at >= nominal && at < nominal + 800,
            "slide {} flipped at {} (nominal {})",
            i + 1,
            at,
            nominal
        );
    }
    server.shutdown();
}

#[test]
fn soundviewer_and_display_share_one_event_stream() {
    // The same stream of events drives both the Soundviewer bar graph and
    // the slide show — the point of server-generated sync marks.
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.select_events(player, EventMask::SYNC | EventMask::DEVICE).unwrap();
    conn.map_loud(loud).unwrap();

    let total = 14_000u64;
    let sound = conn
        .upload_pcm(
            SoundType::TELEPHONE,
            &da_dsp::tone::sine(8000, 440.0, total as usize, 9000),
        )
        .unwrap();
    let mut viewer = Soundviewer::new(player, total, 8000);
    let mut show = SlideShow::new(4000);
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    loop {
        match conn.next_event(Duration::from_secs(15)).unwrap() {
            Some(ev) => {
                if let Event::SyncMark { position, .. } = &ev {
                    show.on_audio_position(*position);
                }
                viewer.handle_event(&ev);
                if matches!(ev, Event::CommandDone { .. }) {
                    break;
                }
            }
            None => panic!("no event"),
        }
    }
    assert!(viewer.fraction() > 0.95);
    assert_eq!(show.current, 3);
    server.shutdown();
}

#[test]
fn dsp_echo_effect_via_device_control() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 200_000);

    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let dsp = conn.create_vdevice(loud, DeviceClass::Dsp, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, dsp, 0, WireType::Any).unwrap();
    conn.create_wire(dsp, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();

    // Echo: 2000-frame (250 ms) delay, 50% feedback.
    let effect = conn.intern_atom("EFFECT").unwrap();
    conn.set_device_control(dsp, effect, b"echo:2000:500".to_vec()).unwrap();
    conn.map_loud(loud).unwrap();

    // A short burst: the echo repeats it after the original ends.
    let mut burst = da_dsp::tone::sine(8000, 700.0, 800, 12_000);
    burst.extend(std::iter::repeat_n(0i16, 7200)); // 1 s total
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &burst).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 8000);
    let cap = control.take_captured(0);
    let start = cap.iter().position(|&s| s != 0).expect("audio");
    // Original burst region and the first echo region both carry 700 Hz.
    let original = &cap[start..start + 800];
    let echo1 = &cap[start + 2000..start + 2800];
    let between = &cap[start + 1000..start + 1800];
    let p_orig = da_dsp::analysis::goertzel_power(original, 8000, 700.0);
    let p_echo = da_dsp::analysis::goertzel_power(echo1, 8000, 700.0);
    let p_gap = da_dsp::analysis::goertzel_power(between, 8000, 700.0);
    assert!(p_echo > p_gap * 10.0, "no echo: echo {p_echo} gap {p_gap}");
    assert!(p_orig > p_echo, "echo louder than the source");
    server.shutdown();
}

#[test]
fn dsp_effect_control_validation() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let dsp = conn.create_vdevice(loud, DeviceClass::Dsp, vec![]).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let effect = conn.intern_atom("EFFECT").unwrap();
    // Unknown effect name rejected.
    conn.set_device_control(dsp, effect, b"flanger".to_vec()).unwrap();
    conn.sync().unwrap();
    let (_, err) = conn.take_error().expect("unknown effect must fail");
    assert_eq!(err.code, da_proto::ErrorCode::BadValue);
    // EFFECT on a non-DSP device rejected.
    conn.set_device_control(player, effect, b"echo".to_vec()).unwrap();
    conn.sync().unwrap();
    let (_, err) = conn.take_error().expect("wrong class must fail");
    assert_eq!(err.code, da_proto::ErrorCode::BadMatch);
    // Valid specs accepted.
    for spec in [&b"none"[..], b"echo:4000:300", b"lowpass:500"] {
        conn.set_device_control(dsp, effect, spec.to_vec()).unwrap();
    }
    conn.sync().unwrap();
    assert!(conn.take_error().is_none());
    server.shutdown();
}
