//! Multiple simultaneous clients sharing one speaker (paper §2: "the
//! multiplexing of output requests from a number of applications to a
//! single speaker, to be heard simultaneously").

mod common;

use common::{connect, start};
use da_proto::command::DeviceCommand;
use da_proto::event::{Event, EventMask};
use da_proto::types::{DeviceClass, SoundType, WireType};
use std::time::Duration;

struct ClientRig {
    conn: da_alib::Connection,
    loud: da_proto::LoudId,
    player: da_proto::VDeviceId,
}

fn rig(server: &da_server::AudioServer, name: &str) -> ClientRig {
    let mut conn = connect(server, name);
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();
    ClientRig { conn, loud, player }
}

#[test]
fn four_clients_mix_on_one_speaker() {
    let (server, _first) = start();
    let control = server.control();
    control.set_speaker_capture(0, 400_000);

    let freqs = [400.0, 700.0, 1000.0, 1300.0];
    let mut rigs: Vec<ClientRig> = (0..4).map(|i| rig(&server, &format!("mix-{i}"))).collect();

    // Everyone uploads a 3 s tone and enqueues it.
    for (i, r) in rigs.iter_mut().enumerate() {
        let pcm = da_dsp::tone::sine(8000, freqs[i], 24_000, 6000);
        let sound = r.conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
        r.conn.enqueue_cmd(r.loud, r.player, DeviceCommand::Play(sound)).unwrap();
    }
    // Start all queues as close together as request dispatch allows.
    for r in rigs.iter_mut() {
        r.conn.start_queue(r.loud).unwrap();
    }
    // Wait for all four to finish.
    for r in rigs.iter_mut() {
        r.conn
            .wait_event(Duration::from_secs(30), |e| matches!(e, Event::CommandDone { .. }))
            .unwrap();
    }
    control.run_until(Duration::from_secs(10), |c| {
        c.hw.speakers[0].captured().len() >= 24_000
    });
    let cap = control.take_captured(0);
    // In the middle of the capture all four tones must be audible at
    // once — the server mixed the independent client streams.
    let mid_start = cap.len() / 3;
    let mid = &cap[mid_start..(mid_start + 8000).min(cap.len())];
    for f in freqs {
        let p = da_dsp::analysis::goertzel_power(mid, 8000, f);
        assert!(p > 50_000.0, "{f} Hz missing from mix (power {p})");
    }
    server.shutdown();
}

#[test]
fn sixteen_clients_all_complete() {
    let (server, _first) = start();
    let mut rigs: Vec<ClientRig> =
        (0..16).map(|i| rig(&server, &format!("swarm-{i}"))).collect();
    for r in rigs.iter_mut() {
        let sound = r
            .conn
            .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 600.0, 4000, 3000))
            .unwrap();
        r.conn.enqueue_cmd(r.loud, r.player, DeviceCommand::Play(sound)).unwrap();
        r.conn.start_queue(r.loud).unwrap();
    }
    for (i, r) in rigs.iter_mut().enumerate() {
        r.conn
            .wait_event(Duration::from_secs(60), |e| matches!(e, Event::CommandDone { .. }))
            .unwrap_or_else(|e| panic!("client {i} never finished: {e:?}"));
    }
    server.shutdown();
}

#[test]
fn clients_cannot_touch_each_others_resources() {
    let (server, mut a) = start();
    let mut b = connect(&server, "intruder");
    let la = a.create_loud(None).unwrap();
    a.sync().unwrap();
    // B tries to destroy A's LOUD.
    b.destroy_loud(la).unwrap();
    b.sync().unwrap();
    let (_, err) = b.take_error().expect("access must be denied");
    assert_eq!(err.code, da_proto::ErrorCode::BadAccess);
    // A's LOUD still exists.
    let (state, ..) = a.query_queue(la).unwrap();
    assert_eq!(state, da_proto::types::QueueState::Stopped);
    server.shutdown();
}

#[test]
fn properties_are_shared_between_clients() {
    // Properties "can be used to communicate information between
    // applications" (paper §5.8): B reads what A wrote.
    let (server, mut a) = start();
    let mut b = connect(&server, "reader");
    let la = a.create_loud(None).unwrap();
    let name = a.intern_atom("HANDOFF").unwrap();
    let string = a.intern_atom("STRING").unwrap();
    a.change_property(la, name, string, b"hello from a".to_vec()).unwrap();
    a.sync().unwrap();
    // B interns the same atom (stable across clients) and reads.
    let name_b = b.intern_atom("HANDOFF").unwrap();
    assert_eq!(name, name_b);
    let p = b.get_property(la, name_b).unwrap().expect("visible to b");
    assert_eq!(p.value, b"hello from a");
    server.shutdown();
}
