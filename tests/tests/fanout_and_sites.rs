//! Fan-out wiring (one source feeding several sinks) and the paper's
//! multi-server case: "a client can have multiple connections to one or
//! more audio servers" (§4.1), moving audio "between sites" (§1.3).

mod common;

use common::start_with_hw;
use da_alib::Connection;
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::event::{Event, EventMask};
use da_proto::types::{Attribute, DeviceClass, SoundType, WireType};
use da_server::{AudioServer, ServerConfig};
use std::time::Duration;

#[test]
fn one_player_fans_out_to_two_speakers() {
    // Desktop-plus-hifi hardware: the same stream reaches both outputs.
    let (server, mut conn) = start_with_hw(da_hw::registry::HwSpec::desktop_hifi());
    let control = server.control();
    control.set_speaker_capture(0, 200_000);
    control.set_speaker_capture(1, 800_000);

    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let desk = conn
        .create_vdevice(loud, DeviceClass::Output, vec![Attribute::SampleRate(8000)])
        .unwrap();
    let hifi = conn
        .create_vdevice(loud, DeviceClass::Output, vec![Attribute::SampleRate(44_100)])
        .unwrap();
    conn.create_wire(player, 0, desk, 0, WireType::Any).unwrap();
    conn.create_wire(player, 0, hifi, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();

    let sound = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 440.0, 8000, 11_000))
        .unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();

    control.run_until(Duration::from_secs(5), |c| {
        c.hw.speakers[0].captured().len() >= 4000 && c.hw.speakers[1].captured().len() >= 20_000
    });
    let desk_cap = control.take_captured(0);
    let hifi_cap = control.take_captured(1);
    let p_desk = da_dsp::analysis::goertzel_power(&desk_cap, 8000, 440.0);
    let hifi_left: Vec<i16> = hifi_cap.iter().step_by(2).copied().collect();
    let p_hifi = da_dsp::analysis::goertzel_power(&hifi_left, 44_100, 440.0);
    assert!(p_desk > 100_000.0, "desk speaker silent: {p_desk}");
    assert!(p_hifi > 100_000.0, "hifi speaker silent: {p_hifi}");
    server.shutdown();
}

#[test]
fn one_input_fans_out_to_recorder_and_recognizer() {
    let (server, mut conn) = start_with_hw(da_hw::registry::HwSpec::desktop());
    let control = server.control();
    let tts = da_synth::tts::Synthesizer::new(8000);

    let loud = conn.create_loud(None).unwrap();
    let input = conn.create_vdevice(loud, DeviceClass::Input, vec![]).unwrap();
    let rec = conn.create_vdevice(loud, DeviceClass::Recorder, vec![]).unwrap();
    let recog = conn.create_vdevice(loud, DeviceClass::SpeechRecognizer, vec![]).unwrap();
    conn.create_wire(input, 0, rec, 0, WireType::Any).unwrap();
    conn.create_wire(input, 0, recog, 0, WireType::Any).unwrap();
    conn.select_events(rec, EventMask::DEVICE).unwrap();
    conn.select_events(recog, EventMask::DEVICE).unwrap();
    let template = conn.upload_pcm(SoundType::TELEPHONE, &tts.speak("stop")).unwrap();
    conn.immediate(recog, DeviceCommand::Train { word: "stop".into(), template }).unwrap();
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    conn.enqueue_cmd(loud, rec, DeviceCommand::Record(sound, RecordTermination::MaxFrames(24_000)))
        .unwrap();
    conn.start_queue(loud).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();

    // Speak "stop" into the microphone: the recorder stores it AND the
    // recognizer detects it, from the same fanned-out stream.
    let mut utterance = vec![0i16; 2400];
    utterance.extend(tts.speak("stop"));
    utterance.extend(std::iter::repeat_n(0i16, 10_000));
    control.speak_into_microphone(0, &utterance);

    let word = conn
        .wait_event(Duration::from_secs(20), |e| matches!(e, Event::WordRecognized { .. }))
        .unwrap();
    match word {
        Event::WordRecognized { word, .. } => assert_eq!(word, "stop"),
        _ => unreachable!(),
    }
    conn.wait_event(Duration::from_secs(20), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    let data = conn.read_sound_all(sound).unwrap();
    let pcm = da_alib::connection::decode_from(SoundType::TELEPHONE, &data);
    assert!(da_dsp::analysis::rms(&pcm) > 100.0, "recorder got nothing");
    server.shutdown();
}

#[test]
fn audio_moves_between_two_servers() {
    // Two independent workstations ("sites"): record a message on site A,
    // carry it over the client, play it on site B — the §1.3 requirement
    // that users "move audio between applications and transmit it between
    // sites".
    let site_a = AudioServer::start(ServerConfig::default()).expect("site a");
    let site_b = AudioServer::start(ServerConfig::default()).expect("site b");
    let mut conn_a = Connection::establish(site_a.connect_pipe(), "at-a").expect("a");
    let mut conn_b = Connection::establish(site_b.connect_pipe(), "at-b").expect("b");

    // Record a tone from site A's microphone.
    site_a.control().speak_into_microphone(0, &da_dsp::tone::sine(8000, 620.0, 16_000, 11_000));
    let loud_a = conn_a.create_loud(None).unwrap();
    let input = conn_a.create_vdevice(loud_a, DeviceClass::Input, vec![]).unwrap();
    let rec = conn_a.create_vdevice(loud_a, DeviceClass::Recorder, vec![]).unwrap();
    conn_a.create_wire(input, 0, rec, 0, WireType::Any).unwrap();
    conn_a.select_events(rec, EventMask::DEVICE).unwrap();
    let msg_a = conn_a.create_sound(SoundType::TELEPHONE).unwrap();
    conn_a.map_loud(loud_a).unwrap();
    conn_a
        .enqueue_cmd(loud_a, rec, DeviceCommand::Record(msg_a, RecordTermination::MaxFrames(8000)))
        .unwrap();
    conn_a.start_queue(loud_a).unwrap();
    conn_a
        .wait_event(Duration::from_secs(15), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();

    // Transfer: download from A, upload to B.
    let data = conn_a.read_sound_all(msg_a).unwrap();
    assert_eq!(data.len(), 8000);
    let msg_b = conn_b.upload_sound(SoundType::TELEPHONE, &data).unwrap();

    // Play at site B and verify its speaker heard the tone.
    site_b.control().set_speaker_capture(0, 100_000);
    let loud_b = conn_b.create_loud(None).unwrap();
    let player = conn_b.create_vdevice(loud_b, DeviceClass::Player, vec![]).unwrap();
    let out = conn_b.create_vdevice(loud_b, DeviceClass::Output, vec![]).unwrap();
    conn_b.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn_b.select_events(loud_b, EventMask::QUEUE).unwrap();
    conn_b.map_loud(loud_b).unwrap();
    conn_b.enqueue_cmd(loud_b, player, DeviceCommand::Play(msg_b)).unwrap();
    conn_b.start_queue(loud_b).unwrap();
    conn_b
        .wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    site_b.control().run_until(Duration::from_secs(5), |c| {
        c.hw.speakers[0].captured().len() >= 8000
    });
    let cap = site_b.control().take_captured(0);
    let p = da_dsp::analysis::goertzel_power(&cap, 8000, 620.0);
    assert!(p > 100_000.0, "site B never played site A's recording: {p}");
    site_a.shutdown();
    site_b.shutdown();
}

#[test]
fn malformed_tcp_bytes_do_not_crash_the_server() {
    let config =
        ServerConfig { tcp_addr: Some("127.0.0.1:0".to_string()), ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let addr = server.tcp_addr().unwrap();

    // An attacker writes garbage and disconnects.
    use std::io::Write;
    let mut evil = std::net::TcpStream::connect(addr).unwrap();
    evil.write_all(&[0xFF; 512]).unwrap();
    drop(evil);
    // Another writes a plausible frame header with absurd length.
    let mut evil2 = std::net::TcpStream::connect(addr).unwrap();
    evil2.write_all(&[0xFF, 0xFF, 0xFF, 0x7F, 0x01]).unwrap();
    drop(evil2);

    // A legitimate client still gets full service.
    let mut conn = Connection::open_tcp(&addr.to_string(), "legit").unwrap();
    let (vendor, ..) = conn.server_info().unwrap();
    assert!(vendor.contains("desktop-audio"));
    server.shutdown();
}
