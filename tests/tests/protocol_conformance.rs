//! Protocol conformance: error codes, id ranges, wire rules, event
//! selection discipline (paper §4.1, §5.2).

mod common;

use common::{connect, start};
use da_proto::event::{Event, EventMask};
use da_proto::ids::{LoudId, SoundId, VDeviceId, WireId};
use da_proto::request::Request;
use da_proto::types::{DeviceClass, Encoding, SoundType, WireType};
use da_proto::ErrorCode;
use std::time::Duration;

fn expect_error(conn: &mut da_alib::Connection, code: ErrorCode) {
    conn.sync().unwrap();
    let (_, err) = conn.take_error().unwrap_or_else(|| panic!("expected {code:?}"));
    assert_eq!(err.code, code);
}

#[test]
fn bad_resource_ids() {
    let (server, mut conn) = start();
    conn.send(&Request::DestroyLoud { id: LoudId(0xF00) }).unwrap();
    expect_error(&mut conn, ErrorCode::BadLoud);
    conn.send(&Request::DestroyVDevice { id: VDeviceId(0xF00) }).unwrap();
    expect_error(&mut conn, ErrorCode::BadDevice);
    conn.send(&Request::DestroyWire { id: WireId(0xF00) }).unwrap();
    expect_error(&mut conn, ErrorCode::BadWire);
    conn.send(&Request::DeleteSound { id: SoundId(0xF00) }).unwrap();
    expect_error(&mut conn, ErrorCode::BadSound);
    conn.send(&Request::GetAtomName { atom: da_proto::Atom(0xF00) }).unwrap();
    let err = conn.round_trip(&Request::GetAtomName { atom: da_proto::Atom(0xF00) });
    assert!(err.is_err());
    server.shutdown();
}

#[test]
fn id_range_enforced() {
    let (server, mut conn) = start();
    // An id outside the client's granted range is rejected.
    conn.send(&Request::CreateLoud { id: LoudId(0x1), parent: None }).unwrap();
    expect_error(&mut conn, ErrorCode::BadIdChoice);
    // Reusing an id is rejected.
    let loud = conn.create_loud(None).unwrap();
    conn.send(&Request::CreateLoud { id: loud, parent: None }).unwrap();
    expect_error(&mut conn, ErrorCode::BadIdChoice);
    server.shutdown();
}

#[test]
fn wire_rules() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    let dsp = conn.create_vdevice(loud, DeviceClass::Dsp, vec![]).unwrap();

    // Self-wire rejected.
    conn.create_wire(dsp, 0, dsp, 0, WireType::Any).unwrap();
    expect_error(&mut conn, ErrorCode::BadMatch);

    // Bad port index rejected.
    conn.create_wire(player, 5, out, 0, WireType::Any).unwrap();
    expect_error(&mut conn, ErrorCode::BadValue);

    // Analog wires exist only in the device LOUD.
    conn.create_wire(player, 0, out, 0, WireType::Analog).unwrap();
    expect_error(&mut conn, ErrorCode::BadMatch);

    // Typed wire mismatching both endpoints rejected ("If one end can
    // only produce 8-bit µ-law and the other can only take ADPCM, a
    // protocol error will be generated", §5.9).
    conn.create_wire(
        player,
        0,
        out,
        0,
        WireType::Digital(SoundType { encoding: Encoding::Pcm16, sample_rate: 96_000, channels: 1 }),
    )
    .unwrap();
    expect_error(&mut conn, ErrorCode::BadMatch);

    // Cycles rejected: player -> dsp -> out is fine, out -> player isn't
    // (out has no source), so use two dsps.
    let dsp2 = conn.create_vdevice(loud, DeviceClass::Dsp, vec![]).unwrap();
    conn.create_wire(dsp, 0, dsp2, 0, WireType::Any).unwrap();
    conn.sync().unwrap();
    assert!(conn.take_error().is_none());
    conn.create_wire(dsp2, 0, dsp, 0, WireType::Any).unwrap();
    expect_error(&mut conn, ErrorCode::BadMatch);

    // Cross-tree wires rejected.
    let loud2 = conn.create_loud(None).unwrap();
    let player2 = conn.create_vdevice(loud2, DeviceClass::Player, vec![]).unwrap();
    conn.create_wire(player2, 0, out, 0, WireType::Any).unwrap();
    expect_error(&mut conn, ErrorCode::BadMatch);
    server.shutdown();
}

#[test]
fn wire_queries() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    let w = conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    let (src, sp, dst, dp, wt) = conn.query_wire(w).unwrap();
    assert_eq!((src, sp, dst, dp), (player, 0, out, 0));
    assert_eq!(wt, WireType::Any);
    assert_eq!(conn.query_device_wires(player).unwrap(), vec![w]);
    conn.destroy_wire(w).unwrap();
    conn.sync().unwrap();
    assert!(conn.query_device_wires(player).unwrap().is_empty());
    server.shutdown();
}

#[test]
fn sub_loud_hierarchy() {
    // The answering-machine LOUD of Figure 5-1 contains a recorder
    // sub-LOUD; commands go to the root's queue.
    let (server, mut conn) = start();
    let root = conn.create_loud(None).unwrap();
    let sub = conn.create_loud(Some(root)).unwrap();
    let player = conn.create_vdevice(root, DeviceClass::Player, vec![]).unwrap();
    let rec = conn.create_vdevice(sub, DeviceClass::Recorder, vec![]).unwrap();
    // Wires may span the tree (same root).
    conn.create_wire(player, 0, rec, 0, WireType::Any).unwrap();
    conn.sync().unwrap();
    assert!(conn.take_error().is_none());
    // Sub-LOUDs have no queue.
    let err = conn.query_queue(sub);
    assert!(err.is_err());
    // Destroying the root destroys the subtree.
    conn.destroy_loud(root).unwrap();
    conn.send(&Request::DestroyVDevice { id: rec }).unwrap();
    conn.sync().unwrap();
    let (_, err) = conn.take_error().expect("device should be gone");
    assert_eq!(err.code, ErrorCode::BadDevice);
    server.shutdown();
}

#[test]
fn event_selection_is_per_client_and_per_resource() {
    let (server, mut a) = start();
    let mut b = connect(&server, "watcher");
    let loud = a.create_loud(None).unwrap();
    let player = a.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = a.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    a.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    // A's resources must exist before B can select on them.
    a.sync().unwrap();
    // Only B selects; B sees the events, A does not.
    b.select_events(loud, EventMask::QUEUE).unwrap();
    b.sync().unwrap();
    a.map_loud(loud).unwrap();
    let sound = a
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 500.0, 800, 5000))
        .unwrap();
    a.enqueue_cmd(loud, player, da_proto::DeviceCommand::Play(sound)).unwrap();
    a.start_queue(loud).unwrap();
    let got = b
        .wait_event(Duration::from_secs(10), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    assert!(matches!(got, Event::CommandDone { .. }));
    assert!(a.next_event(Duration::from_millis(200)).unwrap().is_none());
    // Deselect: no more events for B either.
    b.select_events(loud, EventMask::empty()).unwrap();
    b.sync().unwrap();
    // Drain events buffered from the first play before asserting silence.
    while b.poll_event().unwrap().is_some() {}
    a.enqueue_cmd(loud, player, da_proto::DeviceCommand::Play(sound)).unwrap();
    a.start_queue(loud).unwrap();
    a.sync().unwrap();
    assert!(b.next_event(Duration::from_millis(300)).unwrap().is_none());
    server.shutdown();
}

#[test]
fn sync_interval_controls_mark_spacing() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(player, EventMask::SYNC).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.set_sync_interval(player, 400).unwrap();
    conn.map_loud(loud).unwrap();
    let sound = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 500.0, 4000, 5000))
        .unwrap();
    conn.enqueue_cmd(loud, player, da_proto::DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    let mut positions = Vec::new();
    loop {
        match conn.next_event(Duration::from_secs(10)).unwrap() {
            Some(Event::SyncMark { position, .. }) => positions.push(position),
            Some(Event::CommandDone { .. }) => break,
            Some(_) => {}
            None => break,
        }
    }
    assert!(positions.len() >= 8, "only {} marks", positions.len());
    // Marks are monotone and spaced by [400, 480] frames (the interval
    // rounded up to tick granularity).
    for pair in positions.windows(2) {
        let gap = pair[1] - pair[0];
        assert!((400..=480).contains(&gap), "gap {gap}");
    }
    server.shutdown();
}

#[test]
fn device_controls_roundtrip() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let atom = conn.intern_atom("MY_CONTROL").unwrap();
    assert_eq!(conn.get_device_control(player, atom).unwrap(), None);
    conn.set_device_control(player, atom, vec![1, 2, 3]).unwrap();
    assert_eq!(conn.get_device_control(player, atom).unwrap(), Some(vec![1, 2, 3]));
    // SYNC_INTERVAL is a live control.
    let sync_atom = conn.intern_atom("SYNC_INTERVAL").unwrap();
    conn.set_device_control(player, sync_atom, 320u32.to_le_bytes().to_vec()).unwrap();
    conn.sync().unwrap();
    assert!(conn.take_error().is_none());
    server.shutdown();
}

#[test]
fn queued_only_commands_rejected_immediate() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let tel = conn.create_vdevice(loud, DeviceClass::Telephone, vec![]).unwrap();
    for cmd in [
        da_proto::DeviceCommand::Dial("1".into()),
        da_proto::DeviceCommand::Answer,
        da_proto::DeviceCommand::Play(SoundId(1)),
        da_proto::DeviceCommand::Record(SoundId(1), da_proto::RecordTermination::Manual),
    ] {
        conn.immediate(tel, cmd).unwrap();
        expect_error(&mut conn, ErrorCode::BadQueueMode);
    }
    server.shutdown();
}

#[test]
fn class_mismatched_commands_rejected() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    conn.immediate(player, da_proto::DeviceCommand::SendDtmf("1".into())).unwrap();
    expect_error(&mut conn, ErrorCode::BadMatch);
    conn.immediate(player, da_proto::DeviceCommand::SetVoice("sine".into())).unwrap();
    expect_error(&mut conn, ErrorCode::BadMatch);
    server.shutdown();
}

#[test]
fn zero_port_devices_cannot_crash_the_engine() {
    // SinkPorts(0)/SourcePorts(0) attributes are clamped to the class
    // minimums; recording through such a device works normally.
    let (server, mut conn) = start();
    let control = server.control();
    control.speak_into_microphone(0, &da_dsp::tone::sine(8000, 440.0, 16_000, 9000));
    let loud = conn.create_loud(None).unwrap();
    let input = conn
        .create_vdevice(loud, DeviceClass::Input, vec![da_proto::types::Attribute::SourcePorts(0)])
        .unwrap();
    let rec = conn
        .create_vdevice(
            loud,
            DeviceClass::Recorder,
            vec![da_proto::types::Attribute::SinkPorts(0)],
        )
        .unwrap();
    conn.create_wire(input, 0, rec, 0, WireType::Any).unwrap();
    conn.select_events(rec, EventMask::DEVICE).unwrap();
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(
        loud,
        rec,
        da_proto::DeviceCommand::Record(sound, da_proto::RecordTermination::MaxFrames(800)),
    )
    .unwrap();
    conn.start_queue(loud).unwrap();
    let ev = conn
        .wait_event(Duration::from_secs(10), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    assert!(matches!(ev, Event::RecordStopped { frames: 800, .. }));
    server.shutdown();
}

#[test]
fn zero_rate_sound_rejected() {
    let (server, mut conn) = start();
    let id = SoundId(conn.alloc_id());
    conn.send(&Request::CreateSound {
        id,
        stype: SoundType { encoding: Encoding::ULaw, sample_rate: 0, channels: 1 },
    })
    .unwrap();
    expect_error(&mut conn, ErrorCode::BadValue);
    server.shutdown();
}
