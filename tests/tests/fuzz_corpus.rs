//! Replays the checked-in wire-codec fuzz corpus (`tests/corpus/*.bin`).
//!
//! Every corpus file is a self-describing `[kind, expect, payload..]`
//! record (see `da_modelcheck::fuzz::corpus`): `kind` selects the frame
//! body type (0 = raw frame stream, 1..=6 = a `FrameKind` wire tag) and
//! `expect` says whether the payload must round-trip byte-identically
//! (`EXPECT_OK`) or merely decode totally — no panic, no reading past
//! the declared length (`EXPECT_TOTAL`).
//!
//! The corpus is regenerated with
//! `cargo run --release -p xtask -- fuzz --corpus-out tests/corpus`;
//! any fuzzer-found failing input lands here as `fail-*.bin` and keeps
//! replaying forever as a regression check.

use std::path::PathBuf;

use da_modelcheck::fuzz::{corpus, seed_corpus};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Every `*.bin` under `tests/corpus/` replays without a property
/// violation.
#[test]
fn every_corpus_file_replays_clean() {
    let mut names: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 24,
        "corpus unexpectedly small: {} files (regenerate with \
         `cargo run --release -p xtask -- fuzz --corpus-out tests/corpus`)",
        names.len()
    );
    let mut failures = Vec::new();
    for path in &names {
        let bytes = std::fs::read(path).expect("readable corpus file");
        if let Err(e) = corpus::replay(&bytes) {
            failures.push(format!("{}: {e}", path.display()));
        }
    }
    assert!(failures.is_empty(), "corpus replay failures:\n{}", failures.join("\n"));
}

/// The checked-in seed corpus matches what `seed_corpus()` generates
/// today — codec changes that alter the wire image show up as a diff
/// here, prompting a deliberate corpus regeneration.
#[test]
fn checked_in_seed_corpus_matches_generator() {
    let dir = corpus_dir();
    for (name, bytes) in seed_corpus() {
        let on_disk = std::fs::read(dir.join(&name))
            .unwrap_or_else(|e| panic!("missing seed corpus file {name}: {e}"));
        assert_eq!(
            on_disk, bytes,
            "seed corpus file {name} is stale (regenerate with \
             `cargo run --release -p xtask -- fuzz --corpus-out tests/corpus`)"
        );
    }
}

/// A corrupted round-trip entry is rejected by the replayer (the replay
/// oracle itself is live, not vacuously passing).
#[test]
fn replay_rejects_a_corrupted_expect_ok_entry() {
    let (name, mut bytes) = seed_corpus()
        .into_iter()
        .find(|(n, _)| n == "rt-request.bin")
        .expect("seed corpus contains rt-request.bin");
    // Smash the opcode tag (payload byte 0, after the [kind, expect]
    // header) rather than the tail: trailing bytes of some requests are
    // free-form integers whose corruption still re-encodes identically.
    bytes[2] = 0xEE;
    assert!(
        corpus::replay(&bytes).is_err(),
        "corrupting the opcode tag of {name} should break the round-trip property"
    );
}
