//! Active-stack scheduling, exclusivity and ambient domains (paper §5.4,
//! §5.8).

mod common;

use common::{connect, start, start_with_hw};
use da_proto::command::DeviceCommand;
use da_proto::event::{Event, EventMask};
use da_proto::types::{Attribute, DeviceClass, SoundType, WireType};
use std::time::Duration;

#[test]
fn exclusive_use_preempts_lower_loud() {
    let (server, mut a) = start();
    let mut b = connect(&server, "exclusive-app");

    // Client A maps a normal output LOUD and starts a long play.
    let la = a.create_loud(None).unwrap();
    let pa = a.create_vdevice(la, DeviceClass::Player, vec![]).unwrap();
    let oa = a.create_vdevice(la, DeviceClass::Output, vec![]).unwrap();
    a.create_wire(pa, 0, oa, 0, WireType::Any).unwrap();
    a.select_events(la, EventMask::QUEUE | EventMask::LOUD_STATE).unwrap();
    let sound = a
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 500.0, 24_000, 10000))
        .unwrap();
    a.map_loud(la).unwrap();
    a.enqueue_cmd(la, pa, DeviceCommand::Play(sound)).unwrap();
    a.start_queue(la).unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::QueueStarted { .. }))
        .unwrap();

    // Client B maps an exclusive-use output on top: A must deactivate.
    let lb = b.create_loud(None).unwrap();
    let _ob = b
        .create_vdevice(lb, DeviceClass::Output, vec![Attribute::ExclusiveUse])
        .unwrap();
    b.select_events(lb, EventMask::LOUD_STATE).unwrap();
    b.map_loud(lb).unwrap();
    b.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();

    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::DeactivateNotify { .. }))
        .unwrap();
    a.wait_event(Duration::from_secs(10), |e| {
        matches!(e, Event::QueuePaused { by_server: true, .. })
    })
    .unwrap();

    // B unmaps: A reactivates, its queue resumes, the play completes.
    b.unmap_loud(lb).unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();
    a.wait_event(Duration::from_secs(30), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    server.shutdown();
}

#[test]
fn shared_output_activates_both() {
    // Without exclusivity, two LOUDs bind the same speaker and both stay
    // active ("the multiplexing of output requests from a number of
    // applications to a single speaker", paper §2).
    let (server, mut a) = start();
    let mut b = connect(&server, "second-app");
    let la = a.create_loud(None).unwrap();
    a.create_vdevice(la, DeviceClass::Output, vec![]).unwrap();
    a.select_events(la, EventMask::LOUD_STATE).unwrap();
    a.map_loud(la).unwrap();
    let lb = b.create_loud(None).unwrap();
    b.create_vdevice(lb, DeviceClass::Output, vec![]).unwrap();
    b.select_events(lb, EventMask::LOUD_STATE).unwrap();
    b.map_loud(lb).unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();
    b.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();
    let stack = a.query_active_stack().unwrap();
    assert_eq!(stack.len(), 2);
    assert!(stack.iter().all(|e| e.active));
    server.shutdown();
}

#[test]
fn ambient_domain_exclusive_input() {
    // Speaker-phone hardware: its microphone shares the desktop domain
    // with the desk microphone. An exclusive-input claim on the desk mic
    // must deactivate a LOUD using the speaker-phone mic (paper §5.8).
    let (server, mut a) = start_with_hw(da_hw::registry::HwSpec::desktop_with_speakerphone());
    let mut b = connect(&server, "dictation");

    // A uses the speaker-phone mic (domains 0 and 2).
    let la = a.create_loud(None).unwrap();
    a.create_vdevice(
        la,
        DeviceClass::Input,
        vec![Attribute::Name("speakerphone mic".into())],
    )
    .unwrap();
    a.select_events(la, EventMask::LOUD_STATE).unwrap();
    a.map_loud(la).unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();

    // B claims the desk microphone exclusively within its domain.
    let lb = b.create_loud(None).unwrap();
    b.create_vdevice(
        lb,
        DeviceClass::Input,
        vec![Attribute::Name("microphone".into()), Attribute::ExclusiveInput],
    )
    .unwrap();
    b.select_events(lb, EventMask::LOUD_STATE).unwrap();
    b.map_loud(lb).unwrap();
    b.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();

    // A's input shares domain 0 with the exclusive claim: deactivated.
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::DeactivateNotify { .. }))
        .unwrap();
    server.shutdown();
}

#[test]
fn raise_reorders_contention() {
    // Two LOUDs both want exclusive use of the one speaker; only the
    // higher one is active, and raising swaps them.
    let (server, mut a) = start();
    let mut b = connect(&server, "raiser");
    let la = a.create_loud(None).unwrap();
    a.create_vdevice(la, DeviceClass::Output, vec![Attribute::ExclusiveUse]).unwrap();
    a.select_events(la, EventMask::LOUD_STATE).unwrap();
    a.map_loud(la).unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();

    let lb = b.create_loud(None).unwrap();
    b.create_vdevice(lb, DeviceClass::Output, vec![Attribute::ExclusiveUse]).unwrap();
    b.select_events(lb, EventMask::LOUD_STATE).unwrap();
    b.map_loud(lb).unwrap();
    // B maps on top, so B is active and A deactivates.
    b.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::DeactivateNotify { .. }))
        .unwrap();

    // A raises itself back to the top.
    a.raise_loud(la).unwrap();
    a.wait_event(Duration::from_secs(10), |e| matches!(e, Event::ActivateNotify { .. }))
        .unwrap();
    b.wait_event(Duration::from_secs(10), |e| matches!(e, Event::DeactivateNotify { .. }))
        .unwrap();

    let stack = a.query_active_stack().unwrap();
    assert_eq!(stack[0].loud, la);
    assert!(stack[0].active);
    assert!(!stack[1].active);
    server.shutdown();
}

#[test]
fn lower_yields_to_higher_priority() {
    // "Lower priority LOUDs can be put on the bottom of the stack to
    // yield to higher priority LOUDs" (paper §5.4).
    let (server, mut a) = start();
    let la = a.create_loud(None).unwrap();
    a.create_vdevice(la, DeviceClass::Output, vec![Attribute::ExclusiveUse]).unwrap();
    a.map_loud(la).unwrap();
    let lb = a.create_loud(None).unwrap();
    a.create_vdevice(lb, DeviceClass::Output, vec![Attribute::ExclusiveUse]).unwrap();
    a.map_loud(lb).unwrap();
    a.sync().unwrap();
    // lb mapped last → on top.
    let stack = a.query_active_stack().unwrap();
    assert_eq!(stack[0].loud, lb);
    a.lower_loud(lb).unwrap();
    a.sync().unwrap();
    let stack = a.query_active_stack().unwrap();
    assert_eq!(stack[0].loud, la);
    assert!(stack[0].active);
    assert!(!stack[1].active);
    server.shutdown();
}

#[test]
fn pinned_device_binding_reported() {
    // §5.3: map, query the chosen device, augment to pin it.
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();
    let (_, mapped) = conn.query_vdevice(out).unwrap();
    let device = mapped.expect("mapped to a physical device");
    // Pin to the same device explicitly.
    conn.augment_vdevice(out, vec![Attribute::Device(device)]).unwrap();
    conn.sync().unwrap();
    let (attrs, mapped2) = conn.query_vdevice(out).unwrap();
    assert_eq!(mapped2, Some(device));
    assert!(attrs.iter().any(|a| matches!(a, Attribute::Device(d) if *d == device)));
    server.shutdown();
}

#[test]
fn client_disconnect_releases_resources() {
    let (server, mut a) = start();
    let mut b = connect(&server, "doomed");
    let lb = b.create_loud(None).unwrap();
    b.create_vdevice(lb, DeviceClass::Output, vec![Attribute::ExclusiveUse]).unwrap();
    b.map_loud(lb).unwrap();
    b.sync().unwrap();
    assert_eq!(a.query_active_stack().unwrap().len(), 1);
    drop(b); // connection closes; the server reaps everything
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stack = a.query_active_stack().unwrap();
        if stack.is_empty() {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "resources not reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}
