//! Deterministic engine properties under manual ticking: sample-exact
//! state restoration across preemption (paper §5.4) and gap-free playback
//! under awkward quantum sizes.

mod common;

use da_alib::Connection;
use da_proto::command::DeviceCommand;
use da_proto::event::EventMask;
use da_proto::types::{Attribute, DeviceClass, SoundType, WireType};
use da_server::{AudioServer, ServerConfig};

fn manual_server(quantum_us: u64) -> (AudioServer, Connection) {
    let config = ServerConfig { manual_ticks: true, quantum_us, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let conn = Connection::establish(server.connect_pipe(), "det").expect("connect");
    (server, conn)
}

fn play_rig(conn: &mut Connection) -> (da_proto::LoudId, da_proto::VDeviceId) {
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    (loud, player)
}

#[test]
fn preemption_restores_playback_sample_exactly() {
    // Paper §5.4: on reactivation the server restores devices "to their
    // state prior to the moment the LOUD was deactivated". The captured
    // waveform of a preempted-then-resumed play must contain every sample
    // of the source exactly once.
    let (server, mut a) = manual_server(10_000);
    let control = server.control();
    control.set_speaker_capture(0, 1 << 20);
    let mut b = Connection::establish(server.connect_pipe(), "preemptor").expect("connect");

    let (loud_a, player_a) = play_rig(&mut a);
    // Use PCM-16 so the staircase survives encoding exactly.
    let stype =
        SoundType { encoding: da_proto::types::Encoding::Pcm16, sample_rate: 8000, channels: 1 };
    let ramp: Vec<i16> = (0..16_000).map(|i| (i % 30_000) as i16 + 1).collect();
    let sound = a.upload_pcm(stype, &ramp).unwrap();
    a.map_loud(loud_a).unwrap();
    a.enqueue_cmd(loud_a, player_a, DeviceCommand::Play(sound)).unwrap();
    a.start_queue(loud_a).unwrap();
    a.sync().unwrap();

    // 37 ticks of playback (2,960 frames), then B preempts exclusively.
    control.tick_n(37);
    let loud_b = b.create_loud(None).unwrap();
    b.create_vdevice(loud_b, DeviceClass::Output, vec![Attribute::ExclusiveUse]).unwrap();
    b.map_loud(loud_b).unwrap();
    b.sync().unwrap();
    control.tick_n(23); // silence while A is preempted
    b.unmap_loud(loud_b).unwrap();
    b.sync().unwrap();
    control.tick_n(200); // let A finish

    let cap = control.take_captured(0);
    // Strip zeros (pre-roll, preemption gap, post-roll): what remains
    // must be the ramp, complete and in order.
    let nonzero: Vec<i16> = cap.into_iter().filter(|&s| s != 0).collect();
    assert_eq!(nonzero.len(), ramp.len(), "samples lost or duplicated across preemption");
    assert_eq!(nonzero, ramp, "playback did not resume at the exact sample");
    server.shutdown();
}

#[test]
fn seamless_playback_with_fractional_quantum() {
    // A 7.3 ms quantum gives 58.4 frames per tick — every tick boundary
    // falls mid-frame-count. Back-to-back plays must still concatenate
    // exactly.
    let (server, mut conn) = manual_server(7_300);
    let control = server.control();
    control.set_speaker_capture(0, 1 << 20);
    let (loud, player) = play_rig(&mut conn);
    let stype =
        SoundType { encoding: da_proto::types::Encoding::Pcm16, sample_rate: 8000, channels: 1 };
    let total = 6000usize;
    let ramp: Vec<i16> = (0..total).map(|i| i as i16 + 1).collect();
    let cuts = [0usize, 811, 1900, 2857, 4231, total];
    for w in cuts.windows(2) {
        let s = conn.upload_pcm(stype, &ramp[w[0]..w[1]]).unwrap();
        conn.enqueue_cmd(loud, player, DeviceCommand::Play(s)).unwrap();
    }
    conn.start_queue(loud).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();
    control.tick_n(160); // > 6000 frames at 58.4/tick

    let cap = control.take_captured(0);
    let start = cap.iter().position(|&s| s == 1).expect("ramp start");
    assert_eq!(&cap[start..start + total], &ramp[..], "seam error under fractional quantum");
    server.shutdown();
}

#[test]
fn device_time_tracks_ticks_exactly() {
    let (server, conn) = manual_server(10_000);
    let control = server.control();
    assert_eq!(control.device_time(), 0);
    control.tick_n(123);
    assert_eq!(control.device_time(), 123 * 80);
    drop(conn);
    server.shutdown();
}

#[test]
fn immediate_pause_freezes_position_not_time() {
    let (server, mut conn) = manual_server(10_000);
    let control = server.control();
    control.set_speaker_capture(0, 1 << 20);
    let (loud, player) = play_rig(&mut conn);
    let stype =
        SoundType { encoding: da_proto::types::Encoding::Pcm16, sample_rate: 8000, channels: 1 };
    let ramp: Vec<i16> = (1..=4000).map(|i| i as i16).collect();
    let sound = conn.upload_pcm(stype, &ramp).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.sync().unwrap();
    control.tick_n(10); // 800 frames played
    conn.immediate(player, DeviceCommand::Pause).unwrap();
    conn.sync().unwrap();
    control.tick_n(20); // paused: silence, device time advances
    conn.immediate(player, DeviceCommand::Resume).unwrap();
    conn.sync().unwrap();
    control.tick_n(60);
    let cap = control.take_captured(0);
    let nonzero: Vec<i16> = cap.into_iter().filter(|&s| s != 0).collect();
    assert_eq!(nonzero, ramp, "pause/resume lost or duplicated samples");
    server.shutdown();
}
