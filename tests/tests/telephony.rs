//! Telephony through the protocol: dialing, DTMF both directions, busy
//! and no-answer outcomes, CD-quality high-rate playback.

mod common;

use common::{start, start_with_hw};
use da_proto::command::DeviceCommand;
use da_proto::event::{CallState, Event, EventMask, QueueStopReason};
use da_proto::types::{Attribute, DeviceClass, Encoding, SoundType, WireType};
use std::time::Duration;

#[test]
fn outgoing_call_with_dtmf_both_ways() {
    let (server, mut conn) = start();
    let control = server.control();

    let loud = conn.create_loud(None).unwrap();
    let tel = conn.create_vdevice(loud, DeviceClass::Telephone, vec![]).unwrap();
    conn.select_events(tel, EventMask::DEVICE).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();

    let remote = control.add_remote_party("555-2000");
    control.with_party(remote, |p, _| {
        p.auto_answer_after = Some(2000);
        p.send_dtmf("91");
    });

    conn.enqueue(
        loud,
        vec![
            da_proto::QueueEntry::Device {
                vdev: tel,
                cmd: DeviceCommand::Dial("555-2000".into()),
            },
            da_proto::QueueEntry::Device {
                vdev: tel,
                cmd: DeviceCommand::SendDtmf("34".into()),
            },
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();

    // We see dialing then connected.
    conn.wait_event(Duration::from_secs(15), |e| {
        matches!(e, Event::CallProgress { state: CallState::Dialing, .. })
    })
    .unwrap();
    conn.wait_event(Duration::from_secs(15), |e| {
        matches!(e, Event::CallProgress { state: CallState::Connected, .. })
    })
    .unwrap();

    // Their digits reach us as events.
    let mut got = Vec::new();
    while got.len() < 2 {
        match conn.next_event(Duration::from_secs(15)).unwrap() {
            Some(Event::DtmfReceived { digit, .. }) => got.push(digit),
            Some(_) => {}
            None => break,
        }
    }
    assert_eq!(got, b"91".to_vec());

    // Our digits reach them in-band.
    assert!(control.run_until(Duration::from_secs(10), |c| {
        let heard = c.remote_parties[remote].heard();
        let mut det = da_dsp::dtmf::Detector::new(8000);
        det.push(heard) == b"34".to_vec()
            || {
                let all = det.push(&[]);
                all == b"34".to_vec()
            }
    }) || {
        let heard = control.with_party(remote, |p, _| p.heard().to_vec());
        let mut det = da_dsp::dtmf::Detector::new(8000);
        let digits = det.push(&heard);
        digits == b"34".to_vec()
    });

    conn.immediate(tel, DeviceCommand::Stop).unwrap();
    conn.wait_event(Duration::from_secs(15), |e| {
        matches!(e, Event::CallProgress { state: CallState::HungUp, .. })
    })
    .unwrap();
    server.shutdown();
}

#[test]
fn dial_to_busy_number_stops_queue_with_error() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let tel = conn.create_vdevice(loud, DeviceClass::Telephone, vec![]).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.select_events(tel, EventMask::DEVICE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, tel, DeviceCommand::Dial("555-0000".into())).unwrap();
    conn.start_queue(loud).unwrap();
    let stopped = conn
        .wait_event(Duration::from_secs(15), |e| matches!(e, Event::QueueStopped { .. }))
        .unwrap();
    assert!(matches!(stopped, Event::QueueStopped { reason: QueueStopReason::Error, .. }));
    server.shutdown();
}

#[test]
fn no_answer_times_out() {
    let (server, mut conn) = start();
    let control = server.control();
    control.with_core(|c| c.hw.pstn.set_ring_timeout(8000)); // 1 s
    let _remote = control.add_remote_party("555-3000"); // never answers
    let loud = conn.create_loud(None).unwrap();
    let tel = conn.create_vdevice(loud, DeviceClass::Telephone, vec![]).unwrap();
    conn.select_events(tel, EventMask::DEVICE).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, tel, DeviceCommand::Dial("555-3000".into())).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(15), |e| {
        matches!(e, Event::CallProgress { state: CallState::NoAnswer, .. })
    })
    .unwrap();
    server.shutdown();
}

#[test]
fn phone_number_attribute_selects_line() {
    // Two lines; the virtual device pins by number.
    let mut hw = da_hw::registry::HwSpec::desktop();
    hw.devices.push(da_hw::registry::DeviceSpec {
        name: "phone line 2".into(),
        kind: da_hw::registry::DeviceKind::PhoneLine {
            number: "555-0200".into(),
            caller_id: false,
        },
        domains: vec![2],
    });
    let (server, mut conn) = start_with_hw(hw);
    let loud = conn.create_loud(None).unwrap();
    let tel = conn
        .create_vdevice(
            loud,
            DeviceClass::Telephone,
            vec![Attribute::PhoneNumber("555-0200".into())],
        )
        .unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();
    let (_, mapped) = conn.query_vdevice(tel).unwrap();
    // Device ids follow inventory order: line 2 is index 3.
    assert_eq!(mapped, Some(da_proto::DeviceId(3)));
    server.shutdown();
}

#[test]
fn cd_quality_playback_on_hifi_speaker() {
    // The 175 kB/s end of the paper's range (§1.1): 44.1 kHz stereo
    // PCM-16 through the hifi output.
    let (server, mut conn) = start_with_hw(da_hw::registry::HwSpec::desktop_hifi());
    let control = server.control();
    control.set_speaker_capture(1, 400_000); // hifi speaker is index 1

    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn
        .create_vdevice(loud, DeviceClass::Output, vec![Attribute::SampleRate(44_100)])
        .unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();

    // Half a second of stereo 440 Hz.
    let mono = da_dsp::tone::sine(44_100, 440.0, 22_050, 12000);
    let mut stereo = Vec::with_capacity(mono.len() * 2);
    for s in &mono {
        stereo.push(*s);
        stereo.push(*s);
    }
    let sound = conn.upload_pcm(SoundType::CD, &stereo).unwrap();
    let (stype, bytes, frames, _) = conn.query_sound(sound).unwrap();
    assert_eq!(stype.encoding, Encoding::Pcm16);
    assert_eq!(frames, 22_050);
    assert_eq!(bytes, 88_200);

    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(20), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(10), |c| {
        c.hw.speakers[1].captured().len() >= 40_000
    });
    let cap = control.take_captured(1); // interleaved stereo
    let left: Vec<i16> = cap.iter().step_by(2).copied().collect();
    let p440 = da_dsp::analysis::goertzel_power(&left, 44_100, 440.0);
    let p880 = da_dsp::analysis::goertzel_power(&left, 44_100, 880.0);
    assert!(p440 > p880 * 20.0, "440 Hz {p440} vs 880 Hz {p880}");
    server.shutdown();
}

#[test]
fn telephone_quality_sound_reaches_hifi_speaker_resampled() {
    // An 8 kHz sound on the 44.1 kHz output: the wire resamples.
    let (server, mut conn) = start_with_hw(da_hw::registry::HwSpec::desktop_hifi());
    let control = server.control();
    control.set_speaker_capture(1, 400_000);
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn
        .create_vdevice(loud, DeviceClass::Output, vec![Attribute::SampleRate(44_100)])
        .unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();
    let sound = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 440.0, 8000, 12000))
        .unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(20), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(10), |c| {
        c.hw.speakers[1].captured().len() >= 80_000
    });
    let cap = control.take_captured(1);
    let left: Vec<i16> = cap.iter().step_by(2).copied().collect();
    let p440 = da_dsp::analysis::goertzel_power(&left, 44_100, 440.0);
    assert!(p440 > 100_000.0, "resampled tone missing: {p440}");
    server.shutdown();
}
