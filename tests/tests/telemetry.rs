//! End-to-end telemetry: the introspection opcodes round-trip live
//! numbers, per-connection accounting matches the client's own view,
//! and engine stats are stamped with their capture tick.

mod common;

use da_alib::Connection;
use da_proto::request::Request;
use da_server::{AudioServer, ServerConfig};
use da_toolkit::builders::PlayLoud;
use da_toolkit::sounds::SoundHandle;

/// A manual-tick server plus a connected client, so tick counts in the
/// assertions are exact.
fn start_manual() -> (AudioServer, Connection) {
    let config = ServerConfig { manual_ticks: true, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let conn = Connection::establish(server.connect_pipe(), "itest").expect("connect");
    (server, conn)
}

#[test]
fn query_server_stats_round_trips_live_counters() {
    let (server, mut conn) = start_manual();
    let control = server.control();

    // Scripted workload: one playing LOUD, twenty engine ticks, then a
    // second LOUD to force a plan rebuild, twenty more ticks.
    let play = PlayLoud::build(&mut conn, vec![]).expect("play loud");
    let pcm = da_dsp::tone::sine(8000, 440.0, 4000, 12000);
    let sound = SoundHandle::from_pcm(&mut conn, 8000, &pcm).expect("upload");
    play.play(&mut conn, sound.id).expect("play");
    conn.sync().expect("sync");
    control.tick_n(20);
    let _extra = PlayLoud::build(&mut conn, vec![]).expect("second loud");
    conn.sync().expect("sync");
    control.tick_n(20);

    let stats = conn.query_server_stats().expect("stats");

    // Dispatch accounting: the per-opcode vector covers every opcode,
    // sums to the total dispatch counter, and the workload's opcodes
    // registered.
    assert_eq!(stats.per_opcode.len(), Request::COUNT);
    let per_opcode_sum: u64 = stats.per_opcode.iter().sum();
    assert!(per_opcode_sum > 0);
    assert_eq!(Some(per_opcode_sum), stats.counter("dispatch_requests_total"));
    assert!(stats.per_opcode[Request::Sync.opcode() as usize] >= 2);

    // Engine accounting: every tick counted and timed, percentiles
    // non-zero (sub-microsecond ticks are clamped up to 1).
    assert_eq!(stats.captured_at_tick, 40);
    assert_eq!(stats.counter("engine_ticks_total"), Some(40));
    let tick = stats.histogram("engine_tick_us").expect("tick histogram");
    assert_eq!(tick.count, 40);
    assert!(tick.percentile(0.50) >= 1);
    assert!(tick.percentile(0.99) >= tick.percentile(0.50));

    // Plan cache: consulted every tick, rebuilt at least twice (initial
    // map plus the second LOUD).
    assert_eq!(stats.counter("plan_cache_lookups_total"), Some(40));
    let rebuilds = stats.counter("plan_cache_rebuilds_total").expect("rebuilds");
    assert!((2..40).contains(&rebuilds), "rebuilds = {rebuilds}");

    // Wire accounting: both directions moved bytes and frames.
    for name in
        ["wire_bytes_in_total", "wire_bytes_out_total", "wire_frames_in_total", "wire_frames_out_total"]
    {
        assert!(stats.counter(name).unwrap_or(0) > 0, "{name} is zero");
    }
    assert_eq!(stats.gauge("clients_connected"), Some(1));

    server.shutdown();
}

#[test]
fn list_clients_matches_client_side_wire_stats() {
    let (server, mut builder) = common::start();
    let mut watcher = common::connect(&server, "watcher");

    let _play = PlayLoud::build(&mut builder, vec![]).expect("play loud");
    builder.sync().expect("sync");

    let clients = watcher.list_clients().expect("list");
    assert_eq!(clients.len(), 2);
    let b = clients.iter().find(|c| c.name == "itest").expect("builder row");
    let w = clients.iter().find(|c| c.name == "watcher").expect("watcher row");

    // The server's per-connection counters agree with the client
    // library's own wire accounting.
    let local = builder.wire_stats();
    assert_eq!(b.requests, local.requests_sent);
    assert_eq!(b.bytes_in, local.bytes_sent);
    assert_eq!(b.replies, local.replies_received);
    assert!(b.bytes_out >= local.bytes_received);

    // Resource ownership is attributed to the right connection.
    assert!(b.louds >= 1 && b.vdevs >= 2 && b.wires >= 1);
    assert_eq!(w.louds, 0);
    assert!(w.requests >= 1);

    server.shutdown();
}

#[test]
fn engine_stats_are_stamped_with_capture_tick() {
    let (server, mut conn) = start_manual();
    let control = server.control();

    control.tick_n(7);
    assert_eq!(control.stats().captured_at_tick, 7);
    control.tick_n(5);
    assert_eq!(control.stats().captured_at_tick, 12);

    // The protocol snapshot carries the same stamp.
    let stats = conn.query_server_stats().expect("stats");
    assert_eq!(stats.captured_at_tick, 12);

    server.shutdown();
}
