//! Pinned interleaving counterexamples from the deterministic scheduler
//! (`da_modelcheck::sched`, DESIGN.md §14).
//!
//! Each test replays a concrete schedule — actor indices into the
//! modeled connection-plane cast — through `sched::replay`, which runs
//! the lock shim, the aliasing oracles (A1–A3), the deadlock oracle
//! (D1), and the full validate catalog after every applied action. The
//! schedules here are the minimized counterexamples the explorer
//! surfaced for the seeded protocol faults while this harness was
//! built; they must stay pinned even if exploration budgets or the
//! random-walk seed change.

use da_modelcheck::sched::{explore_interleavings, replay, SchedConfig, SchedFault};

/// The minimized wrong-stripe counterexample: three steps of `fast-b`
/// (core read, the *wrong* stripe, exclusive view of shard 1), after
/// which the serializing replay tail walks `fast-a` into its own
/// shard-1 view while `fast-b`'s is still live — the A1 overlap the
/// debug borrow sanitizer panics on at runtime.
#[test]
fn minimal_wrong_stripe_schedule_breaches_a1() {
    let breach = replay(SchedFault::WrongStripe, &[1, 1, 1])
        .expect("wrong-stripe model must alias on this schedule");
    assert_eq!(breach.oracle, "A1", "{}", breach.detail);
    assert!(breach.detail.contains("shard 1"), "{}", breach.detail);
}

/// The same model fully serialized is green: the wrong stripe is only a
/// bug when the two fast-path windows actually overlap, which is what
/// makes it an *interleaving* counterexample rather than a static one.
#[test]
fn wrong_stripe_serialized_is_clean() {
    assert!(replay(SchedFault::WrongStripe, &[]).is_none());
}

/// The read→write upgrade deadlocks unconditionally: whatever the
/// schedule, the slow-path writer ends up parked behind its own core
/// read guard (non-upgradable RwLock), so even the empty schedule's
/// serializing tail reports D1 and names the upgrade.
#[test]
fn read_upgrade_deadlocks_from_any_schedule() {
    let breach = replay(SchedFault::ReadUpgrade, &[])
        .expect("upgrade model must deadlock");
    assert_eq!(breach.oracle, "D1", "{}", breach.detail);
    assert!(breach.detail.contains("read->write upgrade"), "{}", breach.detail);
}

/// The CI configuration (fixed seed, no fault) stays green across at
/// least a thousand distinct interleavings — the acceptance bar for the
/// modeled plane.
#[test]
fn ci_seed_explores_a_thousand_clean_interleavings() {
    let report = explore_interleavings(&SchedConfig {
        fault: SchedFault::None,
        budget: 1_100,
        seed: 0,
    });
    assert!(report.counterexample.is_none(), "{:?}", report.counterexample);
    assert!(report.interleavings >= 1_000, "only {}", report.interleavings);
}
