//! The steady-state engine tick is allocation-free, and the pooled data
//! plane preserves the paper's seamlessness guarantees.
//!
//! The RT sentinel allocator (`da_server::rt`, DESIGN.md §16) proves the
//! tentpole claim: after a few warm-up ticks stabilise the scratch-buffer
//! capacities and the cached route plan, a tick performs zero heap
//! allocations — measured through [`rt::count_allocs`], the same gate the
//! sentinel uses to panic on un-justified tick-path allocations across
//! the whole debug suite. The fast-path tests then pin the dispatch-side
//! half: `exec_fast` on a pure opcode allocates nothing. The E2/E4-style
//! tests re-verify "not a single dropped or inserted sample" (paper
//! §6.2) on top of the pooled engine.

use da_alib::Connection;
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::types::{DeviceClass, Encoding, SoundType, WireType};
use da_server::rt;
use da_server::{AudioServer, ServerConfig};

fn manual_server() -> (AudioServer, Connection) {
    let config = ServerConfig { manual_ticks: true, quantum_us: 10_000, ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let conn = Connection::establish(server.connect_pipe(), "zero-alloc").expect("connect");
    (server, conn)
}

#[test]
fn steady_state_tick_is_allocation_free() {
    let (server, mut conn) = manual_server();
    let control = server.control();
    // The microphone hears a continuous tone so the full produce → route
    // → mix → consume path carries real audio every tick.
    control.with_core(|c| {
        c.hw.microphones[0].set_source(da_hw::codec::SignalSource::Sine {
            freq: 440.0,
            amplitude: 8000,
        })
    });

    // mic → mixer ← player, mixer → speaker: continuous production, an
    // intermediate device, and a long durational Play all at once.
    let loud = conn.create_loud(None).unwrap();
    let input = conn.create_vdevice(loud, DeviceClass::Input, vec![]).unwrap();
    let mixer = conn.create_vdevice(loud, DeviceClass::Mixer, vec![]).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(input, 0, mixer, 0, WireType::Any).unwrap();
    conn.create_wire(player, 0, mixer, 1, WireType::Any).unwrap();
    conn.create_wire(mixer, 0, output, 0, WireType::Any).unwrap();

    let stype = SoundType { encoding: Encoding::Pcm16, sample_rate: 8000, channels: 1 };
    let pcm: Vec<i16> = (0..40_000).map(|i| (i % 3000) as i16).collect();
    let sound = conn.upload_pcm(stype, &pcm).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();

    // Warm-up: builds the route plan and grows every pooled buffer and
    // port deque to its steady-state capacity.
    control.tick_n(50);

    let rebuilds_before = control.stats().plan_rebuilds;
    let allocs = rt::count_allocs(|| control.tick_n(200));
    let rebuilds_after = control.stats().plan_rebuilds;

    assert_eq!(allocs, 0, "steady-state ticks allocated {allocs} times");
    assert_eq!(
        rebuilds_after, rebuilds_before,
        "route plan was rebuilt during steady state"
    );
    assert_eq!(control.stats().ticks, 250);
    server.shutdown();
}

#[test]
fn plan_rebuild_happens_once_per_topology_change() {
    let (server, mut conn) = manual_server();
    let control = server.control();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    let wire = conn.create_wire(player, 0, output, 0, WireType::Any).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();

    control.tick_n(10);
    let base = control.stats().plan_rebuilds;
    control.tick_n(10);
    assert_eq!(control.stats().plan_rebuilds, base, "rebuild without topology change");

    conn.destroy_wire(wire).unwrap();
    conn.sync().unwrap();
    control.tick_n(10);
    assert_eq!(control.stats().plan_rebuilds, base + 1, "one change, one rebuild");
    server.shutdown();
}

#[test]
fn back_to_back_plays_remain_seamless() {
    // E2 on the pooled engine: a staircase split into unevenly sized
    // sounds queued back-to-back must reach the speaker without a single
    // dropped or inserted sample (paper §6.2).
    let (server, mut conn) = manual_server();
    let control = server.control();
    control.set_speaker_capture(0, 1 << 20);

    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, output, 0, WireType::Any).unwrap();

    let stype = SoundType { encoding: Encoding::Pcm16, sample_rate: 8000, channels: 1 };
    let total = 8000usize;
    let ramp: Vec<i16> = (0..total).map(|i| i as i16 + 1).collect();
    let cuts = [0usize, 137, 1603, 2400, 4777, 6001, total];
    for w in cuts.windows(2) {
        let s = conn.upload_pcm(stype, &ramp[w[0]..w[1]]).unwrap();
        conn.enqueue_cmd(loud, player, DeviceCommand::Play(s)).unwrap();
    }
    conn.start_queue(loud).unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();
    control.tick_n(120);

    let cap = control.take_captured(0);
    let start = cap.iter().position(|&s| s == 1).expect("ramp start");
    assert_eq!(
        &cap[start..start + total],
        &ramp[..],
        "dropped or inserted samples across play seams"
    );
    server.shutdown();
}

#[test]
fn play_record_transition_remains_seamless() {
    // E4 on the pooled engine: recording must begin at exactly the
    // microphone sample where playback ends, even when the seam falls
    // mid-tick (paper §6.2).
    for play_frames in [777u64, 1234] {
        let (server, mut conn) = manual_server();
        let control = server.control();
        // The microphone hears an index ramp: sample i has value i.
        let ramp: Vec<i16> = (0..32_000).map(|i| i as i16).collect();
        control.with_core(|c| {
            c.hw.microphones[0].set_source(da_hw::codec::SignalSource::Samples(ramp))
        });

        let loud = conn.create_loud(None).unwrap();
        let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
        let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
        let input = conn.create_vdevice(loud, DeviceClass::Input, vec![]).unwrap();
        let recorder = conn.create_vdevice(loud, DeviceClass::Recorder, vec![]).unwrap();
        conn.create_wire(player, 0, output, 0, WireType::Any).unwrap();
        conn.create_wire(input, 0, recorder, 0, WireType::Any).unwrap();

        let stype = SoundType { encoding: Encoding::Pcm16, sample_rate: 8000, channels: 1 };
        let tone: Vec<i16> = vec![1000; play_frames as usize];
        let tone = conn.upload_pcm(stype, &tone).unwrap();
        let rec_sound = conn.create_sound(stype).unwrap();
        conn.enqueue_cmd(loud, player, DeviceCommand::Play(tone)).unwrap();
        conn.enqueue_cmd(
            loud,
            recorder,
            DeviceCommand::Record(rec_sound, RecordTermination::MaxFrames(2000)),
        )
        .unwrap();
        conn.start_queue(loud).unwrap();
        // Mapping last aligns queue start with the first microphone pull.
        conn.map_loud(loud).unwrap();
        conn.sync().unwrap();
        control.tick_n(play_frames / 80 + 40);

        let data = conn.read_sound_all(rec_sound).unwrap();
        let recorded = da_alib::connection::decode_from(stype, &data);
        assert_eq!(recorded.len(), 2000, "recording truncated");
        assert_eq!(
            recorded[0] as u64, play_frames,
            "recording did not start at the exact seam sample"
        );
        assert!(
            recorded.windows(2).all(|w| w[1] as i64 - w[0] as i64 == 1),
            "recording is not internally continuous"
        );
        server.shutdown();
    }
}

#[test]
fn fast_path_sync_dispatch_is_allocation_free() {
    // The dispatch-side twin of `steady_state_tick_is_allocation_free`:
    // a pure opcode (Sync) through the sharded fast path must not touch
    // the allocator inside `exec_fast`. The count-mode guard inside
    // `try_dispatch` tallies into the calling thread, so the request is
    // driven synchronously through `ServerControl::fast_dispatch` rather
    // than the connection plane.
    let (server, mut conn) = manual_server();
    let control = server.control();
    // A realistically populated server, so map lookups are not trivially
    // empty.
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, output, 0, WireType::Any).unwrap();
    conn.sync().unwrap();

    let client = control.with_core(|c| {
        da_proto::ids::ClientId(*c.clients.keys().next().expect("one client"))
    });

    // Warm-up dispatch: first use may fault in lazy telemetry state.
    assert!(control.fast_dispatch(client, 9_000, &da_proto::request::Request::Sync));

    let before = rt::scope_allocs();
    for seq in 0..50u32 {
        let handled =
            control.fast_dispatch(client, 10_000 + seq, &da_proto::request::Request::Sync);
        assert!(handled, "Sync must stay on the fast path");
    }
    let delta = rt::scope_allocs() - before;
    assert_eq!(delta, 0, "exec_fast allocated {delta} times across 50 Sync dispatches");

    // Cross-check that the tally is live at all: GetServerInfo clones the
    // vendor string inside `exec_fast`, which must register in debug
    // builds (release builds compile the sentinel out and tally 0).
    let before = rt::scope_allocs();
    assert!(control.fast_dispatch(
        client,
        20_000,
        &da_proto::request::Request::GetServerInfo
    ));
    let delta = rt::scope_allocs() - before;
    if rt::sentinel_active() {
        assert!(delta >= 1, "vendor-string clone must tally");
    } else {
        assert_eq!(delta, 0);
    }
    server.shutdown();
}

#[cfg(debug_assertions)]
#[test]
fn armed_tick_panics_on_injected_allocation() {
    // Regression guard for the sentinel itself: an allocation smuggled
    // into an armed scope without an `AllocRelax` justification must
    // panic in debug builds. (The engine arms exactly this guard at the
    // top of every tick.)
    let result = std::panic::catch_unwind(|| {
        let _armed = rt::ScopedAllocGuard::arm();
        // An un-justified tick-path allocation.
        let leak: Vec<u8> = Vec::with_capacity(256);
        std::hint::black_box(&leak);
    });
    assert!(result.is_err(), "sentinel must panic on un-relaxed allocation");
}

#[test]
fn sentinel_is_compiled_out_of_release() {
    // In release builds the guards are unit structs, no global allocator
    // is installed, and every probe reads zero; in debug builds the
    // sentinel must report active (CI's debug step depends on it).
    assert_eq!(rt::sentinel_active(), cfg!(debug_assertions));
    if !rt::sentinel_active() {
        let n = rt::count_allocs(|| {
            let v: Vec<u64> = Vec::with_capacity(64);
            std::hint::black_box(&v);
        });
        assert_eq!(n, 0, "release build must not observe allocations");
        let before = rt::scope_allocs();
        {
            let _g = rt::ScopedAllocGuard::count();
            let v: Vec<u64> = Vec::with_capacity(64);
            std::hint::black_box(&v);
        }
        assert_eq!(rt::scope_allocs(), before);
    }
}
