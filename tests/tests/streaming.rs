//! Client-supplied real-time sound data (paper §5.6, §6.2).
//!
//! "When an application is providing data in real-time there is the
//! possibility that the application or the application's source ... will
//! not have the data when it is needed." The protocol lets the client
//! trade buffering for latency; the server substitutes silence and
//! reports underruns when the client falls behind.

mod common;

use common::start;
use da_proto::command::DeviceCommand;
use da_proto::event::{Event, EventMask};
use da_proto::types::{DeviceClass, SoundType, WireType};
use std::time::Duration;

fn play_rig(
    conn: &mut da_alib::Connection,
) -> (da_proto::LoudId, da_proto::VDeviceId) {
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.select_events(player, EventMask::DEVICE).unwrap();
    conn.map_loud(loud).unwrap();
    (loud, player)
}

#[test]
fn starved_stream_underruns_and_recovers() {
    let (server, mut conn) = start();
    let (loud, player) = play_rig(&mut conn);

    // A streaming sound with almost no initial data.
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    let chunk = da_alib::connection::encode_for(
        SoundType::TELEPHONE,
        &da_dsp::tone::sine(8000, 500.0, 400, 10000),
    );
    conn.write_sound(sound, &chunk, false).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();

    // The engine free-runs in virtual time, so it exhausts 50 ms of data
    // immediately and must underrun.
    let under = conn
        .wait_event(Duration::from_secs(10), |e| matches!(e, Event::SoundUnderrun { .. }))
        .unwrap();
    match under {
        Event::SoundUnderrun { missing_frames, .. } => assert!(missing_frames > 0),
        _ => unreachable!(),
    }

    // Feed the rest and close the stream: playback completes.
    conn.write_sound(sound, &chunk, true).unwrap();
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    server.shutdown();
}

#[test]
fn complete_sound_never_underruns() {
    let (server, mut conn) = start();
    let (loud, player) = play_rig(&mut conn);
    let sound = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 500.0, 16_000, 10000))
        .unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    let mut saw_underrun = false;
    loop {
        match conn.next_event(Duration::from_secs(15)).unwrap() {
            Some(Event::SoundUnderrun { .. }) => saw_underrun = true,
            Some(Event::CommandDone { .. }) => break,
            Some(_) => {}
            None => panic!("playback never finished"),
        }
    }
    assert!(!saw_underrun, "a complete sound must play without underruns");
    server.shutdown();
}

#[test]
fn generous_prebuffer_prevents_underrun() {
    // The buffering/latency trade-off (paper §6.2): prebuffering a large
    // window before starting playback absorbs a slow producer.
    let (server, mut conn) = start();
    let (loud, player) = play_rig(&mut conn);

    let pcm = da_dsp::tone::sine(8000, 500.0, 24_000, 10000); // 3 s total
    let encoded = da_alib::connection::encode_for(SoundType::TELEPHONE, &pcm);
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    // Prebuffer 2 s, then trickle the rest quickly while playing.
    conn.write_sound(sound, &encoded[..16_000], false).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    for chunk in encoded[16_000..].chunks(4000) {
        conn.write_sound(sound, chunk, false).unwrap();
    }
    conn.write_sound(sound, &[], true).unwrap();

    let mut underrun_frames = 0u64;
    loop {
        match conn.next_event(Duration::from_secs(15)).unwrap() {
            Some(Event::SoundUnderrun { missing_frames, .. }) => {
                underrun_frames += missing_frames;
            }
            Some(Event::CommandDone { .. }) => break,
            Some(_) => {}
            None => panic!("playback never finished"),
        }
    }
    assert_eq!(underrun_frames, 0, "prebuffered stream still underran");
    server.shutdown();
}

#[test]
fn write_after_eof_rejected() {
    let (server, mut conn) = start();
    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    conn.write_sound(sound, &[0xFF; 10], true).unwrap();
    conn.write_sound(sound, &[0xFF; 10], false).unwrap();
    conn.sync().unwrap();
    let (_, err) = conn.take_error().expect("write after eof must fail");
    assert_eq!(err.code, da_proto::ErrorCode::BadMatch);
    server.shutdown();
}

#[test]
fn catalog_sound_immutable() {
    let (server, mut conn) = start();
    let beep = conn.open_catalog_sound("system", "beep").unwrap();
    conn.write_sound(beep, &[0xFF; 10], false).unwrap();
    conn.sync().unwrap();
    let (_, err) = conn.take_error().expect("catalogue writes must fail");
    assert_eq!(err.code, da_proto::ErrorCode::BadMatch);
    server.shutdown();
}
