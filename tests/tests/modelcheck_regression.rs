//! Regression traces pinned from the bounded model checker.
//!
//! Each test replays a concrete action trace through
//! `da_modelcheck::explore::replay`, which runs the full oracle
//! (`core::validate` structural invariants plus the temporal T1
//! "a non-`Started` queue never advances during a tick" check from
//! DESIGN.md §11) after every step. The traces here are the minimized
//! counterexamples and near-miss edges the checker surfaced while this
//! harness was built; they must stay pinned even if exploration budgets
//! or seed topologies change.

use da_modelcheck::explore::{replay, Fault};
use da_modelcheck::{Action, Root, Seed};

/// The minimized T1 counterexample: start the queue, unmap the LOUD
/// (server-pausing the queue, paper §5.5), then tick. With the §5.5
/// guard simulated away (`Fault::AdvanceServerPaused`) the paused queue
/// advances during the tick and the temporal oracle must flag it at
/// exactly the `Tick` step.
#[test]
fn minimal_t1_counterexample_is_caught() {
    let trace = [Action::Start(Root::A), Action::Unmap(Root::A), Action::Tick];
    let (_, breach) = replay(Seed::Solo, Fault::AdvanceServerPaused, &trace);
    let breach = breach.expect("faulted engine must violate T1 on this trace");
    assert_eq!(breach.step, 2, "the violation lands on the Tick step");
    assert!(
        breach.breaches.iter().any(|b| b.invariant == "T1"),
        "expected a T1 breach, got: {:?}",
        breach.breaches
    );
}

/// The same trace on the real engine is clean: the §5.5 guard holds and
/// a `ServerPaused` queue is frozen across ticks.
#[test]
fn minimal_t1_trace_is_clean_without_the_fault() {
    let trace = [Action::Start(Root::A), Action::Unmap(Root::A), Action::Tick];
    let (_, breach) = replay(Seed::Solo, Fault::None, &trace);
    assert!(breach.is_none(), "real engine breached: {breach:?}");
}

/// Server pause arriving while a `CoBegin` bracket is still open: the
/// queue holds an unbalanced group when the LOUD is unmapped. The
/// freeze must preserve the half-built group; remapping and closing the
/// bracket later must leave every invariant intact. This is the edge
/// the ISSUE singled out for pinning.
#[test]
fn server_pause_during_open_cobegin_stays_clean() {
    let trace = [
        Action::EnqueueOpen(Root::A),
        Action::Start(Root::A),
        Action::Unmap(Root::A),
        Action::Tick,
        Action::Tick,
        Action::Map(Root::A),
        Action::EnqueueClose(Root::A),
        Action::Tick,
        Action::Tick,
    ];
    let (_, breach) = replay(Seed::Solo, Fault::None, &trace);
    assert!(breach.is_none(), "open-bracket server pause breached: {breach:?}");
}

/// Duet preemption soak: both roots contend for the exclusive-use
/// speaker, so mapping B preempts A (server pause), and the preempted
/// queue must stay frozen through ticks until A is raised back.
#[test]
fn duet_preemption_trace_is_clean() {
    let trace = [
        Action::Start(Root::A),
        Action::Map(Root::B),
        Action::Start(Root::B),
        Action::Tick,
        Action::Tick,
        Action::Raise(Root::A),
        Action::Tick,
        Action::Stop(Root::A),
        Action::Tick,
    ];
    let (_, breach) = replay(Seed::Duet, Fault::None, &trace);
    assert!(breach.is_none(), "duet preemption trace breached: {breach:?}");
}

/// Manager-redirect soak: approvals outstanding when the manager
/// connection drops must be cleaned up without tripping any invariant.
#[test]
fn manager_crash_with_pending_approvals_is_clean() {
    let trace = [
        Action::Unmap(Root::A),
        Action::Map(Root::A),
        Action::Tick,
        Action::DisconnectManager,
        Action::Tick,
        Action::Start(Root::A),
        Action::Tick,
    ];
    let (_, breach) = replay(Seed::Manager, Fault::None, &trace);
    assert!(breach.is_none(), "manager crash trace breached: {breach:?}");
}
