//! Device-class behaviour through the protocol: speech synthesis and
//! recognition, music, crossbar, DSP, mixers (paper §5.1).

mod common;

use common::start;
use da_proto::command::{CrossbarRoute, DeviceCommand, Note};
use da_proto::event::{Event, EventMask};
use da_proto::types::{Attribute, DeviceClass, SoundType, WireType};
use std::time::Duration;

#[test]
fn speech_synthesizer_speaks_to_speaker() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 400_000);

    let loud = conn.create_loud(None).unwrap();
    let synth = conn.create_vdevice(loud, DeviceClass::SpeechSynthesizer, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(synth, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();

    // Configure the voice, then speak.
    conn.enqueue(
        loud,
        vec![
            da_proto::QueueEntry::Device {
                vdev: synth,
                cmd: DeviceCommand::SetVoiceValues { rate_wpm: 200, pitch_hz: 110 },
            },
            da_proto::QueueEntry::Device {
                vdev: synth,
                cmd: DeviceCommand::SpeakText("testing one two three".into()),
            },
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();
    // Both commands complete.
    for _ in 0..2 {
        conn.wait_event(Duration::from_secs(20), |e| matches!(e, Event::CommandDone { .. }))
            .unwrap();
    }
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() > 4000);
    let cap = control.take_captured(0);
    assert!(da_dsp::analysis::rms(&cap) > 200.0, "no speech reached the speaker");
    server.shutdown();
}

#[test]
fn exception_list_changes_synthesis() {
    let (server, mut conn) = start();
    let control = server.control();
    let loud = conn.create_loud(None).unwrap();
    let synth = conn.create_vdevice(loud, DeviceClass::SpeechSynthesizer, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(synth, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();

    control.set_speaker_capture(0, 400_000);
    conn.enqueue_cmd(loud, synth, DeviceCommand::SpeakText("vax".into())).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(20), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() > 1000);
    let plain = control.take_captured(0);

    conn.immediate(
        synth,
        DeviceCommand::SetExceptionList(vec![(
            "vax".to_string(),
            "v ae ae ae ae k s s s s".to_string(),
        )]),
    )
    .unwrap();
    conn.enqueue_cmd(loud, synth, DeviceCommand::SpeakText("vax".into())).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(20), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() > 1000);
    let custom = control.take_captured(0);
    let plain_len = plain.iter().filter(|&&s| s != 0).count();
    let custom_len = custom.iter().filter(|&&s| s != 0).count();
    assert!(
        custom_len > plain_len + 1000,
        "exception pronunciation should be longer: {custom_len} vs {plain_len}"
    );
    server.shutdown();
}

#[test]
fn recognizer_trained_over_protocol_recognises_microphone() {
    let (server, mut conn) = start();
    let control = server.control();

    // Training material synthesized client-side, uploaded as sounds.
    let tts = da_synth::tts::Synthesizer::new(8000);
    let yes = conn.upload_pcm(SoundType::TELEPHONE, &tts.speak("yes")).unwrap();
    let no = conn.upload_pcm(SoundType::TELEPHONE, &tts.speak("no")).unwrap();

    let loud = conn.create_loud(None).unwrap();
    let input = conn.create_vdevice(loud, DeviceClass::Input, vec![]).unwrap();
    let recog = conn.create_vdevice(loud, DeviceClass::SpeechRecognizer, vec![]).unwrap();
    conn.create_wire(input, 0, recog, 0, WireType::Any).unwrap();
    conn.select_events(recog, EventMask::DEVICE).unwrap();

    conn.immediate(recog, DeviceCommand::Train { word: "yes".into(), template: yes }).unwrap();
    conn.immediate(recog, DeviceCommand::Train { word: "no".into(), template: no }).unwrap();
    conn.immediate(
        recog,
        DeviceCommand::SetVocabulary(vec!["yes".into(), "no".into()]),
    )
    .unwrap();
    conn.map_loud(loud).unwrap();
    conn.sync().unwrap();

    // The user says "no" into the microphone (with endpoint silence).
    let mut utterance = vec![0i16; 2400];
    utterance.extend(tts.speak("no"));
    utterance.extend(std::iter::repeat_n(0i16, 8000));
    control.speak_into_microphone(0, &utterance);

    let ev = conn
        .wait_event(Duration::from_secs(20), |e| matches!(e, Event::WordRecognized { .. }))
        .unwrap();
    match ev {
        Event::WordRecognized { word, score, .. } => {
            assert_eq!(word, "no");
            assert!(score > 300, "score {score}");
        }
        _ => unreachable!(),
    }
    server.shutdown();
}

#[test]
fn save_vocabulary_lands_in_catalog() {
    let (server, mut conn) = start();
    let tts = da_synth::tts::Synthesizer::new(8000);
    let yes = conn.upload_pcm(SoundType::TELEPHONE, &tts.speak("yes")).unwrap();
    let loud = conn.create_loud(None).unwrap();
    let recog = conn.create_vdevice(loud, DeviceClass::SpeechRecognizer, vec![]).unwrap();
    conn.immediate(recog, DeviceCommand::Train { word: "yes".into(), template: yes }).unwrap();
    conn.immediate(recog, DeviceCommand::SaveVocabulary("main".into())).unwrap();
    conn.sync().unwrap();
    let names = conn.list_catalog("vocabularies").unwrap();
    assert_eq!(names, vec!["main".to_string()]);
    server.shutdown();
}

#[test]
fn music_synthesizer_plays_notes() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 200_000);
    let loud = conn.create_loud(None).unwrap();
    let music = conn.create_vdevice(loud, DeviceClass::MusicSynthesizer, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(music, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();
    conn.enqueue(
        loud,
        vec![
            da_proto::QueueEntry::Device {
                vdev: music,
                cmd: DeviceCommand::SetVoice("square".into()),
            },
            da_proto::QueueEntry::Device {
                vdev: music,
                cmd: DeviceCommand::PlayNote(Note { note: 69, velocity: 100, duration_ms: 500 }),
            },
            da_proto::QueueEntry::Device {
                vdev: music,
                cmd: DeviceCommand::PlayNote(Note { note: 76, velocity: 100, duration_ms: 500 }),
            },
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();
    for _ in 0..3 {
        conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
            .unwrap();
    }
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 8000);
    let cap = control.take_captured(0);
    let start = cap.iter().position(|&s| s != 0).unwrap_or(0);
    let first = &cap[start..start + 3500];
    let second = &cap[start + 4200..start + 7500];
    assert!(da_dsp::analysis::goertzel_power(first, 8000, 440.0) > 100_000.0);
    let e4 = da_synth::music::note_frequency(76);
    assert!(da_dsp::analysis::goertzel_power(second, 8000, e4) > 100_000.0);
    server.shutdown();
}

#[test]
fn crossbar_routes_and_reroutes() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 300_000);
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let xbar = conn
        .create_vdevice(
            loud,
            DeviceClass::Crossbar,
            vec![Attribute::SinkPorts(2), Attribute::SourcePorts(2)],
        )
        .unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, xbar, 0, WireType::Any).unwrap();
    conn.create_wire(xbar, 1, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.map_loud(loud).unwrap();

    let tone = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 500.0, 8000, 10000))
        .unwrap();

    // Without a route, nothing reaches the output.
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(tone)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    let silent = control.take_captured(0);
    assert!(da_dsp::analysis::rms(&silent) < 50.0, "unrouted crossbar leaked audio");

    // Connect input 0 → output 1 and play again.
    conn.immediate(
        xbar,
        DeviceCommand::SetRoutes(vec![CrossbarRoute { input: 0, output: 1, connected: true }]),
    )
    .unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(tone)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 4000);
    let routed = control.take_captured(0);
    assert!(
        da_dsp::analysis::goertzel_power(&routed, 8000, 500.0) > 100_000.0,
        "routed crossbar did not pass audio"
    );
    server.shutdown();
}

#[test]
fn dsp_device_applies_gain_inline() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 200_000);
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let dsp = conn.create_vdevice(loud, DeviceClass::Dsp, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, dsp, 0, WireType::Any).unwrap();
    conn.create_wire(dsp, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.immediate(dsp, DeviceCommand::ChangeGain(250)).unwrap();
    conn.map_loud(loud).unwrap();
    let tone = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 500.0, 8000, 12000))
        .unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(tone)).unwrap();
    conn.start_queue(loud).unwrap();
    conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 4000);
    let cap = control.take_captured(0);
    let start = cap.iter().position(|&s| s.unsigned_abs() > 10).unwrap_or(0);
    let rms = da_dsp::analysis::rms(&cap[start..start + 4000]);
    // 12000-peak sine has RMS ~8485; at gain 0.25 expect ~2120.
    assert!((1600.0..2800.0).contains(&rms), "dsp gain not applied: rms {rms}");
    server.shutdown();
}

#[test]
fn mixer_percentages_weight_inputs() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 200_000);
    let loud = conn.create_loud(None).unwrap();
    let p1 = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let p2 = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let mixer = conn.create_vdevice(loud, DeviceClass::Mixer, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(p1, 0, mixer, 0, WireType::Any).unwrap();
    conn.create_wire(p2, 0, mixer, 1, WireType::Any).unwrap();
    conn.create_wire(mixer, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    // Input 1 at 10%: the 1100 Hz tone should be strongly attenuated.
    conn.immediate(mixer, DeviceCommand::SetMixGain { input: 1, percent: 10 }).unwrap();
    conn.map_loud(loud).unwrap();
    let a = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 400.0, 8000, 10000))
        .unwrap();
    let b = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 1100.0, 8000, 10000))
        .unwrap();
    conn.enqueue(
        loud,
        vec![
            da_proto::QueueEntry::CoBegin,
            da_proto::QueueEntry::Device { vdev: p1, cmd: DeviceCommand::Play(a) },
            da_proto::QueueEntry::Device { vdev: p2, cmd: DeviceCommand::Play(b) },
            da_proto::QueueEntry::CoEnd,
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();
    for _ in 0..2 {
        conn.wait_event(Duration::from_secs(15), |e| matches!(e, Event::CommandDone { .. }))
            .unwrap();
    }
    control.run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= 8000);
    let cap = control.take_captured(0);
    let p400 = da_dsp::analysis::goertzel_power(&cap, 8000, 400.0);
    let p1100 = da_dsp::analysis::goertzel_power(&cap, 8000, 1100.0);
    // Amplitude ratio 10:1 → power ratio ~100:1.
    assert!(p400 > p1100 * 30.0, "mix weights wrong: {p400} vs {p1100}");
    server.shutdown();
}
