//! Test-only crate; see `tests/` for the integration suites.
