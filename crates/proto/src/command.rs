//! Device commands and command-queue entries.
//!
//! A device command is issued in either **queued** or **immediate** mode
//! (paper §5.1). Commands such as `Play` and `Record` must be synchronised
//! with other commands and can only be queued; commands such as `Stop` and
//! `ChangeGain` may be issued in either mode, and in immediate mode take
//! effect instantaneously — an immediate `Stop` aborts a queued command in
//! progress.
//!
//! Queues additionally accept four pure synchronisation entries —
//! `CoBegin`, `CoEnd`, `Delay` and `DelayEnd` (paper §5.5) — which do
//! nothing to devices. They are deliberately not a programming language:
//! there are no conditionals or branches and the queue is not an
//! interpreter.

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};
use crate::ids::{SoundId, VDeviceId};

/// Unity gain in milli-units: `ChangeGain(GAIN_UNITY)` leaves samples
/// untouched.
pub const GAIN_UNITY: u32 = 1000;

/// Condition terminating a `Record` command (paper §5.9: "The Record
/// command has a termination condition, which can be either after a pause
/// or when the caller hangs up").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordTermination {
    /// Record until explicitly stopped.
    Manual,
    /// Record at most this many sample frames.
    MaxFrames(u64),
    /// Stop after `min_silence_frames` consecutive frames whose amplitude
    /// stays below `threshold` (pause detection).
    OnPause {
        /// Absolute 16-bit amplitude below which a frame counts as silent.
        threshold: u16,
        /// Number of consecutive silent frames ending the recording.
        min_silence_frames: u64,
    },
    /// Stop when the telephone call feeding the recorder hangs up.
    OnHangup,
}

impl WireWrite for RecordTermination {
    fn write(&self, w: &mut WireWriter) {
        match self {
            RecordTermination::Manual => w.u8(0),
            RecordTermination::MaxFrames(n) => {
                w.u8(1);
                w.u64(*n);
            }
            RecordTermination::OnPause { threshold, min_silence_frames } => {
                w.u8(2);
                w.u16(*threshold);
                w.u64(*min_silence_frames);
            }
            RecordTermination::OnHangup => w.u8(3),
        }
    }
}

impl WireRead for RecordTermination {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => RecordTermination::Manual,
            1 => RecordTermination::MaxFrames(r.u64()?),
            2 => RecordTermination::OnPause {
                threshold: r.u16()?,
                min_silence_frames: r.u64()?,
            },
            3 => RecordTermination::OnHangup,
            other => return Err(CodecError::BadTag("RecordTermination", u32::from(other))),
        })
    }
}

/// A note played by a music synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Note {
    /// MIDI note number (69 = A4 = 440 Hz).
    pub note: u8,
    /// Velocity 0–127, scaling amplitude.
    pub velocity: u8,
    /// Duration in milliseconds.
    pub duration_ms: u32,
}

impl WireWrite for Note {
    fn write(&self, w: &mut WireWriter) {
        w.u8(self.note);
        w.u8(self.velocity);
        w.u32(self.duration_ms);
    }
}

impl WireRead for Note {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Note { note: r.u8()?, velocity: r.u8()?, duration_ms: r.u32()? })
    }
}

/// A crossbar routing entry: connect input `input` to output `output`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossbarRoute {
    /// Sink-port index on the crossbar.
    pub input: u8,
    /// Source-port index on the crossbar.
    pub output: u8,
    /// Whether the connection is made (`true`) or broken (`false`).
    pub connected: bool,
}

impl WireWrite for CrossbarRoute {
    fn write(&self, w: &mut WireWriter) {
        w.u8(self.input);
        w.u8(self.output);
        w.bool(self.connected);
    }
}

impl WireRead for CrossbarRoute {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(CrossbarRoute { input: r.u8()?, output: r.u8()?, connected: r.bool()? })
    }
}

/// A command addressed to a virtual device (paper §5.1 class commands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceCommand {
    // Common commands.
    /// Abort the device's current operation. For a telephone, hang up.
    Stop,
    /// Suspend the current operation, retaining position.
    Pause,
    /// Resume a paused operation.
    Resume,
    /// Set gain in milli-units ([`GAIN_UNITY`] = unchanged); valid on
    /// inputs, outputs, players and recorders.
    ChangeGain(u32),

    // Player.
    /// Play a sound out the player's ports (queued mode only).
    Play(SoundId),

    // Recorder.
    /// Record into a sound until `termination` (queued mode only).
    Record(SoundId, RecordTermination),

    // Telephone.
    /// Place a call to a number (queued mode only).
    Dial(String),
    /// Answer a ringing line (queued mode only).
    Answer,
    /// Send DTMF digits in-band.
    SendDtmf(String),

    // Mixer.
    /// Set the mix percentage (0–100) for one mixer input.
    SetMixGain {
        /// Sink-port index.
        input: u8,
        /// Percentage of the input contributed to the mix.
        percent: u8,
    },

    // Speech synthesizer.
    /// Speak a text string (queued mode only).
    SpeakText(String),
    /// Select the language used to interpret text.
    SetTextLanguage(String),
    /// Set vocal-tract parameters: speaking rate in words-per-minute and
    /// base pitch in Hz.
    SetVoiceValues {
        /// Speaking rate, words per minute.
        rate_wpm: u16,
        /// Base pitch of the vocal-tract model, Hz.
        pitch_hz: u16,
    },
    /// Override normal pronunciation for specific words.
    SetExceptionList(Vec<(String, String)>),

    // Speech recognizer.
    /// Train a word template from a recorded sound.
    Train {
        /// The word being trained.
        word: String,
        /// A sound resource holding an utterance of the word.
        template: SoundId,
    },
    /// Restrict recognition to the given active vocabulary.
    SetVocabulary(Vec<String>),
    /// Bias the recognizer toward (positive) or away from (negative) the
    /// current vocabulary, trading insertions for deletions.
    AdjustContext(i32),
    /// Persist trained templates under a catalogue name.
    SaveVocabulary(String),

    // Music synthesizer.
    /// Play a note (queued mode only).
    PlayNote(Note),
    /// Select the synthesis voice by name ("sine", "square", ...).
    SetVoice(String),
    /// Set music generation state: tempo in beats per minute.
    SetMusicState {
        /// Tempo in beats per minute.
        tempo_bpm: u16,
    },

    // Crossbar.
    /// Reconfigure crossbar routing.
    SetRoutes(Vec<CrossbarRoute>),
}

impl DeviceCommand {
    /// Whether this command may be issued in immediate mode.
    ///
    /// Commands that move data through time (`Play`, `Record`, `Dial`,
    /// `Answer`, `SpeakText`, `PlayNote`) must be synchronised with other
    /// commands and are queued-only (paper §5.1).
    pub fn immediate_ok(&self) -> bool {
        !matches!(
            self,
            DeviceCommand::Play(_)
                | DeviceCommand::Record(..)
                | DeviceCommand::Dial(_)
                | DeviceCommand::Answer
                | DeviceCommand::SpeakText(_)
                | DeviceCommand::PlayNote(_)
        )
    }

    /// Whether this command completes instantaneously once started.
    ///
    /// Instantaneous commands (gain changes, vocabulary updates, routing)
    /// never occupy a queue across ticks; durational commands complete at a
    /// specific sample time.
    pub fn instantaneous(&self) -> bool {
        self.immediate_ok() && !matches!(self, DeviceCommand::SendDtmf(_))
    }
}

impl WireWrite for DeviceCommand {
    fn write(&self, w: &mut WireWriter) {
        match self {
            DeviceCommand::Stop => w.u8(0),
            DeviceCommand::Pause => w.u8(1),
            DeviceCommand::Resume => w.u8(2),
            DeviceCommand::ChangeGain(g) => {
                w.u8(3);
                w.u32(*g);
            }
            DeviceCommand::Play(s) => {
                w.u8(4);
                s.write(w);
            }
            DeviceCommand::Record(s, t) => {
                w.u8(5);
                s.write(w);
                t.write(w);
            }
            DeviceCommand::Dial(n) => {
                w.u8(6);
                w.string(n);
            }
            DeviceCommand::Answer => w.u8(7),
            DeviceCommand::SendDtmf(d) => {
                w.u8(8);
                w.string(d);
            }
            DeviceCommand::SetMixGain { input, percent } => {
                w.u8(9);
                w.u8(*input);
                w.u8(*percent);
            }
            DeviceCommand::SpeakText(t) => {
                w.u8(10);
                w.string(t);
            }
            DeviceCommand::SetTextLanguage(l) => {
                w.u8(11);
                w.string(l);
            }
            DeviceCommand::SetVoiceValues { rate_wpm, pitch_hz } => {
                w.u8(12);
                w.u16(*rate_wpm);
                w.u16(*pitch_hz);
            }
            DeviceCommand::SetExceptionList(list) => {
                w.u8(13);
                w.u32(u32::try_from(list.len()).expect("exception list exceeds u32 count"));
                for (word, pron) in list {
                    w.string(word);
                    w.string(pron);
                }
            }
            DeviceCommand::Train { word, template } => {
                w.u8(14);
                w.string(word);
                template.write(w);
            }
            DeviceCommand::SetVocabulary(words) => {
                w.u8(15);
                w.list(words);
            }
            DeviceCommand::AdjustContext(bias) => {
                w.u8(16);
                w.i32(*bias);
            }
            DeviceCommand::SaveVocabulary(name) => {
                w.u8(17);
                w.string(name);
            }
            DeviceCommand::PlayNote(n) => {
                w.u8(18);
                n.write(w);
            }
            DeviceCommand::SetVoice(v) => {
                w.u8(19);
                w.string(v);
            }
            DeviceCommand::SetMusicState { tempo_bpm } => {
                w.u8(20);
                w.u16(*tempo_bpm);
            }
            DeviceCommand::SetRoutes(routes) => {
                w.u8(21);
                w.list(routes);
            }
        }
    }
}

impl WireRead for DeviceCommand {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => DeviceCommand::Stop,
            1 => DeviceCommand::Pause,
            2 => DeviceCommand::Resume,
            3 => DeviceCommand::ChangeGain(r.u32()?),
            4 => DeviceCommand::Play(SoundId::read(r)?),
            5 => DeviceCommand::Record(SoundId::read(r)?, RecordTermination::read(r)?),
            6 => DeviceCommand::Dial(r.string()?),
            7 => DeviceCommand::Answer,
            8 => DeviceCommand::SendDtmf(r.string()?),
            9 => DeviceCommand::SetMixGain { input: r.u8()?, percent: r.u8()? },
            10 => DeviceCommand::SpeakText(r.string()?),
            11 => DeviceCommand::SetTextLanguage(r.string()?),
            12 => DeviceCommand::SetVoiceValues { rate_wpm: r.u16()?, pitch_hz: r.u16()? },
            13 => {
                let n = r.u32()? as usize;
                // Each pair needs at least 8 bytes (two count prefixes);
                // reject absurd declared counts before allocating.
                if n > r.remaining() {
                    return Err(CodecError::Truncated);
                }
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    list.push((r.string()?, r.string()?));
                }
                DeviceCommand::SetExceptionList(list)
            }
            14 => DeviceCommand::Train { word: r.string()?, template: SoundId::read(r)? },
            15 => DeviceCommand::SetVocabulary(r.list()?),
            16 => DeviceCommand::AdjustContext(r.i32()?),
            17 => DeviceCommand::SaveVocabulary(r.string()?),
            18 => DeviceCommand::PlayNote(Note::read(r)?),
            19 => DeviceCommand::SetVoice(r.string()?),
            20 => DeviceCommand::SetMusicState { tempo_bpm: r.u16()? },
            21 => DeviceCommand::SetRoutes(r.list()?),
            other => return Err(CodecError::BadTag("DeviceCommand", u32::from(other))),
        })
    }
}

/// One entry in a root LOUD's command queue (paper §5.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueEntry {
    /// A device command addressed to a virtual device in the LOUD tree.
    Device {
        /// Target virtual device.
        vdev: VDeviceId,
        /// The command to run.
        cmd: DeviceCommand,
    },
    /// Start all commands up to the matching [`QueueEntry::CoEnd`]
    /// simultaneously; the entry after the `CoEnd` does not start until all
    /// bracketed commands complete.
    CoBegin,
    /// Close the innermost `CoBegin` bracket.
    CoEnd,
    /// Within a `CoBegin` bracket, wait `ms` milliseconds before processing
    /// the following commands (which run sequentially until the matching
    /// [`QueueEntry::DelayEnd`]).
    Delay {
        /// Delay in milliseconds of queue-relative time.
        ms: u32,
    },
    /// Close the innermost `Delay` segment.
    DelayEnd,
}

impl WireWrite for QueueEntry {
    fn write(&self, w: &mut WireWriter) {
        match self {
            QueueEntry::Device { vdev, cmd } => {
                w.u8(0);
                vdev.write(w);
                cmd.write(w);
            }
            QueueEntry::CoBegin => w.u8(1),
            QueueEntry::CoEnd => w.u8(2),
            QueueEntry::Delay { ms } => {
                w.u8(3);
                w.u32(*ms);
            }
            QueueEntry::DelayEnd => w.u8(4),
        }
    }
}

impl WireRead for QueueEntry {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => QueueEntry::Device { vdev: VDeviceId::read(r)?, cmd: DeviceCommand::read(r)? },
            1 => QueueEntry::CoBegin,
            2 => QueueEntry::CoEnd,
            3 => QueueEntry::Delay { ms: r.u32()? },
            4 => QueueEntry::DelayEnd,
            other => return Err(CodecError::BadTag("QueueEntry", u32::from(other))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: &DeviceCommand) {
        assert_eq!(&DeviceCommand::from_wire(&cmd.to_wire()).unwrap(), cmd);
    }

    #[test]
    fn all_commands_roundtrip() {
        let cmds = vec![
            DeviceCommand::Stop,
            DeviceCommand::Pause,
            DeviceCommand::Resume,
            DeviceCommand::ChangeGain(500),
            DeviceCommand::Play(SoundId(1)),
            DeviceCommand::Record(SoundId(2), RecordTermination::MaxFrames(8000)),
            DeviceCommand::Record(
                SoundId(2),
                RecordTermination::OnPause { threshold: 400, min_silence_frames: 4000 },
            ),
            DeviceCommand::Record(SoundId(2), RecordTermination::OnHangup),
            DeviceCommand::Dial("555-0123".into()),
            DeviceCommand::Answer,
            DeviceCommand::SendDtmf("12#*".into()),
            DeviceCommand::SetMixGain { input: 1, percent: 60 },
            DeviceCommand::SpeakText("hello world".into()),
            DeviceCommand::SetTextLanguage("en".into()),
            DeviceCommand::SetVoiceValues { rate_wpm: 180, pitch_hz: 120 },
            DeviceCommand::SetExceptionList(vec![("DEC".into(), "deck".into())]),
            DeviceCommand::Train { word: "yes".into(), template: SoundId(5) },
            DeviceCommand::SetVocabulary(vec!["yes".into(), "no".into()]),
            DeviceCommand::AdjustContext(-3),
            DeviceCommand::SaveVocabulary("main".into()),
            DeviceCommand::PlayNote(Note { note: 69, velocity: 100, duration_ms: 250 }),
            DeviceCommand::SetVoice("square".into()),
            DeviceCommand::SetMusicState { tempo_bpm: 120 },
            DeviceCommand::SetRoutes(vec![CrossbarRoute {
                input: 0,
                output: 1,
                connected: true,
            }]),
        ];
        for cmd in &cmds {
            roundtrip(cmd);
        }
    }

    #[test]
    fn immediate_mode_rules() {
        // Paper §5.1: Play and Record can be issued only in queued mode;
        // Stop and ChangeGain may be issued in either mode.
        assert!(!DeviceCommand::Play(SoundId(1)).immediate_ok());
        assert!(!DeviceCommand::Record(SoundId(1), RecordTermination::Manual).immediate_ok());
        assert!(!DeviceCommand::Dial("1".into()).immediate_ok());
        assert!(!DeviceCommand::Answer.immediate_ok());
        assert!(DeviceCommand::Stop.immediate_ok());
        assert!(DeviceCommand::ChangeGain(2000).immediate_ok());
        assert!(DeviceCommand::SendDtmf("1".into()).immediate_ok());
    }

    #[test]
    fn queue_entry_roundtrip() {
        let entries = vec![
            QueueEntry::Device { vdev: VDeviceId(7), cmd: DeviceCommand::Answer },
            QueueEntry::CoBegin,
            QueueEntry::CoEnd,
            QueueEntry::Delay { ms: 5000 },
            QueueEntry::DelayEnd,
        ];
        for e in &entries {
            assert_eq!(&QueueEntry::from_wire(&e.to_wire()).unwrap(), e);
        }
    }
}
