//! Server → client events.
//!
//! An event is data generated asynchronously by the server as a result of
//! device activity or as a side-effect of a request (paper §5.7). The
//! three major categories are **command queue**, **device** and
//! **synchronization** events; this implementation adds LOUD lifecycle,
//! property and audio-manager redirection events (the mechanisms of paper
//! §5.8). The server sends an event only to clients that selected its
//! category on the resource concerned.

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};
use crate::ids::{Atom, ClientId, LoudId, ResourceId, SoundId, VDeviceId};

/// Bitmask of event categories a client can select (paper §5.7–5.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask(pub u32);

impl EventMask {
    /// Command-queue state changes: started, stopped, paused, command done.
    pub const QUEUE: EventMask = EventMask(1 << 0);
    /// Class-specific device events (telephone, recorder, recognizer...).
    pub const DEVICE: EventMask = EventMask(1 << 1);
    /// Synchronization marks for coordinating with other media.
    pub const SYNC: EventMask = EventMask(1 << 2);
    /// LOUD lifecycle: map/unmap and activate/deactivate notifications.
    pub const LOUD_STATE: EventMask = EventMask(1 << 3);
    /// Property changes.
    pub const PROPERTY: EventMask = EventMask(1 << 4);
    /// Redirected map/raise requests (audio managers only).
    pub const MANAGER: EventMask = EventMask(1 << 5);

    /// The empty mask.
    pub fn empty() -> EventMask {
        EventMask(0)
    }

    /// Every category.
    pub fn all() -> EventMask {
        EventMask(0x3F)
    }

    /// Whether every bit of `other` is present in `self`.
    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two masks.
    pub fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }
}

impl std::ops::BitOr for EventMask {
    type Output = EventMask;

    fn bitor(self, rhs: EventMask) -> EventMask {
        self.union(rhs)
    }
}

impl WireWrite for EventMask {
    fn write(&self, w: &mut WireWriter) {
        w.u32(self.0);
    }
}

impl WireRead for EventMask {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(EventMask(r.u32()?))
    }
}

/// Why a queue stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueStopReason {
    /// The client issued `StopQueue`.
    ClientRequest,
    /// Every queued entry completed.
    Drained,
    /// The current command failed or its device vanished.
    Error,
    /// A pause was requested but the active command cannot pause, so the
    /// queue stopped instead (paper §5.5).
    Unpausable,
}

impl WireWrite for QueueStopReason {
    fn write(&self, w: &mut WireWriter) {
        w.u8(match self {
            QueueStopReason::ClientRequest => 0,
            QueueStopReason::Drained => 1,
            QueueStopReason::Error => 2,
            QueueStopReason::Unpausable => 3,
        });
    }
}

impl WireRead for QueueStopReason {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => QueueStopReason::ClientRequest,
            1 => QueueStopReason::Drained,
            2 => QueueStopReason::Error,
            3 => QueueStopReason::Unpausable,
            other => return Err(CodecError::BadTag("QueueStopReason", u32::from(other))),
        })
    }
}

/// Why a recording ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordStopReason {
    /// Explicit `Stop`.
    Manual,
    /// The frame limit was reached.
    MaxFrames,
    /// Pause detection fired (paper §5.9).
    PauseDetected,
    /// The telephone call feeding the recorder hung up.
    Hangup,
}

impl WireWrite for RecordStopReason {
    fn write(&self, w: &mut WireWriter) {
        w.u8(match self {
            RecordStopReason::Manual => 0,
            RecordStopReason::MaxFrames => 1,
            RecordStopReason::PauseDetected => 2,
            RecordStopReason::Hangup => 3,
        });
    }
}

impl WireRead for RecordStopReason {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => RecordStopReason::Manual,
            1 => RecordStopReason::MaxFrames,
            2 => RecordStopReason::PauseDetected,
            3 => RecordStopReason::Hangup,
            other => return Err(CodecError::BadTag("RecordStopReason", u32::from(other))),
        })
    }
}

/// Progress states of a telephone call (paper §5.7: "a dial request has
/// been issued", "the telephone has been answered", "the phone is
/// ringing").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallState {
    /// On-hook, no call.
    Idle,
    /// Off-hook, digits being sent.
    Dialing,
    /// Outgoing call ringing at the far end.
    Ringback,
    /// Incoming call ringing locally.
    Ringing,
    /// Call established.
    Connected,
    /// Far end busy.
    Busy,
    /// Call ended (either side hung up).
    HungUp,
    /// Outgoing call not answered.
    NoAnswer,
}

impl CallState {
    const ALL: [CallState; 8] = [
        CallState::Idle,
        CallState::Dialing,
        CallState::Ringback,
        CallState::Ringing,
        CallState::Connected,
        CallState::Busy,
        CallState::HungUp,
        CallState::NoAnswer,
    ];

    fn tag(self) -> u8 {
        self as u8 // cast-ok: fieldless enum discriminant, 8 < 256
    }
}

impl WireWrite for CallState {
    fn write(&self, w: &mut WireWriter) {
        w.u8(self.tag());
    }
}

impl WireRead for CallState {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let t = r.u8()?;
        CallState::ALL
            .into_iter()
            .find(|s| s.tag() == t)
            .ok_or(CodecError::BadTag("CallState", u32::from(t)))
    }
}

/// An asynchronous server event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // -- Command-queue events (category QUEUE) --
    /// A queue began processing.
    QueueStarted {
        /// Owning root LOUD.
        loud: LoudId,
    },
    /// A queue stopped.
    QueueStopped {
        /// Owning root LOUD.
        loud: LoudId,
        /// Why it stopped.
        reason: QueueStopReason,
    },
    /// A queue paused; `by_server` distinguishes server-paused (LOUD
    /// deactivation) from client-paused.
    QueuePaused {
        /// Owning root LOUD.
        loud: LoudId,
        /// `true` when the server paused the queue on deactivation.
        by_server: bool,
    },
    /// A paused queue resumed.
    QueueResumed {
        /// Owning root LOUD.
        loud: LoudId,
    },
    /// A queued command completed.
    CommandDone {
        /// Owning root LOUD.
        loud: LoudId,
        /// Device the command ran on.
        vdev: VDeviceId,
        /// Index of the entry in enqueue order (0-based, monotonically
        /// increasing over the queue's lifetime).
        index: u32,
        /// Device time (sample frames) at completion.
        at_frame: u64,
    },

    // -- Device events (category DEVICE) --
    /// A player started emitting a sound.
    PlayStarted {
        /// The player.
        vdev: VDeviceId,
        /// The sound being played.
        sound: SoundId,
    },
    /// A recorder started storing data (paper: recorder "start" event).
    RecordStarted {
        /// The recorder.
        vdev: VDeviceId,
        /// The sound being recorded into.
        sound: SoundId,
    },
    /// A recorder stopped (paper: recorder "stop" event).
    RecordStopped {
        /// The recorder.
        vdev: VDeviceId,
        /// The sound recorded into.
        sound: SoundId,
        /// Why recording ended.
        reason: RecordStopReason,
        /// Frames stored.
        frames: u64,
    },
    /// A telephone call changed state. Sent for virtual telephone devices
    /// and for the device-LOUD telephone (which unmapped applications
    /// monitor, paper §5.9 footnote).
    CallProgress {
        /// The telephone device (virtual or device-LOUD).
        device: ResourceId,
        /// New call state.
        state: CallState,
        /// Identity of the calling party, when the network provides it
        /// (paper §5.1: attributes tell whether this is available).
        caller_id: Option<String>,
    },
    /// A DTMF digit was detected on a telephone or recognizer input.
    DtmfReceived {
        /// The detecting device.
        device: ResourceId,
        /// The digit: one of `0-9`, `*`, `#`, `A-D`.
        digit: u8,
    },
    /// A speech recognizer detected a word (paper §5.1).
    WordRecognized {
        /// The recognizer.
        vdev: VDeviceId,
        /// The recognised word.
        word: String,
        /// Match quality in milli-units (1000 = perfect).
        score: u32,
    },
    /// A streaming sound ran dry while a player needed data; silence was
    /// substituted (paper §6.2: the client implements its own policy).
    SoundUnderrun {
        /// The starved player.
        vdev: VDeviceId,
        /// The incomplete sound.
        sound: SoundId,
        /// Frames of silence inserted this tick.
        missing_frames: u64,
    },

    // -- Synchronization events (category SYNC) --
    /// Periodic playback/record position marks used to slave other media
    /// to the audio stream (paper §5.7, §6 Soundviewer).
    SyncMark {
        /// The device emitting marks.
        vdev: VDeviceId,
        /// The sound in progress, if any.
        sound: Option<SoundId>,
        /// Position within the sound, in sample frames.
        position: u64,
        /// Server device time at the mark.
        device_time: u64,
    },

    // -- LOUD lifecycle (category LOUD_STATE) --
    /// A root LOUD was mapped.
    MapNotify {
        /// The LOUD.
        loud: LoudId,
    },
    /// A root LOUD was unmapped.
    UnmapNotify {
        /// The LOUD.
        loud: LoudId,
    },
    /// The server activated a LOUD: its virtual devices are bound and its
    /// queue may run (paper §5.4, §5.9).
    ActivateNotify {
        /// The LOUD.
        loud: LoudId,
    },
    /// The server deactivated a LOUD; device state was saved for restore.
    DeactivateNotify {
        /// The LOUD.
        loud: LoudId,
    },

    // -- Property events (category PROPERTY) --
    /// A property was changed or deleted.
    PropertyNotify {
        /// The owning resource.
        target: ResourceId,
        /// The property name.
        name: Atom,
        /// `true` if the property was deleted.
        deleted: bool,
    },

    // -- Audio-manager redirection (category MANAGER) --
    /// A client asked to map a LOUD while redirection is active; the audio
    /// manager decides whether to `AllowMap` (paper §5.8).
    MapRequest {
        /// The LOUD the client wants mapped.
        loud: LoudId,
        /// The requesting client.
        client: ClientId,
    },
    /// A client asked to raise a LOUD while redirection is active.
    RaiseRequest {
        /// The LOUD the client wants raised.
        loud: LoudId,
        /// The requesting client.
        client: ClientId,
    },
}

impl Event {
    /// The selection category this event belongs to.
    pub fn category(&self) -> EventMask {
        match self {
            Event::QueueStarted { .. }
            | Event::QueueStopped { .. }
            | Event::QueuePaused { .. }
            | Event::QueueResumed { .. }
            | Event::CommandDone { .. } => EventMask::QUEUE,
            Event::PlayStarted { .. }
            | Event::RecordStarted { .. }
            | Event::RecordStopped { .. }
            | Event::CallProgress { .. }
            | Event::DtmfReceived { .. }
            | Event::WordRecognized { .. }
            | Event::SoundUnderrun { .. } => EventMask::DEVICE,
            Event::SyncMark { .. } => EventMask::SYNC,
            Event::MapNotify { .. }
            | Event::UnmapNotify { .. }
            | Event::ActivateNotify { .. }
            | Event::DeactivateNotify { .. } => EventMask::LOUD_STATE,
            Event::PropertyNotify { .. } => EventMask::PROPERTY,
            Event::MapRequest { .. } | Event::RaiseRequest { .. } => EventMask::MANAGER,
        }
    }
}

impl WireWrite for Event {
    fn write(&self, w: &mut WireWriter) {
        match self {
            Event::QueueStarted { loud } => {
                w.u8(0);
                loud.write(w);
            }
            Event::QueueStopped { loud, reason } => {
                w.u8(1);
                loud.write(w);
                reason.write(w);
            }
            Event::QueuePaused { loud, by_server } => {
                w.u8(2);
                loud.write(w);
                w.bool(*by_server);
            }
            Event::QueueResumed { loud } => {
                w.u8(3);
                loud.write(w);
            }
            Event::CommandDone { loud, vdev, index, at_frame } => {
                w.u8(4);
                loud.write(w);
                vdev.write(w);
                w.u32(*index);
                w.u64(*at_frame);
            }
            Event::PlayStarted { vdev, sound } => {
                w.u8(5);
                vdev.write(w);
                sound.write(w);
            }
            Event::RecordStarted { vdev, sound } => {
                w.u8(6);
                vdev.write(w);
                sound.write(w);
            }
            Event::RecordStopped { vdev, sound, reason, frames } => {
                w.u8(7);
                vdev.write(w);
                sound.write(w);
                reason.write(w);
                w.u64(*frames);
            }
            Event::CallProgress { device, state, caller_id } => {
                w.u8(8);
                device.write(w);
                state.write(w);
                w.option(caller_id);
            }
            Event::DtmfReceived { device, digit } => {
                w.u8(9);
                device.write(w);
                w.u8(*digit);
            }
            Event::WordRecognized { vdev, word, score } => {
                w.u8(10);
                vdev.write(w);
                w.string(word);
                w.u32(*score);
            }
            Event::SoundUnderrun { vdev, sound, missing_frames } => {
                w.u8(11);
                vdev.write(w);
                sound.write(w);
                w.u64(*missing_frames);
            }
            Event::SyncMark { vdev, sound, position, device_time } => {
                w.u8(12);
                vdev.write(w);
                w.option(sound);
                w.u64(*position);
                w.u64(*device_time);
            }
            Event::MapNotify { loud } => {
                w.u8(13);
                loud.write(w);
            }
            Event::UnmapNotify { loud } => {
                w.u8(14);
                loud.write(w);
            }
            Event::ActivateNotify { loud } => {
                w.u8(15);
                loud.write(w);
            }
            Event::DeactivateNotify { loud } => {
                w.u8(16);
                loud.write(w);
            }
            Event::PropertyNotify { target, name, deleted } => {
                w.u8(17);
                target.write(w);
                name.write(w);
                w.bool(*deleted);
            }
            Event::MapRequest { loud, client } => {
                w.u8(18);
                loud.write(w);
                client.write(w);
            }
            Event::RaiseRequest { loud, client } => {
                w.u8(19);
                loud.write(w);
                client.write(w);
            }
        }
    }
}

impl WireRead for Event {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Event::QueueStarted { loud: LoudId::read(r)? },
            1 => Event::QueueStopped { loud: LoudId::read(r)?, reason: QueueStopReason::read(r)? },
            2 => Event::QueuePaused { loud: LoudId::read(r)?, by_server: r.bool()? },
            3 => Event::QueueResumed { loud: LoudId::read(r)? },
            4 => Event::CommandDone {
                loud: LoudId::read(r)?,
                vdev: VDeviceId::read(r)?,
                index: r.u32()?,
                at_frame: r.u64()?,
            },
            5 => Event::PlayStarted { vdev: VDeviceId::read(r)?, sound: SoundId::read(r)? },
            6 => Event::RecordStarted { vdev: VDeviceId::read(r)?, sound: SoundId::read(r)? },
            7 => Event::RecordStopped {
                vdev: VDeviceId::read(r)?,
                sound: SoundId::read(r)?,
                reason: RecordStopReason::read(r)?,
                frames: r.u64()?,
            },
            8 => Event::CallProgress {
                device: ResourceId::read(r)?,
                state: CallState::read(r)?,
                caller_id: r.option()?,
            },
            9 => Event::DtmfReceived { device: ResourceId::read(r)?, digit: r.u8()? },
            10 => Event::WordRecognized {
                vdev: VDeviceId::read(r)?,
                word: r.string()?,
                score: r.u32()?,
            },
            11 => Event::SoundUnderrun {
                vdev: VDeviceId::read(r)?,
                sound: SoundId::read(r)?,
                missing_frames: r.u64()?,
            },
            12 => Event::SyncMark {
                vdev: VDeviceId::read(r)?,
                sound: r.option()?,
                position: r.u64()?,
                device_time: r.u64()?,
            },
            13 => Event::MapNotify { loud: LoudId::read(r)? },
            14 => Event::UnmapNotify { loud: LoudId::read(r)? },
            15 => Event::ActivateNotify { loud: LoudId::read(r)? },
            16 => Event::DeactivateNotify { loud: LoudId::read(r)? },
            17 => Event::PropertyNotify {
                target: ResourceId::read(r)?,
                name: Atom::read(r)?,
                deleted: r.bool()?,
            },
            18 => Event::MapRequest { loud: LoudId::read(r)?, client: ClientId::read(r)? },
            19 => Event::RaiseRequest { loud: LoudId::read(r)?, client: ClientId::read(r)? },
            other => return Err(CodecError::BadTag("Event", u32::from(other))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_algebra() {
        let m = EventMask::QUEUE | EventMask::SYNC;
        assert!(m.contains(EventMask::QUEUE));
        assert!(m.contains(EventMask::SYNC));
        assert!(!m.contains(EventMask::DEVICE));
        assert!(EventMask::all().contains(m));
        assert!(!EventMask::empty().contains(EventMask::QUEUE));
    }

    #[test]
    fn events_roundtrip() {
        let events = vec![
            Event::QueueStarted { loud: LoudId(1) },
            Event::QueueStopped { loud: LoudId(1), reason: QueueStopReason::Drained },
            Event::QueuePaused { loud: LoudId(1), by_server: true },
            Event::QueueResumed { loud: LoudId(1) },
            Event::CommandDone { loud: LoudId(1), vdev: VDeviceId(2), index: 3, at_frame: 99 },
            Event::PlayStarted { vdev: VDeviceId(2), sound: SoundId(5) },
            Event::RecordStarted { vdev: VDeviceId(2), sound: SoundId(5) },
            Event::RecordStopped {
                vdev: VDeviceId(2),
                sound: SoundId(5),
                reason: RecordStopReason::PauseDetected,
                frames: 16000,
            },
            Event::CallProgress {
                device: ResourceId::VDevice(VDeviceId(2)),
                state: CallState::Ringing,
                caller_id: Some("555-0100".into()),
            },
            Event::DtmfReceived { device: ResourceId::VDevice(VDeviceId(2)), digit: b'5' },
            Event::WordRecognized { vdev: VDeviceId(2), word: "yes".into(), score: 870 },
            Event::SoundUnderrun { vdev: VDeviceId(2), sound: SoundId(5), missing_frames: 80 },
            Event::SyncMark {
                vdev: VDeviceId(2),
                sound: Some(SoundId(5)),
                position: 4000,
                device_time: 123456,
            },
            Event::MapNotify { loud: LoudId(1) },
            Event::UnmapNotify { loud: LoudId(1) },
            Event::ActivateNotify { loud: LoudId(1) },
            Event::DeactivateNotify { loud: LoudId(1) },
            Event::PropertyNotify {
                target: ResourceId::Loud(LoudId(1)),
                name: Atom(4),
                deleted: false,
            },
            Event::MapRequest { loud: LoudId(1), client: ClientId(7) },
            Event::RaiseRequest { loud: LoudId(1), client: ClientId(7) },
        ];
        for event in &events {
            assert_eq!(&Event::from_wire(&event.to_wire()).unwrap(), event);
        }
    }

    #[test]
    fn categories_are_consistent() {
        assert_eq!(Event::QueueStarted { loud: LoudId(1) }.category(), EventMask::QUEUE);
        assert_eq!(
            Event::SyncMark { vdev: VDeviceId(1), sound: None, position: 0, device_time: 0 }
                .category(),
            EventMask::SYNC
        );
        assert_eq!(
            Event::MapRequest { loud: LoudId(1), client: ClientId(1) }.category(),
            EventMask::MANAGER
        );
    }
}
