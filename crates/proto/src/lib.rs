//! Wire protocol for the desktop-audio server.
//!
//! This crate defines the precisely specified, device-independent protocol
//! spoken between audio clients and the audio server, following the
//! architecture of *Integrating Audio and Telephony in a Distributed
//! Workstation Environment* (USENIX Summer 1991). The protocol is layered on
//! a reliable, full-duplex, 8-bit byte stream; every message is a
//! length-prefixed frame whose payload is encoded with the little-endian
//! rules in [`codec`].
//!
//! The protocol describes five major pieces (paper §4.1):
//!
//! 1. **connections** — see [`setup`] for the handshake that hands each
//!    client its resource-id range;
//! 2. **virtual devices** — device-independent abstractions of audio
//!    hardware, organised into LOUD trees (see [`types`]);
//! 3. **events** — asynchronous notifications of state changes ([`event`]);
//! 4. **command queues** — per-root-LOUD queues that synchronise device
//!    commands ([`command`]);
//! 5. **sounds** — typed repositories of audio data ([`types::SoundType`]).
//!
//! Requests are asynchronous: a client may stream requests without waiting
//! for completion. Requests that return values generate [`reply::Reply`]
//! messages matched to the request by sequence number; errors are reported
//! asynchronously as [`error::ProtoError`] messages carrying the failing
//! sequence number, exactly as in the X window system protocol.

pub mod codec;
pub mod command;
pub mod error;
pub mod event;
pub mod fault;
pub mod ids;
pub mod reply;
pub mod request;
pub mod setup;
pub mod transport;
pub mod types;

pub use codec::{Frame, FrameKind, WireRead, WireReader, WireWrite, WireWriter};
pub use command::{DeviceCommand, QueueEntry, RecordTermination};
pub use error::{ErrorCode, ProtoError};
pub use event::{Event, EventMask};
pub use ids::{Atom, ClientId, DeviceId, LoudId, ResourceId, SoundId, VDeviceId, WireId};
pub use reply::Reply;
pub use request::Request;
pub use setup::{SetupReply, SetupRequest};
pub use types::{
    Attribute, DeviceClass, Encoding, PortDir, QueueState, SoundType, WireType,
};

/// Protocol major version implemented by this crate.
pub const PROTOCOL_MAJOR: u16 = 1;
/// Protocol minor version implemented by this crate.
pub const PROTOCOL_MINOR: u16 = 0;
