//! Connection setup handshake.
//!
//! The first frame a client sends is a [`SetupRequest`]; the server answers
//! with a [`SetupReply`] granting a resource-id range, or refuses the
//! connection by closing the stream after an error frame.

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};
use crate::ids::ClientId;

/// The client's opening message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupRequest {
    /// Highest protocol major version the client speaks.
    pub protocol_major: u16,
    /// Highest protocol minor version the client speaks.
    pub protocol_minor: u16,
    /// Free-form client name for diagnostics ("answering-machine").
    pub client_name: String,
}

impl WireWrite for SetupRequest {
    fn write(&self, w: &mut WireWriter) {
        w.u16(self.protocol_major);
        w.u16(self.protocol_minor);
        w.string(&self.client_name);
    }
}

impl WireRead for SetupRequest {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(SetupRequest {
            protocol_major: r.u16()?,
            protocol_minor: r.u16()?,
            client_name: r.string()?,
        })
    }
}

/// The server's answer to a [`SetupRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetupReply {
    /// Protocol major version the server will speak.
    pub protocol_major: u16,
    /// Protocol minor version the server will speak.
    pub protocol_minor: u16,
    /// This connection's client id.
    pub client: ClientId,
    /// Base of the client's resource-id range: every id the client
    /// allocates must satisfy `id & !id_mask == id_base`.
    pub id_base: u32,
    /// Mask of id bits the client may vary.
    pub id_mask: u32,
    /// Server vendor string.
    pub vendor: String,
}

impl SetupReply {
    /// Whether `id` lies inside this client's allocated range.
    pub fn owns_id(&self, id: u32) -> bool {
        id & !self.id_mask == self.id_base && id & self.id_mask != 0
    }
}

impl WireWrite for SetupReply {
    fn write(&self, w: &mut WireWriter) {
        w.u16(self.protocol_major);
        w.u16(self.protocol_minor);
        self.client.write(w);
        w.u32(self.id_base);
        w.u32(self.id_mask);
        w.string(&self.vendor);
    }
}

impl WireRead for SetupReply {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(SetupReply {
            protocol_major: r.u16()?,
            protocol_minor: r.u16()?,
            client: ClientId::read(r)?,
            id_base: r.u32()?,
            id_mask: r.u32()?,
            vendor: r.string()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_roundtrip() {
        let req = SetupRequest {
            protocol_major: 1,
            protocol_minor: 0,
            client_name: "quickstart".into(),
        };
        assert_eq!(SetupRequest::from_wire(&req.to_wire()).unwrap(), req);

        let reply = SetupReply {
            protocol_major: 1,
            protocol_minor: 0,
            client: ClientId(3),
            id_base: 0x0030_0000,
            id_mask: 0x000F_FFFF,
            vendor: "desktop-audio".into(),
        };
        assert_eq!(SetupReply::from_wire(&reply.to_wire()).unwrap(), reply);
    }

    #[test]
    fn id_range_ownership() {
        let reply = SetupReply {
            protocol_major: 1,
            protocol_minor: 0,
            client: ClientId(3),
            id_base: 0x0030_0000,
            id_mask: 0x000F_FFFF,
            vendor: String::new(),
        };
        assert!(reply.owns_id(0x0030_0001));
        assert!(reply.owns_id(0x003F_FFFF));
        // The base itself (all-zero variable bits) is reserved.
        assert!(!reply.owns_id(0x0030_0000));
        assert!(!reply.owns_id(0x0040_0001));
        assert!(!reply.owns_id(0x0020_0001));
    }
}
