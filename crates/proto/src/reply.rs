//! Server → client replies.
//!
//! A reply answers exactly one request and carries that request's sequence
//! number in its frame. Clients may block awaiting a reply — which
//! synchronises them with the server — or process replies asynchronously
//! (paper §4.1).

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};
use crate::ids::{Atom, DeviceId, LoudId, VDeviceId, WireId};
use crate::types::{Attribute, DeviceClass, Property, QueueState, SoundType, WireType};

/// Description of one physical device in the device LOUD (paper §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PhysDeviceInfo {
    /// Stable, server-assigned device id.
    pub id: DeviceId,
    /// The device's class.
    pub class: DeviceClass,
    /// Capabilities of the actual hardware.
    pub attrs: Vec<Attribute>,
    /// Ambient domains the device participates in (paper §5.8).
    pub domains: Vec<u32>,
}

impl WireWrite for PhysDeviceInfo {
    fn write(&self, w: &mut WireWriter) {
        self.id.write(w);
        self.class.write(w);
        w.list(&self.attrs);
        w.list(&self.domains);
    }
}

impl WireRead for PhysDeviceInfo {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(PhysDeviceInfo {
            id: DeviceId::read(r)?,
            class: DeviceClass::read(r)?,
            attrs: r.list()?,
            domains: r.list()?,
        })
    }
}

/// A permanent (hard-wired) connection between two physical devices, as
/// exposed in the device LOUD (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardWire {
    /// Device owning the source end.
    pub src: DeviceId,
    /// Source port index.
    pub src_port: u8,
    /// Device owning the sink end.
    pub dst: DeviceId,
    /// Sink port index.
    pub dst_port: u8,
}

impl WireWrite for HardWire {
    fn write(&self, w: &mut WireWriter) {
        self.src.write(w);
        w.u8(self.src_port);
        self.dst.write(w);
        w.u8(self.dst_port);
    }
}

impl WireRead for HardWire {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(HardWire {
            src: DeviceId::read(r)?,
            src_port: r.u8()?,
            dst: DeviceId::read(r)?,
            dst_port: r.u8()?,
        })
    }
}

/// One entry of the active stack (top first), for audio managers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// The mapped root LOUD.
    pub loud: LoudId,
    /// Whether the server currently has it activated.
    pub active: bool,
}

impl WireWrite for StackEntry {
    fn write(&self, w: &mut WireWriter) {
        self.loud.write(w);
        w.bool(self.active);
    }
}

impl WireRead for StackEntry {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(StackEntry { loud: LoudId::read(r)?, active: r.bool()? })
    }
}

/// The body of a reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to `QueryVDeviceAttributes`: the full constraint list plus,
    /// if the LOUD is mapped, the chosen physical device (paper §5.3).
    VDeviceAttributes {
        /// Effective attribute list.
        attrs: Vec<Attribute>,
        /// Physical device selected at mapping time.
        mapped_device: Option<DeviceId>,
    },
    /// Answer to `GetDeviceControl`.
    DeviceControl {
        /// The control value, or `None` if the control is unset.
        value: Option<Vec<u8>>,
    },
    /// Answer to `QueryWire`.
    WireInfo {
        /// Source device.
        src: VDeviceId,
        /// Source port.
        src_port: u8,
        /// Sink device.
        dst: VDeviceId,
        /// Sink port.
        dst_port: u8,
        /// Declared type of the data path.
        wire_type: WireType,
    },
    /// Answer to `QueryDeviceWires`.
    DeviceWires {
        /// Wires attached to the queried device.
        wires: Vec<WireId>,
    },
    /// Answer to `QueryQueue`.
    QueueInfo {
        /// Current queue state.
        state: QueueState,
        /// Entries not yet started.
        pending: u32,
        /// Queue-relative time in sample frames at the queue's nominal
        /// rate (suspends while paused, paper §5.5).
        relative_frames: u64,
    },
    /// Answer to `ReadSoundData`.
    SoundData {
        /// Encoded bytes starting at the requested offset.
        data: Vec<u8>,
        /// Whether the read reached the current end of the sound.
        at_end: bool,
    },
    /// Answer to `QuerySound`.
    SoundInfo {
        /// The sound's type.
        stype: SoundType,
        /// Encoded length in bytes currently stored.
        bytes: u64,
        /// Length in sample frames currently stored.
        frames: u64,
        /// Whether the sound is complete (`eof` written).
        complete: bool,
    },
    /// Answer to `ListCatalog`.
    Catalog {
        /// Names of sounds in the catalogue (or of catalogues, if the
        /// empty catalogue name was queried).
        names: Vec<String>,
    },
    /// Answer to `InternAtom`.
    Atom {
        /// The interned atom.
        atom: Atom,
    },
    /// Answer to `GetAtomName`.
    AtomName {
        /// The atom's name.
        name: String,
    },
    /// Answer to `GetProperty`.
    Property {
        /// The property, or `None` if unset.
        property: Option<Property>,
    },
    /// Answer to `ListProperties`.
    PropertyList {
        /// Names of properties present on the resource.
        names: Vec<Atom>,
    },
    /// Answer to `QueryDeviceLoud`.
    DeviceLoud {
        /// Every physical device controlled by the server.
        devices: Vec<PhysDeviceInfo>,
        /// Permanent connections between them.
        hard_wires: Vec<HardWire>,
    },
    /// Answer to `QueryActiveStack` (top of stack first).
    ActiveStack {
        /// Mapped root LOUDs in stacking order.
        entries: Vec<StackEntry>,
    },
    /// Answer to `GetServerInfo`.
    ServerInfo {
        /// Human-readable vendor string.
        vendor: String,
        /// Protocol major version.
        protocol_major: u16,
        /// Protocol minor version.
        protocol_minor: u16,
        /// Server device time: sample frames elapsed at the server's
        /// nominal 8 kHz tick rate since startup.
        device_time: u64,
    },
    /// Answer to `Sync`: an empty acknowledgement.
    Sync,
}

impl WireWrite for Reply {
    fn write(&self, w: &mut WireWriter) {
        match self {
            Reply::VDeviceAttributes { attrs, mapped_device } => {
                w.u8(0);
                w.list(attrs);
                w.option(mapped_device);
            }
            Reply::DeviceControl { value } => {
                w.u8(1);
                match value {
                    None => w.bool(false),
                    Some(v) => {
                        w.bool(true);
                        w.bytes(v);
                    }
                }
            }
            Reply::WireInfo { src, src_port, dst, dst_port, wire_type } => {
                w.u8(2);
                src.write(w);
                w.u8(*src_port);
                dst.write(w);
                w.u8(*dst_port);
                wire_type.write(w);
            }
            Reply::DeviceWires { wires } => {
                w.u8(3);
                w.list(wires);
            }
            Reply::QueueInfo { state, pending, relative_frames } => {
                w.u8(4);
                state.write(w);
                w.u32(*pending);
                w.u64(*relative_frames);
            }
            Reply::SoundData { data, at_end } => {
                w.u8(5);
                w.bytes(data);
                w.bool(*at_end);
            }
            Reply::SoundInfo { stype, bytes, frames, complete } => {
                w.u8(6);
                stype.write(w);
                w.u64(*bytes);
                w.u64(*frames);
                w.bool(*complete);
            }
            Reply::Catalog { names } => {
                w.u8(7);
                w.list(names);
            }
            Reply::Atom { atom } => {
                w.u8(8);
                atom.write(w);
            }
            Reply::AtomName { name } => {
                w.u8(9);
                w.string(name);
            }
            Reply::Property { property } => {
                w.u8(10);
                w.option(property);
            }
            Reply::PropertyList { names } => {
                w.u8(11);
                w.list(names);
            }
            Reply::DeviceLoud { devices, hard_wires } => {
                w.u8(12);
                w.list(devices);
                w.list(hard_wires);
            }
            Reply::ActiveStack { entries } => {
                w.u8(13);
                w.list(entries);
            }
            Reply::ServerInfo { vendor, protocol_major, protocol_minor, device_time } => {
                w.u8(14);
                w.string(vendor);
                w.u16(*protocol_major);
                w.u16(*protocol_minor);
                w.u64(*device_time);
            }
            Reply::Sync => w.u8(15),
        }
    }
}

impl WireRead for Reply {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Reply::VDeviceAttributes { attrs: r.list()?, mapped_device: r.option()? },
            1 => {
                let value = if r.bool()? { Some(r.bytes()?) } else { None };
                Reply::DeviceControl { value }
            }
            2 => Reply::WireInfo {
                src: VDeviceId::read(r)?,
                src_port: r.u8()?,
                dst: VDeviceId::read(r)?,
                dst_port: r.u8()?,
                wire_type: WireType::read(r)?,
            },
            3 => Reply::DeviceWires { wires: r.list()? },
            4 => Reply::QueueInfo {
                state: QueueState::read(r)?,
                pending: r.u32()?,
                relative_frames: r.u64()?,
            },
            5 => Reply::SoundData { data: r.bytes()?, at_end: r.bool()? },
            6 => Reply::SoundInfo {
                stype: SoundType::read(r)?,
                bytes: r.u64()?,
                frames: r.u64()?,
                complete: r.bool()?,
            },
            7 => Reply::Catalog { names: r.list()? },
            8 => Reply::Atom { atom: Atom::read(r)? },
            9 => Reply::AtomName { name: r.string()? },
            10 => Reply::Property { property: r.option()? },
            11 => Reply::PropertyList { names: r.list()? },
            12 => Reply::DeviceLoud { devices: r.list()?, hard_wires: r.list()? },
            13 => Reply::ActiveStack { entries: r.list()? },
            14 => Reply::ServerInfo {
                vendor: r.string()?,
                protocol_major: r.u16()?,
                protocol_minor: r.u16()?,
                device_time: r.u64()?,
            },
            15 => Reply::Sync,
            other => return Err(CodecError::BadTag("Reply", other as u32)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Encoding;

    #[test]
    fn replies_roundtrip() {
        let replies = vec![
            Reply::VDeviceAttributes {
                attrs: vec![Attribute::Encoding(Encoding::ULaw)],
                mapped_device: Some(DeviceId(4)),
            },
            Reply::DeviceControl { value: None },
            Reply::DeviceControl { value: Some(vec![1, 2]) },
            Reply::WireInfo {
                src: VDeviceId(1),
                src_port: 0,
                dst: VDeviceId(2),
                dst_port: 1,
                wire_type: WireType::Any,
            },
            Reply::DeviceWires { wires: vec![WireId(9)] },
            Reply::QueueInfo { state: QueueState::Started, pending: 3, relative_frames: 800 },
            Reply::SoundData { data: vec![0, 1], at_end: true },
            Reply::SoundInfo {
                stype: SoundType::TELEPHONE,
                bytes: 8000,
                frames: 8000,
                complete: true,
            },
            Reply::Catalog { names: vec!["beep".into()] },
            Reply::Atom { atom: Atom(7) },
            Reply::AtomName { name: "DOMAIN".into() },
            Reply::Property { property: None },
            Reply::Property {
                property: Some(Property { name: Atom(1), type_: Atom(2), value: vec![3] }),
            },
            Reply::PropertyList { names: vec![Atom(1), Atom(2)] },
            Reply::DeviceLoud {
                devices: vec![PhysDeviceInfo {
                    id: DeviceId(1),
                    class: DeviceClass::Output,
                    attrs: vec![Attribute::Name("speaker".into())],
                    domains: vec![0],
                }],
                hard_wires: vec![HardWire {
                    src: DeviceId(1),
                    src_port: 0,
                    dst: DeviceId(2),
                    dst_port: 0,
                }],
            },
            Reply::ActiveStack {
                entries: vec![StackEntry { loud: LoudId(0x100), active: true }],
            },
            Reply::ServerInfo {
                vendor: "desktop-audio".into(),
                protocol_major: 1,
                protocol_minor: 0,
                device_time: 123,
            },
            Reply::Sync,
        ];
        for reply in &replies {
            assert_eq!(&Reply::from_wire(&reply.to_wire()).unwrap(), reply);
        }
    }
}
