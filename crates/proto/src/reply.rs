//! Server → client replies.
//!
//! A reply answers exactly one request and carries that request's sequence
//! number in its frame. Clients may block awaiting a reply — which
//! synchronises them with the server — or process replies asynchronously
//! (paper §4.1).

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};
use crate::ids::{Atom, DeviceId, LoudId, VDeviceId, WireId};
use crate::types::{Attribute, DeviceClass, Property, QueueState, SoundType, WireType};

/// Description of one physical device in the device LOUD (paper §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PhysDeviceInfo {
    /// Stable, server-assigned device id.
    pub id: DeviceId,
    /// The device's class.
    pub class: DeviceClass,
    /// Capabilities of the actual hardware.
    pub attrs: Vec<Attribute>,
    /// Ambient domains the device participates in (paper §5.8).
    pub domains: Vec<u32>,
}

impl WireWrite for PhysDeviceInfo {
    fn write(&self, w: &mut WireWriter) {
        self.id.write(w);
        self.class.write(w);
        w.list(&self.attrs);
        w.list(&self.domains);
    }
}

impl WireRead for PhysDeviceInfo {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(PhysDeviceInfo {
            id: DeviceId::read(r)?,
            class: DeviceClass::read(r)?,
            attrs: r.list()?,
            domains: r.list()?,
        })
    }
}

/// A permanent (hard-wired) connection between two physical devices, as
/// exposed in the device LOUD (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardWire {
    /// Device owning the source end.
    pub src: DeviceId,
    /// Source port index.
    pub src_port: u8,
    /// Device owning the sink end.
    pub dst: DeviceId,
    /// Sink port index.
    pub dst_port: u8,
}

impl WireWrite for HardWire {
    fn write(&self, w: &mut WireWriter) {
        self.src.write(w);
        w.u8(self.src_port);
        self.dst.write(w);
        w.u8(self.dst_port);
    }
}

impl WireRead for HardWire {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(HardWire {
            src: DeviceId::read(r)?,
            src_port: r.u8()?,
            dst: DeviceId::read(r)?,
            dst_port: r.u8()?,
        })
    }
}

/// One entry of the active stack (top first), for audio managers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// The mapped root LOUD.
    pub loud: LoudId,
    /// Whether the server currently has it activated.
    pub active: bool,
}

impl WireWrite for StackEntry {
    fn write(&self, w: &mut WireWriter) {
        self.loud.write(w);
        w.bool(self.active);
    }
}

impl WireRead for StackEntry {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(StackEntry { loud: LoudId::read(r)?, active: r.bool()? })
    }
}

/// One named counter in a [`Reply::ServerStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name (snake_case, from the DESIGN.md §10 catalog).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

impl WireWrite for CounterSample {
    fn write(&self, w: &mut WireWriter) {
        w.string(&self.name);
        w.u64(self.value);
    }
}

impl WireRead for CounterSample {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(CounterSample { name: r.string()?, value: r.u64()? })
    }
}

/// One named gauge in a [`Reply::ServerStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time (signed, carried as two's complement).
    pub value: i64,
}

impl WireWrite for GaugeSample {
    fn write(&self, w: &mut WireWriter) {
        w.string(&self.name);
        w.u64(self.value as u64);
    }
}

impl WireRead for GaugeSample {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(GaugeSample { name: r.string()?, value: r.u64()? as i64 })
    }
}

/// One named log2 histogram in a [`Reply::ServerStats`] snapshot.
///
/// Bucket `0` holds zero samples; bucket `i` holds samples in
/// `[2^(i-1), 2^i - 1]`; the last bucket absorbs the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts.
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `p`-th percentile (`0.0..=1.0`): the upper bound of
    /// the bucket where the cumulative count crosses `p * count`,
    /// clamped to `sum` — no single sample can exceed the sum of all
    /// samples, and the open-ended top bucket has no finite upper bound
    /// of its own.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let bound = if i == 0 {
                    0
                } else if i >= 31 {
                    // The wire format carries 32 log2 buckets; the last
                    // absorbs everything ≥ 2^30 and is open-ended.
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return bound.min(self.sum);
            }
        }
        self.sum
    }
}

impl WireWrite for HistogramSample {
    fn write(&self, w: &mut WireWriter) {
        w.string(&self.name);
        w.u64(self.count);
        w.u64(self.sum);
        w.list(&self.buckets);
    }
}

impl WireRead for HistogramSample {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(HistogramSample {
            name: r.string()?,
            count: r.u64()?,
            sum: r.u64()?,
            buckets: r.list()?,
        })
    }
}

/// The full registry snapshot carried by [`Reply::ServerStats`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerStatsData {
    /// Engine tick index the snapshot was taken at.
    pub captured_at_tick: u64,
    /// Device time (8 kHz frames) at snapshot.
    pub device_time: u64,
    /// Per-opcode dispatch counts, indexed by request opcode
    /// (`Request::NAMES` names them).
    pub per_opcode: Vec<u64>,
    /// Every registered counter.
    pub counters: Vec<CounterSample>,
    /// Every registered gauge.
    pub gauges: Vec<GaugeSample>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSample>,
}

impl ServerStatsData {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl WireWrite for ServerStatsData {
    fn write(&self, w: &mut WireWriter) {
        w.u64(self.captured_at_tick);
        w.u64(self.device_time);
        w.list(&self.per_opcode);
        w.list(&self.counters);
        w.list(&self.gauges);
        w.list(&self.histograms);
    }
}

impl WireRead for ServerStatsData {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(ServerStatsData {
            captured_at_tick: r.u64()?,
            device_time: r.u64()?,
            per_opcode: r.list()?,
            counters: r.list()?,
            gauges: r.list()?,
            histograms: r.list()?,
        })
    }
}

/// Per-client accounting carried by [`Reply::ClientList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientStatsData {
    /// The client's connection id.
    pub client: crate::ids::ClientId,
    /// Diagnostic name from setup.
    pub name: String,
    /// Requests dispatched for this client.
    pub requests: u64,
    /// Replies sent to this client.
    pub replies: u64,
    /// Events sent to this client.
    pub events: u64,
    /// Errors sent to this client.
    pub errors: u64,
    /// Request payload bytes received from this client.
    pub bytes_in: u64,
    /// Payload bytes sent to this client.
    pub bytes_out: u64,
    /// LOUDs the client currently owns.
    pub louds: u32,
    /// Virtual devices the client currently owns.
    pub vdevs: u32,
    /// Wires the client currently owns.
    pub wires: u32,
    /// Sounds the client currently owns.
    pub sounds: u32,
}

impl WireWrite for ClientStatsData {
    fn write(&self, w: &mut WireWriter) {
        self.client.write(w);
        w.string(&self.name);
        w.u64(self.requests);
        w.u64(self.replies);
        w.u64(self.events);
        w.u64(self.errors);
        w.u64(self.bytes_in);
        w.u64(self.bytes_out);
        w.u32(self.louds);
        w.u32(self.vdevs);
        w.u32(self.wires);
        w.u32(self.sounds);
    }
}

impl WireRead for ClientStatsData {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(ClientStatsData {
            client: crate::ids::ClientId::read(r)?,
            name: r.string()?,
            requests: r.u64()?,
            replies: r.u64()?,
            events: r.u64()?,
            errors: r.u64()?,
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
            louds: r.u32()?,
            vdevs: r.u32()?,
            wires: r.u32()?,
            sounds: r.u32()?,
        })
    }
}

/// One stage of a request's wire-to-engine lifecycle, as stamped by
/// the server's flight recorder (§10). Stages are ordered: a completed
/// trace carries a strictly increasing stage sequence with
/// non-decreasing timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceStage {
    /// Inbound frame reassembly complete: the request frame was fully
    /// decoded on its I/O worker.
    Ingress = 0,
    /// Dispatch finished, on the fast (sharded) or slow (global) path.
    Dispatch = 1,
    /// The engine tick that first serviced the queue action produced by
    /// this request (enqueued commands only).
    Engine = 2,
    /// The correlated reply or completion event was queued on the
    /// client's outbound channel.
    Outbound = 3,
    /// The writer drained the correlated message into the socket buffer.
    Drain = 4,
}

impl TraceStage {
    /// Number of trace stages.
    pub const COUNT: usize = 5;

    /// Stage names, indexed by stage number; these are the `<stage>` in
    /// the server's `trace_stage_<stage>_us` histogram names.
    pub const NAMES: [&'static str; TraceStage::COUNT] =
        ["ingress", "dispatch", "engine", "outbound", "drain"];

    /// The stage's snake_case name.
    pub fn name(self) -> &'static str {
        TraceStage::NAMES[self as usize]
    }

    /// Decodes a stage number.
    pub fn from_u8(v: u8) -> Option<TraceStage> {
        match v {
            0 => Some(TraceStage::Ingress),
            1 => Some(TraceStage::Dispatch),
            2 => Some(TraceStage::Engine),
            3 => Some(TraceStage::Outbound),
            4 => Some(TraceStage::Drain),
            _ => None,
        }
    }
}

impl WireWrite for TraceStage {
    fn write(&self, w: &mut WireWriter) {
        w.u8(*self as u8); // cast-ok: discriminants are 0..5
    }
}

impl WireRead for TraceStage {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let v = r.u8()?;
        TraceStage::from_u8(v).ok_or(CodecError::BadTag("TraceStage", u32::from(v)))
    }
}

/// One stamped stage within a [`TraceData`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStageSample {
    /// Which stage was stamped.
    pub stage: TraceStage,
    /// Microseconds since the server's telemetry epoch.
    pub at_us: u64,
}

impl WireWrite for TraceStageSample {
    fn write(&self, w: &mut WireWriter) {
        self.stage.write(w);
        w.u64(self.at_us);
    }
}

impl WireRead for TraceStageSample {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(TraceStageSample { stage: TraceStage::read(r)?, at_us: r.u64()? })
    }
}

/// One completed request trace carried by [`Reply::Traces`]: the
/// request's identity plus its stamped stage timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceData {
    /// Connection the request arrived on.
    pub client: crate::ids::ClientId,
    /// The request's sequence number on that connection.
    pub seq: u32,
    /// The request's opcode (`Request::NAMES` names it).
    pub opcode: u8,
    /// Whether dispatch ran on the sharded fast path.
    pub fast_path: bool,
    /// Time spent waiting to acquire the shard stripe (fast path only).
    pub shard_wait_us: u64,
    /// Engine tick that first serviced the request's queue action
    /// (0 when no engine stage was recorded).
    pub engine_tick: u64,
    /// Stamped stages in lifecycle order.
    pub stages: Vec<TraceStageSample>,
}

impl TraceData {
    /// Timestamp of `stage`, if it was stamped.
    pub fn stage_at(&self, stage: TraceStage) -> Option<u64> {
        self.stages.iter().find(|s| s.stage == stage).map(|s| s.at_us)
    }

    /// End-to-end microseconds from the first stamp to the last
    /// (0 for traces with fewer than two stamps).
    pub fn total_us(&self) -> u64 {
        match (self.stages.first(), self.stages.last()) {
            (Some(first), Some(last)) => last.at_us.saturating_sub(first.at_us),
            _ => 0,
        }
    }
}

impl WireWrite for TraceData {
    fn write(&self, w: &mut WireWriter) {
        self.client.write(w);
        w.u32(self.seq);
        w.u8(self.opcode);
        w.bool(self.fast_path);
        w.u64(self.shard_wait_us);
        w.u64(self.engine_tick);
        w.list(&self.stages);
    }
}

impl WireRead for TraceData {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(TraceData {
            client: crate::ids::ClientId::read(r)?,
            seq: r.u32()?,
            opcode: r.u8()?,
            fast_path: r.bool()?,
            shard_wait_us: r.u64()?,
            engine_tick: r.u64()?,
            stages: r.list()?,
        })
    }
}

/// The body of a reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to `QueryVDeviceAttributes`: the full constraint list plus,
    /// if the LOUD is mapped, the chosen physical device (paper §5.3).
    VDeviceAttributes {
        /// Effective attribute list.
        attrs: Vec<Attribute>,
        /// Physical device selected at mapping time.
        mapped_device: Option<DeviceId>,
    },
    /// Answer to `GetDeviceControl`.
    DeviceControl {
        /// The control value, or `None` if the control is unset.
        value: Option<Vec<u8>>,
    },
    /// Answer to `QueryWire`.
    WireInfo {
        /// Source device.
        src: VDeviceId,
        /// Source port.
        src_port: u8,
        /// Sink device.
        dst: VDeviceId,
        /// Sink port.
        dst_port: u8,
        /// Declared type of the data path.
        wire_type: WireType,
    },
    /// Answer to `QueryDeviceWires`.
    DeviceWires {
        /// Wires attached to the queried device.
        wires: Vec<WireId>,
    },
    /// Answer to `QueryQueue`.
    QueueInfo {
        /// Current queue state.
        state: QueueState,
        /// Entries not yet started.
        pending: u32,
        /// Queue-relative time in sample frames at the queue's nominal
        /// rate (suspends while paused, paper §5.5).
        relative_frames: u64,
    },
    /// Answer to `ReadSoundData`.
    SoundData {
        /// Encoded bytes starting at the requested offset.
        data: Vec<u8>,
        /// Whether the read reached the current end of the sound.
        at_end: bool,
    },
    /// Answer to `QuerySound`.
    SoundInfo {
        /// The sound's type.
        stype: SoundType,
        /// Encoded length in bytes currently stored.
        bytes: u64,
        /// Length in sample frames currently stored.
        frames: u64,
        /// Whether the sound is complete (`eof` written).
        complete: bool,
    },
    /// Answer to `ListCatalog`.
    Catalog {
        /// Names of sounds in the catalogue (or of catalogues, if the
        /// empty catalogue name was queried).
        names: Vec<String>,
    },
    /// Answer to `InternAtom`.
    Atom {
        /// The interned atom.
        atom: Atom,
    },
    /// Answer to `GetAtomName`.
    AtomName {
        /// The atom's name.
        name: String,
    },
    /// Answer to `GetProperty`.
    Property {
        /// The property, or `None` if unset.
        property: Option<Property>,
    },
    /// Answer to `ListProperties`.
    PropertyList {
        /// Names of properties present on the resource.
        names: Vec<Atom>,
    },
    /// Answer to `QueryDeviceLoud`.
    DeviceLoud {
        /// Every physical device controlled by the server.
        devices: Vec<PhysDeviceInfo>,
        /// Permanent connections between them.
        hard_wires: Vec<HardWire>,
    },
    /// Answer to `QueryActiveStack` (top of stack first).
    ActiveStack {
        /// Mapped root LOUDs in stacking order.
        entries: Vec<StackEntry>,
    },
    /// Answer to `GetServerInfo`.
    ServerInfo {
        /// Human-readable vendor string.
        vendor: String,
        /// Protocol major version.
        protocol_major: u16,
        /// Protocol minor version.
        protocol_minor: u16,
        /// Server device time: sample frames elapsed at the server's
        /// nominal 8 kHz tick rate since startup.
        device_time: u64,
    },
    /// Answer to `Sync`: an empty acknowledgement.
    Sync,
    /// Answer to `QueryServerStats`: the telemetry registry snapshot.
    ServerStats {
        /// The snapshot.
        stats: ServerStatsData,
    },
    /// Answer to `ListClients`: per-client resource accounting.
    ClientList {
        /// One entry per connected client, in connection order.
        clients: Vec<ClientStatsData>,
    },
    /// Answer to `QueryTraces`: completed traces from the flight
    /// recorder, most recent first.
    Traces {
        /// The retained traces (slowest kept preferentially).
        traces: Vec<TraceData>,
    },
}

impl WireWrite for Reply {
    fn write(&self, w: &mut WireWriter) {
        match self {
            Reply::VDeviceAttributes { attrs, mapped_device } => {
                w.u8(0);
                w.list(attrs);
                w.option(mapped_device);
            }
            Reply::DeviceControl { value } => {
                w.u8(1);
                match value {
                    None => w.bool(false),
                    Some(v) => {
                        w.bool(true);
                        w.bytes(v);
                    }
                }
            }
            Reply::WireInfo { src, src_port, dst, dst_port, wire_type } => {
                w.u8(2);
                src.write(w);
                w.u8(*src_port);
                dst.write(w);
                w.u8(*dst_port);
                wire_type.write(w);
            }
            Reply::DeviceWires { wires } => {
                w.u8(3);
                w.list(wires);
            }
            Reply::QueueInfo { state, pending, relative_frames } => {
                w.u8(4);
                state.write(w);
                w.u32(*pending);
                w.u64(*relative_frames);
            }
            Reply::SoundData { data, at_end } => {
                w.u8(5);
                w.bytes(data);
                w.bool(*at_end);
            }
            Reply::SoundInfo { stype, bytes, frames, complete } => {
                w.u8(6);
                stype.write(w);
                w.u64(*bytes);
                w.u64(*frames);
                w.bool(*complete);
            }
            Reply::Catalog { names } => {
                w.u8(7);
                w.list(names);
            }
            Reply::Atom { atom } => {
                w.u8(8);
                atom.write(w);
            }
            Reply::AtomName { name } => {
                w.u8(9);
                w.string(name);
            }
            Reply::Property { property } => {
                w.u8(10);
                w.option(property);
            }
            Reply::PropertyList { names } => {
                w.u8(11);
                w.list(names);
            }
            Reply::DeviceLoud { devices, hard_wires } => {
                w.u8(12);
                w.list(devices);
                w.list(hard_wires);
            }
            Reply::ActiveStack { entries } => {
                w.u8(13);
                w.list(entries);
            }
            Reply::ServerInfo { vendor, protocol_major, protocol_minor, device_time } => {
                w.u8(14);
                w.string(vendor);
                w.u16(*protocol_major);
                w.u16(*protocol_minor);
                w.u64(*device_time);
            }
            Reply::Sync => w.u8(15),
            Reply::ServerStats { stats } => {
                w.u8(16);
                stats.write(w);
            }
            Reply::ClientList { clients } => {
                w.u8(17);
                w.list(clients);
            }
            Reply::Traces { traces } => {
                w.u8(18);
                w.list(traces);
            }
        }
    }
}

impl WireRead for Reply {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Reply::VDeviceAttributes { attrs: r.list()?, mapped_device: r.option()? },
            1 => {
                let value = if r.bool()? { Some(r.bytes()?) } else { None };
                Reply::DeviceControl { value }
            }
            2 => Reply::WireInfo {
                src: VDeviceId::read(r)?,
                src_port: r.u8()?,
                dst: VDeviceId::read(r)?,
                dst_port: r.u8()?,
                wire_type: WireType::read(r)?,
            },
            3 => Reply::DeviceWires { wires: r.list()? },
            4 => Reply::QueueInfo {
                state: QueueState::read(r)?,
                pending: r.u32()?,
                relative_frames: r.u64()?,
            },
            5 => Reply::SoundData { data: r.bytes()?, at_end: r.bool()? },
            6 => Reply::SoundInfo {
                stype: SoundType::read(r)?,
                bytes: r.u64()?,
                frames: r.u64()?,
                complete: r.bool()?,
            },
            7 => Reply::Catalog { names: r.list()? },
            8 => Reply::Atom { atom: Atom::read(r)? },
            9 => Reply::AtomName { name: r.string()? },
            10 => Reply::Property { property: r.option()? },
            11 => Reply::PropertyList { names: r.list()? },
            12 => Reply::DeviceLoud { devices: r.list()?, hard_wires: r.list()? },
            13 => Reply::ActiveStack { entries: r.list()? },
            14 => Reply::ServerInfo {
                vendor: r.string()?,
                protocol_major: r.u16()?,
                protocol_minor: r.u16()?,
                device_time: r.u64()?,
            },
            15 => Reply::Sync,
            16 => Reply::ServerStats { stats: ServerStatsData::read(r)? },
            17 => Reply::ClientList { clients: r.list()? },
            18 => Reply::Traces { traces: r.list()? },
            other => return Err(CodecError::BadTag("Reply", u32::from(other))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Encoding;

    #[test]
    fn replies_roundtrip() {
        let replies = vec![
            Reply::VDeviceAttributes {
                attrs: vec![Attribute::Encoding(Encoding::ULaw)],
                mapped_device: Some(DeviceId(4)),
            },
            Reply::DeviceControl { value: None },
            Reply::DeviceControl { value: Some(vec![1, 2]) },
            Reply::WireInfo {
                src: VDeviceId(1),
                src_port: 0,
                dst: VDeviceId(2),
                dst_port: 1,
                wire_type: WireType::Any,
            },
            Reply::DeviceWires { wires: vec![WireId(9)] },
            Reply::QueueInfo { state: QueueState::Started, pending: 3, relative_frames: 800 },
            Reply::SoundData { data: vec![0, 1], at_end: true },
            Reply::SoundInfo {
                stype: SoundType::TELEPHONE,
                bytes: 8000,
                frames: 8000,
                complete: true,
            },
            Reply::Catalog { names: vec!["beep".into()] },
            Reply::Atom { atom: Atom(7) },
            Reply::AtomName { name: "DOMAIN".into() },
            Reply::Property { property: None },
            Reply::Property {
                property: Some(Property { name: Atom(1), type_: Atom(2), value: vec![3] }),
            },
            Reply::PropertyList { names: vec![Atom(1), Atom(2)] },
            Reply::DeviceLoud {
                devices: vec![PhysDeviceInfo {
                    id: DeviceId(1),
                    class: DeviceClass::Output,
                    attrs: vec![Attribute::Name("speaker".into())],
                    domains: vec![0],
                }],
                hard_wires: vec![HardWire {
                    src: DeviceId(1),
                    src_port: 0,
                    dst: DeviceId(2),
                    dst_port: 0,
                }],
            },
            Reply::ActiveStack {
                entries: vec![StackEntry { loud: LoudId(0x100), active: true }],
            },
            Reply::ServerInfo {
                vendor: "desktop-audio".into(),
                protocol_major: 1,
                protocol_minor: 0,
                device_time: 123,
            },
            Reply::Sync,
            Reply::ServerStats {
                stats: ServerStatsData {
                    captured_at_tick: 42,
                    device_time: 336_000,
                    per_opcode: vec![0, 3, 1],
                    counters: vec![CounterSample {
                        name: "dispatch_requests_total".into(),
                        value: 4,
                    }],
                    gauges: vec![GaugeSample { name: "queue_depth".into(), value: -1 }],
                    histograms: vec![HistogramSample {
                        name: "engine_tick_us".into(),
                        count: 2,
                        sum: 300,
                        buckets: vec![0, 0, 0, 0, 0, 0, 0, 1, 1],
                    }],
                },
            },
            Reply::ClientList {
                clients: vec![ClientStatsData {
                    client: crate::ids::ClientId(1),
                    name: "audiostat".into(),
                    requests: 10,
                    replies: 2,
                    events: 1,
                    errors: 0,
                    bytes_in: 640,
                    bytes_out: 128,
                    louds: 1,
                    vdevs: 2,
                    wires: 1,
                    sounds: 1,
                }],
            },
            Reply::Traces {
                traces: vec![TraceData {
                    client: crate::ids::ClientId(3),
                    seq: 17,
                    opcode: 19,
                    fast_path: true,
                    shard_wait_us: 2,
                    engine_tick: 41,
                    stages: vec![
                        TraceStageSample { stage: TraceStage::Ingress, at_us: 100 },
                        TraceStageSample { stage: TraceStage::Dispatch, at_us: 130 },
                        TraceStageSample { stage: TraceStage::Engine, at_us: 900 },
                        TraceStageSample { stage: TraceStage::Outbound, at_us: 905 },
                        TraceStageSample { stage: TraceStage::Drain, at_us: 940 },
                    ],
                }],
            },
        ];
        for reply in &replies {
            assert_eq!(&Reply::from_wire(&reply.to_wire()).unwrap(), reply);
        }
    }

    #[test]
    fn trace_data_helpers() {
        let trace = TraceData {
            client: crate::ids::ClientId(1),
            seq: 5,
            opcode: 19,
            fast_path: false,
            shard_wait_us: 0,
            engine_tick: 7,
            stages: vec![
                TraceStageSample { stage: TraceStage::Ingress, at_us: 50 },
                TraceStageSample { stage: TraceStage::Dispatch, at_us: 80 },
                TraceStageSample { stage: TraceStage::Drain, at_us: 230 },
            ],
        };
        assert_eq!(trace.stage_at(TraceStage::Ingress), Some(50));
        assert_eq!(trace.stage_at(TraceStage::Engine), None);
        assert_eq!(trace.total_us(), 180);
        assert_eq!(TraceStage::Engine.name(), "engine");
        assert_eq!(TraceStage::from_u8(4), Some(TraceStage::Drain));
        assert_eq!(TraceStage::from_u8(5), None);
        for (i, name) in TraceStage::NAMES.iter().enumerate() {
            let stage = TraceStage::from_u8(i as u8).expect("dense stage numbers");
            assert_eq!(stage.name(), *name);
        }
    }

    #[test]
    fn stats_lookup_helpers() {
        let stats = ServerStatsData {
            captured_at_tick: 1,
            device_time: 80,
            per_opcode: vec![],
            counters: vec![CounterSample { name: "a_total".into(), value: 7 }],
            gauges: vec![GaugeSample { name: "depth".into(), value: -3 }],
            histograms: vec![HistogramSample {
                name: "lat_us".into(),
                count: 4,
                sum: 40,
                // Buckets: one zero, one in [1,1], two in [8,15].
                buckets: vec![1, 1, 0, 0, 2],
            }],
        };
        assert_eq!(stats.counter("a_total"), Some(7));
        assert_eq!(stats.counter("missing"), None);
        assert_eq!(stats.gauge("depth"), Some(-3));
        let h = stats.histogram("lat_us").expect("present");
        assert_eq!(h.percentile(0.25), 0);
        assert_eq!(h.percentile(0.5), 1);
        assert_eq!(h.percentile(0.99), 15);
        assert!((h.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_clamped_at_the_saturated_top_bucket() {
        // One sample of ~3e9 lands in the open-ended bucket 31; the
        // reconstruction must not report u64::MAX (or any value above
        // the sum, which bounds every individual sample).
        let mut buckets = vec![0u64; 32];
        buckets[31] = 1;
        let h = HistogramSample {
            name: "lat_us".into(),
            count: 1,
            sum: 3_000_000_000,
            buckets,
        };
        assert_eq!(h.percentile(0.99), 3_000_000_000);
        assert_eq!(h.percentile(1.0), 3_000_000_000);

        // Mixed case: small samples plus one saturated outlier — p50
        // stays in the small bucket, p100 clamps to the sum.
        let mut buckets = vec![0u64; 32];
        buckets[3] = 3; // three samples in [4, 7]
        buckets[31] = 1;
        let h = HistogramSample { name: "lat_us".into(), count: 4, sum: 5_000_000_018, buckets };
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.percentile(1.0), 5_000_000_018);
    }
}
