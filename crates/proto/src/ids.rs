//! Typed resource identifiers.
//!
//! Clients allocate resource ids (LOUDs, virtual devices, wires, sounds)
//! from the range handed to them at connection setup, X-style: the setup
//! reply carries an `id_base` and `id_mask`; every id the client creates
//! must satisfy `id & !mask == base`. Server-assigned identities — physical
//! devices in the device LOUD and interned atoms — live in their own
//! namespaces.

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw 32-bit id value.
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl WireWrite for $name {
            fn write(&self, w: &mut WireWriter) {
                w.u32(self.0);
            }
        }

        impl WireRead for $name {
            fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
                Ok($name(r.u32()?))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }
    };
}

id_type! {
    /// Identifies a client connection, assigned by the server.
    ClientId
}

id_type! {
    /// A client-allocated id naming a logical audio device (LOUD).
    LoudId
}

id_type! {
    /// A client-allocated id naming a virtual device within a LOUD.
    VDeviceId
}

id_type! {
    /// A client-allocated id naming a wire between two virtual-device ports.
    WireId
}

id_type! {
    /// A client-allocated id naming a sound (an audio data repository).
    SoundId
}

id_type! {
    /// A server-assigned id naming a physical device in the device LOUD.
    ///
    /// Unlike client resources, device ids are stable for the life of the
    /// server and shared by all clients; passing one in a
    /// [`crate::types::Attribute::Device`] attribute pins a virtual device
    /// to that physical device (paper §5.3).
    DeviceId
}

id_type! {
    /// A server-interned name, used for properties and device controls.
    Atom
}

/// A resource id of any client-allocated kind, used where the protocol
/// accepts several (property targets, event selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceId {
    /// A LOUD.
    Loud(LoudId),
    /// A virtual device.
    VDevice(VDeviceId),
    /// A sound.
    Sound(SoundId),
    /// A physical device in the device LOUD.
    Device(DeviceId),
}

impl WireWrite for ResourceId {
    fn write(&self, w: &mut WireWriter) {
        match self {
            ResourceId::Loud(id) => {
                w.u8(0);
                id.write(w);
            }
            ResourceId::VDevice(id) => {
                w.u8(1);
                id.write(w);
            }
            ResourceId::Sound(id) => {
                w.u8(2);
                id.write(w);
            }
            ResourceId::Device(id) => {
                w.u8(3);
                id.write(w);
            }
        }
    }
}

impl WireRead for ResourceId {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => ResourceId::Loud(LoudId::read(r)?),
            1 => ResourceId::VDevice(VDeviceId::read(r)?),
            2 => ResourceId::Sound(SoundId::read(r)?),
            3 => ResourceId::Device(DeviceId::read(r)?),
            other => return Err(CodecError::BadTag("ResourceId", u32::from(other))),
        })
    }
}

impl From<LoudId> for ResourceId {
    fn from(v: LoudId) -> Self {
        ResourceId::Loud(v)
    }
}

impl From<VDeviceId> for ResourceId {
    fn from(v: VDeviceId) -> Self {
        ResourceId::VDevice(v)
    }
}

impl From<SoundId> for ResourceId {
    fn from(v: SoundId) -> Self {
        ResourceId::Sound(v)
    }
}

impl From<DeviceId> for ResourceId {
    fn from(v: DeviceId) -> Self {
        ResourceId::Device(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::WireRead;

    #[test]
    fn id_roundtrip() {
        let id = LoudId(0x1234_5678);
        let bytes = id.to_wire();
        assert_eq!(LoudId::from_wire(&bytes).unwrap(), id);
    }

    #[test]
    fn resource_id_roundtrip() {
        for rid in [
            ResourceId::Loud(LoudId(1)),
            ResourceId::VDevice(VDeviceId(2)),
            ResourceId::Sound(SoundId(3)),
            ResourceId::Device(DeviceId(4)),
        ] {
            let bytes = rid.to_wire();
            assert_eq!(ResourceId::from_wire(&bytes).unwrap(), rid);
        }
    }

    #[test]
    fn resource_id_bad_tag() {
        assert!(ResourceId::from_wire(&[9, 0, 0, 0, 0]).is_err());
    }
}
