//! Low-level wire encoding.
//!
//! All protocol values are encoded little-endian. Variable-length data
//! (strings, byte blocks, lists) is prefixed with a `u32` element count.
//! Messages travel in frames: a 4-byte little-endian payload length, a
//! 1-byte [`FrameKind`] tag, then the payload. The encoding is deliberately
//! independent of host language and operating system (paper §4.1): nothing
//! here depends on `repr`, alignment, or endianness of the host.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum accepted frame payload, in bytes.
///
/// Large sound transfers must be split into multiple `WriteSoundData`
/// requests below this bound; the cap protects the server from a malformed
/// length word claiming a multi-gigabyte frame.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 24;

/// Tag distinguishing the message category of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: a [`crate::request::Request`] preceded by its
    /// sequence number.
    Request,
    /// Server → client: a [`crate::reply::Reply`] preceded by the sequence
    /// number of the request it answers.
    Reply,
    /// Server → client: an asynchronous [`crate::event::Event`].
    Event,
    /// Server → client: an asynchronous [`crate::error::ProtoError`].
    Error,
    /// Client → server: the connection [`crate::setup::SetupRequest`].
    Setup,
    /// Server → client: the connection [`crate::setup::SetupReply`].
    SetupReply,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Reply => 2,
            FrameKind::Event => 3,
            FrameKind::Error => 4,
            FrameKind::Setup => 5,
            FrameKind::SetupReply => 6,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            1 => FrameKind::Request,
            2 => FrameKind::Reply,
            3 => FrameKind::Event,
            4 => FrameKind::Error,
            5 => FrameKind::Setup,
            6 => FrameKind::SetupReply,
            other => return Err(CodecError::BadTag("FrameKind", u32::from(other))),
        })
    }
}

/// A complete protocol frame: a kind tag plus an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message category.
    pub kind: FrameKind,
    /// Encoded message payload.
    pub payload: Bytes,
}

impl Frame {
    /// Encodes an entire frame (header + payload) into a byte vector ready
    /// to be written to the transport.
    ///
    /// # Panics
    ///
    /// If the payload exceeds [`MAX_FRAME_PAYLOAD`]: such a frame could
    /// never be decoded, so a truncated length word must not be sent.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= MAX_FRAME_PAYLOAD,
            "frame payload of {} bytes exceeds MAX_FRAME_PAYLOAD",
            self.payload.len()
        );
        let len = u32::try_from(self.payload.len()).expect("payload bounded by MAX_FRAME_PAYLOAD");
        let mut out = Vec::with_capacity(self.payload.len() + 5);
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.kind.to_u8());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Attempts to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` does not yet hold a complete frame; the
    /// consumed bytes are removed from `buf` only on success.
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Frame>, CodecError> {
        if buf.len() < 5 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(CodecError::FrameTooLarge(len));
        }
        if buf.len() < 5 + len {
            return Ok(None);
        }
        buf.advance(4);
        let kind = FrameKind::from_u8(buf[0])?;
        buf.advance(1);
        let payload = buf.split_to(len).freeze();
        Ok(Some(Frame { kind, payload }))
    }
}

/// Errors arising while encoding or decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes mid-value.
    Truncated,
    /// An enum tag byte/word had no defined meaning.
    BadTag(&'static str, u32),
    /// A declared length exceeded [`MAX_FRAME_PAYLOAD`].
    FrameTooLarge(usize),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after a complete message was decoded.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "wire data truncated"),
            CodecError::BadTag(ty, v) => write!(f, "bad wire tag {v} for {ty}"),
            CodecError::FrameTooLarge(n) => write!(f, "frame payload of {n} bytes too large"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialises protocol values into a growable buffer.
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: BytesMut::with_capacity(64) }
    }

    /// Finishes writing and returns the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a little-endian `i16`.
    pub fn i16(&mut self, v: i16) {
        self.buf.put_i16_le(v);
    }

    /// Appends a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.put_i32_le(v);
    }

    /// Appends a count-prefixed byte block.
    ///
    /// # Panics
    ///
    /// If the block's length does not fit the `u32` count prefix — a
    /// silently wrapped count would desynchronise the decoder.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("byte block length exceeds u32 count prefix"));
        self.buf.put_slice(v);
    }

    /// Appends a count-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a count-prefixed list of encodable values.
    ///
    /// # Panics
    ///
    /// If the list's length does not fit the `u32` count prefix.
    pub fn list<T: WireWrite>(&mut self, items: &[T]) {
        self.u32(u32::try_from(items.len()).expect("list length exceeds u32 count prefix"));
        for item in items {
            item.write(self);
        }
    }

    /// Appends an optional value as a presence byte plus the value.
    pub fn option<T: WireWrite>(&mut self, v: &Option<T>) {
        match v {
            None => self.bool(false),
            Some(inner) => {
                self.bool(true);
                inner.write(self);
            }
        }
    }
}

impl Default for WireWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Deserialises protocol values from a byte slice.
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails with [`CodecError::TrailingBytes`] if any input remains.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool encoded as one byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i16`.
    pub fn i16(&mut self) -> Result<i16, CodecError> {
        let b = self.take(2)?;
        Ok(i16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a count-prefixed byte block.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME_PAYLOAD {
            return Err(CodecError::FrameTooLarge(n));
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a count-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a count-prefixed list of decodable values.
    pub fn list<T: WireRead>(&mut self) -> Result<Vec<T>, CodecError> {
        let n = self.u32()? as usize;
        // Guard against absurd counts before allocating; each element needs
        // at least one byte on the wire.
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::read(self)?);
        }
        Ok(out)
    }

    /// Reads an optional value encoded as a presence byte plus the value.
    pub fn option<T: WireRead>(&mut self) -> Result<Option<T>, CodecError> {
        if self.bool()? {
            Ok(Some(T::read(self)?))
        } else {
            Ok(None)
        }
    }
}

/// Types that can be serialised onto the wire.
pub trait WireWrite {
    /// Appends `self` to `w`.
    fn write(&self, w: &mut WireWriter);

    /// Convenience: encodes `self` into a standalone byte buffer.
    fn to_wire(&self) -> Bytes {
        let mut w = WireWriter::new();
        self.write(&mut w);
        w.finish()
    }
}

/// Types that can be deserialised from the wire.
pub trait WireRead: Sized {
    /// Reads one value from `r`.
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError>;

    /// Convenience: decodes a standalone byte buffer, requiring that every
    /// byte is consumed.
    fn from_wire(data: &[u8]) -> Result<Self, CodecError> {
        let mut r = WireReader::new(data);
        let v = Self::read(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

impl WireWrite for u8 {
    fn write(&self, w: &mut WireWriter) {
        w.u8(*self);
    }
}

impl WireRead for u8 {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.u8()
    }
}

impl WireWrite for u16 {
    fn write(&self, w: &mut WireWriter) {
        w.u16(*self);
    }
}

impl WireRead for u16 {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.u16()
    }
}

impl WireWrite for u32 {
    fn write(&self, w: &mut WireWriter) {
        w.u32(*self);
    }
}

impl WireRead for u32 {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl WireWrite for u64 {
    fn write(&self, w: &mut WireWriter) {
        w.u64(*self);
    }
}

impl WireRead for u64 {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl WireWrite for String {
    fn write(&self, w: &mut WireWriter) {
        w.string(self);
    }
}

impl WireRead for String {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        r.string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.i16(-123);
        w.i32(-1_000_000);
        w.bool(true);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.i16().unwrap(), -123);
        assert_eq!(r.i32().unwrap(), -1_000_000);
        assert!(r.bool().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn string_and_bytes_roundtrip() {
        let mut w = WireWriter::new();
        w.string("hello, wörld");
        w.bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.string().unwrap(), "hello, wörld");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncated_read_fails() {
        let mut w = WireWriter::new();
        w.u32(7);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes[..2]);
        assert_eq!(r.u32(), Err(CodecError::Truncated));
    }

    #[test]
    fn list_with_absurd_count_fails_without_alloc() {
        // A count of u32::MAX with no element bytes must fail fast.
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(r.list::<u32>().is_err());
    }

    #[test]
    fn option_roundtrip() {
        let mut w = WireWriter::new();
        w.option::<u32>(&None);
        w.option(&Some(9u32));
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.option::<u32>().unwrap(), None);
        assert_eq!(r.option::<u32>().unwrap(), Some(9));
    }

    #[test]
    fn frame_roundtrip() {
        let frame = Frame { kind: FrameKind::Event, payload: Bytes::from_static(b"payload") };
        let encoded = frame.encode();
        let mut buf = BytesMut::from(&encoded[..]);
        let decoded = Frame::decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded, frame);
        assert!(buf.is_empty());
    }

    #[test]
    fn frame_partial_returns_none() {
        let frame = Frame { kind: FrameKind::Reply, payload: Bytes::from_static(b"abcdef") };
        let encoded = frame.encode();
        for cut in 0..encoded.len() {
            let mut buf = BytesMut::from(&encoded[..cut]);
            assert_eq!(Frame::decode(&mut buf).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn frame_rejects_oversize() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME_PAYLOAD + 1) as u32);
        buf.put_u8(1);
        assert!(Frame::decode(&mut buf).is_err());
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = Frame { kind: FrameKind::Request, payload: Bytes::from_static(b"one") };
        let b = Frame { kind: FrameKind::Error, payload: Bytes::from_static(b"two2") };
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a.encode());
        buf.extend_from_slice(&b.encode());
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap(), a);
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap(), b);
        assert_eq!(Frame::decode(&mut buf).unwrap(), None);
    }
}
