//! Byte-stream transports.
//!
//! Clients and server communicate over "a reliable full duplex, 8-bit
//! byte stream" (paper §4.1). Two transports implement that contract: TCP
//! (the distributed case of the title) and an in-process duplex pipe
//! (fast, allocation-cheap, used heavily by tests and by applications
//! embedding a server).
//!
//! A [`Duplex`] owns both directions; [`Duplex::into_split`] separates
//! them so a connection can be serviced by independent reader and writer
//! threads (historically the server's per-client thread pair; today's
//! server instead drives many connections from a few event-loop workers
//! over the non-blocking [`Pollable`] byte interface).

use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use crate::codec::{CodecError, Frame};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

/// Errors surfaced by transports.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the stream.
    Closed,
    /// An I/O error occurred.
    Io(std::io::Error),
    /// A frame failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by peer"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Codec(e) => write!(f, "transport framing error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TransportError::Closed
        } else {
            TransportError::Io(e)
        }
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

/// The sending half of a connection.
pub trait TxHalf: Send {
    /// Sends one frame.
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError>;
}

/// The receiving half of a connection.
pub trait RxHalf: Send {
    /// Receives the next frame, blocking up to `timeout` (`None` = block
    /// indefinitely). Returns `Ok(None)` on timeout.
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError>;
}

/// A full-duplex connection.
pub struct Duplex {
    tx: Box<dyn TxHalf>,
    rx: Box<dyn RxHalf>,
}

impl Duplex {
    /// Builds a duplex from halves.
    pub fn new(tx: Box<dyn TxHalf>, rx: Box<dyn RxHalf>) -> Self {
        Duplex { tx, rx }
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.tx.send(frame)
    }

    /// Receives the next frame (see [`RxHalf::recv`]).
    pub fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError> {
        self.rx.recv(timeout)
    }

    /// Splits into independent halves for two-thread servicing.
    pub fn into_split(self) -> (Box<dyn TxHalf>, Box<dyn RxHalf>) {
        (self.tx, self.rx)
    }

    /// Wraps a connected TCP socket.
    pub fn tcp(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let write = stream.try_clone()?;
        Ok(Duplex {
            tx: Box::new(TcpTx { stream: write }),
            rx: Box::new(TcpRx { stream, buf: BytesMut::with_capacity(8192) }),
        })
    }
}

struct TcpTx {
    stream: TcpStream,
}

impl TxHalf for TcpTx {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.stream.write_all(&frame.encode())?;
        Ok(())
    }
}

struct TcpRx {
    stream: TcpStream,
    buf: BytesMut,
}

impl RxHalf for TcpRx {
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError> {
        loop {
            if let Some(frame) = Frame::decode(&mut self.buf)? {
                return Ok(Some(frame));
            }
            self.stream.set_read_timeout(timeout)?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

struct PipeTx {
    tx: Sender<Frame>,
}

impl TxHalf for PipeTx {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.tx.send(frame.clone()).map_err(|_| TransportError::Closed)
    }
}

struct PipeRx {
    rx: Receiver<Frame>,
}

impl RxHalf for PipeRx {
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError> {
        match timeout {
            None => self.rx.recv().map(Some).map_err(|_| TransportError::Closed),
            Some(t) => match self.rx.recv_timeout(t) {
                Ok(f) => Ok(Some(f)),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
            },
        }
    }
}

// ---- non-blocking byte transports (the server's connection plane) ------

/// Wake callback registered by an event-loop worker: invoked whenever a
/// [`Pollable`] that previously returned `WouldBlock` may have become
/// readable or writable again.
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// A non-blocking byte stream, the readiness abstraction the server's
/// event-loop workers drive. Both operations must never block: they
/// return `ErrorKind::WouldBlock` when no progress is possible right
/// now. Length-prefixed frame reassembly happens above this interface,
/// identically for every transport.
pub trait Pollable: Send {
    /// Reads available bytes into `buf`. `Ok(0)` means the peer closed
    /// the stream and every buffered byte has been delivered (EOF).
    fn try_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
    /// Writes as much of `buf` as fits right now, returning how much.
    fn try_write(&mut self, buf: &[u8]) -> std::io::Result<usize>;
    /// Registers the worker's wake callback. Transports without edge
    /// notification (plain TCP here) may ignore it; their worker polls
    /// on a short park timeout instead.
    fn set_waker(&mut self, waker: Waker);
}

/// [`Pollable`] over a TCP socket (switched to non-blocking mode).
pub struct TcpPoll {
    stream: TcpStream,
}

impl TcpPoll {
    /// Wraps a connected socket, enabling nodelay and non-blocking mode.
    pub fn new(stream: TcpStream) -> std::io::Result<TcpPoll> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(TcpPoll { stream })
    }
}

impl Pollable for TcpPoll {
    fn try_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.stream.read(buf)
    }

    fn try_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.stream.write(buf)
    }

    fn set_waker(&mut self, _waker: Waker) {}
}

/// Byte budget per direction of an in-process byte pipe. Small enough
/// that a stalled peer exerts backpressure, large enough to hold many
/// frames in flight.
const BYTE_PIPE_CAP: usize = 1 << 18;

/// One direction of a byte pipe: a bounded byte queue with a blocking
/// (client) end and a non-blocking, waker-notified (server) end.
struct DirState {
    buf: VecDeque<u8>,
    /// The writing end dropped; readers drain the buffer then see EOF.
    producer_closed: bool,
    /// The reading end dropped; writes fail immediately.
    consumer_closed: bool,
    /// Wakes the server-side event loop on readability/writability.
    waker: Option<Waker>,
}

struct Dir {
    state: StdMutex<DirState>,
    cv: Condvar,
}

impl Dir {
    fn new() -> Arc<Dir> {
        Arc::new(Dir {
            state: StdMutex::new(DirState {
                buf: VecDeque::new(),
                producer_closed: false,
                consumer_closed: false,
                waker: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DirState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Takes a clone of the waker (to invoke outside the lock).
    fn waker_of(st: &DirState) -> Option<Waker> {
        st.waker.clone()
    }
}

/// Client-side sending half: blocking frame writes into the c2s queue.
struct BytePipeTx {
    dir: Arc<Dir>,
}

impl TxHalf for BytePipeTx {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let bytes = frame.encode();
        let mut off = 0usize;
        let mut st = self.dir.lock();
        while off < bytes.len() {
            if st.consumer_closed {
                return Err(TransportError::Closed);
            }
            let space = BYTE_PIPE_CAP.saturating_sub(st.buf.len());
            if space == 0 {
                st = self.dir.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let n = space.min(bytes.len() - off);
            st.buf.extend(&bytes[off..off + n]);
            off += n;
            // New bytes are readable on the server side.
            let waker = Dir::waker_of(&st);
            drop(st);
            if let Some(w) = waker {
                w();
            }
            st = self.dir.lock();
        }
        drop(st);
        Ok(())
    }
}

impl Drop for BytePipeTx {
    fn drop(&mut self) {
        let mut st = self.dir.lock();
        st.producer_closed = true;
        let waker = Dir::waker_of(&st);
        drop(st);
        self.dir.cv.notify_all();
        if let Some(w) = waker {
            w();
        }
    }
}

/// Client-side receiving half: blocking frame reads from the s2c queue,
/// reassembling frames from the byte stream.
struct BytePipeRx {
    dir: Arc<Dir>,
    assembly: BytesMut,
}

impl RxHalf for BytePipeRx {
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError> {
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            if let Some(frame) = Frame::decode(&mut self.assembly)? {
                return Ok(Some(frame));
            }
            let mut st = self.dir.lock();
            if !st.buf.is_empty() {
                let (a, b) = st.buf.as_slices();
                self.assembly.extend_from_slice(a);
                self.assembly.extend_from_slice(b);
                st.buf.clear();
                // Freed write space: the server may be waiting to flush.
                let waker = Dir::waker_of(&st);
                drop(st);
                self.dir.cv.notify_all();
                if let Some(w) = waker {
                    w();
                }
                continue;
            }
            if st.producer_closed {
                // The server is gone and the stream is fully drained; a
                // partial trailing frame can never complete.
                return Err(TransportError::Closed);
            }
            match deadline {
                None => {
                    let _st = self.dir.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        return Ok(None);
                    }
                    let (_st, _res) = self
                        .dir
                        .cv
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }
}

impl Drop for BytePipeRx {
    fn drop(&mut self) {
        let mut st = self.dir.lock();
        st.consumer_closed = true;
        let waker = Dir::waker_of(&st);
        drop(st);
        self.dir.cv.notify_all();
        if let Some(w) = waker {
            w();
        }
    }
}

/// Server-side [`Pollable`] over both directions of a byte pipe.
pub struct BytePipePoll {
    c2s: Arc<Dir>,
    s2c: Arc<Dir>,
}

impl Pollable for BytePipePoll {
    fn try_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut st = self.c2s.lock();
        if st.buf.is_empty() {
            if st.producer_closed {
                return Ok(0);
            }
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(st.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = st.buf.pop_front().expect("len checked");
        }
        drop(st);
        // Freed space: a blocked client writer can continue.
        self.c2s.cv.notify_all();
        Ok(n)
    }

    fn try_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut st = self.s2c.lock();
        if st.consumer_closed {
            return Err(std::io::ErrorKind::BrokenPipe.into());
        }
        let space = BYTE_PIPE_CAP.saturating_sub(st.buf.len());
        if space == 0 {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let n = space.min(buf.len());
        st.buf.extend(&buf[..n]);
        drop(st);
        self.s2c.cv.notify_all();
        Ok(n)
    }

    fn set_waker(&mut self, waker: Waker) {
        self.c2s.lock().waker = Some(Arc::clone(&waker));
        self.s2c.lock().waker = Some(waker);
    }
}

impl Drop for BytePipePoll {
    fn drop(&mut self) {
        // The server walked away: client reads drain buffered bytes and
        // then see Closed; client writes fail.
        let mut tx_side = self.s2c.lock();
        tx_side.producer_closed = true;
        drop(tx_side);
        self.s2c.cv.notify_all();
        let mut rx_side = self.c2s.lock();
        rx_side.consumer_closed = true;
        drop(rx_side);
        self.c2s.cv.notify_all();
    }
}

/// Creates an in-process byte-stream connection: a blocking client
/// [`Duplex`] and the server's non-blocking [`BytePipePoll`]. Unlike
/// [`pipe_pair`] (frame-granular, used for fault injection between two
/// blocking peers), bytes cross this pipe exactly as they would a
/// socket, so the server's frame reassembly runs on the same path for
/// in-process and TCP clients.
pub fn byte_pipe_pair() -> (Duplex, BytePipePoll) {
    let c2s = Dir::new();
    let s2c = Dir::new();
    let client = Duplex {
        tx: Box::new(BytePipeTx { dir: Arc::clone(&c2s) }),
        rx: Box::new(BytePipeRx { dir: Arc::clone(&s2c), assembly: BytesMut::new() }),
    };
    (client, BytePipePoll { c2s, s2c })
}

/// Creates a connected pair of in-process duplex pipes.
pub fn pipe_pair() -> (Duplex, Duplex) {
    // Generous bound: a stalled peer eventually exerts backpressure
    // instead of ballooning memory.
    let (a_tx, a_rx) = bounded(4096);
    let (b_tx, b_rx) = bounded(4096);
    (
        Duplex { tx: Box::new(PipeTx { tx: a_tx }), rx: Box::new(PipeRx { rx: b_rx }) },
        Duplex { tx: Box::new(PipeTx { tx: b_tx }), rx: Box::new(PipeRx { rx: a_rx }) },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crate::codec::FrameKind;

    fn frame(data: &'static [u8]) -> Frame {
        Frame { kind: FrameKind::Event, payload: Bytes::from_static(data) }
    }

    #[test]
    fn pipe_roundtrip() {
        let (mut a, mut b) = pipe_pair();
        a.send(&frame(b"hello")).unwrap();
        let got = b.recv(Some(Duration::from_millis(100))).unwrap().unwrap();
        assert_eq!(got.payload.as_ref(), b"hello");
    }

    #[test]
    fn pipe_timeout() {
        let (_a, mut b) = pipe_pair();
        let got = b.recv(Some(Duration::from_millis(10))).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn pipe_close_detected() {
        let (a, mut b) = pipe_pair();
        drop(a);
        assert!(matches!(b.recv(Some(Duration::from_millis(10))), Err(TransportError::Closed)));
    }

    #[test]
    fn split_halves_work_from_threads() {
        let (a, mut b) = pipe_pair();
        let (mut atx, mut arx) = a.into_split();
        let t = std::thread::spawn(move || {
            atx.send(&frame(b"from-thread")).unwrap();
            arx.recv(Some(Duration::from_secs(2))).unwrap().unwrap()
        });
        let got = b.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        assert_eq!(got.payload.as_ref(), b"from-thread");
        b.send(&frame(b"reply")).unwrap();
        let echoed = t.join().unwrap();
        assert_eq!(echoed.payload.as_ref(), b"reply");
    }

    #[test]
    fn byte_pipe_roundtrip() {
        let (mut client, mut server) = byte_pipe_pair();
        client.send(&frame(b"ping")).unwrap();
        // Server reassembles the frame from raw bytes.
        let mut buf = BytesMut::new();
        let got = loop {
            let mut chunk = [0u8; 64];
            match server.try_read(&mut chunk) {
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("read: {e}"),
            }
            if let Some(f) = Frame::decode(&mut buf).unwrap() {
                break f;
            }
        };
        assert_eq!(got.payload.as_ref(), b"ping");
        // Server replies; the client's blocking recv reassembles it.
        let reply = frame(b"pong").encode();
        let mut off = 0;
        while off < reply.len() {
            off += server.try_write(&reply[off..]).unwrap();
        }
        let echoed = client.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        assert_eq!(echoed.payload.as_ref(), b"pong");
    }

    #[test]
    fn byte_pipe_buffered_bytes_survive_server_close() {
        let (mut client, mut server) = byte_pipe_pair();
        let reply = frame(b"last words").encode();
        let mut off = 0;
        while off < reply.len() {
            off += server.try_write(&reply[off..]).unwrap();
        }
        drop(server);
        // The frame was fully buffered before the close; it must arrive.
        let got = client.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        assert_eq!(got.payload.as_ref(), b"last words");
        // After the drain the close is visible.
        assert!(matches!(client.recv(Some(Duration::from_millis(10))), Err(TransportError::Closed)));
    }

    #[test]
    fn byte_pipe_client_close_reaches_server_as_eof() {
        let (client, mut server) = byte_pipe_pair();
        drop(client);
        let mut chunk = [0u8; 16];
        assert_eq!(server.try_read(&mut chunk).unwrap(), 0);
        assert_eq!(
            server.try_write(b"x").unwrap_err().kind(),
            std::io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn byte_pipe_waker_fires_on_client_write() {
        let (mut client, mut server) = byte_pipe_pair();
        let fired = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        server.set_waker(Arc::new(move || {
            fired2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        client.send(&frame(b"wake")).unwrap();
        assert!(fired.load(std::sync::atomic::Ordering::SeqCst) >= 1);
        let mut chunk = [0u8; 64];
        assert!(server.try_read(&mut chunk).unwrap() > 0);
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut t = Duplex::tcp(sock).unwrap();
            let f = t.recv(None).unwrap().unwrap();
            t.send(&f).unwrap();
        });
        let mut c = Duplex::tcp(TcpStream::connect(addr).unwrap()).unwrap();
        c.send(&frame(b"ping")).unwrap();
        let echoed = c.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        assert_eq!(echoed.payload.as_ref(), b"ping");
        join.join().unwrap();
    }

    #[test]
    fn tcp_partial_frames_reassemble() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..=255).collect();
        let expect = Frame { kind: FrameKind::Reply, payload: Bytes::from(payload.clone()) };
        let encoded = expect.encode();
        let join = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            // Dribble the frame out in small pieces.
            for chunk in encoded.chunks(7) {
                sock.write_all(chunk).unwrap();
                sock.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let mut c = Duplex::tcp(TcpStream::connect(addr).unwrap()).unwrap();
        let got = c.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(got, expect);
        join.join().unwrap();
    }
}
