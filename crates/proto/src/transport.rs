//! Byte-stream transports.
//!
//! Clients and server communicate over "a reliable full duplex, 8-bit
//! byte stream" (paper §4.1). Two transports implement that contract: TCP
//! (the distributed case of the title) and an in-process duplex pipe
//! (fast, allocation-cheap, used heavily by tests and by applications
//! embedding a server).
//!
//! A [`Duplex`] owns both directions; [`Duplex::into_split`] separates
//! them so a connection can be serviced by independent reader and writer
//! threads (the server's per-client thread pair).

use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use crate::codec::{CodecError, Frame};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Errors surfaced by transports.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the stream.
    Closed,
    /// An I/O error occurred.
    Io(std::io::Error),
    /// A frame failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by peer"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Codec(e) => write!(f, "transport framing error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TransportError::Closed
        } else {
            TransportError::Io(e)
        }
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

/// The sending half of a connection.
pub trait TxHalf: Send {
    /// Sends one frame.
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError>;
}

/// The receiving half of a connection.
pub trait RxHalf: Send {
    /// Receives the next frame, blocking up to `timeout` (`None` = block
    /// indefinitely). Returns `Ok(None)` on timeout.
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError>;
}

/// A full-duplex connection.
pub struct Duplex {
    tx: Box<dyn TxHalf>,
    rx: Box<dyn RxHalf>,
}

impl Duplex {
    /// Builds a duplex from halves.
    pub fn new(tx: Box<dyn TxHalf>, rx: Box<dyn RxHalf>) -> Self {
        Duplex { tx, rx }
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.tx.send(frame)
    }

    /// Receives the next frame (see [`RxHalf::recv`]).
    pub fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError> {
        self.rx.recv(timeout)
    }

    /// Splits into independent halves for two-thread servicing.
    pub fn into_split(self) -> (Box<dyn TxHalf>, Box<dyn RxHalf>) {
        (self.tx, self.rx)
    }

    /// Wraps a connected TCP socket.
    pub fn tcp(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let write = stream.try_clone()?;
        Ok(Duplex {
            tx: Box::new(TcpTx { stream: write }),
            rx: Box::new(TcpRx { stream, buf: BytesMut::with_capacity(8192) }),
        })
    }
}

struct TcpTx {
    stream: TcpStream,
}

impl TxHalf for TcpTx {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.stream.write_all(&frame.encode())?;
        Ok(())
    }
}

struct TcpRx {
    stream: TcpStream,
    buf: BytesMut,
}

impl RxHalf for TcpRx {
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError> {
        loop {
            if let Some(frame) = Frame::decode(&mut self.buf)? {
                return Ok(Some(frame));
            }
            self.stream.set_read_timeout(timeout)?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

struct PipeTx {
    tx: Sender<Frame>,
}

impl TxHalf for PipeTx {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.tx.send(frame.clone()).map_err(|_| TransportError::Closed)
    }
}

struct PipeRx {
    rx: Receiver<Frame>,
}

impl RxHalf for PipeRx {
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError> {
        match timeout {
            None => self.rx.recv().map(Some).map_err(|_| TransportError::Closed),
            Some(t) => match self.rx.recv_timeout(t) {
                Ok(f) => Ok(Some(f)),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
            },
        }
    }
}

/// Creates a connected pair of in-process duplex pipes.
pub fn pipe_pair() -> (Duplex, Duplex) {
    // Generous bound: a stalled peer eventually exerts backpressure
    // instead of ballooning memory.
    let (a_tx, a_rx) = bounded(4096);
    let (b_tx, b_rx) = bounded(4096);
    (
        Duplex { tx: Box::new(PipeTx { tx: a_tx }), rx: Box::new(PipeRx { rx: b_rx }) },
        Duplex { tx: Box::new(PipeTx { tx: b_tx }), rx: Box::new(PipeRx { rx: a_rx }) },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crate::codec::FrameKind;

    fn frame(data: &'static [u8]) -> Frame {
        Frame { kind: FrameKind::Event, payload: Bytes::from_static(data) }
    }

    #[test]
    fn pipe_roundtrip() {
        let (mut a, mut b) = pipe_pair();
        a.send(&frame(b"hello")).unwrap();
        let got = b.recv(Some(Duration::from_millis(100))).unwrap().unwrap();
        assert_eq!(got.payload.as_ref(), b"hello");
    }

    #[test]
    fn pipe_timeout() {
        let (_a, mut b) = pipe_pair();
        let got = b.recv(Some(Duration::from_millis(10))).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn pipe_close_detected() {
        let (a, mut b) = pipe_pair();
        drop(a);
        assert!(matches!(b.recv(Some(Duration::from_millis(10))), Err(TransportError::Closed)));
    }

    #[test]
    fn split_halves_work_from_threads() {
        let (a, mut b) = pipe_pair();
        let (mut atx, mut arx) = a.into_split();
        let t = std::thread::spawn(move || {
            atx.send(&frame(b"from-thread")).unwrap();
            arx.recv(Some(Duration::from_secs(2))).unwrap().unwrap()
        });
        let got = b.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        assert_eq!(got.payload.as_ref(), b"from-thread");
        b.send(&frame(b"reply")).unwrap();
        let echoed = t.join().unwrap();
        assert_eq!(echoed.payload.as_ref(), b"reply");
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut t = Duplex::tcp(sock).unwrap();
            let f = t.recv(None).unwrap().unwrap();
            t.send(&f).unwrap();
        });
        let mut c = Duplex::tcp(TcpStream::connect(addr).unwrap()).unwrap();
        c.send(&frame(b"ping")).unwrap();
        let echoed = c.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        assert_eq!(echoed.payload.as_ref(), b"ping");
        join.join().unwrap();
    }

    #[test]
    fn tcp_partial_frames_reassemble() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..=255).collect();
        let expect = Frame { kind: FrameKind::Reply, payload: Bytes::from(payload.clone()) };
        let encoded = expect.encode();
        let join = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            // Dribble the frame out in small pieces.
            for chunk in encoded.chunks(7) {
                sock.write_all(chunk).unwrap();
                sock.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let mut c = Duplex::tcp(TcpStream::connect(addr).unwrap()).unwrap();
        let got = c.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(got, expect);
        join.join().unwrap();
    }
}
