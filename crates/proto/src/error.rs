//! Asynchronous protocol errors.
//!
//! Errors are generated asynchronously, and applications must be prepared
//! to process them at arbitrary times after the erroneous request (paper
//! §4.1). An error message quotes the sequence number of the failing
//! request plus a code and a diagnostic value.

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};

/// Protocol error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// A LOUD id did not name a live LOUD of this client.
    BadLoud,
    /// A virtual-device id did not name a live device.
    BadDevice,
    /// A wire id did not name a live wire.
    BadWire,
    /// A sound id did not name a live sound.
    BadSound,
    /// An atom was never interned.
    BadAtom,
    /// A numeric or string value was out of range.
    BadValue,
    /// Two protocol objects cannot be combined: mismatched wire/port
    /// types, impossible LOUD configurations, hard-wired constraint
    /// violations (paper §5.2, §5.9).
    BadMatch,
    /// The operation is not permitted for this client (e.g. a second
    /// client requesting redirection, paper §5.8).
    BadAccess,
    /// No physical device satisfies the virtual device's constraints, or
    /// the device is in exclusive use by another application (paper §5.9).
    DeviceBusy,
    /// A queued-only command was issued in immediate mode, or a queue
    /// operation conflicted with the queue's state.
    BadQueueMode,
    /// A resource id was outside the client's allocated range or already
    /// in use.
    BadIdChoice,
    /// The request requires the LOUD to be mapped/active and it is not.
    NotMapped,
    /// The request is recognised but not implemented by this server.
    Unimplemented,
    /// The request could not be decoded.
    BadRequest,
}

impl ErrorCode {
    /// All error codes, in wire-tag order.
    pub const ALL: [ErrorCode; 14] = [
        ErrorCode::BadLoud,
        ErrorCode::BadDevice,
        ErrorCode::BadWire,
        ErrorCode::BadSound,
        ErrorCode::BadAtom,
        ErrorCode::BadValue,
        ErrorCode::BadMatch,
        ErrorCode::BadAccess,
        ErrorCode::DeviceBusy,
        ErrorCode::BadQueueMode,
        ErrorCode::BadIdChoice,
        ErrorCode::NotMapped,
        ErrorCode::Unimplemented,
        ErrorCode::BadRequest,
    ];

    fn tag(self) -> u8 {
        self as u8 // cast-ok: fieldless enum discriminant, 14 < 256
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadLoud => "BadLoud",
            ErrorCode::BadDevice => "BadDevice",
            ErrorCode::BadWire => "BadWire",
            ErrorCode::BadSound => "BadSound",
            ErrorCode::BadAtom => "BadAtom",
            ErrorCode::BadValue => "BadValue",
            ErrorCode::BadMatch => "BadMatch",
            ErrorCode::BadAccess => "BadAccess",
            ErrorCode::DeviceBusy => "DeviceBusy",
            ErrorCode::BadQueueMode => "BadQueueMode",
            ErrorCode::BadIdChoice => "BadIdChoice",
            ErrorCode::NotMapped => "NotMapped",
            ErrorCode::Unimplemented => "Unimplemented",
            ErrorCode::BadRequest => "BadRequest",
        };
        f.write_str(name)
    }
}

impl WireWrite for ErrorCode {
    fn write(&self, w: &mut WireWriter) {
        w.u8(self.tag());
    }
}

impl WireRead for ErrorCode {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let t = r.u8()?;
        ErrorCode::ALL
            .into_iter()
            .find(|c| c.tag() == t)
            .ok_or(CodecError::BadTag("ErrorCode", u32::from(t)))
    }
}

/// A protocol error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The error code.
    pub code: ErrorCode,
    /// The offending resource id or value, when meaningful.
    pub value: u32,
    /// Human-readable diagnostic.
    pub detail: String,
}

impl ProtoError {
    /// Creates an error with an id value and diagnostic text.
    pub fn new(code: ErrorCode, value: u32, detail: impl Into<String>) -> Self {
        ProtoError { code, value, detail: detail.into() }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (value {:#x}): {}", self.code, self.value, self.detail)
    }
}

impl std::error::Error for ProtoError {}

impl WireWrite for ProtoError {
    fn write(&self, w: &mut WireWriter) {
        self.code.write(w);
        w.u32(self.value);
        w.string(&self.detail);
    }
}

impl WireRead for ProtoError {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(ProtoError { code: ErrorCode::read(r)?, value: r.u32()?, detail: r.string()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_roundtrip() {
        for code in ErrorCode::ALL {
            let e = ProtoError::new(code, 0xdead, "diagnostic");
            assert_eq!(ProtoError::from_wire(&e.to_wire()).unwrap(), e);
        }
    }

    #[test]
    fn display_includes_code_and_detail() {
        let e = ProtoError::new(ErrorCode::BadMatch, 7, "wire type conflict");
        let s = e.to_string();
        assert!(s.contains("BadMatch"));
        assert!(s.contains("wire type conflict"));
    }
}
