//! Deterministic fault injection for transports.
//!
//! The paper's architecture (§6.1) assumes clients misbehave, stall and
//! vanish; this module makes those failures *reproducible*. A
//! [`FaultPlan`] is a seeded schedule of transport faults; wrapping a
//! [`Duplex`] with [`FaultyDuplex::wrap`] produces a transport that
//! injects them at frame granularity while counting every injection in
//! a shared [`FaultStats`]. The same seed always produces the same
//! fault sequence, so a soak failure replays exactly (`xtask -- soak`).
//!
//! Fault kinds (DESIGN.md §12):
//!
//! - **short read** — `recv` spuriously reports a timeout even though
//!   the peer may have sent data (an incomplete read that did not
//!   assemble a frame);
//! - **torn frame** — an outbound frame's payload is truncated at a
//!   random byte; the frame itself stays well-formed, so the peer's
//!   *body* decoder sees garbage and must answer with a protocol error,
//!   not corrupt state;
//! - **byte corruption** — one payload byte is bit-flipped in flight;
//! - **delayed write** — the sender stalls a few milliseconds before
//!   the frame goes out (a slow or congested peer);
//! - **disconnect** — the transport fails mid-stream with
//!   [`TransportError::Closed`] and both halves stay dead afterwards
//!   (a crashed peer; further use keeps failing, as a real socket
//!   would).

use crate::codec::Frame;
use crate::transport::{Duplex, RxHalf, TransportError, TxHalf};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One kind of injectable transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `recv` spuriously returns `Ok(None)` (no frame assembled).
    ShortRead,
    /// An outbound payload is truncated at a random byte.
    TornFrame,
    /// One outbound payload byte is bit-flipped.
    CorruptByte,
    /// The sender sleeps a few milliseconds before writing.
    DelayWrite,
    /// The transport fails with `Closed` and stays dead.
    Disconnect,
}

impl FaultKind {
    /// Every kind, in stats order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::ShortRead,
        FaultKind::TornFrame,
        FaultKind::CorruptByte,
        FaultKind::DelayWrite,
        FaultKind::Disconnect,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::ShortRead => 0,
            FaultKind::TornFrame => 1,
            FaultKind::CorruptByte => 2,
            FaultKind::DelayWrite => 3,
            FaultKind::Disconnect => 4,
        }
    }

    /// Human-readable name (soak reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ShortRead => "short-read",
            FaultKind::TornFrame => "torn-frame",
            FaultKind::CorruptByte => "corrupt-byte",
            FaultKind::DelayWrite => "delay-write",
            FaultKind::Disconnect => "disconnect",
        }
    }
}

/// Shared injection counters, one per [`FaultKind`], bumped by both
/// halves of a faulty transport. Clone the `Arc` before wrapping to
/// observe the counts from the test harness.
#[derive(Debug, Default)]
pub struct FaultStats {
    counts: [AtomicU64; 5],
}

impl FaultStats {
    /// Injections of one kind so far.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Total injections of every kind.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// How many distinct kinds have fired at least once.
    pub fn kinds_seen(&self) -> usize {
        self.counts.iter().filter(|c| c.load(Ordering::Relaxed) > 0).count()
    }

    fn bump(&self, kind: FaultKind) {
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// A seeded fault schedule: per-kind rates in **per-mille** (a rate of
/// 25 injects that fault on ~2.5% of opportunities), drawn from a
/// deterministic xorshift64* stream. The plan is split per half when
/// the transport is wrapped, so reader and writer threads never
/// contend — and each half's sub-stream is itself deterministic.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    /// Per-mille injection rate per kind, indexed by `FaultKind::index`.
    rates: [u16; 5],
}

impl FaultPlan {
    /// The default plan: every kind enabled at a low rate, heavy on the
    /// benign faults and light on hard disconnects so soak sessions do
    /// useful work before dying.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [
                40, // short reads: common, harmless
                15, // torn frames
                15, // corrupt bytes
                20, // delayed writes
                8,  // disconnects: rare, terminal
            ],
        }
    }

    /// A plan that never injects (control runs).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan { seed, rates: [0; 5] }
    }

    /// Overrides one kind's per-mille rate (values above 1000 saturate).
    pub fn with_rate(mut self, kind: FaultKind, per_mille: u16) -> Self {
        self.rates[kind.index()] = per_mille.min(1000);
        self
    }

    fn split(&self, salt: u64) -> FaultRoller {
        FaultRoller {
            rng: Xorshift64Star::new(self.seed ^ salt),
            rates: self.rates,
        }
    }
}

/// xorshift64* — tiny, seedable, good enough for fault scheduling, and
/// dependency-free (same generator family the fuzzer uses).
#[derive(Debug)]
struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; displace it.
        Xorshift64Star { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// One half's private fault stream.
#[derive(Debug)]
struct FaultRoller {
    rng: Xorshift64Star,
    rates: [u16; 5],
}

impl FaultRoller {
    /// Rolls one opportunity for `kind`; true means inject.
    fn roll(&mut self, kind: FaultKind) -> bool {
        let rate = self.rates[kind.index()];
        if rate == 0 {
            return false;
        }
        (self.rng.next() % 1000) < u64::from(rate)
    }

    /// A value in `0..bound` (bound > 0).
    fn below(&mut self, bound: usize) -> usize {
        (self.rng.next() % (bound as u64)) as usize
    }
}

/// Wraps a [`Duplex`] so both halves inject faults from a shared,
/// seeded plan.
pub struct FaultyDuplex;

impl FaultyDuplex {
    /// Wraps `inner`, returning the faulty transport and the shared
    /// stats the injections are counted into.
    pub fn wrap(inner: Duplex, plan: &FaultPlan) -> (Duplex, Arc<FaultStats>) {
        let stats = Arc::new(FaultStats::default());
        let dead = Arc::new(AtomicBool::new(false));
        let (tx, rx) = inner.into_split();
        let faulty_tx = FaultyTx {
            inner: tx,
            roller: plan.split(0x7458_5f54_585f_3031), // "tx" sub-stream
            stats: Arc::clone(&stats),
            dead: Arc::clone(&dead),
        };
        let faulty_rx = FaultyRx {
            inner: rx,
            roller: plan.split(0x7258_5f52_585f_3032), // "rx" sub-stream
            stats: Arc::clone(&stats),
            dead,
        };
        (Duplex::new(Box::new(faulty_tx), Box::new(faulty_rx)), stats)
    }
}

struct FaultyTx {
    inner: Box<dyn TxHalf>,
    roller: FaultRoller,
    stats: Arc<FaultStats>,
    dead: Arc<AtomicBool>,
}

impl TxHalf for FaultyTx {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(TransportError::Closed);
        }
        if self.roller.roll(FaultKind::Disconnect) {
            self.stats.bump(FaultKind::Disconnect);
            self.dead.store(true, Ordering::Relaxed);
            return Err(TransportError::Closed);
        }
        if self.roller.roll(FaultKind::DelayWrite) {
            self.stats.bump(FaultKind::DelayWrite);
            std::thread::sleep(Duration::from_millis(1 + (self.roller.below(4) as u64)));
        }
        if !frame.payload.is_empty() && self.roller.roll(FaultKind::TornFrame) {
            self.stats.bump(FaultKind::TornFrame);
            let cut = self.roller.below(frame.payload.len());
            let torn = Frame {
                kind: frame.kind,
                payload: Bytes::from(frame.payload[..cut].to_vec()),
            };
            return self.inner.send(&torn);
        }
        if !frame.payload.is_empty() && self.roller.roll(FaultKind::CorruptByte) {
            self.stats.bump(FaultKind::CorruptByte);
            let mut bytes = frame.payload.to_vec();
            let at = self.roller.below(bytes.len());
            let bit = self.roller.below(8);
            bytes[at] ^= 1 << bit;
            let corrupted = Frame { kind: frame.kind, payload: Bytes::from(bytes) };
            return self.inner.send(&corrupted);
        }
        self.inner.send(frame)
    }
}

struct FaultyRx {
    inner: Box<dyn RxHalf>,
    roller: FaultRoller,
    stats: Arc<FaultStats>,
    dead: Arc<AtomicBool>,
}

impl RxHalf for FaultyRx {
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Frame>, TransportError> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(TransportError::Closed);
        }
        if self.roller.roll(FaultKind::Disconnect) {
            self.stats.bump(FaultKind::Disconnect);
            self.dead.store(true, Ordering::Relaxed);
            return Err(TransportError::Closed);
        }
        if self.roller.roll(FaultKind::ShortRead) {
            self.stats.bump(FaultKind::ShortRead);
            // An incomplete read: nothing assembled this round. Real
            // short reads still consume wall-clock; emulate a sliver of
            // the timeout so spinning callers do not busy-loop.
            if timeout.is_some() {
                std::thread::sleep(Duration::from_micros(200));
            }
            return Ok(None);
        }
        self.inner.recv(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FrameKind;
    use crate::transport::pipe_pair;

    fn frame(data: &'static [u8]) -> Frame {
        Frame { kind: FrameKind::Event, payload: Bytes::from_static(data) }
    }

    /// Same seed, same plan ⇒ byte-identical fault schedule.
    #[test]
    fn plans_are_deterministic() {
        let run = |seed: u64| {
            let mut roller = FaultPlan::new(seed).split(0xAB);
            (0..256).map(|_| roller.rng.next()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// The tx and rx halves draw from distinct sub-streams.
    #[test]
    fn halves_get_distinct_streams() {
        let plan = FaultPlan::new(1);
        let mut a = plan.split(0x01);
        let mut b = plan.split(0x02);
        let sa: Vec<u64> = (0..64).map(|_| a.rng.next()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.rng.next()).collect();
        assert_ne!(sa, sb);
    }

    /// A quiet plan is a perfect pass-through.
    #[test]
    fn quiet_plan_injects_nothing() {
        let (a, mut b) = pipe_pair();
        let (mut fa, stats) = FaultyDuplex::wrap(a, &FaultPlan::quiet(3));
        for _ in 0..100 {
            fa.send(&frame(b"payload")).unwrap();
        }
        for _ in 0..100 {
            let got = b.recv(Some(Duration::from_millis(100))).unwrap().unwrap();
            assert_eq!(got.payload.as_ref(), b"payload");
        }
        assert_eq!(stats.total(), 0);
    }

    /// With every rate saturated, each kind fires and is counted.
    #[test]
    fn saturated_plan_counts_every_kind() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan::quiet(11).with_rate(kind, 1000);
            let (a, mut b) = pipe_pair();
            let (mut fa, stats) = FaultyDuplex::wrap(a, &plan);
            for _ in 0..8 {
                let _ = fa.send(&frame(b"xyzzy"));
                let _ = fa.recv(Some(Duration::from_millis(1)));
                let _ = b.recv(Some(Duration::from_millis(1)));
            }
            assert!(
                stats.count(kind) > 0,
                "kind {} never fired at saturation",
                kind.name()
            );
        }
    }

    /// Disconnect poisons both halves permanently.
    #[test]
    fn disconnect_poisons_both_halves() {
        let plan = FaultPlan::quiet(5).with_rate(FaultKind::Disconnect, 1000);
        let (a, _b) = pipe_pair();
        let (mut fa, stats) = FaultyDuplex::wrap(a, &plan);
        assert!(matches!(fa.send(&frame(b"x")), Err(TransportError::Closed)));
        assert!(matches!(fa.recv(Some(Duration::from_millis(1))), Err(TransportError::Closed)));
        assert!(matches!(fa.send(&frame(b"x")), Err(TransportError::Closed)));
        assert_eq!(stats.count(FaultKind::Disconnect), 1, "poison must not re-count");
    }

    /// Torn frames shrink the payload but stay frame-decodable.
    #[test]
    fn torn_frames_stay_well_formed() {
        let plan = FaultPlan::quiet(9).with_rate(FaultKind::TornFrame, 1000);
        let (a, mut b) = pipe_pair();
        let (mut fa, stats) = FaultyDuplex::wrap(a, &plan);
        fa.send(&frame(b"0123456789abcdef")).unwrap();
        let got = b.recv(Some(Duration::from_millis(100))).unwrap().unwrap();
        assert!(got.payload.len() < 16, "payload must be truncated");
        assert_eq!(stats.count(FaultKind::TornFrame), 1);
    }

    /// Corruption flips exactly one bit of the payload.
    #[test]
    fn corruption_flips_one_bit() {
        let plan = FaultPlan::quiet(13).with_rate(FaultKind::CorruptByte, 1000);
        let (a, mut b) = pipe_pair();
        let (mut fa, _stats) = FaultyDuplex::wrap(a, &plan);
        let original = b"abcdefgh";
        fa.send(&frame(original)).unwrap();
        let got = b.recv(Some(Duration::from_millis(100))).unwrap().unwrap();
        assert_eq!(got.payload.len(), original.len());
        let differing: u32 = got
            .payload
            .iter()
            .zip(original.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1, "exactly one bit must differ");
    }

    /// Short reads surface as timeouts, never as errors.
    #[test]
    fn short_reads_look_like_timeouts() {
        let plan = FaultPlan::quiet(17).with_rate(FaultKind::ShortRead, 1000);
        let (a, mut b) = pipe_pair();
        let (mut fa, stats) = FaultyDuplex::wrap(a, &plan);
        b.send(&frame(b"waiting")).unwrap();
        let got = fa.recv(Some(Duration::from_millis(5))).unwrap();
        assert!(got.is_none(), "short read must present as a timeout");
        assert!(stats.count(FaultKind::ShortRead) > 0);
    }
}
