//! Shared protocol data types: encodings, device classes, attributes,
//! sound types, wire types and queue states.

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};
use crate::ids::{Atom, DeviceId};

/// Audio data encodings understood by the protocol (paper §2, §5.6).
///
/// Applications are sheltered from representation changes: players and
/// recorders convert between a sound's stored encoding and the typed port
/// they present data on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// 8-bit µ-law companded PCM (G.711), the telephone-quality default.
    ULaw,
    /// 8-bit A-law companded PCM (G.711).
    ALaw,
    /// 8-bit linear PCM, unsigned with a 128 bias.
    Pcm8,
    /// 16-bit linear PCM, signed little-endian.
    Pcm16,
    /// IMA/DVI ADPCM, 4 bits per sample — roughly halves the µ-law data
    /// rate (paper §5.9 footnote).
    ImaAdpcm,
}

impl Encoding {
    /// Bits consumed per sample in this encoding.
    pub fn bits_per_sample(self) -> u32 {
        match self {
            Encoding::ULaw | Encoding::ALaw | Encoding::Pcm8 => 8,
            Encoding::Pcm16 => 16,
            Encoding::ImaAdpcm => 4,
        }
    }

    /// Bytes of encoded data for `samples` samples of one channel.
    pub fn bytes_for_samples(self, samples: u64) -> u64 {
        (samples * self.bits_per_sample() as u64).div_ceil(8)
    }

    /// Samples represented by `bytes` bytes of one channel.
    pub fn samples_for_bytes(self, bytes: u64) -> u64 {
        bytes * 8 / self.bits_per_sample() as u64
    }
}

impl WireWrite for Encoding {
    fn write(&self, w: &mut WireWriter) {
        w.u8(match self {
            Encoding::ULaw => 0,
            Encoding::ALaw => 1,
            Encoding::Pcm8 => 2,
            Encoding::Pcm16 => 3,
            Encoding::ImaAdpcm => 4,
        });
    }
}

impl WireRead for Encoding {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Encoding::ULaw,
            1 => Encoding::ALaw,
            2 => Encoding::Pcm8,
            3 => Encoding::Pcm16,
            4 => Encoding::ImaAdpcm,
            other => return Err(CodecError::BadTag("Encoding", u32::from(other))),
        })
    }
}

/// The type of a sound: `(encoding, sample size, sample rate)` plus a
/// channel count (paper §5.6; channels admit CD-quality stereo, §1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SoundType {
    /// Data representation.
    pub encoding: Encoding,
    /// Samples per second per channel.
    pub sample_rate: u32,
    /// Interleaved channels (1 = mono, 2 = stereo).
    pub channels: u8,
}

/// Maximum encoded size of one server-side sound, in bytes. A
/// `WriteSoundData` that would grow a sound past this is rejected with
/// `BadValue` before any allocation (mirroring the connection plane's
/// oversized-frame rejection): 16 MiB is ~33 minutes of telephone-quality
/// µ-law or ~95 seconds of CD-quality stereo — far beyond any prompt,
/// and small enough that no client can exhaust server memory by
/// streaming forever.
pub const MAX_SOUND_BYTES: u64 = 16 << 20;

impl SoundType {
    /// Telephone-quality µ-law mono at 8 kHz — 8,000 bytes per second.
    pub const TELEPHONE: SoundType =
        SoundType { encoding: Encoding::ULaw, sample_rate: 8_000, channels: 1 };

    /// CD-quality 16-bit stereo at 44.1 kHz — just over 175,000 bytes per
    /// second (paper §1.1).
    pub const CD: SoundType =
        SoundType { encoding: Encoding::Pcm16, sample_rate: 44_100, channels: 2 };

    /// Bytes per second of audio in this type.
    pub fn bytes_per_second(&self) -> u64 {
        self.encoding.bytes_for_samples(self.sample_rate as u64) * self.channels as u64
    }

    /// Encoded bytes required for `frames` sample frames (one sample per
    /// channel each).
    pub fn bytes_for_frames(&self, frames: u64) -> u64 {
        self.encoding.bytes_for_samples(frames) * self.channels as u64
    }

    /// Sample frames represented by `bytes` of encoded data.
    pub fn frames_for_bytes(&self, bytes: u64) -> u64 {
        if self.channels == 0 {
            return 0;
        }
        self.encoding.samples_for_bytes(bytes / self.channels as u64)
    }
}

impl WireWrite for SoundType {
    fn write(&self, w: &mut WireWriter) {
        self.encoding.write(w);
        w.u32(self.sample_rate);
        w.u8(self.channels);
    }
}

impl WireRead for SoundType {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(SoundType {
            encoding: Encoding::read(r)?,
            sample_rate: r.u32()?,
            channels: r.u8()?,
        })
    }
}

/// The classes of virtual devices defined by the protocol (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Connection to an external input such as a microphone.
    Input,
    /// Connection to an external output such as a speaker.
    Output,
    /// Converts stored sound data and transmits it on typed output ports.
    Player,
    /// Stores sound data received on typed input ports.
    Recorder,
    /// Combined input and output attached to a telephone line.
    Telephone,
    /// Combines multiple input streams onto its outputs with per-input
    /// gain percentages.
    Mixer,
    /// Speaks text strings through a vocal-tract model.
    SpeechSynthesizer,
    /// Detects spoken words, reporting them as events.
    SpeechRecognizer,
    /// Processes note-based audio.
    MusicSynthesizer,
    /// A switch routing N inputs to M outputs.
    Crossbar,
    /// Software manipulating one or more audio streams; configured through
    /// device controls (the paper leaves its commands unspecified).
    Dsp,
}

impl DeviceClass {
    /// All classes, in wire-tag order.
    pub const ALL: [DeviceClass; 11] = [
        DeviceClass::Input,
        DeviceClass::Output,
        DeviceClass::Player,
        DeviceClass::Recorder,
        DeviceClass::Telephone,
        DeviceClass::Mixer,
        DeviceClass::SpeechSynthesizer,
        DeviceClass::SpeechRecognizer,
        DeviceClass::MusicSynthesizer,
        DeviceClass::Crossbar,
        DeviceClass::Dsp,
    ];

    fn tag(self) -> u8 {
        match self {
            DeviceClass::Input => 0,
            DeviceClass::Output => 1,
            DeviceClass::Player => 2,
            DeviceClass::Recorder => 3,
            DeviceClass::Telephone => 4,
            DeviceClass::Mixer => 5,
            DeviceClass::SpeechSynthesizer => 6,
            DeviceClass::SpeechRecognizer => 7,
            DeviceClass::MusicSynthesizer => 8,
            DeviceClass::Crossbar => 9,
            DeviceClass::Dsp => 10,
        }
    }
}

impl WireWrite for DeviceClass {
    fn write(&self, w: &mut WireWriter) {
        w.u8(self.tag());
    }
}

impl WireRead for DeviceClass {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        let t = r.u8()?;
        DeviceClass::ALL
            .into_iter()
            .find(|c| c.tag() == t)
            .ok_or(CodecError::BadTag("DeviceClass", u32::from(t)))
    }
}

/// Direction of a device port: sources emit audio, sinks accept it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// An audio output of the device.
    Source,
    /// An audio input of the device.
    Sink,
}

impl WireWrite for PortDir {
    fn write(&self, w: &mut WireWriter) {
        w.u8(match self {
            PortDir::Source => 0,
            PortDir::Sink => 1,
        });
    }
}

impl WireRead for PortDir {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => PortDir::Source,
            1 => PortDir::Sink,
            other => return Err(CodecError::BadTag("PortDir", u32::from(other))),
        })
    }
}

/// The type of the data path a wire carries (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireType {
    /// Accept whatever the connected ports agree on.
    Any,
    /// An analog path (e.g. a hard-wired speaker-phone connection).
    Analog,
    /// A digital path carrying samples of the given type.
    Digital(SoundType),
}

impl WireType {
    /// Whether a wire declared as `self` may carry data typed `other`.
    pub fn admits(&self, other: &WireType) -> bool {
        match (self, other) {
            (WireType::Any, _) | (_, WireType::Any) => true,
            (WireType::Analog, WireType::Analog) => true,
            (WireType::Digital(a), WireType::Digital(b)) => a == b,
            _ => false,
        }
    }
}

impl WireWrite for WireType {
    fn write(&self, w: &mut WireWriter) {
        match self {
            WireType::Any => w.u8(0),
            WireType::Analog => w.u8(1),
            WireType::Digital(st) => {
                w.u8(2);
                st.write(w);
            }
        }
    }
}

impl WireRead for WireType {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => WireType::Any,
            1 => WireType::Analog,
            2 => WireType::Digital(SoundType::read(r)?),
            other => return Err(CodecError::BadTag("WireType", u32::from(other))),
        })
    }
}

/// Attributes describing or constraining a device (paper §5.1).
///
/// A virtual device is requested by a list of attributes that may specify
/// it loosely ("give me a speaker") or tightly ("give me device 7"). A
/// physical device's attribute list describes its actual capabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attribute {
    /// Pin the virtual device to a specific device-LOUD entry.
    Device(DeviceId),
    /// Human-readable device name ("left speaker").
    Name(String),
    /// Data encoding supported/required on the device's ports.
    Encoding(Encoding),
    /// Sample rate supported/required.
    SampleRate(u32),
    /// Channel count supported/required.
    Channels(u8),
    /// Ambient domain the device participates in (paper §5.8). Domain 0 is
    /// conventionally the desktop.
    AmbientDomain(u32),
    /// Preempt all other class-input devices in the same ambient domain.
    ExclusiveInput,
    /// Preempt all other class-output devices in the same ambient domain.
    ExclusiveOutput,
    /// Claim sole (unshared) use of the mapped physical device.
    ExclusiveUse,
    /// Recorder capability: automatic gain control during recording.
    SupportsAgc,
    /// Recorder capability: compress recordings by removing pauses.
    SupportsPauseCompression,
    /// Recorder capability: pause detection to terminate recording.
    SupportsPauseDetection,
    /// Telephone: a directory number assigned to the line.
    PhoneNumber(String),
    /// Telephone: number of lines.
    PhoneLines(u8),
    /// Telephone: whether incoming-call events carry caller identity.
    CallerId(bool),
    /// Number of source (output) ports.
    SourcePorts(u8),
    /// Number of sink (input) ports.
    SinkPorts(u8),
    /// An extension attribute named by an atom with an opaque value.
    Extension(Atom, Vec<u8>),
}

impl WireWrite for Attribute {
    fn write(&self, w: &mut WireWriter) {
        match self {
            Attribute::Device(id) => {
                w.u8(0);
                id.write(w);
            }
            Attribute::Name(s) => {
                w.u8(1);
                w.string(s);
            }
            Attribute::Encoding(e) => {
                w.u8(2);
                e.write(w);
            }
            Attribute::SampleRate(r) => {
                w.u8(3);
                w.u32(*r);
            }
            Attribute::Channels(c) => {
                w.u8(4);
                w.u8(*c);
            }
            Attribute::AmbientDomain(d) => {
                w.u8(5);
                w.u32(*d);
            }
            Attribute::ExclusiveInput => w.u8(6),
            Attribute::ExclusiveOutput => w.u8(7),
            Attribute::ExclusiveUse => w.u8(8),
            Attribute::SupportsAgc => w.u8(9),
            Attribute::SupportsPauseCompression => w.u8(10),
            Attribute::SupportsPauseDetection => w.u8(11),
            Attribute::PhoneNumber(n) => {
                w.u8(12);
                w.string(n);
            }
            Attribute::PhoneLines(n) => {
                w.u8(13);
                w.u8(*n);
            }
            Attribute::CallerId(b) => {
                w.u8(14);
                w.bool(*b);
            }
            Attribute::SourcePorts(n) => {
                w.u8(15);
                w.u8(*n);
            }
            Attribute::SinkPorts(n) => {
                w.u8(16);
                w.u8(*n);
            }
            Attribute::Extension(a, v) => {
                w.u8(17);
                a.write(w);
                w.bytes(v);
            }
        }
    }
}

impl WireRead for Attribute {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Attribute::Device(DeviceId::read(r)?),
            1 => Attribute::Name(r.string()?),
            2 => Attribute::Encoding(Encoding::read(r)?),
            3 => Attribute::SampleRate(r.u32()?),
            4 => Attribute::Channels(r.u8()?),
            5 => Attribute::AmbientDomain(r.u32()?),
            6 => Attribute::ExclusiveInput,
            7 => Attribute::ExclusiveOutput,
            8 => Attribute::ExclusiveUse,
            9 => Attribute::SupportsAgc,
            10 => Attribute::SupportsPauseCompression,
            11 => Attribute::SupportsPauseDetection,
            12 => Attribute::PhoneNumber(r.string()?),
            13 => Attribute::PhoneLines(r.u8()?),
            14 => Attribute::CallerId(r.bool()?),
            15 => Attribute::SourcePorts(r.u8()?),
            16 => Attribute::SinkPorts(r.u8()?),
            17 => Attribute::Extension(Atom::read(r)?, r.bytes()?),
            other => return Err(CodecError::BadTag("Attribute", u32::from(other))),
        })
    }
}

/// The four states of a command queue (paper §5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueState {
    /// Processing commands.
    Started,
    /// Not processing; the current command (if any) was aborted.
    Stopped,
    /// Paused by the application; survives preemption and reactivation.
    ClientPaused,
    /// Paused by the server because the owning LOUD was deactivated; the
    /// queue resumes automatically when the LOUD reactivates.
    ServerPaused,
}

impl WireWrite for QueueState {
    fn write(&self, w: &mut WireWriter) {
        w.u8(match self {
            QueueState::Started => 0,
            QueueState::Stopped => 1,
            QueueState::ClientPaused => 2,
            QueueState::ServerPaused => 3,
        });
    }
}

impl WireRead for QueueState {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => QueueState::Started,
            1 => QueueState::Stopped,
            2 => QueueState::ClientPaused,
            3 => QueueState::ServerPaused,
            other => return Err(CodecError::BadTag("QueueState", u32::from(other))),
        })
    }
}

/// A `(name, value, type)` property triple attachable to any LOUD or sound
/// (paper §5.8); the value's interpretation is given by the `type` atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    /// Property name.
    pub name: Atom,
    /// Atom naming the value's type (e.g. "STRING", "INTEGER").
    pub type_: Atom,
    /// Opaque value bytes.
    pub value: Vec<u8>,
}

impl WireWrite for Property {
    fn write(&self, w: &mut WireWriter) {
        self.name.write(w);
        self.type_.write(w);
        w.bytes(&self.value);
    }
}

impl WireRead for Property {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(Property { name: Atom::read(r)?, type_: Atom::read(r)?, value: r.bytes()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_rates_match_paper() {
        // Paper §1.1: telephone quality is 8,000 bytes/s; CD quality is
        // just over 175,000 bytes/s.
        assert_eq!(SoundType::TELEPHONE.bytes_per_second(), 8_000);
        assert_eq!(SoundType::CD.bytes_per_second(), 176_400);
    }

    #[test]
    fn adpcm_halves_ulaw_rate() {
        // Paper §5.9 footnote: ADPCM reduces audio data rates by about half.
        let ulaw = SoundType::TELEPHONE;
        let adpcm =
            SoundType { encoding: Encoding::ImaAdpcm, sample_rate: 8_000, channels: 1 };
        assert_eq!(adpcm.bytes_per_second() * 2, ulaw.bytes_per_second());
    }

    #[test]
    fn encoding_roundtrip() {
        for e in [
            Encoding::ULaw,
            Encoding::ALaw,
            Encoding::Pcm8,
            Encoding::Pcm16,
            Encoding::ImaAdpcm,
        ] {
            assert_eq!(Encoding::from_wire(&e.to_wire()).unwrap(), e);
        }
    }

    #[test]
    fn device_class_roundtrip() {
        for c in DeviceClass::ALL {
            assert_eq!(DeviceClass::from_wire(&c.to_wire()).unwrap(), c);
        }
    }

    #[test]
    fn attribute_roundtrip() {
        let attrs = vec![
            Attribute::Device(DeviceId(3)),
            Attribute::Name("left speaker".into()),
            Attribute::Encoding(Encoding::ULaw),
            Attribute::SampleRate(8000),
            Attribute::Channels(2),
            Attribute::AmbientDomain(1),
            Attribute::ExclusiveInput,
            Attribute::ExclusiveOutput,
            Attribute::ExclusiveUse,
            Attribute::SupportsAgc,
            Attribute::SupportsPauseCompression,
            Attribute::SupportsPauseDetection,
            Attribute::PhoneNumber("555-0100".into()),
            Attribute::PhoneLines(2),
            Attribute::CallerId(true),
            Attribute::SourcePorts(1),
            Attribute::SinkPorts(4),
            Attribute::Extension(Atom(9), vec![1, 2, 3]),
        ];
        for a in &attrs {
            assert_eq!(&Attribute::from_wire(&a.to_wire()).unwrap(), a);
        }
    }

    #[test]
    fn wire_type_admission() {
        let tel = WireType::Digital(SoundType::TELEPHONE);
        let cd = WireType::Digital(SoundType::CD);
        assert!(WireType::Any.admits(&tel));
        assert!(tel.admits(&tel));
        assert!(!tel.admits(&cd));
        assert!(!tel.admits(&WireType::Analog));
        assert!(WireType::Analog.admits(&WireType::Analog));
    }

    #[test]
    fn queue_state_roundtrip() {
        for s in [
            QueueState::Started,
            QueueState::Stopped,
            QueueState::ClientPaused,
            QueueState::ServerPaused,
        ] {
            assert_eq!(QueueState::from_wire(&s.to_wire()).unwrap(), s);
        }
    }

    #[test]
    fn property_roundtrip() {
        let p = Property { name: Atom(1), type_: Atom(2), value: b"DOMAIN".to_vec() };
        assert_eq!(Property::from_wire(&p.to_wire()).unwrap(), p);
    }
}
