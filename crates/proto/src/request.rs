//! Client → server requests.
//!
//! Requests are asynchronous (paper §4.1): the client streams them without
//! waiting. Each request frame carries an explicit `u32` sequence number
//! followed by the encoded [`Request`]; replies and errors quote that
//! sequence number back.

use crate::codec::{CodecError, WireRead, WireReader, WireWrite, WireWriter};
use crate::command::{DeviceCommand, QueueEntry};
use crate::event::EventMask;
use crate::ids::{Atom, LoudId, ResourceId, SoundId, VDeviceId, WireId};
use crate::types::{Attribute, DeviceClass, SoundType, WireType};

/// A single protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    // -- LOUDs (paper §5.1) ------------------------------------------------
    /// Create a logical audio device, optionally as a child of `parent`.
    /// Root LOUDs receive a command queue.
    CreateLoud {
        /// Client-allocated id for the new LOUD.
        id: LoudId,
        /// Parent LOUD, or `None` to create a root.
        parent: Option<LoudId>,
    },
    /// Destroy a LOUD and everything beneath it (sub-LOUDs, virtual
    /// devices, wires).
    DestroyLoud {
        /// The LOUD to destroy.
        id: LoudId,
    },
    /// Map a root LOUD: place it on the active stack and bind its virtual
    /// devices to physical devices (paper §5.4). Subject to audio-manager
    /// redirection (paper §5.8).
    MapLoud {
        /// The root LOUD to map.
        id: LoudId,
    },
    /// Unmap a root LOUD, removing it from the active stack.
    UnmapLoud {
        /// The root LOUD to unmap.
        id: LoudId,
    },
    /// Raise a mapped root LOUD to the top of the active stack. Subject to
    /// redirection.
    RaiseLoud {
        /// The root LOUD to raise.
        id: LoudId,
    },
    /// Lower a mapped root LOUD to the bottom of the active stack, yielding
    /// to higher-priority LOUDs.
    LowerLoud {
        /// The root LOUD to lower.
        id: LoudId,
    },
    /// Ask the server to activate a mapped LOUD if resources permit.
    RequestActivate {
        /// The root LOUD to activate.
        id: LoudId,
    },
    /// Ask the server to deactivate an active LOUD.
    RequestDeactivate {
        /// The root LOUD to deactivate.
        id: LoudId,
    },
    /// Query the active stack, top first (audio-manager support).
    QueryActiveStack,

    // -- Virtual devices ----------------------------------------------------
    /// Create a virtual device of `class` inside `loud`, constrained by
    /// `attrs` (paper §5.1, §5.3).
    CreateVDevice {
        /// Client-allocated id for the device.
        id: VDeviceId,
        /// Containing LOUD.
        loud: LoudId,
        /// Device class.
        class: DeviceClass,
        /// Constraining attributes, loose or tight.
        attrs: Vec<Attribute>,
    },
    /// Destroy a virtual device and its wires.
    DestroyVDevice {
        /// The device to destroy.
        id: VDeviceId,
    },
    /// Add constraints to an existing virtual device, e.g. pinning it to
    /// the physical device chosen at mapping time (paper §5.3).
    AugmentVDevice {
        /// The device to constrain.
        id: VDeviceId,
        /// Attributes appended to the constraint list.
        attrs: Vec<Attribute>,
    },
    /// Query a virtual device's attributes, including (once mapped) the
    /// id of the physical device selected by the server.
    QueryVDeviceAttributes {
        /// The device to query.
        id: VDeviceId,
    },
    /// Set a device control — a `(name, value)` pair giving access to
    /// device-specific features at the cost of portability (paper §5.1).
    SetDeviceControl {
        /// Target virtual device.
        id: VDeviceId,
        /// Control name.
        name: Atom,
        /// Opaque control value.
        value: Vec<u8>,
    },
    /// Read back a device control.
    GetDeviceControl {
        /// Target virtual device.
        id: VDeviceId,
        /// Control name.
        name: Atom,
    },

    // -- Wires (paper §5.2) --------------------------------------------------
    /// Connect a source port to a sink port with an optional type
    /// constraint; the server checks that the ports' types match the wire.
    CreateWire {
        /// Client-allocated id for the wire.
        id: WireId,
        /// Device owning the source (output) port.
        src: VDeviceId,
        /// Source port index.
        src_port: u8,
        /// Device owning the sink (input) port.
        dst: VDeviceId,
        /// Sink port index.
        dst_port: u8,
        /// Required data-path type.
        wire_type: WireType,
    },
    /// Remove a wire.
    DestroyWire {
        /// The wire to remove.
        id: WireId,
    },
    /// Query a wire for its endpoints and type.
    QueryWire {
        /// The wire to query.
        id: WireId,
    },
    /// Query all wires attached to a virtual device.
    QueryDeviceWires {
        /// The device to query.
        id: VDeviceId,
    },

    // -- Command queues (paper §5.5) ------------------------------------------
    /// Append entries to a root LOUD's command queue.
    Enqueue {
        /// Root LOUD owning the queue.
        loud: LoudId,
        /// Entries appended in order.
        entries: Vec<QueueEntry>,
    },
    /// Issue a command in immediate mode, bypassing the queue; only
    /// commands for which [`DeviceCommand::immediate_ok`] holds are legal.
    Immediate {
        /// Target virtual device.
        vdev: VDeviceId,
        /// The command.
        cmd: DeviceCommand,
    },
    /// Begin processing a queue.
    StartQueue {
        /// Root LOUD owning the queue.
        loud: LoudId,
    },
    /// Stop a queue, aborting the current command.
    StopQueue {
        /// Root LOUD owning the queue.
        loud: LoudId,
    },
    /// Pause a queue (client-paused state); queue-relative time suspends.
    PauseQueue {
        /// Root LOUD owning the queue.
        loud: LoudId,
    },
    /// Resume a client-paused queue.
    ResumeQueue {
        /// Root LOUD owning the queue.
        loud: LoudId,
    },
    /// Discard all unprocessed queue entries (the current command keeps
    /// running).
    FlushQueue {
        /// Root LOUD owning the queue.
        loud: LoudId,
    },
    /// Query queue state, depth and position.
    QueryQueue {
        /// Root LOUD owning the queue.
        loud: LoudId,
    },

    // -- Sounds (paper §5.6) ---------------------------------------------------
    /// Create an empty sound of the given type in the server's data space.
    CreateSound {
        /// Client-allocated id for the sound.
        id: SoundId,
        /// The sound's type.
        stype: SoundType,
    },
    /// Delete a sound.
    DeleteSound {
        /// The sound to delete.
        id: SoundId,
    },
    /// Append encoded data to a sound. With `eof`, marks the sound
    /// complete; streaming (real-time) sounds are written with `eof =
    /// false` until the final block.
    WriteSoundData {
        /// Target sound.
        id: SoundId,
        /// Encoded audio data in the sound's own encoding.
        data: Vec<u8>,
        /// Whether this is the final block.
        eof: bool,
    },
    /// Read back encoded data from a sound.
    ReadSoundData {
        /// Source sound.
        id: SoundId,
        /// Starting byte offset.
        offset: u64,
        /// Maximum bytes to return.
        len: u32,
    },
    /// Query a sound's type, length and completeness.
    QuerySound {
        /// The sound to query.
        id: SoundId,
    },
    /// List the named sounds in a server-side catalogue (paper §5.6:
    /// sounds grouped into libraries or catalogues).
    ListCatalog {
        /// Catalogue name; the empty string lists catalogue names instead.
        catalog: String,
    },
    /// Bind a client sound id to a server-side catalogue sound, so that it
    /// can be played without transferring the data.
    OpenCatalogSound {
        /// Client-allocated id to bind.
        id: SoundId,
        /// Catalogue name.
        catalog: String,
        /// Sound name within the catalogue.
        name: String,
    },

    // -- Events (paper §5.7) -----------------------------------------------------
    /// Select which event categories the client wants from a resource.
    SelectEvents {
        /// The resource to watch (LOUD, virtual device, sound or
        /// device-LOUD device).
        target: ResourceId,
        /// Bitmask of interesting events.
        mask: EventMask,
    },
    /// Set the spacing of synchronization events on a virtual device, in
    /// sample frames (0 restores the server default).
    SetSyncInterval {
        /// The device that emits [`crate::event::Event::SyncMark`].
        vdev: VDeviceId,
        /// Frames between marks.
        interval_frames: u32,
    },

    // -- Atoms and properties (paper §5.8) ------------------------------------------
    /// Intern a name, returning its atom.
    InternAtom {
        /// The name to intern.
        name: String,
    },
    /// Get the name of an interned atom.
    GetAtomName {
        /// The atom to resolve.
        atom: Atom,
    },
    /// Attach or replace a property on a LOUD or sound.
    ChangeProperty {
        /// Property owner.
        target: ResourceId,
        /// Property name.
        name: Atom,
        /// Type atom describing `value`.
        type_: Atom,
        /// Opaque property value.
        value: Vec<u8>,
    },
    /// Read a property.
    GetProperty {
        /// Property owner.
        target: ResourceId,
        /// Property name.
        name: Atom,
    },
    /// Remove a property.
    DeleteProperty {
        /// Property owner.
        target: ResourceId,
        /// Property name.
        name: Atom,
    },
    /// List the property names on a resource.
    ListProperties {
        /// Property owner.
        target: ResourceId,
    },

    // -- Device LOUD and audio-manager support -----------------------------------------
    /// Query the device LOUD: every physical device with its id, class,
    /// attributes, hard wires and ambient domains (paper §5.1).
    QueryDeviceLoud,
    /// Register (or release) this client as the audio manager, redirecting
    /// map and restack requests to it (paper §5.8). Only one client may
    /// hold the redirect at a time.
    SetRedirect {
        /// Enable or disable redirection.
        enable: bool,
    },
    /// Audio manager: allow a redirected map request to proceed.
    AllowMap {
        /// The LOUD whose map was redirected.
        loud: LoudId,
    },
    /// Audio manager: allow a redirected raise request to proceed.
    AllowRaise {
        /// The LOUD whose raise was redirected.
        loud: LoudId,
    },

    // -- Miscellaneous ------------------------------------------------------------------
    /// Query server identity, protocol version and current device time.
    GetServerInfo,
    /// Round-trip no-op; the reply synchronises client with server.
    Sync,
    /// Query the server's telemetry registry: per-opcode dispatch
    /// counts, engine/queue/wire counters and latency histograms.
    QueryServerStats,
    /// List connected clients with per-client resource and wire-byte
    /// accounting.
    ListClients,
    /// Query the flight recorder: the most recent completed request
    /// traces (slowest retained preferentially), each with per-stage
    /// wire-to-engine timestamps (§10).
    QueryTraces {
        /// Maximum number of traces to return (the server may cap it).
        max: u32,
    },
}

impl Request {
    /// Number of request opcodes (opcodes are dense, `0..COUNT`).
    pub const COUNT: usize = 51;

    /// Human-readable opcode names, indexed by opcode.
    pub const NAMES: [&'static str; Request::COUNT] = [
        "CreateLoud",
        "DestroyLoud",
        "MapLoud",
        "UnmapLoud",
        "RaiseLoud",
        "LowerLoud",
        "RequestActivate",
        "RequestDeactivate",
        "QueryActiveStack",
        "CreateVDevice",
        "DestroyVDevice",
        "AugmentVDevice",
        "QueryVDeviceAttributes",
        "SetDeviceControl",
        "GetDeviceControl",
        "CreateWire",
        "DestroyWire",
        "QueryWire",
        "QueryDeviceWires",
        "Enqueue",
        "Immediate",
        "StartQueue",
        "StopQueue",
        "PauseQueue",
        "ResumeQueue",
        "FlushQueue",
        "QueryQueue",
        "CreateSound",
        "DeleteSound",
        "WriteSoundData",
        "ReadSoundData",
        "QuerySound",
        "ListCatalog",
        "OpenCatalogSound",
        "SelectEvents",
        "SetSyncInterval",
        "InternAtom",
        "GetAtomName",
        "ChangeProperty",
        "GetProperty",
        "DeleteProperty",
        "ListProperties",
        "QueryDeviceLoud",
        "SetRedirect",
        "AllowMap",
        "AllowRaise",
        "GetServerInfo",
        "Sync",
        "QueryServerStats",
        "ListClients",
        "QueryTraces",
    ];

    /// The opcode this request encodes to (the first wire byte).
    pub fn opcode(&self) -> u8 {
        match self {
            Request::CreateLoud { .. } => 0,
            Request::DestroyLoud { .. } => 1,
            Request::MapLoud { .. } => 2,
            Request::UnmapLoud { .. } => 3,
            Request::RaiseLoud { .. } => 4,
            Request::LowerLoud { .. } => 5,
            Request::RequestActivate { .. } => 6,
            Request::RequestDeactivate { .. } => 7,
            Request::QueryActiveStack => 8,
            Request::CreateVDevice { .. } => 9,
            Request::DestroyVDevice { .. } => 10,
            Request::AugmentVDevice { .. } => 11,
            Request::QueryVDeviceAttributes { .. } => 12,
            Request::SetDeviceControl { .. } => 13,
            Request::GetDeviceControl { .. } => 14,
            Request::CreateWire { .. } => 15,
            Request::DestroyWire { .. } => 16,
            Request::QueryWire { .. } => 17,
            Request::QueryDeviceWires { .. } => 18,
            Request::Enqueue { .. } => 19,
            Request::Immediate { .. } => 20,
            Request::StartQueue { .. } => 21,
            Request::StopQueue { .. } => 22,
            Request::PauseQueue { .. } => 23,
            Request::ResumeQueue { .. } => 24,
            Request::FlushQueue { .. } => 25,
            Request::QueryQueue { .. } => 26,
            Request::CreateSound { .. } => 27,
            Request::DeleteSound { .. } => 28,
            Request::WriteSoundData { .. } => 29,
            Request::ReadSoundData { .. } => 30,
            Request::QuerySound { .. } => 31,
            Request::ListCatalog { .. } => 32,
            Request::OpenCatalogSound { .. } => 33,
            Request::SelectEvents { .. } => 34,
            Request::SetSyncInterval { .. } => 35,
            Request::InternAtom { .. } => 36,
            Request::GetAtomName { .. } => 37,
            Request::ChangeProperty { .. } => 38,
            Request::GetProperty { .. } => 39,
            Request::DeleteProperty { .. } => 40,
            Request::ListProperties { .. } => 41,
            Request::QueryDeviceLoud => 42,
            Request::SetRedirect { .. } => 43,
            Request::AllowMap { .. } => 44,
            Request::AllowRaise { .. } => 45,
            Request::GetServerInfo => 46,
            Request::Sync => 47,
            Request::QueryServerStats => 48,
            Request::ListClients => 49,
            Request::QueryTraces { .. } => 50,
        }
    }

    /// The name of an opcode, if it is in range.
    pub fn opcode_name(op: u8) -> Option<&'static str> {
        Request::NAMES.get(op as usize).copied()
    }
    /// Whether the server generates a [`crate::reply::Reply`] for this
    /// request.
    pub fn has_reply(&self) -> bool {
        matches!(
            self,
            Request::QueryVDeviceAttributes { .. }
                | Request::GetDeviceControl { .. }
                | Request::QueryWire { .. }
                | Request::QueryDeviceWires { .. }
                | Request::QueryQueue { .. }
                | Request::ReadSoundData { .. }
                | Request::QuerySound { .. }
                | Request::ListCatalog { .. }
                | Request::InternAtom { .. }
                | Request::GetAtomName { .. }
                | Request::GetProperty { .. }
                | Request::ListProperties { .. }
                | Request::QueryDeviceLoud
                | Request::QueryActiveStack
                | Request::GetServerInfo
                | Request::Sync
                | Request::QueryServerStats
                | Request::ListClients
                | Request::QueryTraces { .. }
        )
    }
}

impl WireWrite for Request {
    fn write(&self, w: &mut WireWriter) {
        match self {
            Request::CreateLoud { id, parent } => {
                w.u8(0);
                id.write(w);
                w.option(parent);
            }
            Request::DestroyLoud { id } => {
                w.u8(1);
                id.write(w);
            }
            Request::MapLoud { id } => {
                w.u8(2);
                id.write(w);
            }
            Request::UnmapLoud { id } => {
                w.u8(3);
                id.write(w);
            }
            Request::RaiseLoud { id } => {
                w.u8(4);
                id.write(w);
            }
            Request::LowerLoud { id } => {
                w.u8(5);
                id.write(w);
            }
            Request::RequestActivate { id } => {
                w.u8(6);
                id.write(w);
            }
            Request::RequestDeactivate { id } => {
                w.u8(7);
                id.write(w);
            }
            Request::QueryActiveStack => w.u8(8),
            Request::CreateVDevice { id, loud, class, attrs } => {
                w.u8(9);
                id.write(w);
                loud.write(w);
                class.write(w);
                w.list(attrs);
            }
            Request::DestroyVDevice { id } => {
                w.u8(10);
                id.write(w);
            }
            Request::AugmentVDevice { id, attrs } => {
                w.u8(11);
                id.write(w);
                w.list(attrs);
            }
            Request::QueryVDeviceAttributes { id } => {
                w.u8(12);
                id.write(w);
            }
            Request::SetDeviceControl { id, name, value } => {
                w.u8(13);
                id.write(w);
                name.write(w);
                w.bytes(value);
            }
            Request::GetDeviceControl { id, name } => {
                w.u8(14);
                id.write(w);
                name.write(w);
            }
            Request::CreateWire { id, src, src_port, dst, dst_port, wire_type } => {
                w.u8(15);
                id.write(w);
                src.write(w);
                w.u8(*src_port);
                dst.write(w);
                w.u8(*dst_port);
                wire_type.write(w);
            }
            Request::DestroyWire { id } => {
                w.u8(16);
                id.write(w);
            }
            Request::QueryWire { id } => {
                w.u8(17);
                id.write(w);
            }
            Request::QueryDeviceWires { id } => {
                w.u8(18);
                id.write(w);
            }
            Request::Enqueue { loud, entries } => {
                w.u8(19);
                loud.write(w);
                w.list(entries);
            }
            Request::Immediate { vdev, cmd } => {
                w.u8(20);
                vdev.write(w);
                cmd.write(w);
            }
            Request::StartQueue { loud } => {
                w.u8(21);
                loud.write(w);
            }
            Request::StopQueue { loud } => {
                w.u8(22);
                loud.write(w);
            }
            Request::PauseQueue { loud } => {
                w.u8(23);
                loud.write(w);
            }
            Request::ResumeQueue { loud } => {
                w.u8(24);
                loud.write(w);
            }
            Request::FlushQueue { loud } => {
                w.u8(25);
                loud.write(w);
            }
            Request::QueryQueue { loud } => {
                w.u8(26);
                loud.write(w);
            }
            Request::CreateSound { id, stype } => {
                w.u8(27);
                id.write(w);
                stype.write(w);
            }
            Request::DeleteSound { id } => {
                w.u8(28);
                id.write(w);
            }
            Request::WriteSoundData { id, data, eof } => {
                w.u8(29);
                id.write(w);
                w.bytes(data);
                w.bool(*eof);
            }
            Request::ReadSoundData { id, offset, len } => {
                w.u8(30);
                id.write(w);
                w.u64(*offset);
                w.u32(*len);
            }
            Request::QuerySound { id } => {
                w.u8(31);
                id.write(w);
            }
            Request::ListCatalog { catalog } => {
                w.u8(32);
                w.string(catalog);
            }
            Request::OpenCatalogSound { id, catalog, name } => {
                w.u8(33);
                id.write(w);
                w.string(catalog);
                w.string(name);
            }
            Request::SelectEvents { target, mask } => {
                w.u8(34);
                target.write(w);
                mask.write(w);
            }
            Request::SetSyncInterval { vdev, interval_frames } => {
                w.u8(35);
                vdev.write(w);
                w.u32(*interval_frames);
            }
            Request::InternAtom { name } => {
                w.u8(36);
                w.string(name);
            }
            Request::GetAtomName { atom } => {
                w.u8(37);
                atom.write(w);
            }
            Request::ChangeProperty { target, name, type_, value } => {
                w.u8(38);
                target.write(w);
                name.write(w);
                type_.write(w);
                w.bytes(value);
            }
            Request::GetProperty { target, name } => {
                w.u8(39);
                target.write(w);
                name.write(w);
            }
            Request::DeleteProperty { target, name } => {
                w.u8(40);
                target.write(w);
                name.write(w);
            }
            Request::ListProperties { target } => {
                w.u8(41);
                target.write(w);
            }
            Request::QueryDeviceLoud => w.u8(42),
            Request::SetRedirect { enable } => {
                w.u8(43);
                w.bool(*enable);
            }
            Request::AllowMap { loud } => {
                w.u8(44);
                loud.write(w);
            }
            Request::AllowRaise { loud } => {
                w.u8(45);
                loud.write(w);
            }
            Request::GetServerInfo => w.u8(46),
            Request::Sync => w.u8(47),
            Request::QueryServerStats => w.u8(48),
            Request::ListClients => w.u8(49),
            Request::QueryTraces { max } => {
                w.u8(50);
                w.u32(*max);
            }
        }
    }
}

impl WireRead for Request {
    fn read(r: &mut WireReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Request::CreateLoud { id: LoudId::read(r)?, parent: r.option()? },
            1 => Request::DestroyLoud { id: LoudId::read(r)? },
            2 => Request::MapLoud { id: LoudId::read(r)? },
            3 => Request::UnmapLoud { id: LoudId::read(r)? },
            4 => Request::RaiseLoud { id: LoudId::read(r)? },
            5 => Request::LowerLoud { id: LoudId::read(r)? },
            6 => Request::RequestActivate { id: LoudId::read(r)? },
            7 => Request::RequestDeactivate { id: LoudId::read(r)? },
            8 => Request::QueryActiveStack,
            9 => Request::CreateVDevice {
                id: VDeviceId::read(r)?,
                loud: LoudId::read(r)?,
                class: DeviceClass::read(r)?,
                attrs: r.list()?,
            },
            10 => Request::DestroyVDevice { id: VDeviceId::read(r)? },
            11 => Request::AugmentVDevice { id: VDeviceId::read(r)?, attrs: r.list()? },
            12 => Request::QueryVDeviceAttributes { id: VDeviceId::read(r)? },
            13 => Request::SetDeviceControl {
                id: VDeviceId::read(r)?,
                name: Atom::read(r)?,
                value: r.bytes()?,
            },
            14 => Request::GetDeviceControl { id: VDeviceId::read(r)?, name: Atom::read(r)? },
            15 => Request::CreateWire {
                id: WireId::read(r)?,
                src: VDeviceId::read(r)?,
                src_port: r.u8()?,
                dst: VDeviceId::read(r)?,
                dst_port: r.u8()?,
                wire_type: WireType::read(r)?,
            },
            16 => Request::DestroyWire { id: WireId::read(r)? },
            17 => Request::QueryWire { id: WireId::read(r)? },
            18 => Request::QueryDeviceWires { id: VDeviceId::read(r)? },
            19 => Request::Enqueue { loud: LoudId::read(r)?, entries: r.list()? },
            20 => Request::Immediate {
                vdev: VDeviceId::read(r)?,
                cmd: DeviceCommand::read(r)?,
            },
            21 => Request::StartQueue { loud: LoudId::read(r)? },
            22 => Request::StopQueue { loud: LoudId::read(r)? },
            23 => Request::PauseQueue { loud: LoudId::read(r)? },
            24 => Request::ResumeQueue { loud: LoudId::read(r)? },
            25 => Request::FlushQueue { loud: LoudId::read(r)? },
            26 => Request::QueryQueue { loud: LoudId::read(r)? },
            27 => Request::CreateSound { id: SoundId::read(r)?, stype: SoundType::read(r)? },
            28 => Request::DeleteSound { id: SoundId::read(r)? },
            29 => Request::WriteSoundData {
                id: SoundId::read(r)?,
                data: r.bytes()?,
                eof: r.bool()?,
            },
            30 => Request::ReadSoundData {
                id: SoundId::read(r)?,
                offset: r.u64()?,
                len: r.u32()?,
            },
            31 => Request::QuerySound { id: SoundId::read(r)? },
            32 => Request::ListCatalog { catalog: r.string()? },
            33 => Request::OpenCatalogSound {
                id: SoundId::read(r)?,
                catalog: r.string()?,
                name: r.string()?,
            },
            34 => Request::SelectEvents {
                target: ResourceId::read(r)?,
                mask: EventMask::read(r)?,
            },
            35 => Request::SetSyncInterval {
                vdev: VDeviceId::read(r)?,
                interval_frames: r.u32()?,
            },
            36 => Request::InternAtom { name: r.string()? },
            37 => Request::GetAtomName { atom: Atom::read(r)? },
            38 => Request::ChangeProperty {
                target: ResourceId::read(r)?,
                name: Atom::read(r)?,
                type_: Atom::read(r)?,
                value: r.bytes()?,
            },
            39 => Request::GetProperty { target: ResourceId::read(r)?, name: Atom::read(r)? },
            40 => {
                Request::DeleteProperty { target: ResourceId::read(r)?, name: Atom::read(r)? }
            }
            41 => Request::ListProperties { target: ResourceId::read(r)? },
            42 => Request::QueryDeviceLoud,
            43 => Request::SetRedirect { enable: r.bool()? },
            44 => Request::AllowMap { loud: LoudId::read(r)? },
            45 => Request::AllowRaise { loud: LoudId::read(r)? },
            46 => Request::GetServerInfo,
            47 => Request::Sync,
            48 => Request::QueryServerStats,
            49 => Request::ListClients,
            50 => Request::QueryTraces { max: r.u32()? },
            other => return Err(CodecError::BadTag("Request", u32::from(other))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Encoding;

    fn roundtrip(req: &Request) {
        assert_eq!(&Request::from_wire(&req.to_wire()).unwrap(), req);
    }

    #[test]
    fn representative_requests_roundtrip() {
        let reqs = vec![
            Request::CreateLoud { id: LoudId(0x100), parent: None },
            Request::CreateLoud { id: LoudId(0x101), parent: Some(LoudId(0x100)) },
            Request::DestroyLoud { id: LoudId(0x100) },
            Request::MapLoud { id: LoudId(0x100) },
            Request::UnmapLoud { id: LoudId(0x100) },
            Request::RaiseLoud { id: LoudId(0x100) },
            Request::LowerLoud { id: LoudId(0x100) },
            Request::RequestActivate { id: LoudId(1) },
            Request::RequestDeactivate { id: LoudId(1) },
            Request::QueryActiveStack,
            Request::CreateVDevice {
                id: VDeviceId(0x102),
                loud: LoudId(0x100),
                class: DeviceClass::Player,
                attrs: vec![Attribute::Encoding(Encoding::ULaw), Attribute::SampleRate(8000)],
            },
            Request::DestroyVDevice { id: VDeviceId(0x102) },
            Request::AugmentVDevice {
                id: VDeviceId(0x102),
                attrs: vec![Attribute::Device(crate::ids::DeviceId(1))],
            },
            Request::QueryVDeviceAttributes { id: VDeviceId(0x102) },
            Request::SetDeviceControl { id: VDeviceId(1), name: Atom(4), value: vec![1] },
            Request::GetDeviceControl { id: VDeviceId(1), name: Atom(4) },
            Request::CreateWire {
                id: WireId(0x103),
                src: VDeviceId(0x102),
                src_port: 0,
                dst: VDeviceId(0x104),
                dst_port: 1,
                wire_type: WireType::Digital(SoundType::TELEPHONE),
            },
            Request::DestroyWire { id: WireId(0x103) },
            Request::QueryWire { id: WireId(0x103) },
            Request::QueryDeviceWires { id: VDeviceId(0x102) },
            Request::Enqueue {
                loud: LoudId(0x100),
                entries: vec![
                    QueueEntry::CoBegin,
                    QueueEntry::Device {
                        vdev: VDeviceId(0x102),
                        cmd: DeviceCommand::Play(SoundId(0x105)),
                    },
                    QueueEntry::CoEnd,
                ],
            },
            Request::Immediate { vdev: VDeviceId(0x102), cmd: DeviceCommand::Stop },
            Request::StartQueue { loud: LoudId(0x100) },
            Request::StopQueue { loud: LoudId(0x100) },
            Request::PauseQueue { loud: LoudId(0x100) },
            Request::ResumeQueue { loud: LoudId(0x100) },
            Request::FlushQueue { loud: LoudId(0x100) },
            Request::QueryQueue { loud: LoudId(0x100) },
            Request::CreateSound { id: SoundId(0x105), stype: SoundType::TELEPHONE },
            Request::DeleteSound { id: SoundId(0x105) },
            Request::WriteSoundData { id: SoundId(0x105), data: vec![1, 2, 3], eof: true },
            Request::ReadSoundData { id: SoundId(0x105), offset: 16, len: 256 },
            Request::QuerySound { id: SoundId(0x105) },
            Request::ListCatalog { catalog: "system".into() },
            Request::OpenCatalogSound {
                id: SoundId(0x106),
                catalog: "system".into(),
                name: "beep".into(),
            },
            Request::SelectEvents {
                target: ResourceId::Loud(LoudId(0x100)),
                mask: EventMask::all(),
            },
            Request::SetSyncInterval { vdev: VDeviceId(0x102), interval_frames: 800 },
            Request::InternAtom { name: "DOMAIN".into() },
            Request::GetAtomName { atom: Atom(5) },
            Request::ChangeProperty {
                target: ResourceId::Loud(LoudId(0x100)),
                name: Atom(5),
                type_: Atom(6),
                value: b"desktop".to_vec(),
            },
            Request::GetProperty { target: ResourceId::Loud(LoudId(0x100)), name: Atom(5) },
            Request::DeleteProperty { target: ResourceId::Loud(LoudId(0x100)), name: Atom(5) },
            Request::ListProperties { target: ResourceId::Loud(LoudId(0x100)) },
            Request::QueryDeviceLoud,
            Request::SetRedirect { enable: true },
            Request::AllowMap { loud: LoudId(0x100) },
            Request::AllowRaise { loud: LoudId(0x100) },
            Request::GetServerInfo,
            Request::Sync,
            Request::QueryServerStats,
            Request::ListClients,
            Request::QueryTraces { max: 8 },
        ];
        for req in &reqs {
            roundtrip(req);
        }
        // The opcode()/NAMES tables agree with the wire encoding, and
        // the representative list covers every opcode.
        let mut seen = [false; Request::COUNT];
        for req in &reqs {
            let op = req.opcode();
            assert_eq!(req.to_wire()[0], op, "{req:?}");
            assert!(Request::opcode_name(op).is_some());
            seen[op as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "representative list misses an opcode");
        assert_eq!(Request::opcode_name(Request::COUNT as u8), None);
    }

    #[test]
    fn reply_expectations() {
        assert!(Request::Sync.has_reply());
        assert!(Request::QueryServerStats.has_reply());
        assert!(Request::ListClients.has_reply());
        assert!(Request::QueryTraces { max: 4 }.has_reply());
        assert!(Request::QueryDeviceLoud.has_reply());
        assert!(Request::InternAtom { name: "x".into() }.has_reply());
        assert!(!Request::MapLoud { id: LoudId(1) }.has_reply());
        assert!(!Request::Enqueue { loud: LoudId(1), entries: vec![] }.has_reply());
    }
}
