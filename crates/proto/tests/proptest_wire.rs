//! Property tests for the wire protocol: every generated message survives
//! an encode→decode round trip, and arbitrary bytes never panic the
//! decoder (a malicious client must not crash the server, paper §4.1's
//! "precisely defined interface").

use da_proto::codec::{Frame, FrameKind, WireReader};
use da_proto::command::{DeviceCommand, Note, QueueEntry, RecordTermination};
use da_proto::event::{CallState, Event, EventMask, QueueStopReason, RecordStopReason};
use da_proto::ids::{Atom, ClientId, DeviceId, LoudId, ResourceId, SoundId, VDeviceId, WireId};
use da_proto::request::Request;
use da_proto::types::{Attribute, DeviceClass, Encoding, SoundType, WireType};
use da_proto::{WireRead, WireWrite};
use proptest::prelude::*;

fn arb_encoding() -> impl Strategy<Value = Encoding> {
    prop_oneof![
        Just(Encoding::ULaw),
        Just(Encoding::ALaw),
        Just(Encoding::Pcm8),
        Just(Encoding::Pcm16),
        Just(Encoding::ImaAdpcm),
    ]
}

fn arb_sound_type() -> impl Strategy<Value = SoundType> {
    (arb_encoding(), 1u32..200_000, 1u8..8).prop_map(|(encoding, sample_rate, channels)| {
        SoundType { encoding, sample_rate, channels }
    })
}

fn arb_class() -> impl Strategy<Value = DeviceClass> {
    prop::sample::select(DeviceClass::ALL.to_vec())
}

fn arb_attribute() -> impl Strategy<Value = Attribute> {
    prop_oneof![
        any::<u32>().prop_map(|v| Attribute::Device(DeviceId(v))),
        "[a-z ]{0,20}".prop_map(Attribute::Name),
        arb_encoding().prop_map(Attribute::Encoding),
        any::<u32>().prop_map(Attribute::SampleRate),
        any::<u8>().prop_map(Attribute::Channels),
        any::<u32>().prop_map(Attribute::AmbientDomain),
        Just(Attribute::ExclusiveInput),
        Just(Attribute::ExclusiveOutput),
        Just(Attribute::ExclusiveUse),
        Just(Attribute::SupportsAgc),
        "[0-9-]{0,12}".prop_map(Attribute::PhoneNumber),
        any::<bool>().prop_map(Attribute::CallerId),
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(a, v)| Attribute::Extension(Atom(a), v)),
    ]
}

fn arb_termination() -> impl Strategy<Value = RecordTermination> {
    prop_oneof![
        Just(RecordTermination::Manual),
        any::<u64>().prop_map(RecordTermination::MaxFrames),
        (any::<u16>(), any::<u64>()).prop_map(|(threshold, min_silence_frames)| {
            RecordTermination::OnPause { threshold, min_silence_frames }
        }),
        Just(RecordTermination::OnHangup),
    ]
}

fn arb_command() -> impl Strategy<Value = DeviceCommand> {
    prop_oneof![
        Just(DeviceCommand::Stop),
        Just(DeviceCommand::Pause),
        Just(DeviceCommand::Resume),
        any::<u32>().prop_map(DeviceCommand::ChangeGain),
        any::<u32>().prop_map(|s| DeviceCommand::Play(SoundId(s))),
        (any::<u32>(), arb_termination())
            .prop_map(|(s, t)| DeviceCommand::Record(SoundId(s), t)),
        "[0-9#*]{0,12}".prop_map(DeviceCommand::Dial),
        Just(DeviceCommand::Answer),
        "[0-9#*]{0,12}".prop_map(DeviceCommand::SendDtmf),
        (any::<u8>(), any::<u8>()).prop_map(|(input, percent)| DeviceCommand::SetMixGain {
            input,
            percent
        }),
        ".{0,40}".prop_map(DeviceCommand::SpeakText),
        (any::<u16>(), any::<u16>()).prop_map(|(rate_wpm, pitch_hz)| {
            DeviceCommand::SetVoiceValues { rate_wpm, pitch_hz }
        }),
        prop::collection::vec(("[a-z]{1,8}", "[a-z ]{1,12}"), 0..4)
            .prop_map(DeviceCommand::SetExceptionList),
        prop::collection::vec("[a-z]{1,8}", 0..6).prop_map(DeviceCommand::SetVocabulary),
        any::<i32>().prop_map(DeviceCommand::AdjustContext),
        (any::<u8>(), any::<u8>(), any::<u32>()).prop_map(|(note, velocity, duration_ms)| {
            DeviceCommand::PlayNote(Note { note, velocity, duration_ms })
        }),
    ]
}

fn arb_queue_entry() -> impl Strategy<Value = QueueEntry> {
    prop_oneof![
        (any::<u32>(), arb_command())
            .prop_map(|(v, cmd)| QueueEntry::Device { vdev: VDeviceId(v), cmd }),
        Just(QueueEntry::CoBegin),
        Just(QueueEntry::CoEnd),
        any::<u32>().prop_map(|ms| QueueEntry::Delay { ms }),
        Just(QueueEntry::DelayEnd),
    ]
}

fn arb_resource() -> impl Strategy<Value = ResourceId> {
    prop_oneof![
        any::<u32>().prop_map(|v| ResourceId::Loud(LoudId(v))),
        any::<u32>().prop_map(|v| ResourceId::VDevice(VDeviceId(v))),
        any::<u32>().prop_map(|v| ResourceId::Sound(SoundId(v))),
        any::<u32>().prop_map(|v| ResourceId::Device(DeviceId(v))),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u32>(), proptest::option::of(any::<u32>())).prop_map(|(id, p)| {
            Request::CreateLoud { id: LoudId(id), parent: p.map(LoudId) }
        }),
        (any::<u32>(), any::<u32>(), arb_class(), prop::collection::vec(arb_attribute(), 0..6))
            .prop_map(|(id, loud, class, attrs)| Request::CreateVDevice {
                id: VDeviceId(id),
                loud: LoudId(loud),
                class,
                attrs,
            }),
        (any::<u32>(), any::<u32>(), any::<u8>(), any::<u32>(), any::<u8>()).prop_map(
            |(id, src, sp, dst, dp)| Request::CreateWire {
                id: WireId(id),
                src: VDeviceId(src),
                src_port: sp,
                dst: VDeviceId(dst),
                dst_port: dp,
                wire_type: WireType::Any,
            }
        ),
        (any::<u32>(), prop::collection::vec(arb_queue_entry(), 0..8))
            .prop_map(|(l, entries)| Request::Enqueue { loud: LoudId(l), entries }),
        (any::<u32>(), arb_command())
            .prop_map(|(v, cmd)| Request::Immediate { vdev: VDeviceId(v), cmd }),
        (any::<u32>(), arb_sound_type())
            .prop_map(|(id, stype)| Request::CreateSound { id: SoundId(id), stype }),
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..256), any::<bool>()).prop_map(
            |(id, data, eof)| Request::WriteSoundData { id: SoundId(id), data, eof }
        ),
        (arb_resource(), any::<u32>()).prop_map(|(target, mask)| Request::SelectEvents {
            target,
            mask: EventMask(mask),
        }),
        ".{0,32}".prop_map(|name| Request::InternAtom { name }),
        (arb_resource(), any::<u32>(), any::<u32>(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(target, name, type_, value)| Request::ChangeProperty {
                target,
                name: Atom(name),
                type_: Atom(type_),
                value,
            }),
        Just(Request::QueryDeviceLoud),
        Just(Request::Sync),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        any::<u32>().prop_map(|l| Event::QueueStarted { loud: LoudId(l) }),
        (any::<u32>(), prop::sample::select(vec![
            QueueStopReason::ClientRequest,
            QueueStopReason::Drained,
            QueueStopReason::Error,
            QueueStopReason::Unpausable,
        ]))
        .prop_map(|(l, reason)| Event::QueueStopped { loud: LoudId(l), reason }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()).prop_map(
            |(l, v, index, at_frame)| Event::CommandDone {
                loud: LoudId(l),
                vdev: VDeviceId(v),
                index,
                at_frame,
            }
        ),
        (any::<u32>(), any::<u32>(), prop::sample::select(vec![
            RecordStopReason::Manual,
            RecordStopReason::MaxFrames,
            RecordStopReason::PauseDetected,
            RecordStopReason::Hangup,
        ]), any::<u64>())
            .prop_map(|(v, s, reason, frames)| Event::RecordStopped {
                vdev: VDeviceId(v),
                sound: SoundId(s),
                reason,
                frames,
            }),
        (arb_resource(), prop::sample::select(vec![
            CallState::Idle,
            CallState::Dialing,
            CallState::Ringback,
            CallState::Ringing,
            CallState::Connected,
            CallState::Busy,
            CallState::HungUp,
            CallState::NoAnswer,
        ]), proptest::option::of("[0-9-]{0,12}"))
            .prop_map(|(device, state, caller_id)| Event::CallProgress {
                device,
                state,
                caller_id,
            }),
        (any::<u32>(), ".{0,16}", any::<u32>()).prop_map(|(v, word, score)| {
            Event::WordRecognized { vdev: VDeviceId(v), word, score }
        }),
        (any::<u32>(), proptest::option::of(any::<u32>()), any::<u64>(), any::<u64>())
            .prop_map(|(v, s, position, device_time)| Event::SyncMark {
                vdev: VDeviceId(v),
                sound: s.map(SoundId),
                position,
                device_time,
            }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(l, c)| Event::MapRequest { loud: LoudId(l), client: ClientId(c) }),
    ]
}

proptest! {
    #[test]
    fn request_roundtrip(req in arb_request()) {
        let bytes = req.to_wire();
        let back = Request::from_wire(&bytes).expect("decode");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn event_roundtrip(ev in arb_event()) {
        let bytes = ev.to_wire();
        let back = Event::from_wire(&bytes).expect("decode");
        prop_assert_eq!(back, ev);
    }

    #[test]
    fn queue_entry_roundtrip(e in arb_queue_entry()) {
        let bytes = e.to_wire();
        prop_assert_eq!(QueueEntry::from_wire(&bytes).unwrap(), e);
    }

    #[test]
    fn attribute_roundtrip(a in arb_attribute()) {
        let bytes = a.to_wire();
        prop_assert_eq!(Attribute::from_wire(&bytes).unwrap(), a);
    }

    #[test]
    fn sound_type_roundtrip(st in arb_sound_type()) {
        let bytes = st.to_wire();
        prop_assert_eq!(SoundType::from_wire(&bytes).unwrap(), st);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Whatever arrives, decoding returns Ok or Err — never panics,
        // never allocates absurdly.
        let _ = Request::from_wire(&bytes);
        let _ = Event::from_wire(&bytes);
        let _ = da_proto::Reply::from_wire(&bytes);
        let mut r = WireReader::new(&bytes);
        let _ = r.list::<u32>();
    }

    #[test]
    fn frame_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        let _ = Frame::decode(&mut buf);
    }

    #[test]
    fn truncated_messages_error_cleanly(req in arb_request(), cut in 0usize..64) {
        let bytes = req.to_wire();
        if cut < bytes.len() {
            // A truncated prefix must decode to an error, not a panic.
            prop_assert!(Request::from_wire(&bytes[..cut]).is_err() || cut == bytes.len());
        }
    }

    #[test]
    fn frames_roundtrip_any_payload(payload in prop::collection::vec(any::<u8>(), 0..1024)) {
        let frame = Frame { kind: FrameKind::Event, payload: bytes::Bytes::from(payload) };
        let mut buf = bytes::BytesMut::from(&frame.encode()[..]);
        let decoded = Frame::decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, frame);
    }
}
