//! The Alib connection object.

use crate::error::AlibError;
use da_proto::codec::{Frame, FrameKind, WireReader, WireWriter};
use da_proto::command::{DeviceCommand, QueueEntry};
use da_proto::event::{Event, EventMask};
use da_proto::ids::{Atom, LoudId, ResourceId, SoundId, VDeviceId, WireId};
use da_proto::reply::{
    ClientStatsData, HardWire, PhysDeviceInfo, Reply, ServerStatsData, StackEntry, TraceData,
    TraceStage,
};
use da_proto::request::Request;
use da_proto::setup::{SetupReply, SetupRequest};
use da_proto::transport::{Duplex, TransportError};
use da_proto::types::{Attribute, DeviceClass, Property, SoundType, WireType};
use da_proto::{ProtoError, WireRead, WireWrite};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Default timeout for blocking waits.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// Client-side wire accounting: frames and payload bytes seen by this
/// connection, split by direction and frame kind. Plain `u64`s — the
/// connection is single-threaded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Request frames sent.
    pub requests_sent: u64,
    /// Payload bytes sent (including sequence numbers).
    pub bytes_sent: u64,
    /// Reply frames received.
    pub replies_received: u64,
    /// Event frames received.
    pub events_received: u64,
    /// Error frames received.
    pub errors_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Blocking waits that gave up at their deadline.
    pub timeouts: u64,
    /// Times the transport reported the server connection closed.
    pub disconnects: u64,
}

/// Largest data block sent in one `WriteSoundData` request.
const UPLOAD_CHUNK: usize = 64 * 1024;

/// The causal identity of one request, minted client-side when the
/// request is sent. The wire format is unchanged: the server correlates
/// stage stamps by the same `(client, seq)` pair every frame already
/// carries, so a `TraceId` can be matched against the `client`/`seq`
/// fields of the [`TraceData`] records `QueryTraces` returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId {
    /// The connection's client id, as granted at setup.
    pub client: da_proto::ids::ClientId,
    /// The request's sequence number on that connection.
    pub seq: u32,
}

impl TraceId {
    /// Whether `trace` is this request's server-side trace.
    pub fn matches(&self, trace: &TraceData) -> bool {
        trace.client == self.client && trace.seq == self.seq
    }
}

/// A connection to an audio server.
///
/// # Examples
///
/// ```no_run
/// use da_alib::Connection;
///
/// let mut conn = Connection::open_tcp("127.0.0.1:7700", "quickstart").unwrap();
/// let info = conn.server_info().unwrap();
/// println!("server: {}", info.0);
/// ```
pub struct Connection {
    duplex: Duplex,
    setup: SetupReply,
    next_seq: u32,
    next_id: u32,
    events: VecDeque<Event>,
    errors: VecDeque<(u32, ProtoError)>,
    replies: HashMap<u32, Reply>,
    wire_stats: WireStats,
    /// Timeout applied to blocking waits.
    pub timeout: Duration,
}

impl Connection {
    /// Establishes a connection over an already-open duplex (e.g. from
    /// `AudioServer::connect_pipe`).
    pub fn establish(mut duplex: Duplex, client_name: &str) -> Result<Connection, AlibError> {
        let setup_req = SetupRequest {
            protocol_major: da_proto::PROTOCOL_MAJOR,
            protocol_minor: da_proto::PROTOCOL_MINOR,
            client_name: client_name.to_string(),
        };
        let mut w = WireWriter::new();
        setup_req.write(&mut w);
        duplex
            .send(&Frame { kind: FrameKind::Setup, payload: w.finish() })
            .map_err(|e| AlibError::Connection(e.to_string()))?;
        let deadline = Instant::now() + DEFAULT_TIMEOUT;
        let setup = loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(AlibError::Timeout);
            }
            match duplex.recv(Some(left)) {
                Ok(Some(f)) if f.kind == FrameKind::SetupReply => {
                    break SetupReply::from_wire(&f.payload)
                        .map_err(|e| AlibError::Connection(e.to_string()))?;
                }
                Ok(Some(_)) => continue,
                Ok(None) => continue,
                Err(e) => return Err(AlibError::Connection(e.to_string())),
            }
        };
        Ok(Connection {
            duplex,
            setup,
            next_seq: 1,
            next_id: 1,
            events: VecDeque::new(),
            errors: VecDeque::new(),
            replies: HashMap::new(),
            wire_stats: WireStats::default(),
            timeout: DEFAULT_TIMEOUT,
        })
    }

    /// Connects to a server over TCP.
    pub fn open_tcp(addr: &str, client_name: &str) -> Result<Connection, AlibError> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| AlibError::Connection(e.to_string()))?;
        let duplex = Duplex::tcp(stream).map_err(|e| AlibError::Connection(e.to_string()))?;
        Connection::establish(duplex, client_name)
    }

    /// The setup information the server granted this client.
    pub fn setup(&self) -> &SetupReply {
        &self.setup
    }

    /// Allocates a fresh resource id from this client's range.
    pub fn alloc_id(&mut self) -> u32 {
        let id = self.setup.id_base | (self.next_id & self.setup.id_mask);
        self.next_id += 1;
        id
    }

    // ---- low-level send / receive -----------------------------------------

    /// Sends a request asynchronously, returning its sequence number.
    pub fn send(&mut self, request: &Request) -> Result<u32, AlibError> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let mut w = WireWriter::new();
        w.u32(seq);
        request.write(&mut w);
        let payload = w.finish();
        self.wire_stats.requests_sent += 1;
        self.wire_stats.bytes_sent += payload.len() as u64;
        self.duplex
            .send(&Frame { kind: FrameKind::Request, payload })
            .map_err(|e| AlibError::Connection(e.to_string()))?;
        Ok(seq)
    }

    /// This connection's wire accounting so far.
    pub fn wire_stats(&self) -> WireStats {
        self.wire_stats
    }

    fn pump_one(&mut self, timeout: Duration) -> Result<bool, AlibError> {
        match self.duplex.recv(Some(timeout)) {
            Ok(None) => Ok(false),
            Ok(Some(frame)) => {
                self.absorb(frame)?;
                Ok(true)
            }
            Err(TransportError::Closed) => {
                self.wire_stats.disconnects += 1;
                Err(AlibError::Connection("server closed the connection".into()))
            }
            Err(e) => Err(AlibError::Connection(e.to_string())),
        }
    }

    /// Gives up on a blocking wait: counts the timeout and surfaces the
    /// typed, retryable error.
    fn timed_out(&mut self) -> AlibError {
        self.wire_stats.timeouts += 1;
        AlibError::Timeout
    }

    fn absorb(&mut self, frame: Frame) -> Result<(), AlibError> {
        self.wire_stats.bytes_received += frame.payload.len() as u64;
        match frame.kind {
            FrameKind::Reply => {
                self.wire_stats.replies_received += 1;
                let mut r = WireReader::new(&frame.payload);
                let seq = r.u32().map_err(|_| AlibError::UnexpectedReply)?;
                let reply = Reply::read(&mut r).map_err(|_| AlibError::UnexpectedReply)?;
                self.replies.insert(seq, reply);
            }
            FrameKind::Event => {
                self.wire_stats.events_received += 1;
                if let Ok(ev) = Event::from_wire(&frame.payload) {
                    self.events.push_back(ev);
                }
            }
            FrameKind::Error => {
                self.wire_stats.errors_received += 1;
                let mut r = WireReader::new(&frame.payload);
                if let (Ok(seq), Ok(err)) = (r.u32(), ProtoError::read(&mut r)) {
                    self.errors.push_back((seq, err));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Waits for the reply to request `seq` (blocking on a request with a
    /// reply is tantamount to synchronizing with the server, §4.1).
    ///
    /// Polls with exponential backoff (1 ms doubling to 50 ms) up to
    /// the connection's `timeout`, then surfaces the typed, *retryable*
    /// [`AlibError::Timeout`] — a dead or wedged server never blocks
    /// the caller forever (DESIGN.md §12).
    pub fn wait_reply(&mut self, seq: u32) -> Result<Reply, AlibError> {
        let deadline = Instant::now() + self.timeout;
        let mut poll = Duration::from_millis(1);
        loop {
            if let Some(reply) = self.replies.remove(&seq) {
                return Ok(reply);
            }
            if let Some(pos) = self.errors.iter().position(|(s, _)| *s == seq) {
                if let Some((s, error)) = self.errors.remove(pos) {
                    return Err(AlibError::Server { seq: s, error });
                }
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(self.timed_out());
            }
            self.pump_one(left.min(poll))?;
            poll = (poll * 2).min(Duration::from_millis(50));
        }
    }

    /// Sends a request and waits for its reply.
    pub fn round_trip(&mut self, request: &Request) -> Result<Reply, AlibError> {
        let seq = self.send(request)?;
        self.wait_reply(seq)
    }

    /// Round-trips a `Sync`, flushing all previously sent requests
    /// through the server.
    pub fn sync(&mut self) -> Result<(), AlibError> {
        match self.round_trip(&Request::Sync)? {
            Reply::Sync => Ok(()),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Returns the next queued event without blocking.
    pub fn poll_event(&mut self) -> Result<Option<Event>, AlibError> {
        // Drain anything already buffered on the transport.
        while self.pump_one(Duration::from_millis(0))? {}
        Ok(self.events.pop_front())
    }

    /// Waits up to `timeout` for the next event.
    pub fn next_event(&mut self, timeout: Duration) -> Result<Option<Event>, AlibError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(ev) = self.events.pop_front() {
                return Ok(Some(ev));
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            self.pump_one(left.min(Duration::from_millis(50)))?;
        }
    }

    /// Waits for an event satisfying `pred`, buffering others.
    pub fn wait_event(
        &mut self,
        timeout: Duration,
        mut pred: impl FnMut(&Event) -> bool,
    ) -> Result<Event, AlibError> {
        let deadline = Instant::now() + timeout;
        let mut stash = VecDeque::new();
        let result = loop {
            if let Some(ev) = self
                .events
                .iter()
                .position(&mut pred)
                .and_then(|pos| self.events.remove(pos))
            {
                break Ok(ev);
            }
            stash.append(&mut self.events);
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break Err(self.timed_out());
            }
            self.pump_one(left.min(Duration::from_millis(50)))?;
        };
        // Preserve non-matching events in arrival order.
        stash.append(&mut self.events);
        self.events = stash;
        result
    }

    /// Takes the oldest pending asynchronous error, if any.
    pub fn take_error(&mut self) -> Option<(u32, ProtoError)> {
        let _ = self.pump_one(Duration::from_millis(0));
        self.errors.pop_front()
    }

    // ---- LOUDs ----------------------------------------------------------------

    /// Creates a LOUD, returning its id.
    pub fn create_loud(&mut self, parent: Option<LoudId>) -> Result<LoudId, AlibError> {
        let id = LoudId(self.alloc_id());
        self.send(&Request::CreateLoud { id, parent })?;
        Ok(id)
    }

    /// Destroys a LOUD subtree.
    pub fn destroy_loud(&mut self, id: LoudId) -> Result<(), AlibError> {
        self.send(&Request::DestroyLoud { id }).map(|_| ())
    }

    /// Maps a root LOUD onto the active stack.
    pub fn map_loud(&mut self, id: LoudId) -> Result<(), AlibError> {
        self.send(&Request::MapLoud { id }).map(|_| ())
    }

    /// Unmaps a root LOUD.
    pub fn unmap_loud(&mut self, id: LoudId) -> Result<(), AlibError> {
        self.send(&Request::UnmapLoud { id }).map(|_| ())
    }

    /// Raises a mapped LOUD to the top of the active stack.
    pub fn raise_loud(&mut self, id: LoudId) -> Result<(), AlibError> {
        self.send(&Request::RaiseLoud { id }).map(|_| ())
    }

    /// Lowers a mapped LOUD to the bottom of the active stack.
    pub fn lower_loud(&mut self, id: LoudId) -> Result<(), AlibError> {
        self.send(&Request::LowerLoud { id }).map(|_| ())
    }

    /// Queries the active stack (top first).
    pub fn query_active_stack(&mut self) -> Result<Vec<StackEntry>, AlibError> {
        match self.round_trip(&Request::QueryActiveStack)? {
            Reply::ActiveStack { entries } => Ok(entries),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    // ---- Virtual devices ----------------------------------------------------------

    /// Creates a virtual device in a LOUD.
    pub fn create_vdevice(
        &mut self,
        loud: LoudId,
        class: DeviceClass,
        attrs: Vec<Attribute>,
    ) -> Result<VDeviceId, AlibError> {
        let id = VDeviceId(self.alloc_id());
        self.send(&Request::CreateVDevice { id, loud, class, attrs })?;
        Ok(id)
    }

    /// Destroys a virtual device.
    pub fn destroy_vdevice(&mut self, id: VDeviceId) -> Result<(), AlibError> {
        self.send(&Request::DestroyVDevice { id }).map(|_| ())
    }

    /// Adds constraints to a device (paper §5.3).
    pub fn augment_vdevice(&mut self, id: VDeviceId, attrs: Vec<Attribute>) -> Result<(), AlibError> {
        self.send(&Request::AugmentVDevice { id, attrs }).map(|_| ())
    }

    /// Queries a device's attributes and (if mapped) its physical device.
    pub fn query_vdevice(
        &mut self,
        id: VDeviceId,
    ) -> Result<(Vec<Attribute>, Option<da_proto::ids::DeviceId>), AlibError> {
        match self.round_trip(&Request::QueryVDeviceAttributes { id })? {
            Reply::VDeviceAttributes { attrs, mapped_device } => Ok((attrs, mapped_device)),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Sets a device control.
    pub fn set_device_control(
        &mut self,
        id: VDeviceId,
        name: Atom,
        value: Vec<u8>,
    ) -> Result<(), AlibError> {
        self.send(&Request::SetDeviceControl { id, name, value }).map(|_| ())
    }

    /// Reads a device control.
    pub fn get_device_control(
        &mut self,
        id: VDeviceId,
        name: Atom,
    ) -> Result<Option<Vec<u8>>, AlibError> {
        match self.round_trip(&Request::GetDeviceControl { id, name })? {
            Reply::DeviceControl { value } => Ok(value),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    // ---- Wires ------------------------------------------------------------------------

    /// Wires a source port to a sink port.
    pub fn create_wire(
        &mut self,
        src: VDeviceId,
        src_port: u8,
        dst: VDeviceId,
        dst_port: u8,
        wire_type: WireType,
    ) -> Result<WireId, AlibError> {
        let id = WireId(self.alloc_id());
        self.send(&Request::CreateWire { id, src, src_port, dst, dst_port, wire_type })?;
        Ok(id)
    }

    /// Removes a wire.
    pub fn destroy_wire(&mut self, id: WireId) -> Result<(), AlibError> {
        self.send(&Request::DestroyWire { id }).map(|_| ())
    }

    /// Queries a wire's endpoints and type.
    pub fn query_wire(
        &mut self,
        id: WireId,
    ) -> Result<(VDeviceId, u8, VDeviceId, u8, WireType), AlibError> {
        match self.round_trip(&Request::QueryWire { id })? {
            Reply::WireInfo { src, src_port, dst, dst_port, wire_type } => {
                Ok((src, src_port, dst, dst_port, wire_type))
            }
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Lists the wires attached to a device.
    pub fn query_device_wires(&mut self, id: VDeviceId) -> Result<Vec<WireId>, AlibError> {
        match self.round_trip(&Request::QueryDeviceWires { id })? {
            Reply::DeviceWires { wires } => Ok(wires),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    // ---- Queues ---------------------------------------------------------------------------

    /// Appends entries to a root LOUD's command queue.
    pub fn enqueue(&mut self, loud: LoudId, entries: Vec<QueueEntry>) -> Result<(), AlibError> {
        self.send(&Request::Enqueue { loud, entries }).map(|_| ())
    }

    /// Enqueues a single device command.
    pub fn enqueue_cmd(
        &mut self,
        loud: LoudId,
        vdev: VDeviceId,
        cmd: DeviceCommand,
    ) -> Result<(), AlibError> {
        self.enqueue(loud, vec![QueueEntry::Device { vdev, cmd }])
    }

    /// Issues a command in immediate mode.
    pub fn immediate(&mut self, vdev: VDeviceId, cmd: DeviceCommand) -> Result<(), AlibError> {
        self.send(&Request::Immediate { vdev, cmd }).map(|_| ())
    }

    /// Starts a queue.
    pub fn start_queue(&mut self, loud: LoudId) -> Result<(), AlibError> {
        self.send(&Request::StartQueue { loud }).map(|_| ())
    }

    /// Stops a queue, aborting the current command.
    pub fn stop_queue(&mut self, loud: LoudId) -> Result<(), AlibError> {
        self.send(&Request::StopQueue { loud }).map(|_| ())
    }

    /// Pauses a queue (client-paused).
    pub fn pause_queue(&mut self, loud: LoudId) -> Result<(), AlibError> {
        self.send(&Request::PauseQueue { loud }).map(|_| ())
    }

    /// Resumes a client-paused queue.
    pub fn resume_queue(&mut self, loud: LoudId) -> Result<(), AlibError> {
        self.send(&Request::ResumeQueue { loud }).map(|_| ())
    }

    /// Discards unstarted queue entries.
    pub fn flush_queue(&mut self, loud: LoudId) -> Result<(), AlibError> {
        self.send(&Request::FlushQueue { loud }).map(|_| ())
    }

    /// Queries a queue's state, depth and relative time.
    pub fn query_queue(
        &mut self,
        loud: LoudId,
    ) -> Result<(da_proto::types::QueueState, u32, u64), AlibError> {
        match self.round_trip(&Request::QueryQueue { loud })? {
            Reply::QueueInfo { state, pending, relative_frames } => {
                Ok((state, pending, relative_frames))
            }
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    // ---- Sounds ----------------------------------------------------------------------------

    /// Creates an empty sound of a type.
    pub fn create_sound(&mut self, stype: SoundType) -> Result<SoundId, AlibError> {
        let id = SoundId(self.alloc_id());
        self.send(&Request::CreateSound { id, stype })?;
        Ok(id)
    }

    /// Deletes a sound.
    pub fn delete_sound(&mut self, id: SoundId) -> Result<(), AlibError> {
        self.send(&Request::DeleteSound { id }).map(|_| ())
    }

    /// Appends encoded data to a sound.
    pub fn write_sound(&mut self, id: SoundId, data: &[u8], eof: bool) -> Result<(), AlibError> {
        self.send(&Request::WriteSoundData { id, data: data.to_vec(), eof }).map(|_| ())
    }

    /// Creates a sound and uploads complete encoded data, chunked.
    pub fn upload_sound(&mut self, stype: SoundType, data: &[u8]) -> Result<SoundId, AlibError> {
        let id = self.create_sound(stype)?;
        if data.is_empty() {
            self.write_sound(id, &[], true)?;
            return Ok(id);
        }
        let mut chunks = data.chunks(UPLOAD_CHUNK).peekable();
        while let Some(chunk) = chunks.next() {
            let eof = chunks.peek().is_none();
            self.write_sound(id, chunk, eof)?;
        }
        Ok(id)
    }

    /// Uploads linear PCM after encoding it into the sound type's
    /// encoding (the usual application-side path).
    pub fn upload_pcm(&mut self, stype: SoundType, pcm: &[i16]) -> Result<SoundId, AlibError> {
        let enc = encode_for(stype, pcm);
        self.upload_sound(stype, &enc)
    }

    /// Reads a sound's entire encoded contents.
    pub fn read_sound_all(&mut self, id: SoundId) -> Result<Vec<u8>, AlibError> {
        let mut out = Vec::new();
        loop {
            let reply = self.round_trip(&Request::ReadSoundData {
                id,
                offset: out.len() as u64,
                len: UPLOAD_CHUNK as u32,
            })?;
            match reply {
                Reply::SoundData { data, at_end } => {
                    let empty = data.is_empty();
                    out.extend_from_slice(&data);
                    if at_end || empty {
                        return Ok(out);
                    }
                }
                _ => return Err(AlibError::UnexpectedReply),
            }
        }
    }

    /// Queries a sound's type and length: (type, bytes, frames, complete).
    pub fn query_sound(&mut self, id: SoundId) -> Result<(SoundType, u64, u64, bool), AlibError> {
        match self.round_trip(&Request::QuerySound { id })? {
            Reply::SoundInfo { stype, bytes, frames, complete } => {
                Ok((stype, bytes, frames, complete))
            }
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Lists a server catalogue (empty string lists catalogue names).
    pub fn list_catalog(&mut self, catalog: &str) -> Result<Vec<String>, AlibError> {
        match self.round_trip(&Request::ListCatalog { catalog: catalog.to_string() })? {
            Reply::Catalog { names } => Ok(names),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Binds a client sound id to a server catalogue sound.
    pub fn open_catalog_sound(&mut self, catalog: &str, name: &str) -> Result<SoundId, AlibError> {
        let id = SoundId(self.alloc_id());
        self.send(&Request::OpenCatalogSound {
            id,
            catalog: catalog.to_string(),
            name: name.to_string(),
        })?;
        Ok(id)
    }

    // ---- Events ------------------------------------------------------------------------------

    /// Selects event categories on a resource.
    pub fn select_events(
        &mut self,
        target: impl Into<ResourceId>,
        mask: EventMask,
    ) -> Result<(), AlibError> {
        self.send(&Request::SelectEvents { target: target.into(), mask }).map(|_| ())
    }

    /// Sets the spacing of sync marks on a device.
    pub fn set_sync_interval(&mut self, vdev: VDeviceId, frames: u32) -> Result<(), AlibError> {
        self.send(&Request::SetSyncInterval { vdev, interval_frames: frames }).map(|_| ())
    }

    // ---- Atoms and properties -----------------------------------------------------------------

    /// Interns a name.
    pub fn intern_atom(&mut self, name: &str) -> Result<Atom, AlibError> {
        match self.round_trip(&Request::InternAtom { name: name.to_string() })? {
            Reply::Atom { atom } => Ok(atom),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Resolves an atom's name.
    pub fn atom_name(&mut self, atom: Atom) -> Result<String, AlibError> {
        match self.round_trip(&Request::GetAtomName { atom })? {
            Reply::AtomName { name } => Ok(name),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Sets a property on a resource.
    pub fn change_property(
        &mut self,
        target: impl Into<ResourceId>,
        name: Atom,
        type_: Atom,
        value: Vec<u8>,
    ) -> Result<(), AlibError> {
        self.send(&Request::ChangeProperty { target: target.into(), name, type_, value })
            .map(|_| ())
    }

    /// Reads a property from a resource.
    pub fn get_property(
        &mut self,
        target: impl Into<ResourceId>,
        name: Atom,
    ) -> Result<Option<Property>, AlibError> {
        match self.round_trip(&Request::GetProperty { target: target.into(), name })? {
            Reply::Property { property } => Ok(property),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Deletes a property.
    pub fn delete_property(
        &mut self,
        target: impl Into<ResourceId>,
        name: Atom,
    ) -> Result<(), AlibError> {
        self.send(&Request::DeleteProperty { target: target.into(), name }).map(|_| ())
    }

    /// Lists a resource's property names.
    pub fn list_properties(
        &mut self,
        target: impl Into<ResourceId>,
    ) -> Result<Vec<Atom>, AlibError> {
        match self.round_trip(&Request::ListProperties { target: target.into() })? {
            Reply::PropertyList { names } => Ok(names),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    // ---- Device LOUD and manager support -------------------------------------------------------

    /// Queries the device LOUD: all physical devices and hard wires.
    pub fn query_device_loud(&mut self) -> Result<(Vec<PhysDeviceInfo>, Vec<HardWire>), AlibError> {
        match self.round_trip(&Request::QueryDeviceLoud)? {
            Reply::DeviceLoud { devices, hard_wires } => Ok((devices, hard_wires)),
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    /// Claims (or releases) the audio-manager redirection.
    pub fn set_redirect(&mut self, enable: bool) -> Result<(), AlibError> {
        self.send(&Request::SetRedirect { enable }).map(|_| ())
    }

    /// Audio manager: allow a redirected map.
    pub fn allow_map(&mut self, loud: LoudId) -> Result<(), AlibError> {
        self.send(&Request::AllowMap { loud }).map(|_| ())
    }

    /// Audio manager: allow a redirected raise.
    pub fn allow_raise(&mut self, loud: LoudId) -> Result<(), AlibError> {
        self.send(&Request::AllowRaise { loud }).map(|_| ())
    }

    // ---- Miscellaneous --------------------------------------------------------------------------

    /// Queries server identity and device time: (vendor, major, minor,
    /// device_time).
    pub fn server_info(&mut self) -> Result<(String, u16, u16, u64), AlibError> {
        match self.round_trip(&Request::GetServerInfo)? {
            Reply::ServerInfo { vendor, protocol_major, protocol_minor, device_time } => {
                Ok((vendor, protocol_major, protocol_minor, device_time))
            }
            _ => Err(AlibError::UnexpectedReply),
        }
    }

    // ---- Telemetry ------------------------------------------------------------------------------

    /// Queries the server's telemetry snapshot (per-opcode dispatch
    /// counts, counters, gauges, histograms). Servers that predate the
    /// telemetry opcodes answer with a protocol error, surfaced here as
    /// [`AlibError::Unsupported`].
    pub fn query_server_stats(&mut self) -> Result<ServerStatsData, AlibError> {
        match self.round_trip(&Request::QueryServerStats) {
            Ok(Reply::ServerStats { stats }) => Ok(stats),
            Ok(_) => Err(AlibError::UnexpectedReply),
            Err(e) => Err(map_unsupported(e, "QueryServerStats")),
        }
    }

    /// Lists connected clients with their per-connection accounting.
    /// Surfaces [`AlibError::Unsupported`] against pre-telemetry servers.
    pub fn list_clients(&mut self) -> Result<Vec<ClientStatsData>, AlibError> {
        match self.round_trip(&Request::ListClients) {
            Ok(Reply::ClientList { clients }) => Ok(clients),
            Ok(_) => Err(AlibError::UnexpectedReply),
            Err(e) => Err(map_unsupported(e, "ListClients")),
        }
    }

    /// The [`TraceId`] the *next* request sent on this connection will
    /// carry. Mint it before the send to correlate the request with the
    /// trace the server's flight recorder assembles for it.
    pub fn next_trace_id(&self) -> TraceId {
        TraceId { client: self.setup.client, seq: self.next_seq }
    }

    /// The [`TraceId`] of the most recently sent request (the id
    /// [`Connection::send`] returned as a bare sequence number).
    pub fn last_trace_id(&self) -> TraceId {
        TraceId { client: self.setup.client, seq: self.next_seq.wrapping_sub(1) }
    }

    /// Queries the server's flight recorder for up to `max` retained
    /// traces, slowest first, with per-stage stamps (DESIGN.md §15).
    /// Surfaces [`AlibError::Unsupported`] against pre-tracing servers.
    pub fn query_traces(&mut self, max: u32) -> Result<Vec<TraceData>, AlibError> {
        match self.round_trip(&Request::QueryTraces { max }) {
            Ok(Reply::Traces { traces }) => Ok(traces),
            Ok(_) => Err(AlibError::UnexpectedReply),
            Err(e) => Err(map_unsupported(e, "QueryTraces")),
        }
    }
}

/// Client-side latency attribution: the `p`-th percentile (0.0–1.0) of
/// the duration clients spent in `stage` across `traces`, in
/// microseconds. A stage's duration is the gap from the preceding
/// stamped stage; the first stamp of a trace contributes nothing.
/// Returns `None` when no trace stamps the stage.
pub fn stage_percentile_us(traces: &[TraceData], stage: TraceStage, p: f64) -> Option<u64> {
    let mut durations: Vec<u64> = traces
        .iter()
        .filter_map(|t| stage_duration_us(t, stage))
        .collect();
    if durations.is_empty() {
        return None;
    }
    durations.sort_unstable();
    let rank = ((p.clamp(0.0, 1.0) * durations.len() as f64).ceil() as usize) // cast-ok: rank bounded by durations.len()
        .saturating_sub(1)
        .min(durations.len() - 1);
    Some(durations[rank])
}

/// The duration one trace spent in `stage`: the gap from the previous
/// stamped stage to `stage`'s stamp. `None` when the trace did not
/// stamp the stage, or the stage is the trace's first stamp.
pub fn stage_duration_us(trace: &TraceData, stage: TraceStage) -> Option<u64> {
    let pos = trace.stages.iter().position(|s| s.stage == stage)?;
    if pos == 0 {
        return None;
    }
    Some(trace.stages[pos].at_us.saturating_sub(trace.stages[pos - 1].at_us))
}

/// Maps the errors an old server sends for an opcode it does not know —
/// `BadRequest` from the frame decoder, `Unimplemented` from a stub
/// dispatcher — to the typed [`AlibError::Unsupported`].
fn map_unsupported(e: AlibError, feature: &'static str) -> AlibError {
    use da_proto::error::ErrorCode;
    match e.code() {
        Some(ErrorCode::BadRequest) | Some(ErrorCode::Unimplemented) => {
            AlibError::Unsupported { feature }
        }
        _ => e,
    }
}

/// Encodes linear PCM into the encoding named by a sound type.
pub fn encode_for(stype: SoundType, pcm: &[i16]) -> Vec<u8> {
    use da_dsp::convert::{encode_from_pcm16, PcmEncoding};
    let enc = match stype.encoding {
        da_proto::types::Encoding::ULaw => PcmEncoding::ULaw,
        da_proto::types::Encoding::ALaw => PcmEncoding::ALaw,
        da_proto::types::Encoding::Pcm8 => PcmEncoding::Pcm8,
        da_proto::types::Encoding::Pcm16 => PcmEncoding::Pcm16,
        da_proto::types::Encoding::ImaAdpcm => PcmEncoding::ImaAdpcm,
    };
    encode_from_pcm16(enc, pcm)
}

/// Decodes a sound's encoded bytes back to linear PCM.
pub fn decode_from(stype: SoundType, data: &[u8]) -> Vec<i16> {
    use da_dsp::convert::{decode_to_pcm16, PcmEncoding};
    let enc = match stype.encoding {
        da_proto::types::Encoding::ULaw => PcmEncoding::ULaw,
        da_proto::types::Encoding::ALaw => PcmEncoding::ALaw,
        da_proto::types::Encoding::Pcm8 => PcmEncoding::Pcm8,
        da_proto::types::Encoding::Pcm16 => PcmEncoding::Pcm16,
        da_proto::types::Encoding::ImaAdpcm => PcmEncoding::ImaAdpcm,
    };
    decode_to_pcm16(enc, data)
}
