//! Alib: the client-side procedural interface to the audio protocol.
//!
//! "Alib is simply a procedural interface to the audio protocol. It is a
//! 'veneer' over the protocol and is the lowest level interface that
//! applications will expect to use" (paper §4.2). Applications do not use
//! the workstation hardware interface directly or bypass the library.
//!
//! The central type is [`Connection`]. Requests are asynchronous; replies
//! can be awaited ([`Connection::round_trip`]), which synchronises the
//! client with the server, and events and errors arrive asynchronously
//! ([`Connection::next_event`], [`Connection::take_error`]) exactly as
//! paper §4.1 describes.

pub mod connection;
pub mod error;

pub use connection::{
    stage_duration_us, stage_percentile_us, Connection, TraceId, WireStats,
};
pub use error::AlibError;

// Re-export the protocol so applications need only one dependency.
pub use da_proto as proto;
