//! Alib error type.

use da_proto::error::ErrorCode;
use da_proto::ProtoError;

/// Errors surfaced to Alib callers.
#[derive(Debug)]
pub enum AlibError {
    /// The connection broke or could not be established.
    Connection(String),
    /// The server rejected a request (asynchronous protocol error); the
    /// sequence number of the failing request is included.
    Server {
        /// Sequence number of the failing request.
        seq: u32,
        /// The server's error.
        error: ProtoError,
    },
    /// A blocking wait timed out.
    Timeout,
    /// The server sent a reply of an unexpected shape.
    UnexpectedReply,
    /// The server predates the named feature and rejected its request
    /// (e.g. `QueryServerStats` against a pre-telemetry server, which
    /// answers an unknown opcode with `BadRequest`). Never retryable:
    /// the peer will reject the same request forever.
    Unsupported {
        /// The feature the server lacks.
        feature: &'static str,
    },
}

impl AlibError {
    /// The protocol error code, when the server rejected a request.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            AlibError::Server { error, .. } => Some(error.code),
            _ => None,
        }
    }

    /// Whether retrying the same request can possibly succeed without
    /// the client first changing something. Classifies every protocol
    /// error code; `xtask lint` checks the table stays exhaustive when
    /// `proto::error` grows.
    pub fn retryable(&self) -> bool {
        // A timed-out wait is inherently transient: the server may be
        // slow, wedged briefly, or the deadline too tight — the same
        // request can succeed on a later attempt (DESIGN.md §12).
        if matches!(self, AlibError::Timeout) {
            return true;
        }
        let Some(code) = self.code() else { return false };
        match code {
            // Transient contention: the resource can free up by itself.
            ErrorCode::DeviceBusy => true,
            // Everything else needs a different request: malformed or
            // unknown ids, type mismatches, access violations, state
            // errors, unimplemented surface.
            ErrorCode::BadRequest
            | ErrorCode::BadValue
            | ErrorCode::BadLoud
            | ErrorCode::BadDevice
            | ErrorCode::BadWire
            | ErrorCode::BadSound
            | ErrorCode::BadAtom
            | ErrorCode::BadMatch
            | ErrorCode::BadAccess
            | ErrorCode::BadIdChoice
            | ErrorCode::BadQueueMode
            | ErrorCode::NotMapped
            | ErrorCode::Unimplemented => false,
        }
    }
}

impl std::fmt::Display for AlibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlibError::Connection(s) => write!(f, "connection error: {s}"),
            AlibError::Server { seq, error } => write!(f, "server error for request {seq}: {error}"),
            AlibError::Timeout => write!(f, "timed out waiting for the server"),
            AlibError::UnexpectedReply => write!(f, "unexpected reply shape"),
            AlibError::Unsupported { feature } => {
                write!(f, "server does not support {feature}")
            }
        }
    }
}

impl std::error::Error for AlibError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsupported_is_never_retryable() {
        let e = AlibError::Unsupported { feature: "QueryServerStats" };
        assert!(e.code().is_none());
        assert!(!e.retryable());
        assert!(e.to_string().contains("QueryServerStats"));
    }
}
