//! Alib error type.

use da_proto::ProtoError;

/// Errors surfaced to Alib callers.
#[derive(Debug)]
pub enum AlibError {
    /// The connection broke or could not be established.
    Connection(String),
    /// The server rejected a request (asynchronous protocol error); the
    /// sequence number of the failing request is included.
    Server {
        /// Sequence number of the failing request.
        seq: u32,
        /// The server's error.
        error: ProtoError,
    },
    /// A blocking wait timed out.
    Timeout,
    /// The server sent a reply of an unexpected shape.
    UnexpectedReply,
}

impl std::fmt::Display for AlibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlibError::Connection(s) => write!(f, "connection error: {s}"),
            AlibError::Server { seq, error } => write!(f, "server error for request {seq}: {error}"),
            AlibError::Timeout => write!(f, "timed out waiting for the server"),
            AlibError::UnexpectedReply => write!(f, "unexpected reply shape"),
        }
    }
}

impl std::error::Error for AlibError {}
