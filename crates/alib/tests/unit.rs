//! Behavioural tests for the Alib connection object itself.

use da_alib::Connection;
use da_proto::command::DeviceCommand;
use da_proto::event::{Event, EventMask};
use da_proto::types::{DeviceClass, SoundType, WireType};
use da_server::{AudioServer, ServerConfig};
use std::time::Duration;

fn start() -> (AudioServer, Connection) {
    let server = AudioServer::start(ServerConfig::default()).expect("server");
    let conn = Connection::establish(server.connect_pipe(), "alib-unit").expect("connect");
    (server, conn)
}

#[test]
fn allocated_ids_are_unique_and_in_range() {
    let (server, mut conn) = start();
    let setup = conn.setup().clone();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..1000 {
        let id = conn.alloc_id();
        assert!(setup.owns_id(id), "id {id:#x} outside granted range");
        assert!(seen.insert(id), "id {id:#x} reused");
    }
    server.shutdown();
}

#[test]
fn wait_event_preserves_event_order() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let out = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, out, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();
    conn.select_events(player, EventMask::DEVICE).unwrap();
    conn.map_loud(loud).unwrap();
    let sound = conn
        .upload_pcm(SoundType::TELEPHONE, &da_dsp::tone::sine(8000, 440.0, 800, 5000))
        .unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();
    // Fish out CommandDone first; earlier events must still arrive, in
    // their original relative order.
    conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    let first = conn.next_event(Duration::from_secs(2)).unwrap().expect("buffered event");
    assert!(
        matches!(first, Event::QueueStarted { .. }),
        "expected QueueStarted first, got {first:?}"
    );
    let second = conn.next_event(Duration::from_secs(2)).unwrap().expect("buffered event");
    assert!(
        matches!(second, Event::PlayStarted { .. }),
        "expected PlayStarted second, got {second:?}"
    );
    server.shutdown();
}

#[test]
fn errors_are_fifo() {
    let (server, mut conn) = start();
    conn.destroy_loud(da_proto::LoudId(0x111)).unwrap();
    conn.delete_sound(da_proto::SoundId(0x222)).unwrap();
    conn.sync().unwrap();
    let (s1, e1) = conn.take_error().expect("first error");
    let (s2, e2) = conn.take_error().expect("second error");
    assert!(s1 < s2, "errors out of order: {s1} {s2}");
    assert_eq!(e1.code, da_proto::ErrorCode::BadLoud);
    assert_eq!(e2.code, da_proto::ErrorCode::BadSound);
    assert!(conn.take_error().is_none());
    server.shutdown();
}

#[test]
fn large_upload_chunks_transparently() {
    let (server, mut conn) = start();
    // 300 KiB of encoded data spans several 64 KiB write chunks.
    let pcm = vec![1234i16; 300 * 1024];
    let stype = SoundType { encoding: da_proto::types::Encoding::Pcm16, sample_rate: 8000, channels: 1 };
    let sound = conn.upload_pcm(stype, &pcm).unwrap();
    let (_, bytes, frames, complete) = conn.query_sound(sound).unwrap();
    assert!(complete);
    assert_eq!(bytes, 600 * 1024);
    assert_eq!(frames, 300 * 1024);
    let back = conn.read_sound_all(sound).unwrap();
    assert_eq!(back.len(), 600 * 1024);
    assert_eq!(da_alib::connection::decode_from(stype, &back), pcm);
    server.shutdown();
}

#[test]
fn next_event_times_out_cleanly() {
    let (server, mut conn) = start();
    let t0 = std::time::Instant::now();
    let got = conn.next_event(Duration::from_millis(150)).unwrap();
    assert!(got.is_none());
    let elapsed = t0.elapsed();
    assert!(elapsed >= Duration::from_millis(140), "{elapsed:?}");
    assert!(elapsed < Duration::from_secs(2), "{elapsed:?}");
    server.shutdown();
}

#[test]
fn round_trip_surfaces_matching_error() {
    let (server, mut conn) = start();
    // A query on a bad resource returns Err directly from round_trip.
    let err = conn.query_queue(da_proto::LoudId(0x333)).unwrap_err();
    match err {
        da_alib::AlibError::Server { error, .. } => {
            assert_eq!(error.code, da_proto::ErrorCode::BadLoud);
        }
        other => panic!("expected server error, got {other:?}"),
    }
    // The connection keeps working afterwards.
    conn.sync().unwrap();
    server.shutdown();
}

#[test]
fn connection_detects_server_shutdown() {
    let (server, mut conn) = start();
    conn.sync().unwrap();
    server.shutdown();
    // Pumping eventually reports the closed transport.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match conn.next_event(Duration::from_millis(100)) {
            Err(da_alib::AlibError::Connection(_)) => break,
            Ok(_) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
        assert!(std::time::Instant::now() < deadline, "closure never detected");
    }
}
