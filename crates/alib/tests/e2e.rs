//! End-to-end Alib ↔ server tests over the in-process pipe transport.

use da_alib::Connection;
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::event::{Event, EventMask};
use da_proto::types::{Attribute, DeviceClass, QueueState, SoundType, WireType};
use da_server::{AudioServer, ServerConfig};
use std::time::Duration;

fn start() -> (AudioServer, Connection) {
    let server = AudioServer::start(ServerConfig::default()).expect("server");
    let conn = Connection::establish(server.connect_pipe(), "e2e").expect("connect");
    (server, conn)
}

#[test]
fn setup_handshake() {
    let (server, conn) = start();
    assert_eq!(conn.setup().protocol_major, da_proto::PROTOCOL_MAJOR);
    assert_ne!(conn.setup().id_base, 0);
    server.shutdown();
}

#[test]
fn server_info_and_sync() {
    let (server, mut conn) = start();
    let (vendor, major, _minor, _t) = conn.server_info().unwrap();
    assert!(vendor.contains("desktop-audio"));
    assert_eq!(major, 1);
    conn.sync().unwrap();
    server.shutdown();
}

#[test]
fn device_loud_lists_hardware() {
    let (server, mut conn) = start();
    let (devices, hard_wires) = conn.query_device_loud().unwrap();
    assert_eq!(devices.len(), 3); // speaker, mic, phone line
    assert!(hard_wires.is_empty());
    assert!(devices.iter().any(|d| d.class == DeviceClass::Output));
    assert!(devices.iter().any(|d| d.class == DeviceClass::Input));
    assert!(devices.iter().any(|d| d.class == DeviceClass::Telephone));
    server.shutdown();
}

#[test]
fn atom_roundtrip() {
    let (server, mut conn) = start();
    let a = conn.intern_atom("MY_ATOM").unwrap();
    assert_eq!(conn.atom_name(a).unwrap(), "MY_ATOM");
    let b = conn.intern_atom("MY_ATOM").unwrap();
    assert_eq!(a, b);
    server.shutdown();
}

#[test]
fn sound_upload_download() {
    let (server, mut conn) = start();
    let pcm = da_dsp::tone::sine(8000, 440.0, 1600, 10000);
    let id = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();
    let (stype, bytes, frames, complete) = conn.query_sound(id).unwrap();
    assert_eq!(stype, SoundType::TELEPHONE);
    assert_eq!(bytes, 1600);
    assert_eq!(frames, 1600);
    assert!(complete);
    let data = conn.read_sound_all(id).unwrap();
    assert_eq!(data.len(), 1600);
    server.shutdown();
}

#[test]
fn catalog_access() {
    let (server, mut conn) = start();
    let catalogs = conn.list_catalog("").unwrap();
    assert!(catalogs.contains(&"system".to_string()));
    let names = conn.list_catalog("system").unwrap();
    assert!(names.contains(&"beep".to_string()));
    let beep = conn.open_catalog_sound("system", "beep").unwrap();
    let (_, _, frames, complete) = conn.query_sound(beep).unwrap();
    assert!(complete);
    assert_eq!(frames, 2000); // 250 ms at 8 kHz
    server.shutdown();
}

#[test]
fn play_to_speaker_end_to_end() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 100_000);

    // Build a play LOUD: player -> output, wired.
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, output, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::all()).unwrap();
    conn.select_events(player, EventMask::all()).unwrap();

    let pcm = da_dsp::tone::sine(8000, 440.0, 4000, 12000);
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &pcm).unwrap();

    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    conn.start_queue(loud).unwrap();

    // Wait for the queue to report the command done.
    let done = conn
        .wait_event(Duration::from_secs(10), |e| matches!(e, Event::CommandDone { .. }))
        .unwrap();
    assert!(matches!(done, Event::CommandDone { .. }));

    // The speaker must have received the waveform.
    assert!(control.run_until(Duration::from_secs(5), |c| {
        c.hw.speakers[0].captured().len() >= 4000
    }));
    let captured = control.take_captured(0);
    // Playback may begin mid-tick: align past any leading silence.
    let start = captured.iter().position(|&s| s != 0).expect("audio captured");
    let aligned = &captured[start..];
    let n = aligned.len().min(3500);
    let rms = da_dsp::analysis::rms(&aligned[..n]);
    assert!(rms > 4000.0, "captured rms {rms}");
    // µ-law quantisation allows small error; the tone must be intact
    // (the sine's first nonzero sample is index 1).
    let snr = da_dsp::analysis::snr_db(&pcm[1..1 + n], &aligned[..n]);
    assert!(snr > 25.0, "snr {snr}");
    server.shutdown();
}

#[test]
fn error_for_bad_sound() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    // Play a nonexistent sound: the queue must stop with an error event,
    // and an immediate play of a queued-only command must error.
    let err = conn
        .round_trip(&da_proto::Request::Immediate {
            vdev: player,
            cmd: DeviceCommand::Play(da_proto::SoundId(0xdead)),
        })
        .unwrap_err();
    match err {
        da_alib::AlibError::Server { error, .. } => {
            assert_eq!(error.code, da_proto::ErrorCode::BadQueueMode);
        }
        other => panic!("expected server error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn bad_resource_errors_are_async() {
    let (server, mut conn) = start();
    conn.destroy_loud(da_proto::LoudId(0x999)).unwrap();
    conn.sync().unwrap();
    let (_, err) = conn.take_error().expect("pending error");
    assert_eq!(err.code, da_proto::ErrorCode::BadLoud);
    server.shutdown();
}

#[test]
fn queue_query_reflects_state() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let (state, pending, _) = conn.query_queue(loud).unwrap();
    assert_eq!(state, QueueState::Stopped);
    assert_eq!(pending, 0);
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let sound = conn.upload_pcm(SoundType::TELEPHONE, &[0i16; 800]).unwrap();
    conn.enqueue_cmd(loud, player, DeviceCommand::Play(sound)).unwrap();
    let (state, pending, _) = conn.query_queue(loud).unwrap();
    assert_eq!(state, QueueState::Stopped);
    assert_eq!(pending, 1);
    server.shutdown();
}

#[test]
fn properties_on_louds() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    let domain = conn.intern_atom("DOMAIN").unwrap();
    let string = conn.intern_atom("STRING").unwrap();
    conn.change_property(loud, domain, string, b"desktop".to_vec()).unwrap();
    let p = conn.get_property(loud, domain).unwrap().expect("property set");
    assert_eq!(p.value, b"desktop");
    let names = conn.list_properties(loud).unwrap();
    assert_eq!(names, vec![domain]);
    conn.delete_property(loud, domain).unwrap();
    assert!(conn.get_property(loud, domain).unwrap().is_none());
    server.shutdown();
}

#[test]
fn tcp_transport_end_to_end() {
    let config =
        ServerConfig { tcp_addr: Some("127.0.0.1:0".to_string()), ..ServerConfig::default() };
    let server = AudioServer::start(config).expect("server");
    let addr = server.tcp_addr().expect("tcp enabled");
    let mut conn = Connection::open_tcp(&addr.to_string(), "tcp-client").unwrap();
    let (vendor, ..) = conn.server_info().unwrap();
    assert!(vendor.contains("desktop-audio"));
    // A second simultaneous TCP client.
    let mut conn2 = Connection::open_tcp(&addr.to_string(), "tcp-client-2").unwrap();
    conn2.sync().unwrap();
    assert_ne!(conn.setup().client, conn2.setup().client);
    server.shutdown();
}

#[test]
fn seamless_back_to_back_plays() {
    let (server, mut conn) = start();
    let control = server.control();
    control.set_speaker_capture(0, 100_000);

    let loud = conn.create_loud(None).unwrap();
    let player = conn.create_vdevice(loud, DeviceClass::Player, vec![]).unwrap();
    let output = conn.create_vdevice(loud, DeviceClass::Output, vec![]).unwrap();
    conn.create_wire(player, 0, output, 0, WireType::Any).unwrap();
    conn.select_events(loud, EventMask::QUEUE).unwrap();

    // A climbing staircase split across three sounds; any dropped or
    // inserted sample breaks the staircase.
    let total = 2400usize;
    let ramp: Vec<i16> = (0..total).map(|i| (i as i16) * 10).collect();
    let s1 = conn.upload_pcm(SoundType::TELEPHONE, &ramp[..777]).unwrap();
    let s2 = conn.upload_pcm(SoundType::TELEPHONE, &ramp[777..1801]).unwrap();
    let s3 = conn.upload_pcm(SoundType::TELEPHONE, &ramp[1801..]).unwrap();

    conn.map_loud(loud).unwrap();
    conn.enqueue(
        loud,
        vec![
            da_proto::QueueEntry::Device { vdev: player, cmd: DeviceCommand::Play(s1) },
            da_proto::QueueEntry::Device { vdev: player, cmd: DeviceCommand::Play(s2) },
            da_proto::QueueEntry::Device { vdev: player, cmd: DeviceCommand::Play(s3) },
        ],
    )
    .unwrap();
    conn.start_queue(loud).unwrap();

    // Wait for all three CommandDone events.
    for _ in 0..3 {
        conn.wait_event(Duration::from_secs(10), |e| matches!(e, Event::CommandDone { .. }))
            .unwrap();
    }
    assert!(control
        .run_until(Duration::from_secs(5), |c| c.hw.speakers[0].captured().len() >= total));
    let captured = control.take_captured(0);
    // Find the staircase start (skip leading silence) and verify it is
    // monotone non-decreasing with the right span: µ-law quantises, so
    // compare decoded values of the original.
    let expect = da_dsp::mulaw::decode_slice(&da_dsp::mulaw::encode_slice(&ramp));
    let start = captured.iter().position(|&s| s != 0).expect("audio present");
    let got = &captured[start..start + total - 1];
    // The first sample of the ramp is 0 (silence); align from sample 1.
    assert_eq!(got, &expect[1..total], "staircase broken: gap or insert at a seam");
    server.shutdown();
}

#[test]
fn record_from_microphone() {
    let (server, mut conn) = start();
    let control = server.control();

    let loud = conn.create_loud(None).unwrap();
    let input = conn.create_vdevice(loud, DeviceClass::Input, vec![]).unwrap();
    let rec = conn.create_vdevice(loud, DeviceClass::Recorder, vec![]).unwrap();
    conn.create_wire(input, 0, rec, 0, WireType::Any).unwrap();
    conn.select_events(rec, EventMask::DEVICE).unwrap();

    let sound = conn.create_sound(SoundType::TELEPHONE).unwrap();
    // Speak a tone into the microphone.
    let spoken = da_dsp::tone::sine(8000, 500.0, 8000, 12000);
    control.speak_into_microphone(0, &spoken);

    conn.map_loud(loud).unwrap();
    conn.enqueue_cmd(
        loud,
        rec,
        DeviceCommand::Record(sound, RecordTermination::MaxFrames(4000)),
    )
    .unwrap();
    conn.start_queue(loud).unwrap();

    let stopped = conn
        .wait_event(Duration::from_secs(10), |e| matches!(e, Event::RecordStopped { .. }))
        .unwrap();
    match stopped {
        Event::RecordStopped { frames, reason, .. } => {
            assert!(frames >= 4000, "recorded {frames}");
            assert_eq!(reason, da_proto::event::RecordStopReason::MaxFrames);
        }
        _ => unreachable!(),
    }
    let data = conn.read_sound_all(sound).unwrap();
    let pcm = da_alib::connection::decode_from(SoundType::TELEPHONE, &data);
    let p500 = da_dsp::analysis::goertzel_power(&pcm, 8000, 500.0);
    let p900 = da_dsp::analysis::goertzel_power(&pcm, 8000, 900.0);
    assert!(p500 > p900 * 20.0, "tone not recorded: {p500} vs {p900}");
    server.shutdown();
}

#[test]
fn attribute_mismatch_rejected_at_create() {
    let (server, mut conn) = start();
    let loud = conn.create_loud(None).unwrap();
    // No 96 kHz speaker exists in the desktop inventory.
    conn.create_vdevice(
        loud,
        DeviceClass::Output,
        vec![Attribute::SampleRate(96_000)],
    )
    .unwrap();
    conn.sync().unwrap();
    let (_, err) = conn.take_error().expect("constraint failure expected");
    assert_eq!(err.code, da_proto::ErrorCode::DeviceBusy);
    server.shutdown();
}
