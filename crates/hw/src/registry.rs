//! Hardware inventory.
//!
//! A server instance is built from a [`HwSpec`]: the set of physical
//! devices on the workstation, which ambient domains each participates in
//! (paper §5.8), and any permanent hard-wired connections between them
//! (paper §5.2's speaker-phone example). [`Hardware`] instantiates the
//! spec into live simulated devices.

use crate::codec::{Microphone, SignalSource, Speaker};
use crate::pstn::{LineId, Pstn};

/// What kind of physical device an inventory entry is.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceKind {
    /// A loudspeaker.
    Speaker {
        /// Sample rate, Hz.
        rate: u32,
        /// Channels.
        channels: u8,
    },
    /// A microphone.
    Microphone {
        /// Sample rate, Hz.
        rate: u32,
    },
    /// A telephone line with a directory number.
    PhoneLine {
        /// Directory number.
        number: String,
        /// Whether the network delivers caller identity.
        caller_id: bool,
    },
}

/// One physical device in the inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name ("left speaker").
    pub name: String,
    /// The device kind and parameters.
    pub kind: DeviceKind,
    /// Ambient domains the device participates in; domain 0 is the
    /// desktop, higher numbers are telephone lines etc.
    pub domains: Vec<u32>,
}

/// A permanent connection between two inventory entries, by index:
/// `(src_device, src_port, dst_device, dst_port)`.
pub type HardWireSpec = (usize, u8, usize, u8);

/// The complete hardware inventory of one workstation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HwSpec {
    /// Physical devices, in device-id order.
    pub devices: Vec<DeviceSpec>,
    /// Hard-wired connections (paper §5.2: "the existence of a wire
    /// between two virtual devices [in the device LOUD] indicates that
    /// there is a permanent connection between their respective devices").
    pub hard_wires: Vec<HardWireSpec>,
}

impl HwSpec {
    /// The standard desktop workstation of the paper's examples: one
    /// speaker and one microphone in the desktop domain (0), one
    /// telephone line in its own domain (1).
    pub fn desktop() -> Self {
        HwSpec {
            devices: vec![
                DeviceSpec {
                    name: "speaker".into(),
                    kind: DeviceKind::Speaker { rate: 8_000, channels: 1 },
                    domains: vec![0],
                },
                DeviceSpec {
                    name: "microphone".into(),
                    kind: DeviceKind::Microphone { rate: 8_000 },
                    domains: vec![0],
                },
                DeviceSpec {
                    name: "phone line 1".into(),
                    kind: DeviceKind::PhoneLine { number: "555-0100".into(), caller_id: true },
                    domains: vec![1],
                },
            ],
            hard_wires: Vec::new(),
        }
    }

    /// A desktop with an outboard speaker-phone whose telephone line,
    /// microphone and speaker are hard-wired together (the wiring-rule
    /// example of paper §5.2). The speaker-phone sits in both the desktop
    /// and telephone domains (paper §5.8).
    pub fn desktop_with_speakerphone() -> Self {
        let mut spec = Self::desktop();
        let base = spec.devices.len();
        spec.devices.push(DeviceSpec {
            name: "speakerphone line".into(),
            kind: DeviceKind::PhoneLine { number: "555-0101".into(), caller_id: true },
            domains: vec![0, 2],
        });
        spec.devices.push(DeviceSpec {
            name: "speakerphone speaker".into(),
            kind: DeviceKind::Speaker { rate: 8_000, channels: 1 },
            domains: vec![0, 2],
        });
        spec.devices.push(DeviceSpec {
            name: "speakerphone mic".into(),
            kind: DeviceKind::Microphone { rate: 8_000 },
            domains: vec![0, 2],
        });
        // Line out -> speaker in; mic out -> line in.
        spec.hard_wires.push((base, 0, base + 1, 0));
        spec.hard_wires.push((base + 2, 0, base, 0));
        spec
    }

    /// A CD-quality desktop: adds a 44.1 kHz stereo speaker for the
    /// high-rate experiments (paper §1.1's 175 kB/s end of the scale).
    pub fn desktop_hifi() -> Self {
        let mut spec = Self::desktop();
        spec.devices.push(DeviceSpec {
            name: "hifi speaker".into(),
            kind: DeviceKind::Speaker { rate: 44_100, channels: 2 },
            domains: vec![0],
        });
        spec
    }
}

/// Live instantiated hardware. Indexed by the same order as the spec's
/// device list; each entry resolves to one of the per-kind tables.
#[derive(Debug)]
pub struct Hardware {
    spec: HwSpec,
    /// Per-device handle into the kind tables.
    slots: Vec<HwSlot>,
    /// All speakers.
    pub speakers: Vec<Speaker>,
    /// All microphones.
    pub microphones: Vec<Microphone>,
    /// The telephone network (server lines and any test lines).
    pub pstn: Pstn,
}

/// Resolves a spec index to the concrete device table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwSlot {
    /// Index into [`Hardware::speakers`].
    Speaker(usize),
    /// Index into [`Hardware::microphones`].
    Microphone(usize),
    /// A PSTN line id.
    Line(LineId),
}

impl Hardware {
    /// Instantiates a spec.
    pub fn new(spec: HwSpec) -> Self {
        let mut hw = Hardware {
            spec: spec.clone(),
            slots: Vec::new(),
            speakers: Vec::new(),
            microphones: Vec::new(),
            pstn: Pstn::new(),
        };
        for dev in &spec.devices {
            let slot = match &dev.kind {
                DeviceKind::Speaker { rate, channels } => {
                    hw.speakers.push(Speaker::new(*rate, *channels));
                    HwSlot::Speaker(hw.speakers.len() - 1)
                }
                DeviceKind::Microphone { rate } => {
                    hw.microphones.push(Microphone::new(*rate, SignalSource::Silence));
                    HwSlot::Microphone(hw.microphones.len() - 1)
                }
                DeviceKind::PhoneLine { number, caller_id } => {
                    let line = hw.pstn.add_line(number);
                    hw.pstn.set_caller_id_service(line, *caller_id);
                    HwSlot::Line(line)
                }
            };
            hw.slots.push(slot);
        }
        hw
    }

    /// The inventory this hardware was built from.
    pub fn spec(&self) -> &HwSpec {
        &self.spec
    }

    /// Resolves a device index to its concrete slot.
    pub fn slot(&self, index: usize) -> Option<HwSlot> {
        self.slots.get(index).copied()
    }

    /// Underrun frames summed over every speaker — the hardware's own
    /// count of audible starvation, mirrored into server telemetry.
    pub fn total_speaker_underruns(&self) -> u64 {
        self.speakers.iter().map(|s| s.stats().underrun_frames).sum()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.slots.len()
    }

    /// Adds an outside-world line (for tests' remote parties), without a
    /// device-LOUD entry.
    pub fn add_external_line(&mut self, number: &str) -> LineId {
        self.pstn.add_line(number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_spec_instantiates() {
        let hw = Hardware::new(HwSpec::desktop());
        assert_eq!(hw.device_count(), 3);
        assert_eq!(hw.speakers.len(), 1);
        assert_eq!(hw.microphones.len(), 1);
        assert_eq!(hw.slot(0), Some(HwSlot::Speaker(0)));
        assert_eq!(hw.slot(1), Some(HwSlot::Microphone(0)));
        assert!(matches!(hw.slot(2), Some(HwSlot::Line(_))));
        assert_eq!(hw.slot(3), None);
    }

    #[test]
    fn speakerphone_spec_has_hard_wires() {
        let spec = HwSpec::desktop_with_speakerphone();
        assert_eq!(spec.hard_wires.len(), 2);
        let hw = Hardware::new(spec);
        assert_eq!(hw.speakers.len(), 2);
        assert_eq!(hw.microphones.len(), 2);
    }

    #[test]
    fn hifi_spec_has_stereo_speaker() {
        let hw = Hardware::new(HwSpec::desktop_hifi());
        let hifi = &hw.speakers[1];
        assert_eq!(hifi.rate(), 44_100);
        assert_eq!(hifi.channels(), 2);
    }

    #[test]
    fn external_lines_join_the_network() {
        let mut hw = Hardware::new(HwSpec::desktop());
        let ext = hw.add_external_line("555-9999");
        hw.pstn.off_hook(ext);
        hw.pstn.dial(ext, "555-0100");
        // The server's line (index 2) should now be ringing.
        if let Some(HwSlot::Line(server_line)) = hw.slot(2) {
            assert_eq!(hw.pstn.state(server_line), crate::pstn::LineState::Ringing);
        } else {
            panic!("expected line slot");
        }
    }

    #[test]
    fn caller_id_spec_respected() {
        let mut spec = HwSpec::desktop();
        if let DeviceKind::PhoneLine { caller_id, .. } = &mut spec.devices[2].kind {
            *caller_id = false;
        }
        let mut hw = Hardware::new(spec);
        let ext = hw.add_external_line("555-9999");
        hw.pstn.off_hook(ext);
        hw.pstn.dial(ext, "555-0100");
        if let Some(HwSlot::Line(server_line)) = hw.slot(2) {
            assert_eq!(hw.pstn.caller_id(server_line), None);
        }
    }
}
