//! A miniature public switched telephone network.
//!
//! The paper treats the telephone as "a voice peripheral, just like a
//! loudspeaker" (§1.1); its server controls real analog/ISDN lines. This
//! module is the substitute network: software lines with hook state,
//! ringing with caller-ID, call routing by directory number, busy and
//! no-answer outcomes, in-band call-progress tones, and full-duplex
//! audio cross-connect between connected lines — everything the
//! answering-machine scenario of §5.9 needs, with deterministic timing.
//!
//! All lines run at the telephone rate of 8 kHz mono µ-law-equivalent
//! linear samples ([`LINE_RATE`]).

use da_dsp::tone::CallProgressTone;
use std::collections::VecDeque;

/// Sample rate of every line, Hz.
pub const LINE_RATE: u32 = 8000;
/// Default frames of unanswered ringing before the caller gets NoAnswer
/// (24 s — four ring cycles).
pub const DEFAULT_RING_TIMEOUT: u64 = 24 * LINE_RATE as u64;
/// Cap on buffered cross-connect audio per line (1 s); beyond this the
/// oldest samples fall off, like any real jitter buffer.
const TX_CAP: usize = LINE_RATE as usize;

/// Identifies a line within one [`Pstn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineId(pub usize);

/// The call state of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// On-hook, idle.
    OnHook,
    /// Off-hook, hearing dial tone, ready to dial.
    DialTone,
    /// Outgoing call ringing at the far end (hearing ringback).
    Calling,
    /// Incoming call ringing on this line.
    Ringing,
    /// Connected to a peer.
    Connected,
    /// Off-hook hearing busy/reorder tone.
    HearingBusy,
}

/// Events a line reports to its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineEvent {
    /// The line is ringing with an incoming call.
    IncomingRing {
        /// Caller's directory number, when the network provides identity.
        caller_id: Option<String>,
    },
    /// An outgoing call was answered; the line is now connected.
    Connected,
    /// An outgoing call found the far end busy (or the number invalid).
    Busy,
    /// An outgoing call rang unanswered until the timeout.
    NoAnswer,
    /// The connected peer hung up.
    RemoteHangup,
}

#[derive(Debug)]
struct Line {
    number: String,
    state: LineState,
    /// Peer for Calling/Ringing/Connected states.
    peer: Option<usize>,
    /// Audio from the owner toward the network.
    tx: VecDeque<i16>,
    /// Pending events for the owner.
    events: VecDeque<LineEvent>,
    /// Caller id shown while Ringing.
    caller_id: Option<String>,
    /// Frames of ringing elapsed (for timeout).
    ring_frames: u64,
    /// Stream position for in-band tone generation.
    tone_pos: u64,
    /// Whether the network delivers caller identity to this line.
    caller_id_service: bool,
}

impl Line {
    fn new(number: String) -> Self {
        Line {
            number,
            state: LineState::OnHook,
            peer: None,
            tx: VecDeque::new(),
            events: VecDeque::new(),
            caller_id: None,
            ring_frames: 0,
            tone_pos: 0,
            caller_id_service: true,
        }
    }
}

/// The central office: owns all lines and routes calls between them.
#[derive(Debug, Default)]
pub struct Pstn {
    lines: Vec<Line>,
    ring_timeout: u64,
}

impl Pstn {
    /// Creates an empty network.
    pub fn new() -> Self {
        Pstn { lines: Vec::new(), ring_timeout: DEFAULT_RING_TIMEOUT }
    }

    /// Sets the unanswered-ring timeout in frames.
    pub fn set_ring_timeout(&mut self, frames: u64) {
        self.ring_timeout = frames.max(1);
    }

    /// Registers a line under a directory number.
    pub fn add_line(&mut self, number: &str) -> LineId {
        self.lines.push(Line::new(number.to_string()));
        LineId(self.lines.len() - 1)
    }

    /// Disables caller-identity delivery to a line (the network-capability
    /// attribute of paper §5.1).
    pub fn set_caller_id_service(&mut self, line: LineId, enabled: bool) {
        self.lines[line.0].caller_id_service = enabled;
    }

    /// The directory number of a line.
    pub fn number(&self, line: LineId) -> &str {
        &self.lines[line.0].number
    }

    /// Current state of a line.
    pub fn state(&self, line: LineId) -> LineState {
        self.lines[line.0].state
    }

    /// Caller identity while the line is ringing.
    pub fn caller_id(&self, line: LineId) -> Option<String> {
        self.lines[line.0].caller_id.clone()
    }

    /// Drains pending events on a line.
    pub fn poll_events(&mut self, line: LineId) -> Vec<LineEvent> {
        self.lines[line.0].events.drain(..).collect() // rt-ok: an empty drain collects without allocating; events are human-timescale
    }

    /// Takes a line off-hook. From idle this yields dial tone; while
    /// ringing it answers the call.
    pub fn off_hook(&mut self, line: LineId) {
        match self.lines[line.0].state {
            LineState::OnHook => {
                let l = &mut self.lines[line.0];
                l.state = LineState::DialTone;
                l.tone_pos = 0;
            }
            LineState::Ringing => self.answer(line),
            _ => {}
        }
    }

    /// Answers an incoming call (off-hook while ringing).
    pub fn answer(&mut self, line: LineId) {
        if self.lines[line.0].state != LineState::Ringing {
            return;
        }
        let caller = match self.lines[line.0].peer {
            Some(c) => c,
            None => return,
        };
        {
            let callee = &mut self.lines[line.0];
            callee.state = LineState::Connected;
            callee.ring_frames = 0;
            callee.tx.clear();
        }
        let caller_line = &mut self.lines[caller];
        caller_line.state = LineState::Connected;
        caller_line.tx.clear();
        caller_line.events.push_back(LineEvent::Connected);
    }

    /// Places a call from an off-hook line to a directory number.
    ///
    /// Digits reach the network instantaneously (the 1991 hardware did
    /// tone dialing in the interface); what matters to the server is the
    /// resulting call-progress sequence.
    // rt-ok(fn): dialing starts a call; the number strings are copied once per dial
    pub fn dial(&mut self, line: LineId, number: &str) {
        if self.lines[line.0].state != LineState::DialTone {
            return;
        }
        let callee_idx = self
            .lines
            .iter()
            .position(|l| l.number == number)
            .filter(|&i| i != line.0);
        match callee_idx {
            Some(idx) if self.lines[idx].state == LineState::OnHook => {
                let caller_number = self.lines[line.0].number.clone();
                {
                    let caller = &mut self.lines[line.0];
                    caller.state = LineState::Calling;
                    caller.peer = Some(idx);
                    caller.tone_pos = 0;
                    caller.ring_frames = 0;
                }
                let callee = &mut self.lines[idx];
                callee.state = LineState::Ringing;
                callee.peer = Some(line.0);
                callee.ring_frames = 0;
                callee.caller_id =
                    if callee.caller_id_service { Some(caller_number) } else { None };
                let caller_id = callee.caller_id.clone();
                callee.events.push_back(LineEvent::IncomingRing { caller_id });
            }
            _ => {
                // Unknown number, self-call, or far end not idle: busy.
                let caller = &mut self.lines[line.0];
                caller.state = LineState::HearingBusy;
                caller.tone_pos = 0;
                caller.events.push_back(LineEvent::Busy);
            }
        }
    }

    /// Puts a line back on-hook, ending whatever was in progress.
    pub fn on_hook(&mut self, line: LineId) {
        let (state, peer) = {
            let l = &self.lines[line.0];
            (l.state, l.peer)
        };
        {
            let l = &mut self.lines[line.0];
            l.state = LineState::OnHook;
            l.peer = None;
            l.caller_id = None;
            l.ring_frames = 0;
            l.tx.clear();
        }
        if let Some(p) = peer {
            match state {
                LineState::Connected => {
                    let pl = &mut self.lines[p];
                    if pl.state == LineState::Connected {
                        pl.state = LineState::HearingBusy;
                        pl.tone_pos = 0;
                        pl.peer = None;
                        pl.tx.clear();
                        pl.events.push_back(LineEvent::RemoteHangup);
                    }
                }
                LineState::Calling => {
                    // Caller abandoned: stop the callee's ringing.
                    let pl = &mut self.lines[p];
                    if pl.state == LineState::Ringing {
                        pl.state = LineState::OnHook;
                        pl.peer = None;
                        pl.caller_id = None;
                    }
                }
                LineState::Ringing => {
                    // Callee went on-hook without answering: nothing; the
                    // caller keeps hearing ringback until timeout.
                }
                _ => {}
            }
        }
    }

    /// Writes owner audio toward the network (heard by a connected peer).
    pub fn write_tx(&mut self, line: LineId, samples: &[i16]) {
        let l = &mut self.lines[line.0];
        if l.state != LineState::Connected {
            return;
        }
        l.tx.extend(samples.iter().copied());
        while l.tx.len() > TX_CAP {
            l.tx.pop_front();
        }
    }

    /// Reads `n` samples of what the line owner hears: dial tone,
    /// ringback, busy, the connected peer's audio, or silence.
    pub fn read_rx(&mut self, line: LineId, n: usize) -> Vec<i16> {
        let mut out = Vec::with_capacity(n);
        self.read_rx_into(line, n, &mut out);
        out
    }

    /// Reads `n` samples of line audio, appending to `out`.
    /// Allocation-free when `out` has capacity.
    pub fn read_rx_into(&mut self, line: LineId, n: usize, out: &mut Vec<i16>) {
        let state = self.lines[line.0].state;
        match state {
            LineState::DialTone => self.tone_into(line, CallProgressTone::Dial, n, out),
            LineState::Calling => self.tone_into(line, CallProgressTone::Ringback, n, out),
            LineState::HearingBusy => self.tone_into(line, CallProgressTone::Busy, n, out),
            LineState::Connected => {
                let peer = self.lines[line.0].peer;
                match peer {
                    Some(p) => {
                        let ptx = &mut self.lines[p].tx;
                        let have = ptx.len().min(n);
                        let (a, b) = ptx.as_slices();
                        let from_a = have.min(a.len());
                        out.extend_from_slice(&a[..from_a]);
                        out.extend_from_slice(&b[..have - from_a]);
                        ptx.drain(..have);
                        out.resize(out.len() + (n - have), 0);
                    }
                    None => out.resize(out.len() + n, 0),
                }
            }
            LineState::OnHook | LineState::Ringing => out.resize(out.len() + n, 0),
        }
    }

    fn tone_into(&mut self, line: LineId, tone: CallProgressTone, n: usize, out: &mut Vec<i16>) {
        let l = &mut self.lines[line.0];
        let start = out.len();
        out.resize(start + n, 0);
        tone.fill(LINE_RATE, l.tone_pos, 8000, &mut out[start..]);
        l.tone_pos += n as u64;
    }

    /// Advances network time by `frames`: ring timers run, unanswered
    /// calls time out.
    pub fn tick(&mut self, frames: u64) {
        for i in 0..self.lines.len() {
            if self.lines[i].state == LineState::Ringing {
                self.lines[i].ring_frames += frames;
                if self.lines[i].ring_frames >= self.ring_timeout {
                    let caller = self.lines[i].peer;
                    let l = &mut self.lines[i];
                    l.state = LineState::OnHook;
                    l.peer = None;
                    l.caller_id = None;
                    l.ring_frames = 0;
                    if let Some(c) = caller {
                        let cl = &mut self.lines[c];
                        if cl.state == LineState::Calling {
                            cl.state = LineState::HearingBusy;
                            cl.tone_pos = 0;
                            cl.peer = None;
                            cl.events.push_back(LineEvent::NoAnswer);
                        }
                    }
                }
            }
        }
    }
}

/// A scriptable far-end party: the outside world of the tests and
/// benches. It owns one PSTN line, plays queued audio into calls and
/// records everything it hears.
#[derive(Debug)]
pub struct RemoteParty {
    line: LineId,
    playback: VecDeque<i16>,
    heard: Vec<i16>,
    /// Answer incoming calls automatically after this many frames of
    /// ringing (`None` = never answer).
    pub auto_answer_after: Option<u64>,
    ring_seen: u64,
}

impl RemoteParty {
    /// Creates a party owning `line`.
    pub fn new(line: LineId) -> Self {
        RemoteParty {
            line,
            playback: VecDeque::new(),
            heard: Vec::new(),
            auto_answer_after: None,
            ring_seen: 0,
        }
    }

    /// The party's line.
    pub fn line(&self) -> LineId {
        self.line
    }

    /// Places a call to `number`.
    pub fn call(&mut self, pstn: &mut Pstn, number: &str) {
        pstn.off_hook(self.line);
        pstn.dial(self.line, number);
    }

    /// Hangs up.
    pub fn hang_up(&mut self, pstn: &mut Pstn) {
        pstn.on_hook(self.line);
    }

    /// Queues audio to play into the call.
    pub fn say(&mut self, samples: &[i16]) {
        self.playback.extend(samples.iter().copied());
    }

    /// Queues DTMF digits to play into the call.
    pub fn send_dtmf(&mut self, digits: &str) {
        let tones = da_dsp::dtmf::dial_string(LINE_RATE, digits, 12000);
        self.say(&tones);
    }

    /// Audio still queued to play.
    pub fn pending_say(&self) -> usize {
        self.playback.len()
    }

    /// Everything heard so far.
    pub fn heard(&self) -> &[i16] {
        &self.heard
    }

    /// Exchanges `frames` of audio with the network and runs the
    /// answering script. Call once per engine tick.
    pub fn tick(&mut self, pstn: &mut Pstn, frames: usize) {
        // Auto-answer logic.
        if pstn.state(self.line) == LineState::Ringing {
            self.ring_seen += frames as u64;
            if let Some(after) = self.auto_answer_after {
                if self.ring_seen >= after {
                    pstn.answer(self.line);
                    self.ring_seen = 0;
                }
            }
        } else {
            self.ring_seen = 0;
        }
        // Full-duplex exchange.
        let heard = pstn.read_rx(self.line, frames);
        self.heard.extend_from_slice(&heard);
        if pstn.state(self.line) == LineState::Connected {
            let mut chunk = Vec::with_capacity(frames);
            for _ in 0..frames {
                chunk.push(self.playback.pop_front().unwrap_or(0));
            }
            pstn.write_tx(self.line, &chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_dsp::analysis;

    fn net2() -> (Pstn, LineId, LineId) {
        let mut p = Pstn::new();
        let a = p.add_line("555-0100");
        let b = p.add_line("555-0200");
        (p, a, b)
    }

    #[test]
    fn dial_tone_on_off_hook() {
        let (mut p, a, _) = net2();
        assert_eq!(p.state(a), LineState::OnHook);
        p.off_hook(a);
        assert_eq!(p.state(a), LineState::DialTone);
        let heard = p.read_rx(a, 800);
        // Dial tone components present.
        assert!(analysis::goertzel_power(&heard, 8000, 350.0) > 1000.0);
        assert!(analysis::goertzel_power(&heard, 8000, 440.0) > 1000.0);
    }

    #[test]
    fn basic_call_flow() {
        let (mut p, a, b) = net2();
        p.off_hook(a);
        p.dial(a, "555-0200");
        assert_eq!(p.state(a), LineState::Calling);
        assert_eq!(p.state(b), LineState::Ringing);
        let ev = p.poll_events(b);
        assert_eq!(ev, vec![LineEvent::IncomingRing { caller_id: Some("555-0100".into()) }]);
        assert_eq!(p.caller_id(b), Some("555-0100".to_string()));
        // Caller hears ringback while waiting.
        let rb = p.read_rx(a, 800);
        assert!(analysis::goertzel_power(&rb, 8000, 440.0) > 1000.0);
        p.answer(b);
        assert_eq!(p.state(a), LineState::Connected);
        assert_eq!(p.state(b), LineState::Connected);
        assert_eq!(p.poll_events(a), vec![LineEvent::Connected]);
    }

    #[test]
    fn audio_crosses_connected_call() {
        let (mut p, a, b) = net2();
        p.off_hook(a);
        p.dial(a, "555-0200");
        p.answer(b);
        p.write_tx(a, &[1, 2, 3, 4]);
        assert_eq!(p.read_rx(b, 6), vec![1, 2, 3, 4, 0, 0]);
        p.write_tx(b, &[9, 8]);
        assert_eq!(p.read_rx(a, 2), vec![9, 8]);
    }

    #[test]
    fn busy_when_callee_off_hook() {
        let (mut p, a, b) = net2();
        p.off_hook(b); // callee busy at dial tone
        p.off_hook(a);
        p.dial(a, "555-0200");
        assert_eq!(p.state(a), LineState::HearingBusy);
        assert_eq!(p.poll_events(a), vec![LineEvent::Busy]);
        let heard = p.read_rx(a, 800);
        assert!(analysis::goertzel_power(&heard, 8000, 480.0) > 500.0);
    }

    #[test]
    fn unknown_number_is_busy() {
        let (mut p, a, _) = net2();
        p.off_hook(a);
        p.dial(a, "555-9999");
        assert_eq!(p.state(a), LineState::HearingBusy);
    }

    #[test]
    fn cannot_call_self() {
        let (mut p, a, _) = net2();
        p.off_hook(a);
        p.dial(a, "555-0100");
        assert_eq!(p.state(a), LineState::HearingBusy);
    }

    #[test]
    fn hangup_notifies_peer() {
        let (mut p, a, b) = net2();
        p.off_hook(a);
        p.dial(a, "555-0200");
        p.answer(b);
        p.poll_events(a);
        p.on_hook(b);
        assert_eq!(p.state(b), LineState::OnHook);
        assert_eq!(p.state(a), LineState::HearingBusy);
        assert_eq!(p.poll_events(a), vec![LineEvent::RemoteHangup]);
    }

    #[test]
    fn caller_abandon_stops_ringing() {
        let (mut p, a, b) = net2();
        p.off_hook(a);
        p.dial(a, "555-0200");
        assert_eq!(p.state(b), LineState::Ringing);
        p.on_hook(a);
        assert_eq!(p.state(b), LineState::OnHook);
        assert_eq!(p.caller_id(b), None);
    }

    #[test]
    fn ring_timeout_no_answer() {
        let (mut p, a, b) = net2();
        p.set_ring_timeout(8000);
        p.off_hook(a);
        p.dial(a, "555-0200");
        p.poll_events(b);
        p.tick(7999);
        assert_eq!(p.state(b), LineState::Ringing);
        p.tick(1);
        assert_eq!(p.state(b), LineState::OnHook);
        assert_eq!(p.state(a), LineState::HearingBusy);
        assert_eq!(p.poll_events(a), vec![LineEvent::NoAnswer]);
    }

    #[test]
    fn caller_id_service_can_be_disabled() {
        let (mut p, a, b) = net2();
        p.set_caller_id_service(b, false);
        p.off_hook(a);
        p.dial(a, "555-0200");
        assert_eq!(p.poll_events(b), vec![LineEvent::IncomingRing { caller_id: None }]);
    }

    #[test]
    fn off_hook_while_ringing_answers() {
        let (mut p, a, b) = net2();
        p.off_hook(a);
        p.dial(a, "555-0200");
        p.off_hook(b);
        assert_eq!(p.state(b), LineState::Connected);
        assert_eq!(p.state(a), LineState::Connected);
    }

    #[test]
    fn tx_buffer_bounded() {
        let (mut p, a, b) = net2();
        p.off_hook(a);
        p.dial(a, "555-0200");
        p.answer(b);
        p.write_tx(a, &vec![1i16; TX_CAP * 3]);
        // Only the newest TX_CAP samples remain.
        let heard = p.read_rx(b, TX_CAP + 10);
        assert_eq!(heard.len(), TX_CAP + 10);
        assert_eq!(heard[TX_CAP], 0);
    }

    #[test]
    fn remote_party_auto_answer_and_exchange() {
        let mut p = Pstn::new();
        let a = p.add_line("100");
        let b = p.add_line("200");
        let mut callee = RemoteParty::new(b);
        callee.auto_answer_after = Some(800);
        callee.say(&da_dsp::tone::sine(8000, 500.0, 1600, 10000));
        p.off_hook(a);
        p.dial(a, "200");
        let mut caller_heard = Vec::new();
        for _ in 0..40 {
            callee.tick(&mut p, 80);
            caller_heard.extend(p.read_rx(a, 80));
            p.tick(80);
        }
        assert_eq!(p.state(a), LineState::Connected);
        // After connection the caller hears the callee's tone.
        let tail = &caller_heard[1600..];
        assert!(analysis::goertzel_power(tail, 8000, 500.0) > 1000.0);
    }

    #[test]
    fn remote_party_dtmf_reaches_peer() {
        let mut p = Pstn::new();
        let a = p.add_line("100");
        let b = p.add_line("200");
        let mut remote = RemoteParty::new(b);
        remote.call(&mut p, "100");
        p.answer(a);
        remote.send_dtmf("42");
        let mut det = da_dsp::dtmf::Detector::new(8000);
        let mut digits = Vec::new();
        for _ in 0..80 {
            remote.tick(&mut p, 80);
            let heard = p.read_rx(a, 80);
            digits.extend(det.push(&heard));
        }
        assert_eq!(digits, b"42".to_vec());
    }
}
