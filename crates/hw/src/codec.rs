//! Simulated CODEC endpoints: speaker sinks and microphone sources.
//!
//! A real CODEC drains its memory-mapped buffer at the sample rate whether
//! or not software refills it in time. The simulated [`Speaker`] has the
//! same contract: the engine must call [`Speaker::render`] with exactly
//! the frames the tick demands; if the engine has no data, it must say so,
//! and the starvation is *counted* — which is how the reproduction proves
//! the paper's "continuous playback without gaps" and "not a single
//! dropped or inserted sample" claims (§6, §6.2).

use da_dsp::analysis;

/// Statistics a speaker accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeakerStats {
    /// Total frames consumed by the device.
    pub frames: u64,
    /// Frames delivered while at least one client stream was active.
    pub fed_frames: u64,
    /// Frames of silence inserted because the engine declared starvation
    /// while a stream was supposed to be playing.
    pub underrun_frames: u64,
}

/// A simulated loudspeaker.
///
/// When capture is enabled the full output waveform is retained, letting
/// tests assert sample-exact continuity across command boundaries.
#[derive(Debug)]
pub struct Speaker {
    rate: u32,
    channels: u8,
    stats: SpeakerStats,
    capture: Option<Vec<i16>>,
    capture_limit: usize,
}

impl Speaker {
    /// Creates a speaker at `rate` Hz with `channels` channels.
    pub fn new(rate: u32, channels: u8) -> Self {
        Speaker { rate, channels, stats: SpeakerStats::default(), capture: None, capture_limit: 0 }
    }

    /// Sample rate.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Channel count.
    pub fn channels(&self) -> u8 {
        self.channels
    }

    /// Enables waveform capture of up to `limit` frames (0 disables).
    pub fn set_capture(&mut self, limit: usize) {
        self.capture_limit = limit;
        if limit == 0 {
            self.capture = None;
        } else {
            self.capture = Some(Vec::with_capacity(limit.min(1 << 20)));
        }
    }

    /// The captured waveform so far.
    pub fn captured(&self) -> &[i16] {
        self.capture.as_deref().unwrap_or(&[])
    }

    /// Takes the captured waveform, leaving capture enabled and empty.
    pub fn take_captured(&mut self) -> Vec<i16> {
        match &mut self.capture {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// Renders one tick of interleaved frames. `active` says whether any
    /// client stream was feeding the device this tick; starvation while
    /// active counts as underrun.
    pub fn render(&mut self, frames: &[i16], active: bool, starved_frames: u64) {
        let nframes = (frames.len() / self.channels.max(1) as usize) as u64;
        self.stats.frames += nframes;
        if active {
            self.stats.fed_frames += nframes;
            self.stats.underrun_frames += starved_frames;
        }
        if let Some(buf) = &mut self.capture {
            let room = self.capture_limit.saturating_sub(buf.len());
            let take = frames.len().min(room);
            buf.extend_from_slice(&frames[..take]);
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> SpeakerStats {
        self.stats
    }

    /// RMS level of the captured waveform (0 when capture is off).
    pub fn captured_rms(&self) -> f64 {
        analysis::rms(self.captured())
    }
}

/// What a microphone "hears": a deterministic signal program.
#[derive(Debug, Clone)]
pub enum SignalSource {
    /// Digital silence.
    Silence,
    /// A continuous sine at (freq, amplitude).
    Sine {
        /// Frequency in Hz.
        freq: f64,
        /// Peak amplitude.
        amplitude: i16,
    },
    /// Fixed samples, then silence.
    Samples(Vec<i16>),
    /// Fixed samples, repeated forever.
    Loop(Vec<i16>),
}

/// A simulated microphone producing samples on demand.
#[derive(Debug)]
pub struct Microphone {
    rate: u32,
    source: SignalSource,
    pos: u64,
    /// Samples pushed live (e.g. by a test) take priority over `source`.
    injected: std::collections::VecDeque<i16>,
}

impl Microphone {
    /// Creates a microphone at `rate` Hz hearing `source`.
    pub fn new(rate: u32, source: SignalSource) -> Self {
        Microphone { rate, source, pos: 0, injected: Default::default() }
    }

    /// Sample rate.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Replaces the signal program and rewinds it.
    pub fn set_source(&mut self, source: SignalSource) {
        self.source = source;
        self.pos = 0;
    }

    /// Queues live samples that will be heard before the signal program
    /// resumes (used by tests to "speak into" the microphone).
    pub fn inject(&mut self, samples: &[i16]) {
        self.injected.extend(samples.iter().copied());
    }

    /// Pending injected samples not yet consumed.
    pub fn injected_pending(&self) -> usize {
        self.injected.len()
    }

    /// Produces the next `n` samples.
    pub fn pull(&mut self, n: usize) -> Vec<i16> {
        let mut out = Vec::with_capacity(n);
        self.pull_into(n, &mut out);
        out
    }

    /// Produces the next `n` samples, appending to `out`. Allocation-free
    /// when `out` has capacity.
    pub fn pull_into(&mut self, n: usize, out: &mut Vec<i16>) {
        let target = out.len() + n;
        while out.len() < target {
            if let Some(s) = self.injected.pop_front() {
                out.push(s); // rt-ok: appends into a pooled buffer that reaches steady capacity
                continue;
            }
            let s = match &self.source {
                SignalSource::Silence => 0,
                SignalSource::Sine { freq, amplitude } => {
                    let step = std::f64::consts::TAU * freq / self.rate as f64;
                    (*amplitude as f64 * (step * self.pos as f64).sin()) as i16
                }
                SignalSource::Samples(data) => {
                    data.get(self.pos as usize).copied().unwrap_or(0)
                }
                SignalSource::Loop(data) => {
                    if data.is_empty() {
                        0
                    } else {
                        data[(self.pos % data.len() as u64) as usize]
                    }
                }
            };
            self.pos += 1;
            out.push(s); // rt-ok: appends into a pooled buffer that reaches steady capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speaker_counts_frames() {
        let mut sp = Speaker::new(8000, 1);
        sp.render(&[0; 80], false, 0);
        sp.render(&[1; 80], true, 0);
        sp.render(&[0; 80], true, 40);
        let st = sp.stats();
        assert_eq!(st.frames, 240);
        assert_eq!(st.fed_frames, 160);
        assert_eq!(st.underrun_frames, 40);
    }

    #[test]
    fn stereo_frame_accounting() {
        let mut sp = Speaker::new(44100, 2);
        sp.render(&[0; 882], true, 0); // 441 stereo frames
        assert_eq!(sp.stats().frames, 441);
    }

    #[test]
    fn capture_respects_limit() {
        let mut sp = Speaker::new(8000, 1);
        sp.set_capture(100);
        sp.render(&[7; 80], true, 0);
        sp.render(&[8; 80], true, 0);
        assert_eq!(sp.captured().len(), 100);
        assert_eq!(sp.captured()[0], 7);
        assert_eq!(sp.captured()[99], 8);
        let taken = sp.take_captured();
        assert_eq!(taken.len(), 100);
        assert!(sp.captured().is_empty());
    }

    #[test]
    fn capture_off_by_default() {
        let mut sp = Speaker::new(8000, 1);
        sp.render(&[1; 80], true, 0);
        assert!(sp.captured().is_empty());
        assert_eq!(sp.captured_rms(), 0.0);
    }

    #[test]
    fn microphone_sine_is_periodic_across_pulls() {
        let mut mic = Microphone::new(8000, SignalSource::Sine { freq: 1000.0, amplitude: 10000 });
        let a = mic.pull(40);
        let b = mic.pull(40);
        let mut mic2 = Microphone::new(8000, SignalSource::Sine { freq: 1000.0, amplitude: 10000 });
        let whole = mic2.pull(80);
        assert_eq!([a, b].concat(), whole);
    }

    #[test]
    fn microphone_samples_then_silence() {
        let mut mic = Microphone::new(8000, SignalSource::Samples(vec![5, 6, 7]));
        assert_eq!(mic.pull(5), vec![5, 6, 7, 0, 0]);
    }

    #[test]
    fn microphone_loop_wraps() {
        let mut mic = Microphone::new(8000, SignalSource::Loop(vec![1, 2]));
        assert_eq!(mic.pull(5), vec![1, 2, 1, 2, 1]);
    }

    #[test]
    fn injection_preempts_program() {
        let mut mic = Microphone::new(8000, SignalSource::Loop(vec![9]));
        mic.inject(&[1, 2]);
        assert_eq!(mic.injected_pending(), 2);
        assert_eq!(mic.pull(4), vec![1, 2, 9, 9]);
        assert_eq!(mic.injected_pending(), 0);
    }

    #[test]
    fn set_source_rewinds() {
        let mut mic = Microphone::new(8000, SignalSource::Samples(vec![1, 2, 3]));
        mic.pull(2);
        mic.set_source(SignalSource::Samples(vec![4, 5]));
        assert_eq!(mic.pull(2), vec![4, 5]);
    }
}
