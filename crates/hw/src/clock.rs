//! Tick pacing.
//!
//! The server engine advances the hardware in fixed quanta of audio time
//! (default 10 ms). How fast those quanta elapse in *wall-clock* time is
//! the pacer's business: virtual pacing runs flat out (deterministic
//! tests, throughput benches), real-time pacing sleeps so one quantum of
//! audio takes one quantum of wall time (latency measurements, live use).

use std::time::{Duration, Instant};

/// How engine ticks map to wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Run ticks back-to-back as fast as possible.
    Virtual,
    /// Pace ticks to wall time.
    RealTime,
}

/// A tick pacer: call [`Pacer::wait_tick`] once per engine iteration.
#[derive(Debug)]
pub struct Pacer {
    pacing: Pacing,
    quantum: Duration,
    next: Option<Instant>,
    ticks: u64,
}

impl Pacer {
    /// Creates a pacer issuing quanta of `quantum_us` microseconds.
    pub fn new(pacing: Pacing, quantum_us: u64) -> Self {
        Pacer { pacing, quantum: Duration::from_micros(quantum_us), next: None, ticks: 0 }
    }

    /// The audio duration of one tick.
    pub fn quantum(&self) -> Duration {
        self.quantum
    }

    /// Ticks issued so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Blocks (when real-time) until the next tick is due, then accounts
    /// it. Virtual pacing returns immediately.
    ///
    /// The real-time pacer is deadline-based, not sleep-based: if a tick
    /// overruns, subsequent ticks fire immediately until the schedule
    /// catches up, so audio time never drifts from wall time.
    pub fn wait_tick(&mut self) {
        self.ticks += 1;
        if self.pacing == Pacing::Virtual {
            return;
        }
        let now = Instant::now();
        let due = match self.next {
            None => now,
            Some(t) => t,
        };
        if due > now {
            std::thread::sleep(due - now);
        }
        // Schedule the next tick relative to the *deadline*, not to now,
        // so overruns are amortised instead of accumulating.
        self.next = Some(due + self.quantum);
    }
}

/// Number of sample frames a device at `rate` Hz consumes in a quantum of
/// `quantum_us` microseconds, accounting for rounding drift.
///
/// The returned value depends on the tick index so that over time the
/// *average* matches the rate exactly: e.g. 44100 Hz at 10 ms quanta
/// yields 441 every tick; 11025 Hz yields alternating 110/111.
pub fn frames_this_tick(rate: u32, quantum_us: u64, tick: u64) -> usize {
    let total_now = (tick + 1) as u128 * quantum_us as u128 * rate as u128 / 1_000_000;
    let total_before = tick as u128 * quantum_us as u128 * rate as u128 / 1_000_000;
    (total_now - total_before) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_pacer_does_not_block() {
        let mut p = Pacer::new(Pacing::Virtual, 10_000);
        let start = Instant::now();
        for _ in 0..1000 {
            p.wait_tick();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(p.ticks(), 1000);
    }

    #[test]
    fn realtime_pacer_paces() {
        let mut p = Pacer::new(Pacing::RealTime, 5_000);
        let start = Instant::now();
        for _ in 0..10 {
            p.wait_tick();
        }
        // First tick is immediate; nine more at 5 ms each ≈ 45 ms.
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(40), "{elapsed:?}");
    }

    #[test]
    fn frame_count_exact_for_integral_rates() {
        for tick in 0..100 {
            assert_eq!(frames_this_tick(8000, 10_000, tick), 80);
            assert_eq!(frames_this_tick(44100, 10_000, tick), 441);
        }
    }

    #[test]
    fn frame_count_averages_fractional_rates() {
        // 11025 Hz at 10 ms = 110.25 frames per tick.
        let total: usize = (0..400).map(|t| frames_this_tick(11025, 10_000, t)).sum();
        assert_eq!(total, 44100); // exactly 4 s worth
        let counts: Vec<usize> = (0..4).map(|t| frames_this_tick(11025, 10_000, t)).collect();
        assert!(counts.iter().all(|&c| c == 110 || c == 111), "{counts:?}");
    }

    #[test]
    fn odd_quantum_sizes_still_sum_exactly() {
        // 7.3 ms quanta at 8 kHz: 58.4 frames per tick on average.
        let total: usize = (0..1000).map(|t| frames_this_tick(8000, 7_300, t)).sum();
        assert_eq!(total, 8000 * 7300 / 1000); // 58,400 frames
    }
}
