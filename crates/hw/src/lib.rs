//! Simulated audio and telephony hardware.
//!
//! The paper's prototype ran on a DECstation 5000 with "a simple CODEC
//! with memory-mapped buffers" (§6) and telephone hardware. This crate is
//! the software stand-in (see DESIGN.md "Substitutions"): every device is
//! driven by an explicit sample clock, so the server's real-time
//! obligations — feed the CODEC every tick, never drop or insert a sample
//! — become observable, countable properties instead of analog mysteries.
//!
//! - [`clock`] — tick pacing: free-running virtual time for deterministic
//!   tests, wall-clock pacing for latency measurements;
//! - [`codec`] — speaker sinks and microphone sources with ring-buffer
//!   semantics and underrun accounting;
//! - [`pstn`] — a miniature central office: lines, call routing, ringing,
//!   busy, caller-ID, in-band call-progress tones, full-duplex audio
//!   cross-connect, plus a scriptable [`pstn::RemoteParty`] that plays the
//!   outside world in tests;
//! - [`registry`] — the hardware inventory a server instance is built
//!   from, including hard-wired connections and ambient domains
//!   (paper §5.8).

pub mod clock;
pub mod codec;
pub mod pstn;
pub mod registry;
