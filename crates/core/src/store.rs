//! Content-addressed shared sound store and transcode cache
//! (DESIGN.md §17).
//!
//! The paper's catalogues (§5.1, §5.6) assume many clients replaying
//! the same server-side prompts. At that fan-out two costs dominate the
//! sound path: every binding carrying its own copy of the encoded
//! bytes, and every play re-running the decode leaf. The store removes
//! both:
//!
//! - **Payload interning.** Encoded bytes plus the [`SoundType`] hash
//!   (FNV-1a, dependency-free) to a 64-bit content key. Catalogue
//!   entries are adopted at server start; client uploads are interned
//!   when the final `WriteSoundData` block arrives (`eof`). Identical
//!   content resolves to one immutable `Arc<Vec<u8>>`, shared zero-copy
//!   across clients and shards. The map holds [`Weak`] references, so
//!   the store never extends a payload's lifetime: when the last sound
//!   bound to it dies, the bytes die with it.
//! - **Transcode cache.** A bounded LRU keyed by (content hash, target
//!   encoding, target rate) holding the fully decoded mono PCM of hot
//!   sounds. The engine's per-tick decode windows become slice copies
//!   after the first play, and ADPCM — which cannot be decoded from an
//!   arbitrary offset — is decoded exactly once per payload instead of
//!   once per window (the former O(n²) offset-read path). Eviction is
//!   by byte budget, least-recently-used first.
//!
//! Concurrency: the store is a *leaf* structure in the §13 locking
//! protocol. All state sits behind one private mutex whose critical
//! sections are map probes and bounded evictions — it never acquires
//! the core lock or a stripe, so it ranks strictly below both and may
//! be touched from the read-locked fast path, the write-locked slow
//! path, and the engine tick alike. The expensive work on a cache miss
//! (the full decode) runs *outside* the mutex.

use crate::sound::Sound;
use crate::telem::ServerMetrics;
use da_proto::types::{Encoding, SoundType};
use da_telemetry::{Counter, Gauge};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Transcode-cache byte budget: decoded PCM retained across plays.
/// 8 MiB holds ~8 minutes of 8 kHz mono PCM-16 — far beyond the hot
/// prompt set — while bounding worst-case growth.
pub const TRANSCODE_CACHE_BYTES: usize = 8 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the sound's type fields followed by its encoded bytes.
/// The type participates so two byte-identical buffers with different
/// interpretations (e.g. µ-law vs PCM-8) never collide by construction.
pub fn content_hash(stype: SoundType, data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    eat(stype.encoding as u8); // discriminant of a fieldless enum
    for b in stype.sample_rate.to_le_bytes() {
        eat(b);
    }
    eat(stype.channels);
    for &b in data {
        eat(b);
    }
    h
}

/// One interned payload: a weak handle (the store never keeps bytes
/// alive) plus the length for accounting after the payload dies.
struct PayloadSlot {
    weak: Weak<Vec<u8>>,
    bytes: usize,
}

/// Transcode-cache key: content identity plus the target format. The
/// only variant produced today is mono PCM-16 at the sound's native
/// rate (what the engine's decode leaf consumes), but the key carries
/// the full target so resampled variants can share the same cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct TranscodeKey {
    hash: u64,
    encoding: Encoding,
    rate: u32,
}

/// One cached decode: the full mono PCM, its cost, and an LRU stamp.
struct CacheEntry {
    pcm: Arc<Vec<i16>>,
    bytes: usize,
    /// Wall time of the decode that built this entry, for the
    /// `transcode_us_saved_total` estimate.
    build_ns: u64,
    /// Total mono frames, for prorating the saved time per window.
    frames: u64,
    stamp: u64,
}

struct StoreInner {
    payloads: HashMap<u64, PayloadSlot>,
    /// Live interned bytes (sum over slots whose payload is alive).
    shared_bytes: usize,
    cache: HashMap<TranscodeKey, CacheEntry>,
    cache_bytes: usize,
    /// LRU clock, bumped on every cache touch.
    clock: u64,
    /// Sub-microsecond remainder of the saved-time estimate, carried so
    /// small windows still accumulate into the counter.
    carry_ns: u64,
    /// Payload-map size that triggers the next dead-slot sweep.
    next_sweep: usize,
}

/// Handles onto the store's metrics (registered once in
/// [`ServerMetrics::new`]; see DESIGN.md §10).
struct StoreMetrics {
    bytes_shared: Gauge,
    payloads: Gauge,
    dedupe_hits: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    us_saved: Counter,
}

/// The server-wide content-addressed sound store. One per [`Core`],
/// interior-mutable so the read-locked fast path and the engine tick
/// can both use it through a shared reference.
///
/// [`Core`]: crate::core::Core
pub struct SoundStore {
    inner: Mutex<StoreInner>,
    budget: usize,
    m: StoreMetrics,
}

impl SoundStore {
    /// Creates an empty store holding pre-registered metric handles.
    pub fn new(metrics: &ServerMetrics) -> SoundStore {
        SoundStore::with_budget(metrics, TRANSCODE_CACHE_BYTES)
    }

    /// Creates a store with an explicit transcode-cache byte budget
    /// (tests exercise eviction with tiny budgets).
    pub fn with_budget(metrics: &ServerMetrics, budget: usize) -> SoundStore {
        SoundStore {
            inner: Mutex::new(StoreInner {
                payloads: HashMap::new(),
                shared_bytes: 0,
                cache: HashMap::new(),
                cache_bytes: 0,
                clock: 0,
                carry_ns: 0,
                next_sweep: 16,
            }),
            budget,
            m: StoreMetrics {
                bytes_shared: metrics.store_bytes_shared.clone(),
                payloads: metrics.store_payloads.clone(),
                dedupe_hits: metrics.store_dedupe_hits_total.clone(),
                cache_hits: metrics.transcode_cache_hits_total.clone(),
                cache_misses: metrics.transcode_cache_misses_total.clone(),
                cache_evictions: metrics.transcode_cache_evictions_total.clone(),
                us_saved: metrics.transcode_us_saved_total.clone(),
            },
        }
    }

    /// Interns freshly uploaded bytes, returning the shared payload and
    /// its content hash. If a live payload with identical content
    /// already exists (an earlier upload or an adopted catalogue
    /// entry), the caller's buffer is dropped and the existing `Arc` is
    /// returned — N identical uploads cost one allocation.
    pub fn intern_payload(&self, stype: SoundType, data: Vec<u8>) -> (Arc<Vec<u8>>, u64) {
        let hash = content_hash(stype, &data);
        let mut inner = self.inner.lock(); // rt-ok: leaf mutex below core/stripe; probe + insert, never held across a decode
        if let Some(slot) = inner.payloads.get(&hash) {
            if let Some(existing) = slot.weak.upgrade() {
                // Guard against a 64-bit collision: dedupe only on
                // byte-identical content (the compare is cheaper than
                // the decode the payload exists to amortize).
                if *existing == data {
                    self.m.dedupe_hits.inc();
                    return (existing, hash);
                }
                // Genuine collision: keep the resident payload, hand
                // the caller an unshared copy of its own bytes.
                return (Arc::new(data), hash);
            }
        }
        let arc = Arc::new(data);
        self.register(&mut inner, hash, &arc);
        (arc, hash)
    }

    /// Registers an already-shared payload (catalogue entries at server
    /// start) without copying.
    pub fn adopt(&self, hash: u64, data: &Arc<Vec<u8>>) {
        let mut inner = self.inner.lock();
        let live = inner
            .payloads
            .get(&hash)
            .is_some_and(|slot| slot.weak.strong_count() > 0);
        if !live {
            self.register(&mut inner, hash, data);
        }
    }

    /// Inserts `arc` into the payload map under `hash`, adjusting the
    /// shared-byte accounting and sweeping dead slots when due.
    fn register(&self, inner: &mut StoreInner, hash: u64, arc: &Arc<Vec<u8>>) {
        let bytes = arc.len();
        if let Some(old) = inner
            .payloads
            .insert(hash, PayloadSlot { weak: Arc::downgrade(arc), bytes })
        {
            // Replacing a dead slot: its bytes left `shared_bytes` when
            // it died only if a sweep has run since; reconcile here.
            if old.weak.strong_count() == 0 {
                inner.shared_bytes = inner.shared_bytes.saturating_sub(old.bytes);
            }
        }
        inner.shared_bytes += bytes;
        if inner.payloads.len() >= inner.next_sweep {
            Self::sweep(inner);
        }
        self.m.bytes_shared.set(inner.shared_bytes as i64); // cast within i64 range: bounded by live sound bytes
        self.m.payloads.set(inner.payloads.len() as i64);
    }

    /// Drops payload slots whose sounds have all died and re-derives
    /// the byte accounting. Amortized O(1): runs when the map doubles.
    fn sweep(inner: &mut StoreInner) {
        inner.payloads.retain(|_, slot| slot.weak.strong_count() > 0);
        inner.shared_bytes = inner.payloads.values().map(|s| s.bytes).sum();
        inner.next_sweep = (inner.payloads.len() * 2).max(16);
    }

    /// Refreshes the mirrored gauges (dead payloads swept, byte totals
    /// re-derived). Called at snapshot time by `telem::refresh_mirrors`
    /// so `QueryServerStats` never reports stale sharing figures.
    pub fn refresh_gauges(&self) {
        let mut inner = self.inner.lock();
        Self::sweep(&mut inner);
        self.m.bytes_shared.set(inner.shared_bytes as i64); // cast within i64 range: bounded by live sound bytes
        self.m.payloads.set(inner.payloads.len() as i64);
    }

    /// Decodes `frames` mono sample frames of `snd` starting at frame
    /// `from`, appending linear PCM to `out`. Complete content-addressed
    /// sounds are served from the transcode cache — built with one full
    /// decode on first use, a bounded slice copy ever after (this is
    /// also what makes repeated ADPCM offset reads O(window) instead of
    /// O(sound)). Incomplete (streaming) sounds have unstable content
    /// and fall back to a direct windowed decode.
    ///
    /// `convert_ns` accumulates the wall time of real conversion work:
    /// the fallback decode, or the one-time cache build on a miss. A
    /// cache hit adds nothing — the slice copy is not a transcode, and
    /// skipping its two `Instant` reads keeps the steady-state tick
    /// cheap — so `dsp_convert_ns` honestly reads near-zero once the
    /// hot sounds are cached.
    pub fn decode_window(
        &self,
        snd: &Sound,
        from: u64,
        frames: u64,
        out: &mut Vec<i16>,
        convert_ns: &mut u64,
    ) {
        let Some(hash) = snd.content_hash.filter(|_| snd.complete) else {
            da_dsp::meter::DspMeter::timed(convert_ns, || {
                snd.decode_frames_into(from, frames, out);
            });
            return;
        };
        // Relax: the window copy appends into a pooled caller buffer
        // (capacity amortizes after warmup) and a cache miss builds the
        // decoded payload exactly once per sound.
        let _relax = crate::rt::AllocRelax::scope();
        let (pcm, built_ns) = self.cached_pcm(hash, snd, frames);
        *convert_ns += built_ns;
        let start = usize::try_from(from).unwrap_or(usize::MAX).min(pcm.len());
        let want = usize::try_from(frames).unwrap_or(usize::MAX);
        let end = start.saturating_add(want).min(pcm.len());
        out.extend_from_slice(&pcm[start..end]);
    }

    /// The fully decoded mono PCM for `hash`, built from `snd` on a
    /// miss, plus the build's wall time (0 on a hit). `window_frames`
    /// sizes the saved-time estimate on a hit.
    fn cached_pcm(&self, hash: u64, snd: &Sound, window_frames: u64) -> (Arc<Vec<i16>>, u64) {
        let key = TranscodeKey {
            hash,
            encoding: Encoding::Pcm16,
            rate: snd.stype.sample_rate,
        };
        {
            let mut inner = self.inner.lock(); // rt-ok: leaf mutex below core/stripe; O(1) probe, decode happens outside
            inner.clock += 1;
            let stamp = inner.clock;
            if let Some(e) = inner.cache.get_mut(&key) {
                e.stamp = stamp;
                let pcm = Arc::clone(&e.pcm);
                // Saved ≈ the one-time decode cost, prorated over the
                // fraction of the sound this window covers.
                let saved_ns = e
                    .build_ns
                    .saturating_mul(window_frames)
                    .checked_div(e.frames.max(1))
                    .unwrap_or(0);
                self.m.cache_hits.inc();
                inner.carry_ns += saved_ns;
                if inner.carry_ns >= 1_000 {
                    self.m.us_saved.add(inner.carry_ns / 1_000);
                    inner.carry_ns %= 1_000;
                }
                return (pcm, 0);
            }
        }
        // Miss: decode the whole sound with the mutex released — the
        // build is the O(n) work the cache exists to amortize.
        self.m.cache_misses.inc();
        let started = Instant::now();
        let decoded = snd.decode_frames(0, snd.len_frames());
        let build_ns = started.elapsed().as_nanos() as u64; // cast within u64 range: one decode's wall time
        let bytes = decoded.len() * 2;
        let frames = decoded.len() as u64;
        let pcm = Arc::new(decoded);
        let mut inner = self.inner.lock(); // rt-ok: leaf mutex below core/stripe; insert + bounded LRU eviction
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(prev) = inner.cache.insert(
            key,
            CacheEntry { pcm: Arc::clone(&pcm), bytes, build_ns, frames, stamp },
        ) {
            // A racing builder got here first; its bytes leave with it.
            inner.cache_bytes = inner.cache_bytes.saturating_sub(prev.bytes);
        }
        inner.cache_bytes += bytes;
        while inner.cache_bytes > self.budget && inner.cache.len() > 1 {
            let victim = inner
                .cache
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(gone) = inner.cache.remove(&victim) {
                inner.cache_bytes = inner.cache_bytes.saturating_sub(gone.bytes);
                self.m.cache_evictions.inc();
            }
        }
        (pcm, build_ns)
    }

    /// Point-in-time store figures for experiments and tests.
    pub fn snapshot(&self) -> StoreSnapshot {
        let mut inner = self.inner.lock();
        Self::sweep(&mut inner);
        StoreSnapshot {
            payloads: inner.payloads.len(),
            shared_bytes: inner.shared_bytes,
            cache_entries: inner.cache.len(),
            cache_bytes: inner.cache_bytes,
        }
    }
}

impl std::fmt::Debug for SoundStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("SoundStore")
            .field("payloads", &s.payloads)
            .field("shared_bytes", &s.shared_bytes)
            .field("cache_entries", &s.cache_entries)
            .field("cache_bytes", &s.cache_bytes)
            .finish()
    }
}

/// A point-in-time copy of the store's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Live interned payloads.
    pub payloads: usize,
    /// Bytes across live interned payloads (each counted once).
    pub shared_bytes: usize,
    /// Resident transcode-cache entries.
    pub cache_entries: usize,
    /// Bytes of decoded PCM resident in the transcode cache.
    pub cache_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_proto::ids::{ClientId, SoundId};
    use da_telemetry::Registry;

    fn store() -> SoundStore {
        let reg = Registry::new();
        SoundStore::new(&ServerMetrics::new(&reg))
    }

    fn tone_bytes(freq: f64, frames: usize) -> Vec<u8> {
        da_dsp::mulaw::encode_slice(&da_dsp::tone::sine(8000, freq, frames, 10000))
    }

    #[test]
    fn identical_uploads_share_one_payload() {
        let s = store();
        let data = tone_bytes(440.0, 800);
        let (a, ha) = s.intern_payload(SoundType::TELEPHONE, data.clone());
        let (b, hb) = s.intern_payload(SoundType::TELEPHONE, data.clone());
        assert_eq!(ha, hb);
        assert!(Arc::ptr_eq(&a, &b), "identical content must dedupe to one Arc");
        assert_eq!(s.snapshot().payloads, 1);
        assert_eq!(s.snapshot().shared_bytes, data.len());
    }

    #[test]
    fn type_participates_in_identity() {
        let s = store();
        let data = tone_bytes(440.0, 800);
        let alaw = SoundType { encoding: Encoding::ALaw, ..SoundType::TELEPHONE };
        let (a, ha) = s.intern_payload(SoundType::TELEPHONE, data.clone());
        let (b, hb) = s.intern_payload(alaw, data);
        assert_ne!(ha, hb, "same bytes, different type: distinct content");
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn dead_payloads_are_swept() {
        let s = store();
        let (a, _) = s.intern_payload(SoundType::TELEPHONE, tone_bytes(440.0, 800));
        assert_eq!(s.snapshot().payloads, 1);
        drop(a);
        // The store held only a Weak: the payload is gone and a
        // snapshot-time sweep reflects that.
        let snap = s.snapshot();
        assert_eq!(snap.payloads, 0);
        assert_eq!(snap.shared_bytes, 0);
    }

    #[test]
    fn adopted_catalogue_bytes_dedupe_uploads() {
        let s = store();
        let data = tone_bytes(300.0, 400);
        let arc = Arc::new(data.clone());
        s.adopt(content_hash(SoundType::TELEPHONE, &data), &arc);
        let (shared, _) = s.intern_payload(SoundType::TELEPHONE, data);
        assert!(Arc::ptr_eq(&arc, &shared), "upload must reuse the catalogue Arc");
    }

    fn interned_sound(stype: SoundType, encoded: Vec<u8>, s: &SoundStore) -> Sound {
        let mut snd = Sound::new(SoundId(1), ClientId(1), stype);
        snd.append(&encoded, true);
        let (arc, hash) = s.intern_payload(stype, std::mem::take(&mut snd.data));
        snd.shared = Some(arc);
        snd.content_hash = Some(hash);
        snd
    }

    #[test]
    fn cached_windows_match_direct_decode() {
        let s = store();
        let stype = SoundType {
            encoding: Encoding::ImaAdpcm,
            sample_rate: 8000,
            channels: 1,
        };
        let pcm = da_dsp::tone::sine(8000, 300.0, 1000, 9000);
        let snd = interned_sound(stype, da_dsp::adpcm::encode_slice(&pcm), &s);
        let direct = snd.decode_frames(0, 1000);
        let mut ns = 0u64;
        for (from, frames) in [(0u64, 1000u64), (500, 100), (990, 50), (1000, 10), (4000, 5)] {
            let mut cached = Vec::new();
            s.decode_window(&snd, from, frames, &mut cached, &mut ns);
            let start = (from as usize).min(direct.len());
            let end = (start + frames as usize).min(direct.len());
            assert_eq!(cached, &direct[start..end], "window ({from}, {frames})");
        }
        // First window built the entry; the rest hit.
        assert_eq!(s.snapshot().cache_entries, 1);
    }

    #[test]
    fn incomplete_sounds_bypass_the_cache() {
        let s = store();
        let mut snd = Sound::new(SoundId(1), ClientId(1), SoundType::TELEPHONE);
        snd.append(&tone_bytes(440.0, 200), false);
        let mut out = Vec::new();
        let mut ns = 0u64;
        s.decode_window(&snd, 0, 200, &mut out, &mut ns);
        assert_eq!(out.len(), 200);
        assert_eq!(s.snapshot().cache_entries, 0, "streaming content must not be cached");
    }

    #[test]
    fn eviction_respects_the_byte_budget() {
        let reg = Registry::new();
        let metrics = ServerMetrics::new(&reg);
        // Budget fits one 800-frame decode (1600 B) but not two.
        let s = SoundStore::with_budget(&metrics, 2000);
        let a = interned_sound(SoundType::TELEPHONE, tone_bytes(440.0, 800), &s);
        let mut b = interned_sound(SoundType::TELEPHONE, tone_bytes(523.0, 800), &s);
        b.id = SoundId(2);
        let mut out = Vec::new();
        let mut ns = 0u64;
        s.decode_window(&a, 0, 10, &mut out, &mut ns);
        s.decode_window(&b, 0, 10, &mut out, &mut ns);
        let snap = s.snapshot();
        assert_eq!(snap.cache_entries, 1, "LRU must have evicted the older entry");
        assert!(snap.cache_bytes <= 2000);
        assert_eq!(metrics.transcode_cache_evictions_total.get(), 1);
        // The survivor is b; touching a again rebuilds (miss), not hits.
        let misses = metrics.transcode_cache_misses_total.get();
        s.decode_window(&a, 0, 10, &mut out, &mut ns);
        assert_eq!(metrics.transcode_cache_misses_total.get(), misses + 1);
    }

    #[test]
    fn hits_accumulate_saved_time() {
        let reg = Registry::new();
        let metrics = ServerMetrics::new(&reg);
        let s = SoundStore::with_budget(&metrics, TRANSCODE_CACHE_BYTES);
        let snd = interned_sound(SoundType::TELEPHONE, tone_bytes(440.0, 8000), &s);
        let mut out = Vec::new();
        let mut ns = 0u64;
        s.decode_window(&snd, 0, 8000, &mut out, &mut ns); // miss: builds
        for i in 0..100u64 {
            out.truncate(0);
            s.decode_window(&snd, i * 80, 8000, &mut out, &mut ns);
        }
        assert_eq!(metrics.transcode_cache_hits_total.get(), 100);
        assert_eq!(metrics.transcode_cache_misses_total.get(), 1);
    }
}
