//! The streaming engine.
//!
//! Advances all audio by one quantum per tick: remote parties and the
//! PSTN, then each active root LOUD's command queue (producing samples
//! from players/synthesizers), then the continuous producers (microphones
//! and telephone receive), the wire graph in topological order, and
//! finally the consumers (speakers, recorders, recognizers, telephone
//! transmit).
//!
//! Two properties the paper demands fall out of the structure:
//!
//! - **Seamless transitions (§6.2).** A queue is given a tick *budget*;
//!   when a durational command finishes mid-tick, its successor starts
//!   immediately and produces the budget's remainder — so back-to-back
//!   plays concatenate inside a single tick's buffer with "not a single
//!   dropped or inserted sample". The end time is computed in device
//!   sample counts, never wall-clock (the §6.2 footnote about clock
//!   skew).
//! - **State restoration (§5.4).** Deactivated LOUDs are simply not
//!   stepped; every operation's position lives in its virtual device, so
//!   reactivation resumes exactly where deactivation paused.

use crate::core::{Core, ResKey};
use crate::plan::{DataPlane, EngineScratch, PlanCache, RoutePlan};
use crate::queue::{CmdState, QNode, RunNode};
use crate::sound::pcm_encoding;
use crate::vdevice::{ActiveOp, ClassState, HwBinding, VDev};
use da_dsp::silence::PauseDetector;
use da_hw::clock::frames_this_tick;
use da_proto::command::{DeviceCommand, RecordTermination};
use da_proto::event::{CallState, Event, QueueStopReason, RecordStopReason};
use da_proto::ids::{LoudId, ResourceId, SoundId, VDeviceId};
use da_proto::types::{DeviceClass, QueueState};

/// Runs one engine tick over the whole core.
pub fn tick(core: &mut Core) {
    // Debug builds panic on any allocation inside the tick that is not
    // inside an `AllocRelax` scope; every relax pairs with an rt-ok
    // justification the static `rtsafe` pass checks (DESIGN.md §16).
    let _rt = crate::rt::ScopedAllocGuard::arm();
    let started = std::time::Instant::now();
    let quantum = core.config.quantum_us;
    let t = core.tick_index;
    let n8 = frames_this_tick(8000, quantum, t);

    // 1. The outside world: scripted remote parties exchange audio.
    {
        // Relax: remote parties are scripted test scaffolding simulating
        // the far end of the line — outside the engine's RT surface.
        let _relax = crate::rt::AllocRelax::scope();
        let mut parties = std::mem::take(&mut core.remote_parties);
        for p in &mut parties {
            p.tick(&mut core.hw.pstn, n8);
        }
        core.remote_parties = parties;
    }

    // 2. Network timers (ring timeout etc.). Relax: expiring timers
    //    queue human-timescale line events (busy, no-answer), not samples.
    crate::rt::relaxed(|| core.hw.pstn.tick(n8 as u64));

    // The data plane (cached plans + scratch buffers) is detached from
    // the core for the tick so its borrows never conflict with core
    // mutations. Nothing inside a tick changes topology, so the plans
    // stay valid for the whole tick.
    let mut plane = std::mem::take(&mut core.plane);
    core.tel.metrics.plan_cache_lookups_total.inc();
    let plan_started = std::time::Instant::now();
    // Relax: plan rebuild is the acknowledged slow path (topology epoch
    // bump only); steady-state ticks take the cached-plan early return.
    {
        let _relax = crate::rt::AllocRelax::scope();
        if plane.plans.ensure_fresh(core) {
            core.stats.plan_rebuilds += 1;
            core.tel.metrics.plan_cache_rebuilds_total.inc();
            core.tel.metrics.plan_build_us.record_duration_us(plan_started.elapsed());
        }
    }
    let DataPlane { plans, scratch } = &mut plane;

    // 3. Telephone line events fan out to the device LOUD and bound
    //    virtual devices.
    fan_out_line_events(core, plans);

    // 4. Command queues of active roots, in stack order.
    for i in 0..plans.active_roots.len() {
        step_queue(core, plans.active_roots[i], n8 as u64, scratch);
    }

    // 5. Continuous producers: microphones and telephone receive.
    produce_continuous(core, quantum, t, plans, scratch);

    // 6. Wires (and intermediate devices) in topological order per tree.
    for i in 0..plans.active_roots.len() {
        if let Some(plan) = plans.routes.get(&plans.active_roots[i]) {
            route_tree(core, plan, quantum, t, scratch);
        }
    }

    // 7. Consumers: speakers, telephone transmit, recorders, recognizers.
    consume(core, quantum, t, plans, scratch);

    core.plane = plane;

    // Drain the per-tick DSP meter accumulated by the routing phases
    // into the leaf-timing histograms.
    let meter = core.plane.scratch.meter.take();
    let m = &core.tel.metrics;
    if meter.convert_ns > 0 {
        m.dsp_convert_ns.record(meter.convert_ns);
    }
    if meter.mix_ns > 0 {
        m.dsp_mix_ns.record(meter.mix_ns);
    }
    if meter.resample_ns > 0 {
        m.dsp_resample_ns.record(meter.resample_ns);
    }

    // 8. Advance time.
    core.device_time += n8 as u64;
    core.tick_index += 1;
    core.stats.ticks += 1;
    let spent = started.elapsed();
    core.stats.busy += spent;
    core.stats.last_tick = spent;
    if spent > core.stats.max_tick {
        core.stats.max_tick = spent;
    }
    core.tel.metrics.engine_ticks_total.inc();
    // Sub-microsecond ticks land in the "≤ 1 us" bucket rather than
    // vanishing into bucket zero.
    core.tel.metrics.engine_tick_us.record((spent.as_micros() as u64).max(1));
    if spent > std::time::Duration::from_micros(quantum) {
        core.tel.metrics.engine_tick_overruns_total.inc();
        if core.tel.journal.enabled(da_telemetry::Level::Warn) {
            // Relax: the deadline is already blown; diagnostics may allocate.
            let _relax = crate::rt::AllocRelax::scope();
            core.tel.journal.event(
                da_telemetry::Level::Warn,
                "engine.tick_overrun",
                // The overrun journal line fires only after the deadline is already blown.
                format!(" tick={t} spent_us={} quantum_us={quantum}", spent.as_micros()), // rt-ok: post-deadline diagnostics
            );
        }
    }
}


/// Appends samples to a port deque (or pooled staging buffer) under an
/// `AllocRelax` scope: these buffers reach steady capacity after warmup,
/// so steady-state extends never touch the allocator — the zero-alloc
/// suite pins that at exactly zero. Growth during warmup or after a
/// topology change is the justified exception.
fn port_extend(buf: &mut std::collections::VecDeque<i16>, samples: &[i16]) {
    let _relax = crate::rt::AllocRelax::scope();
    buf.extend(samples.iter().copied());
}

// ---------------------------------------------------------------------------
// Line events
// ---------------------------------------------------------------------------

// rt-ok(fn): call-progress fan-out runs per line event (human timescale), not per sample
fn fan_out_line_events(core: &mut Core, plans: &PlanCache) {
    use da_hw::pstn::LineEvent;
    // Relax: line events are human-timescale call progress, not samples.
    let _relax = crate::rt::AllocRelax::scope();
    for (slot, &(dev_idx, line)) in plans.line_slots.iter().enumerate() {
        let events = core.hw.pstn.poll_events(line);
        if events.is_empty() {
            continue;
        }
        let bound = &plans.line_bound[slot];
        for ev in events {
            let (state, caller_id) = match &ev {
                LineEvent::IncomingRing { caller_id } => (CallState::Ringing, caller_id.clone()),
                LineEvent::Connected => (CallState::Connected, None),
                LineEvent::Busy => (CallState::Busy, None),
                LineEvent::NoAnswer => (CallState::NoAnswer, None),
                LineEvent::RemoteHangup => (CallState::HungUp, None),
            };
            // Device-LOUD monitors (paper §5.9 footnote: an unmapped
            // answering machine watches the device LOUD telephone).
            core.send_event(
                ResKey(3, dev_idx as u32),
                Event::CallProgress {
                    device: ResourceId::Device(da_proto::ids::DeviceId(dev_idx as u32)),
                    state,
                    caller_id: caller_id.clone(),
                },
            );
            for &vid in bound {
                core.send_event(
                    ResKey(1, vid),
                    Event::CallProgress {
                        device: ResourceId::VDevice(VDeviceId(vid)),
                        state,
                        caller_id: caller_id.clone(),
                    },
                );
            }
            if matches!(ev, LineEvent::RemoteHangup) {
                // Flag recorders in the same trees that terminate on
                // hangup.
                let roots: Vec<u32> =
                    bound.iter().filter_map(|v| core.vdevs.get(v).map(|v| v.root)).collect();
                for (_, v) in core.vdevs.iter_mut() {
                    if roots.contains(&v.root) {
                        if let Some(ActiveOp::Record { term, hangup_seen, .. }) = &mut v.op {
                            if matches!(term, RecordTermination::OnHangup) {
                                *hangup_seen = true;
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Queue execution
// ---------------------------------------------------------------------------

fn step_queue(core: &mut Core, root: u32, budget_8k: u64, scratch: &mut EngineScratch) {
    let state = match core.queue_mut(root) {
        Some(q) => q.state(),
        None => return,
    };
    if state != QueueState::Started {
        return;
    }
    if let Some(q) = core.queue_mut(root) {
        q.relative_frames += budget_8k;
    }
    let mut budget = budget_8k;
    loop { // rt-ok: bounded by the tick budget; every iteration spends budget or breaks
        // Ensure something is running.
        let need_start = core
            .queue_mut(root)
            .map(|q| q.running.is_none() && !q.pending.is_empty())
            .unwrap_or(false);
        if need_start {
            let node = core.queue_mut(root).and_then(|q| q.pending.pop_front());
            if let Some(node) = node {
                let run = start_node(core, root, node, budget);
                if let Some(q) = core.queue_mut(root) {
                    q.running = Some(run);
                }
            }
        }
        let Some(q) = core.queue_mut(root) else { return };
        let Some(mut run) = q.running.take() else { return };
        let consumed = step_node(core, root, &mut run, budget, scratch);
        let done = run.done();
        let Some(q) = core.queue_mut(root) else { return };
        if !done {
            q.running = Some(run);
        }
        // A command failure (e.g. Dial hit a busy line) stops the queue.
        if core.queue_failures.contains(&root) {
            core.queue_failures.retain(|&r| r != root);
            stop_queue(core, root, QueueStopReason::Error);
            return;
        }
        if done {
            budget = budget.saturating_sub(consumed);
            if budget == 0 {
                return;
            }
            // Loop: start the successor within this tick (seamless).
            let Some(q) = core.queue_mut(root) else { return };
            if q.pending.is_empty() {
                return;
            }
        } else {
            return;
        }
    }
}

/// Starts a parsed node, returning its run state. `budget` is the 8 kHz
/// frame budget remaining in this tick (durational commands may begin
/// producing immediately).
// rt-ok(fn): node start allocates run state once per queue node, amortized over the op
fn start_node(core: &mut Core, root: u32, node: QNode, budget: u64) -> RunNode {
    // Relax: run state is built once per queue node, an op boundary.
    let _relax = crate::rt::AllocRelax::scope();
    match node {
        QNode::Cmd { vdev, cmd, index } => {
            core.tel.recorder.engine_stage(root, index, core.tick_index);
            let mut run = RunNode::Cmd { vdev, cmd, index, state: CmdState::Waiting };
            try_install(core, root, &mut run, budget);
            run
        }
        QNode::Par(children) => {
            let mut runs = Vec::with_capacity(children.len());
            for c in children {
                runs.push(start_node(core, root, c, budget));
            }
            RunNode::Par { children: runs }
        }
        QNode::DelaySeg { ms, body } => RunNode::Delay {
            remaining: ms as u64 * 8,
            body: body.into(),
            current: None,
        },
    }
}

/// Attempts to install a waiting command on its device.
fn try_install(core: &mut Core, root: u32, run: &mut RunNode, _budget: u64) {
    // Relax: command installation is an op boundary (one payload copy).
    let _relax = crate::rt::AllocRelax::scope();
    let RunNode::Cmd { vdev, cmd, index, state } = run else { return };
    if *state != CmdState::Waiting {
        return;
    }
    let vid = vdev.0;
    let Some(v) = core.vdevs.get(&vid) else {
        // Device vanished: treat as done.
        *state = CmdState::Done;
        return;
    };
    if v.root != root {
        *state = CmdState::Done;
        return;
    }
    if cmd.instantaneous() {
        let c = cmd.clone(); // rt-ok: one command-payload copy at install time, an op boundary
        apply_instant(core, vid, &c);
        *state = CmdState::Done;
        emit_command_done(core, root, vid, *index);
        return;
    }
    // Durational: the device must be free.
    if core.vdevs.get(&vid).map(|v| v.op.is_some()) == Some(true) {
        return; // stay Waiting
    }
    let op = make_op(core, vid, cmd);
    match op {
        Ok(Some(op)) => {
            if let Some(v) = core.vdevs.get_mut(&vid) {
                v.op = Some(op);
                v.abort_op = false;
            }
            *state = CmdState::Running;
        }
        Ok(None) => {
            // Completed instantly.
            *state = CmdState::Done;
            emit_command_done(core, root, vid, *index);
        }
        Err(()) => {
            // Invalid command (bad sound id etc.): stop the queue.
            *state = CmdState::Done;
            stop_queue(core, root, QueueStopReason::Error);
        }
    }
}

/// Builds the active operation for a durational command.
// rt-ok(fn): op construction runs once at command start, never in the steady-state loop
fn make_op(core: &mut Core, vid: u32, cmd: &DeviceCommand) -> Result<Option<ActiveOp>, ()> {
    let Some(v) = core.vdevs.get(&vid) else { return Err(()) };
    match cmd {
        DeviceCommand::Play(sound) => {
            let Some(s) = core.sounds.get(&sound.0) else { return Err(()) };
            // The player emits at the sound's native rate; wires adapt
            // toward the consuming device (paper §5.1: players convert
            // sound data to the output port type).
            let rate = s.stype.sample_rate;
            let sid = sound.0;
            if let Some(v) = core.vdevs.get_mut(&vid) {
                v.rate = rate;
            }
            Ok(Some(ActiveOp::Play {
                sound: sid,
                pos: 0,
                started: false,
                underrun: 0,
                last_sync: 0,
            }))
        }
        DeviceCommand::Record(sound, term) => {
            let Some(s) = core.sounds.get_mut(&sound.0) else { return Err(()) };
            s.reset_for_recording();
            let rate = s.stype.sample_rate;
            let pause = match term {
                RecordTermination::OnPause { threshold, min_silence_frames } => {
                    PauseDetector::new(*threshold, *min_silence_frames)
                }
                _ => PauseDetector::new(0, u64::MAX),
            };
            let sid = sound.0;
            let term = *term;
            // Device controls select the optional recorder behaviours the
            // paper lists as attributes (§5.1): AGC and pause compression.
            let control_on = |v: &VDev, name: &str| {
                core.atoms
                    .lookup(name)
                    .and_then(|a| v.controls.get(&a))
                    .map(|val| !val.is_empty() && val[0] != 0)
                    .unwrap_or(false)
            };
            let (agc, compress_pauses) = {
                let v = core.vdevs.get(&vid).expect("checked");
                let agc = if control_on(v, "AGC") {
                    Some(Box::new(da_dsp::agc::Agc::new(rate, 16_000)))
                } else {
                    None
                };
                (agc, control_on(v, "PAUSE_COMPRESSION"))
            };
            if let Some(v) = core.vdevs.get_mut(&vid) {
                v.rate = rate;
            }
            Ok(Some(ActiveOp::Record {
                sound: sid,
                frames: 0,
                term,
                pause,
                skip: 0,
                started: false,
                hangup_seen: false,
                last_sync: 0,
                agc,
                compress_pauses,
            }))
        }
        DeviceCommand::Dial(number) => {
            if v.class != DeviceClass::Telephone {
                return Err(());
            }
            Ok(Some(ActiveOp::Dial { number: number.clone(), issued: false }))
        }
        DeviceCommand::Answer => {
            if v.class != DeviceClass::Telephone {
                return Err(());
            }
            Ok(Some(ActiveOp::Answer))
        }
        DeviceCommand::SpeakText(text) => {
            let rendered = match &v.state {
                ClassState::Synth(s) => s.speak(text),
                _ => return Err(()),
            };
            Ok(Some(ActiveOp::Render { buf: rendered, pos: 0 }))
        }
        DeviceCommand::PlayNote(n) => {
            let rendered = match &v.state {
                ClassState::Music(m) => m.note(n.note, n.velocity, n.duration_ms),
                _ => return Err(()),
            };
            Ok(Some(ActiveOp::Render { buf: rendered, pos: 0 }))
        }
        DeviceCommand::SendDtmf(digits) => {
            if v.class != DeviceClass::Telephone {
                return Err(());
            }
            let buf = da_dsp::dtmf::dial_string(v.rate, digits, 12000);
            Ok(Some(ActiveOp::SendDtmf { buf, pos: 0 }))
        }
        _ => {
            // Non-durational commands never reach here.
            Ok(None)
        }
    }
}

/// Steps a running node within the tick budget (8 kHz frames); returns
/// frames of budget consumed.
fn step_node(
    core: &mut Core,
    root: u32,
    run: &mut RunNode,
    budget: u64,
    scratch: &mut EngineScratch,
) -> u64 {
    match run {
        RunNode::Cmd { .. } => {
            let waiting = matches!(run, RunNode::Cmd { state: CmdState::Waiting, .. });
            if waiting {
                try_install(core, root, run, budget);
            }
            let RunNode::Cmd { vdev, index, state, .. } = run else { unreachable!() };
            if *state != CmdState::Running {
                return 0;
            }
            let vid = vdev.0;
            let idx = *index;
            let (consumed, done) = step_device_op(core, vid, budget, scratch);
            if done {
                *state = CmdState::Done;
                emit_command_done(core, root, vid, idx);
            }
            consumed
        }
        RunNode::Par { children } => {
            let mut max_consumed = 0;
            for c in children.iter_mut() {
                if !c.done() {
                    let used = step_node(core, root, c, budget, scratch);
                    max_consumed = max_consumed.max(used);
                }
            }
            max_consumed
        }
        RunNode::Delay { remaining, body, current } => {
            let mut used = 0;
            if *remaining > 0 {
                let wait = (*remaining).min(budget);
                *remaining -= wait;
                used += wait;
                if *remaining > 0 {
                    return used;
                }
            }
            // Delay elapsed: run the body sequentially with the leftover
            // budget.
            let mut left = budget - used;
            loop { // rt-ok: bounded by the leftover tick budget, spent or broken each pass
                if current.is_none() {
                    match body.pop_front() {
                        Some(node) => {
                            {
                                // Relax: op boundary, one box per node start.
                                let _relax = crate::rt::AllocRelax::scope();
                                *current = Some(Box::new(start_node(core, root, node, left))) // rt-ok: one box per delay-body node start, an op boundary
                            }
                        }
                        None => break,
                    }
                }
                let cur = current.as_mut().expect("just set");
                let step_used = step_node(core, root, cur, left, scratch);
                used += step_used;
                left = left.saturating_sub(step_used);
                if cur.done() {
                    *current = None;
                    if left == 0 {
                        break;
                    }
                } else {
                    break;
                }
            }
            used
        }
    }
}

/// A lightweight classification of the op on a device, snapshotted so the
/// mutable borrow of the device does not overlap other core accesses.
enum OpSnap {
    Play { sound: u32, pos: u64, started: bool },
    Render,
    Record { started: bool, sound: u32 },
    Dial { issued: bool },
    Answer,
    SendDtmf,
}

/// Steps the active operation on one device. Returns (budget consumed in
/// 8 kHz frames, completed). Queue-stopping failures (a dial that got
/// busy) are pushed onto `core.queue_failures`.
fn step_device_op(
    core: &mut Core,
    vid: u32,
    budget: u64,
    scratch: &mut EngineScratch,
) -> (u64, bool) {
    // Snapshot scalar device state first; all borrows are sequential.
    let (abort, paused, rate, gain, sync_every, binding, root) = {
        let Some(v) = core.vdevs.get(&vid) else { return (0, true) };
        (
            v.abort_op,
            v.paused,
            v.rate.max(1) as u64,
            v.gain_milli,
            v.sync_every(),
            v.binding,
            v.root,
        )
    };
    if abort {
        let op = {
            let v = core.vdevs.get_mut(&vid).expect("checked");
            v.abort_op = false;
            v.op.take()
        };
        finish_aborted_op(core, vid, op);
        return (0, true);
    }
    if paused {
        // Paused devices hold position but consume real time.
        return (budget, false);
    }
    let demand = budget * rate / 8000;
    let snap = {
        let Some(v) = core.vdevs.get(&vid) else { return (0, true) };
        match &v.op {
            None => return (0, true),
            Some(ActiveOp::Play { sound, pos, started, .. }) => {
                OpSnap::Play { sound: *sound, pos: *pos, started: *started }
            }
            Some(ActiveOp::Render { .. }) => OpSnap::Render,
            Some(ActiveOp::Record { started, sound, .. }) => {
                OpSnap::Record { started: *started, sound: *sound }
            }
            Some(ActiveOp::Dial { issued, .. }) => OpSnap::Dial { issued: *issued },
            Some(ActiveOp::Answer) => OpSnap::Answer,
            Some(ActiveOp::SendDtmf { .. }) => OpSnap::SendDtmf,
        }
    };
    match snap {
        OpSnap::Play { sound: sid, pos: from, started: was_started } => {
            let Some(snd) = core.sounds.get(&sid) else {
                if let Some(v) = core.vdevs.get_mut(&vid) {
                    v.op = None;
                }
                return (0, true);
            };
            let avail = snd.len_frames();
            let complete = snd.complete;
            let want = demand.min(avail.saturating_sub(from));
            let mut samples = scratch.take_i16();
            // Decode through the shared store: complete sounds hit the
            // transcode cache (one full decode ever, then slice copies —
            // DESIGN.md §17); streaming sounds fall back to a direct
            // windowed decode. Only real conversion work (the fallback
            // decode or the one-time cache build) is metered — a cache
            // hit is a copy, not a transcode.
            core.store.decode_window(snd, from, want, &mut samples, &mut scratch.meter.convert_ns);
            let got = samples.len() as u64;
            da_dsp::gain::apply(&mut samples, gain);
            let mut missing = 0u64;
            let mut finished = false;
            // Budget consumed in real time; position only advances over
            // data actually played.
            let mut budget_frames = got;
            if got < demand {
                if complete {
                    finished = true;
                } else {
                    // Streaming underrun: substitute silence for the rest
                    // of the tick and *wait* — the stream position holds
                    // so late data still plays (paper §6.2: the client
                    // trades buffering against latency; the server keeps
                    // the clock honest and reports the starvation).
                    missing = demand - got;
                    // Pooled scratch; capacity amortizes over underruns.
                    crate::rt::relaxed(|| samples.extend(std::iter::repeat_n(0, missing as usize)));
                    budget_frames = demand;
                }
            }
            let new_pos = from + got;
            let mut sync_pos = None;
            {
                let v = core.vdevs.get_mut(&vid).expect("checked");
                port_extend(&mut v.src_bufs[0], &samples);
                if let Some(ActiveOp::Play { pos, started, underrun, last_sync, .. }) =
                    v.op.as_mut()
                {
                    *pos = new_pos;
                    *started = true;
                    *underrun += missing;
                    if new_pos.saturating_sub(*last_sync) >= sync_every {
                        *last_sync = new_pos;
                        sync_pos = Some(new_pos);
                    }
                }
                if finished {
                    v.op = None;
                }
            }
            scratch.put_i16(samples);
            if !was_started {
                core.send_event(
                    ResKey(1, vid),
                    Event::PlayStarted { vdev: VDeviceId(vid), sound: SoundId(sid) },
                );
            }
            if missing > 0 {
                core.tel.metrics.engine_underrun_frames_total.add(missing);
                core.send_event(
                    ResKey(1, vid),
                    Event::SoundUnderrun {
                        vdev: VDeviceId(vid),
                        sound: SoundId(sid),
                        missing_frames: missing,
                    },
                );
            }
            if let Some(p) = sync_pos {
                let dt = core.device_time;
                core.send_event(
                    ResKey(1, vid),
                    Event::SyncMark {
                        vdev: VDeviceId(vid),
                        sound: Some(SoundId(sid)),
                        position: p,
                        device_time: dt,
                    },
                );
            }
            (budget_frames * 8000 / rate, finished)
        }
        OpSnap::Render => {
            let mut chunk = scratch.take_i16();
            let finished = {
                let v = core.vdevs.get_mut(&vid).expect("checked");
                let Some(ActiveOp::Render { buf, pos }) = v.op.as_mut() else {
                    scratch.put_i16(chunk);
                    return (0, true);
                };
                let want = (demand as usize).min(buf.len() - *pos);
                // Pooled scratch reaches steady capacity after warmup.
                crate::rt::relaxed(|| chunk.extend_from_slice(&buf[*pos..*pos + want]));
                *pos += want;
                *pos >= buf.len()
            };
            let want = chunk.len();
            da_dsp::gain::apply(&mut chunk, gain);
            {
                let v = core.vdevs.get_mut(&vid).expect("checked");
                port_extend(&mut v.src_bufs[0], &chunk);
                if finished {
                    v.op = None;
                }
            }
            scratch.put_i16(chunk);
            (want as u64 * 8000 / rate, finished)
        }
        OpSnap::Record { started, sound: sid } => {
            if !started {
                // Frames of this tick that elapsed before we started:
                // skip them so the recording begins exactly at the seam.
                let n8 = frames_this_tick(8000, core.config.quantum_us, core.tick_index) as u64;
                let skip_frames = (n8 - budget.min(n8)) * rate / 8000;
                {
                    let v = core.vdevs.get_mut(&vid).expect("checked");
                    if let Some(ActiveOp::Record { started, skip, .. }) = v.op.as_mut() {
                        *started = true;
                        *skip = skip_frames;
                    }
                }
                core.send_event(
                    ResKey(1, vid),
                    Event::RecordStarted { vdev: VDeviceId(vid), sound: SoundId(sid) },
                );
                return (budget, false);
            }
            let done = core.vdevs.get(&vid).map(record_should_stop).unwrap_or(true);
            if done {
                let op = core.vdevs.get_mut(&vid).and_then(|v| v.op.take());
                finish_record(core, vid, op, RecordStopReason::Manual);
                (0, true)
            } else {
                (budget, false)
            }
        }
        OpSnap::Dial { issued } => {
            let line = match binding {
                Some(HwBinding::Line(l)) => l,
                _ => {
                    if let Some(v) = core.vdevs.get_mut(&vid) {
                        v.op = None;
                    }
                    return (0, true);
                }
            };
            if !issued {
                // Relax: dialing starts a call — an op boundary; the PSTN
                // copies the number and queues line events once per dial.
                let _relax = crate::rt::AllocRelax::scope();
                // Disjoint borrows: the number stays on the device while
                // the line dials it (no clone).
                let Core { vdevs, hw, .. } = core;
                if let Some(ActiveOp::Dial { number, issued }) =
                    vdevs.get_mut(&vid).and_then(|v| v.op.as_mut())
                {
                    hw.pstn.off_hook(line);
                    hw.pstn.dial(line, number);
                    *issued = true;
                }
                core.send_event(
                    ResKey(1, vid),
                    Event::CallProgress {
                        device: ResourceId::VDevice(VDeviceId(vid)),
                        state: CallState::Dialing,
                        caller_id: None,
                    },
                );
                return (0, false);
            }
            match core.hw.pstn.state(line) {
                da_hw::pstn::LineState::Connected => {
                    if let Some(v) = core.vdevs.get_mut(&vid) {
                        v.op = None;
                    }
                    (0, true)
                }
                da_hw::pstn::LineState::HearingBusy => {
                    // Busy or no answer: the command fails and the queue
                    // stops with an error.
                    if let Some(v) = core.vdevs.get_mut(&vid) {
                        v.op = None;
                    }
                    {
                        // Relax: device-op failure is an error path.
                        let _relax = crate::rt::AllocRelax::scope();
                        core.queue_failures.push(root); // rt-ok: error path; capacity amortizes over rare failures
                    }
                    (0, true)
                }
                _ => (budget, false),
            }
        }
        OpSnap::Answer => {
            let line = match binding {
                Some(HwBinding::Line(l)) => l,
                _ => {
                    if let Some(v) = core.vdevs.get_mut(&vid) {
                        v.op = None;
                    }
                    return (0, true);
                }
            };
            match core.hw.pstn.state(line) {
                da_hw::pstn::LineState::Ringing => {
                    // Relax: answering a call is an op boundary; the
                    // PSTN queues one Connected event per answer.
                    crate::rt::relaxed(|| core.hw.pstn.answer(line));
                    if let Some(v) = core.vdevs.get_mut(&vid) {
                        v.op = None;
                    }
                    core.send_event(
                        ResKey(1, vid),
                        Event::CallProgress {
                            device: ResourceId::VDevice(VDeviceId(vid)),
                            state: CallState::Connected,
                            caller_id: None,
                        },
                    );
                    (0, true)
                }
                da_hw::pstn::LineState::Connected => {
                    if let Some(v) = core.vdevs.get_mut(&vid) {
                        v.op = None;
                    }
                    (0, true)
                }
                _ => (budget, false),
            }
        }
        OpSnap::SendDtmf => {
            // Tones are overlaid onto the transmit path in the consume
            // phase; here we only track duration and handle the no-call
            // case (advance so the command cannot wedge the queue).
            let line_connected = match binding {
                Some(HwBinding::Line(l)) => {
                    core.hw.pstn.state(l) == da_hw::pstn::LineState::Connected
                }
                _ => false,
            };
            let (want, finished) = {
                let v = core.vdevs.get_mut(&vid).expect("checked");
                let Some(ActiveOp::SendDtmf { buf, pos }) = v.op.as_mut() else {
                    return (0, true);
                };
                let want = (demand as usize).min(buf.len() - *pos);
                if !line_connected {
                    *pos += want;
                }
                let finished = *pos >= buf.len();
                if finished {
                    v.op = None;
                }
                (want, finished)
            };
            (want as u64 * 8000 / rate, finished)
        }
    }
}

fn record_should_stop(v: &VDev) -> bool {
    match &v.op {
        Some(ActiveOp::Record { term, frames, pause, hangup_seen, .. }) => match term {
            RecordTermination::Manual => false,
            RecordTermination::MaxFrames(n) => frames >= n,
            RecordTermination::OnPause { .. } => pause.triggered(),
            RecordTermination::OnHangup => *hangup_seen,
        },
        _ => false,
    }
}

fn finish_record(core: &mut Core, vid: u32, op: Option<ActiveOp>, fallback: RecordStopReason) {
    // Relax: record finalization runs once per completed recording.
    let _relax = crate::rt::AllocRelax::scope();
    if let Some(ActiveOp::Record {
        sound, frames, term, pause, hangup_seen, compress_pauses, ..
    }) = op
    {
        let mut frames = frames;
        if let Some(s) = core.sounds.get_mut(&sound) {
            if compress_pauses && !s.data.is_empty() {
                // Paper §5.1: the recorder "can compress the recorded
                // audio by removing pauses". Keep 250 ms of each pause.
                let stype = s.stype;
                let pcm = s.decode_frames(0, s.len_frames());
                let max_pause = (stype.sample_rate / 4) as usize;
                let squeezed = da_dsp::silence::compress_pauses(&pcm, 300, max_pause);
                frames = squeezed.len() as u64;
                s.data = da_dsp::convert::encode_from_pcm16(
                    crate::sound::pcm_encoding(stype.encoding),
                    &squeezed,
                );
            }
            s.complete = true;
        }
        let reason = match term {
            RecordTermination::MaxFrames(n) if frames >= n => RecordStopReason::MaxFrames,
            RecordTermination::OnPause { .. } if pause.triggered() => {
                RecordStopReason::PauseDetected
            }
            RecordTermination::OnHangup if hangup_seen => RecordStopReason::Hangup,
            _ => fallback,
        };
        core.send_event(
            ResKey(1, vid),
            Event::RecordStopped {
                vdev: VDeviceId(vid),
                sound: SoundId(sound),
                reason,
                frames,
            },
        );
    }
}

fn finish_aborted_op(core: &mut Core, vid: u32, op: Option<ActiveOp>) {
    finish_record(core, vid, op, RecordStopReason::Manual);
}

fn emit_command_done(core: &mut Core, root: u32, vid: u32, index: u32) {
    // Stamp before the enqueue so the drain stamp can never precede it.
    core.tel.recorder.event_outbound(root, index);
    let at = core.device_time;
    core.send_event(
        ResKey(0, root),
        Event::CommandDone {
            loud: LoudId(root),
            vdev: VDeviceId(vid),
            index,
            at_frame: at,
        },
    );
}

/// Stops a queue with a reason, aborting running device operations.
pub fn stop_queue(core: &mut Core, root: u32, reason: QueueStopReason) {
    // Relax: queue stop is an op boundary (StopQueue or error path).
    let _relax = crate::rt::AllocRelax::scope();
    let running = core.queue_mut(root).and_then(|q| q.running.take());
    if let Some(run) = running {
        let mut devices = Vec::new();
        run.running_devices(&mut devices);
        for d in devices {
            let op = core.vdevs.get_mut(&d.0).and_then(|v| {
                v.clear_ports();
                v.op.take()
            });
            finish_aborted_op(core, d.0, op);
        }
    }
    if let Some(q) = core.queue_mut(root) {
        // Stopping is the one transition legal from every state; the
        // `QueueStopped` event is emitted even when already stopped.
        q.typed().stop();
    }
    core.send_event(ResKey(0, root), Event::QueueStopped { loud: LoudId(root), reason });
}

// ---------------------------------------------------------------------------
// Continuous producers
// ---------------------------------------------------------------------------

fn produce_continuous(
    core: &mut Core,
    quantum: u64,
    tick: u64,
    plans: &PlanCache,
    scratch: &mut EngineScratch,
) {
    for i in 0..plans.active_bound.len() {
        let vid = plans.active_bound[i];
        let Some(v) = core.vdevs.get(&vid) else { continue };
        if v.paused {
            continue;
        }
        match (v.class, v.binding) {
            (DeviceClass::Input, Some(HwBinding::Microphone(m))) => {
                let rate = v.rate;
                let gain = v.gain_milli;
                let n = frames_this_tick(rate, quantum, tick);
                let mut samples = scratch.take_i16();
                // Fills a pooled buffer; capacity amortizes after warmup.
                crate::rt::relaxed(|| core.hw.microphones[m].pull_into(n, &mut samples));
                da_dsp::gain::apply(&mut samples, gain);
                if let Some(v) = core.vdevs.get_mut(&vid) {
                    if !v.src_bufs.is_empty() {
                        port_extend(&mut v.src_bufs[0], &samples);
                    }
                }
                scratch.put_i16(samples);
            }
            (DeviceClass::Telephone, Some(HwBinding::Line(l))) => {
                let n = frames_this_tick(da_hw::pstn::LINE_RATE, quantum, tick);
                let mut samples = scratch.take_i16();
                // Fills a pooled buffer; capacity amortizes after warmup.
                crate::rt::relaxed(|| core.hw.pstn.read_rx_into(l, n, &mut samples));
                // In-band DTMF detection on received audio.
                let mut digits = Vec::new();
                if let Some(v) = core.vdevs.get_mut(&vid) {
                    if let ClassState::Telephone(t) = &mut v.state {
                        digits = {
                            // Relax: digits materialize on keypresses only.
                            let _relax = crate::rt::AllocRelax::scope();
                            t.dtmf.push(&samples) // rt-ok: detector is buffer-reusing; returns digits only on a keypress
                        };
                    }
                    if !v.src_bufs.is_empty() {
                        port_extend(&mut v.src_bufs[0], &samples);
                    }
                }
                scratch.put_i16(samples);
                for d in digits {
                    core.send_event(
                        ResKey(1, vid),
                        Event::DtmfReceived {
                            device: ResourceId::VDevice(VDeviceId(vid)),
                            digit: d,
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Wire routing
// ---------------------------------------------------------------------------

/// Routes one tree along its cached plan: intermediate devices process
/// sinks to sources in topological order, then each wired source port is
/// drained once and fanned out to its wires in stable (wire-id) order.
fn route_tree(
    core: &mut Core,
    plan: &RoutePlan,
    quantum: u64,
    tick: u64,
    scratch: &mut EngineScratch,
) {
    for dev in &plan.order {
        let vid = dev.vid;
        // Intermediate devices transform sinks to sources first.
        process_intermediate(core, vid, quantum, tick, scratch);
        let src_rate = core.vdevs.get(&vid).map(|v| v.rate).unwrap_or(8000);
        for pp in &dev.ports {
            let mut samples = scratch.take_i16();
            match core.vdevs.get_mut(&vid) {
                Some(v) if (pp.port as usize) < v.src_bufs.len() => {
                    let buf = &mut v.src_bufs[pp.port as usize];
                    let (a, b) = buf.as_slices();
                    // Pooled scratch; capacity amortizes after warmup.
                    crate::rt::relaxed(|| {
                        samples.extend_from_slice(a);
                        samples.extend_from_slice(b);
                    });
                    buf.clear();
                }
                _ => {
                    scratch.put_i16(samples);
                    continue;
                }
            }
            for pw in &pp.wires {
                let dst_rate = core.vdevs.get(&pw.dst).map(|v| v.rate).unwrap_or(8000);
                // Same-rate wires skip the staging copy entirely; a rate
                // change drops any stale resampler, exactly as
                // `Wire::transfer` would.
                let mut staged = if src_rate == dst_rate {
                    None
                } else {
                    Some(scratch.take_i16())
                };
                match core.wires.get_mut(&pw.wire) {
                    Some(w) => match &mut staged {
                        None => w.resampler = None,
                        Some(out) => da_dsp::meter::DspMeter::timed(
                            &mut scratch.meter.resample_ns,
                            // Resamples into a pooled buffer; capacity
                            // amortizes after warmup (first transfer also
                            // boxes the wire's lazy resampler state).
                            || {
                                crate::rt::relaxed(|| {
                                    w.transfer_into(&samples, src_rate, dst_rate, out)
                                })
                            },
                        ),
                    },
                    None => {
                        if let Some(out) = staged {
                            scratch.put_i16(out);
                        }
                        continue;
                    }
                }
                if let Some(v) = core.vdevs.get_mut(&pw.dst) {
                    if (pw.dst_port as usize) < v.sink_bufs.len() {
                        let sink = &mut v.sink_bufs[pw.dst_port as usize];
                        match &staged {
                            None => port_extend(sink, &samples),
                            Some(out) => port_extend(sink, out),
                        }
                    }
                }
                if let Some(out) = staged {
                    scratch.put_i16(out);
                }
            }
            scratch.put_i16(samples);
        }
    }
}

/// Adds up to `demand` samples from a sink buffer into `acc`, scaled by
/// `pct` percent, using the deque's slices directly (no per-sample
/// pops). Returns how many samples were read.
fn accumulate_scaled(
    buf: &std::collections::VecDeque<i16>,
    demand: usize,
    pct: i32,
    acc: &mut [i32],
) -> usize {
    let take = buf.len().min(demand);
    let (a, b) = buf.as_slices();
    let from_a = take.min(a.len());
    for (slot, &s) in acc.iter_mut().zip(a[..from_a].iter()) {
        *slot += s as i32 * pct / 100;
    }
    for (slot, &s) in acc[from_a..].iter_mut().zip(b[..take - from_a].iter()) {
        *slot += s as i32 * pct / 100;
    }
    take
}

fn process_intermediate(
    core: &mut Core,
    vid: u32,
    quantum: u64,
    tick: u64,
    scratch: &mut EngineScratch,
) {
    let Some(v) = core.vdevs.get_mut(&vid) else { return };
    if v.paused {
        return;
    }
    let demand = frames_this_tick(v.rate, quantum, tick);
    // Destructure the device so the class state, port buffers and gain
    // borrow disjointly: no clones of mixer gains or crossbar routes.
    let VDev { state, sink_bufs, src_bufs, gain_milli, .. } = v;
    match state {
        ClassState::Mixer { gains } => {
            let mut mix = scratch.take_i32();
            // Pooled accumulator; capacity amortizes after warmup.
            crate::rt::relaxed(|| mix.resize(demand, 0));
            for (port, pct) in gains.iter().enumerate() {
                if port >= sink_bufs.len() {
                    break;
                }
                let took = accumulate_scaled(&sink_bufs[port], demand, *pct as i32, &mut mix);
                sink_bufs[port].drain(..took);
            }
            let mut out = scratch.take_i16();
            // Pooled staging; capacity amortizes after warmup.
            crate::rt::relaxed(|| {
                out.extend(mix.iter().map(|&s| s.clamp(i16::MIN as i32, i16::MAX as i32) as i16))
            });
            da_dsp::gain::apply(&mut out, *gain_milli);
            if !src_bufs.is_empty() {
                port_extend(&mut src_bufs[0], &out);
            }
            scratch.put_i16(out);
            scratch.put_i32(mix);
        }
        ClassState::Crossbar { routes } => {
            // Several routes may tap one input, so inputs are read first
            // and drained only after every output is built. One pooled
            // accumulator serves all outputs in turn.
            let n_sinks = sink_bufs.len();
            let mut acc = scratch.take_i32();
            let mut out = scratch.take_i16();
            for (port, src) in src_bufs.iter_mut().enumerate() {
                acc.clear();
                // Pooled accumulator; capacity amortizes after warmup.
                crate::rt::relaxed(|| acc.resize(demand, 0));
                for &(i, o) in routes.iter() {
                    if o as usize != port || i as usize >= n_sinks {
                        continue;
                    }
                    accumulate_scaled(&sink_bufs[i as usize], demand, 100, &mut acc);
                }
                out.clear();
                // Pooled staging; capacity amortizes after warmup.
                crate::rt::relaxed(|| {
                    out.extend(acc.iter().map(|&s| s.clamp(i16::MIN as i32, i16::MAX as i32) as i16))
                });
                port_extend(src, &out);
            }
            for buf in sink_bufs.iter_mut() {
                let take = buf.len().min(demand);
                buf.drain(..take);
            }
            scratch.put_i16(out);
            scratch.put_i32(acc);
        }
        ClassState::Dsp { effect } => {
            // The extension point for new signal-processing algorithms
            // (paper §5.1 leaves DSP commands unspecified; the EFFECT
            // device control selects behaviour).
            let take = sink_bufs.first().map(|b| b.len()).unwrap_or(0);
            if take > 0 && !src_bufs.is_empty() {
                let mut data = scratch.take_i16();
                let buf = &mut sink_bufs[0];
                let (a, b) = buf.as_slices();
                // Pooled scratch; capacity amortizes after warmup.
                crate::rt::relaxed(|| {
                    data.extend_from_slice(a);
                    data.extend_from_slice(b);
                });
                buf.clear();
                match effect {
                    crate::vdevice::DspEffect::PassThrough => {}
                    crate::vdevice::DspEffect::Echo(e) => e.process(&mut data),
                    crate::vdevice::DspEffect::LowPass(lp) => lp.process(&mut data),
                }
                da_dsp::gain::apply(&mut data, *gain_milli);
                port_extend(&mut src_bufs[0], &data);
                scratch.put_i16(data);
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Consumers
// ---------------------------------------------------------------------------

fn consume(core: &mut Core, quantum: u64, tick: u64, plans: &PlanCache, scratch: &mut EngineScratch) {
    // Speaker accumulators persist in the scratch pool across ticks so
    // their capacity is paid once.
    let n_speakers = core.hw.speakers.len();
    // Speaker staging buffers reach steady capacity after warmup.
    {
        let _relax = crate::rt::AllocRelax::scope();
        scratch.speaker_acc.resize_with(n_speakers, Vec::new);
        scratch.speaker_fed.clear();
        scratch.speaker_fed.resize(n_speakers, false);
        for s in 0..n_speakers {
            let rate = core.hw.speakers[s].rate();
            let ch = core.hw.speakers[s].channels().max(1) as usize;
            let frames = frames_this_tick(rate, quantum, tick);
            scratch.speaker_acc[s].clear();
            scratch.speaker_acc[s].resize(frames * ch, 0);
        }
    }

    for i in 0..plans.active_bound.len() {
        let vid = plans.active_bound[i];
        let Some(v) = core.vdevs.get(&vid) else { continue };
        if v.paused {
            continue;
        }
        match (v.class, v.binding) {
            (DeviceClass::Output, Some(HwBinding::Speaker(s))) => {
                let rate = v.rate;
                let ch = core.hw.speakers[s].channels().max(1) as usize;
                let frames = frames_this_tick(rate, quantum, tick);
                let gain = v.gain_milli;
                let Some(v) = core.vdevs.get_mut(&vid) else { continue };
                let had = v.sink_bufs[0].len();
                if had == 0 {
                    continue;
                }
                let take = had.min(frames);
                let mut data = scratch.take_i16();
                let (a, b) = v.sink_bufs[0].as_slices();
                let from_a = take.min(a.len());
                // Pooled scratch; capacity amortizes after warmup.
                crate::rt::relaxed(|| {
                    data.extend_from_slice(&a[..from_a]);
                    data.extend_from_slice(&b[..take - from_a]);
                });
                v.sink_bufs[0].drain(..take);
                da_dsp::gain::apply(&mut data, gain);
                scratch.speaker_fed[s] = true;
                // Mono sources fan out to every channel.
                let acc = &mut scratch.speaker_acc[s];
                for (i, &sample) in data.iter().enumerate() {
                    for c in 0..ch {
                        let idx = i * ch + c;
                        if idx < acc.len() {
                            acc[idx] += sample as i32;
                        }
                    }
                }
                scratch.put_i16(data);
            }
            (DeviceClass::Telephone, Some(HwBinding::Line(l))) => {
                let frames = frames_this_tick(da_hw::pstn::LINE_RATE, quantum, tick);
                let Some(v) = core.vdevs.get_mut(&vid) else { continue };
                let mut data = scratch.take_i16();
                v.drain_sink_into(0, frames, &mut data);
                // Overlay in-flight DTMF.
                let mut dtmf_done = false;
                if let Some(ActiveOp::SendDtmf { buf, pos }) = &mut v.op {
                    let want = frames.min(buf.len() - *pos);
                    let chunk = &buf[*pos..*pos + want];
                    da_dsp::meter::DspMeter::timed(&mut scratch.meter.mix_ns, || {
                        da_dsp::mix::mix_into(&mut data[..want], chunk, 100)
                    });
                    *pos += want;
                    dtmf_done = *pos >= buf.len();
                }
                if dtmf_done {
                    // Leave op present but exhausted; the queue's step
                    // observes completion via step_device_op.
                }
                // Line tx deque reaches steady capacity after warmup.
                crate::rt::relaxed(|| core.hw.pstn.write_tx(l, &data));
                scratch.put_i16(data);
            }
            (DeviceClass::Recorder, _) => {
                consume_recorder(core, vid, quantum, tick, scratch);
            }
            (DeviceClass::SpeechRecognizer, _) => {
                let Some(v) = core.vdevs.get_mut(&vid) else { continue };
                if v.sink_bufs[0].is_empty() {
                    continue;
                }
                let mut data = scratch.take_i16();
                let (a, b) = v.sink_bufs[0].as_slices();
                // Pooled scratch; capacity amortizes after warmup.
                crate::rt::relaxed(|| {
                    data.extend_from_slice(a);
                    data.extend_from_slice(b);
                });
                v.sink_bufs[0].clear();
                let results = match &mut v.state {
                    ClassState::Recognizer(r) => {
                        // Relax: results materialize on word detection only.
                        let _relax = crate::rt::AllocRelax::scope();
                        r.push(&data) // rt-ok: results materialize only on word detection
                    }
                    _ => Vec::new(),
                };
                scratch.put_i16(data);
                for r in results {
                    core.send_event(
                        ResKey(1, vid),
                        Event::WordRecognized {
                            vdev: VDeviceId(vid),
                            word: r.word,
                            score: r.score,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    // Deliver accumulated audio to speakers.
    for s in 0..n_speakers {
        let acc = &scratch.speaker_acc[s];
        let data = &mut scratch.speaker_out;
        data.clear();
        // Pooled staging; capacity amortizes after warmup.
        crate::rt::relaxed(|| {
            data.extend(acc.iter().map(|&v| v.clamp(i16::MIN as i32, i16::MAX as i32) as i16))
        });
        let frames = data.len() as u64 / core.hw.speakers[s].channels().max(1) as u64;
        // Relax: the speaker's optional waveform-capture tap is test
        // instrumentation; rendering itself buffers nothing.
        crate::rt::relaxed(|| core.hw.speakers[s].render(data, scratch.speaker_fed[s], 0));
        core.stats.speaker_frames += frames;
    }
}

fn consume_recorder(core: &mut Core, vid: u32, quantum: u64, tick: u64, scratch: &mut EngineScratch) {
    let Some(v) = core.vdevs.get_mut(&vid) else { return };
    if v.op.is_none() {
        // Not recording: discard arriving audio so a later Record starts
        // from the seam, not from stale buffered input.
        v.sink_bufs[0].clear();
        return;
    }
    let rate = v.rate;
    let demand = frames_this_tick(rate, quantum, tick);
    let avail = v.sink_bufs[0].len();
    let take = avail.min(demand + 8); // drain small resampling leads too
    if take == 0 {
        return;
    }
    let mut data = scratch.take_i16();
    {
        let (a, b) = v.sink_bufs[0].as_slices();
        let from_a = take.min(a.len());
        // Pooled scratch; capacity amortizes after warmup.
        crate::rt::relaxed(|| {
            data.extend_from_slice(&a[..from_a]);
            data.extend_from_slice(&b[..take - from_a]);
        });
    }
    v.sink_bufs[0].drain(..take);
    let (sid, sync_every) = {
        let sync_every = v.sync_every();
        match &mut v.op {
            Some(ActiveOp::Record { sound, skip, frames, term, agc, .. }) => {
                if *skip > 0 {
                    let drop = (*skip as usize).min(data.len());
                    data.drain(..drop);
                    *skip -= drop as u64;
                }
                // MaxFrames terminations are sample-exact: clamp the
                // chunk to the remaining allowance.
                if let RecordTermination::MaxFrames(n) = term {
                    let left = n.saturating_sub(*frames) as usize;
                    data.truncate(left);
                }
                if let Some(agc) = agc {
                    agc.process(&mut data);
                }
                (*sound, sync_every)
            }
            _ => {
                scratch.put_i16(data);
                return;
            }
        }
    };
    if data.is_empty() {
        scratch.put_i16(data);
        return;
    }
    let mut sync_pos = None;
    let stype = match core.sounds.get(&sid) {
        Some(s) => s.stype,
        None => {
            scratch.put_i16(data);
            return;
        }
    };
    let mut encoded = scratch.take_u8();
    da_dsp::meter::DspMeter::timed(&mut scratch.meter.convert_ns, || {
        // Encodes into a pooled buffer; capacity amortizes after warmup.
        crate::rt::relaxed(|| {
            da_dsp::convert::encode_from_pcm16_into(pcm_encoding(stype.encoding), &data, &mut encoded)
        })
    });
    if let Some(s) = core.sounds.get_mut(&sid) {
        // Accumulating encoded audio IS the recording; growth is the
        // operation itself, not an accident of the tick loop.
        crate::rt::relaxed(|| s.data.extend_from_slice(&encoded));
    }
    scratch.put_u8(encoded);
    let mut reached_limit = false;
    if let Some(v) = core.vdevs.get_mut(&vid) {
        if let Some(ActiveOp::Record { frames, pause, last_sync, term, .. }) = &mut v.op {
            *frames += data.len() as u64;
            {
            // Relax: window buffer reaches steady capacity after warmup.
            let _relax = crate::rt::AllocRelax::scope();
            pause.push(&data); // rt-ok: pause detector reuses its window buffer; no per-tick growth
        }
            if let RecordTermination::MaxFrames(n) = term {
                reached_limit = *frames >= *n;
            }
            if frames.saturating_sub(*last_sync) >= sync_every {
                *last_sync = *frames;
                sync_pos = Some(*frames);
            }
        }
    }
    scratch.put_i16(data);
    if let Some(p) = sync_pos {
        let dt = core.device_time;
        core.send_event(
            ResKey(1, vid),
            Event::SyncMark {
                vdev: VDeviceId(vid),
                sound: Some(SoundId(sid)),
                position: p,
                device_time: dt,
            },
        );
    }
    if reached_limit {
        // Finish immediately so the frame count is exact; the queue
        // observes completion at its next step.
        let op = core.vdevs.get_mut(&vid).and_then(|v| v.op.take());
        finish_record(core, vid, op, RecordStopReason::MaxFrames);
    }
}

// ---------------------------------------------------------------------------
// Immediate commands (paper §5.1 immediate mode)
// ---------------------------------------------------------------------------

/// Applies an instantaneous (or immediate-mode) command to a device.
/// Returns `false` if the command does not apply to the device's class.
// rt-ok(fn): instantaneous commands execute at op boundaries; clones copy command payloads once
pub fn apply_instant(core: &mut Core, vid: u32, cmd: &DeviceCommand) -> bool {
    // Relax: instantaneous commands execute at op boundaries.
    let _relax = crate::rt::AllocRelax::scope();
    let Some(v) = core.vdevs.get_mut(&vid) else { return false };
    match cmd {
        DeviceCommand::Stop => {
            let op = v.op.take();
            v.abort_op = false;
            v.clear_ports();
            // A telephone Stop hangs up (paper §5.1 telephone commands).
            if let Some(HwBinding::Line(l)) = v.binding {
                core.hw.pstn.on_hook(l);
                finish_aborted_op(core, vid, op);
                core.send_event(
                    ResKey(1, vid),
                    Event::CallProgress {
                        device: ResourceId::VDevice(VDeviceId(vid)),
                        state: CallState::HungUp,
                        caller_id: None,
                    },
                );
            } else {
                finish_aborted_op(core, vid, op);
            }
            true
        }
        DeviceCommand::Pause => {
            v.paused = true;
            true
        }
        DeviceCommand::Resume => {
            v.paused = false;
            true
        }
        DeviceCommand::ChangeGain(g) => {
            v.gain_milli = *g;
            true
        }
        DeviceCommand::SetMixGain { input, percent } => match &mut v.state {
            ClassState::Mixer { gains } => {
                if let Some(g) = gains.get_mut(*input as usize) {
                    *g = (*percent).min(100);
                }
                true
            }
            _ => false,
        },
        DeviceCommand::SetTextLanguage(lang) => match &mut v.state {
            ClassState::Synth(s) => {
                s.set_language(lang);
                true
            }
            _ => false,
        },
        DeviceCommand::SetVoiceValues { rate_wpm, pitch_hz } => match &mut v.state {
            ClassState::Synth(s) => {
                s.set_values(*rate_wpm, *pitch_hz);
                true
            }
            _ => false,
        },
        DeviceCommand::SetExceptionList(list) => match &mut v.state {
            ClassState::Synth(s) => {
                s.set_exception_list(list);
                true
            }
            _ => false,
        },
        DeviceCommand::Train { word, template } => {
            let tid = template.0;
            let word = word.clone();
            let samples = match core.sounds.get(&tid) {
                Some(s) => s.decode_frames(0, s.len_frames()),
                None => return false,
            };
            let Some(v) = core.vdevs.get_mut(&vid) else { return false };
            match &mut v.state {
                ClassState::Recognizer(r) => {
                    r.train(&word, &samples);
                    true
                }
                _ => false,
            }
        }
        DeviceCommand::SetVocabulary(words) => match &mut v.state {
            ClassState::Recognizer(r) => {
                r.set_vocabulary(words);
                true
            }
            _ => false,
        },
        DeviceCommand::AdjustContext(bias) => match &mut v.state {
            ClassState::Recognizer(r) => {
                r.adjust_context(*bias);
                true
            }
            _ => false,
        },
        DeviceCommand::SaveVocabulary(name) => {
            let blob = match &v.state {
                ClassState::Recognizer(r) => r.save(),
                _ => return false,
            };
            let name = name.clone();
            core.catalogs.insert(
                "vocabularies",
                &name,
                da_proto::types::SoundType::TELEPHONE,
                blob,
            );
            true
        }
        DeviceCommand::SetVoice(voice) => match &mut v.state {
            ClassState::Music(m) => m.set_voice(voice),
            _ => false,
        },
        DeviceCommand::SetMusicState { tempo_bpm } => match &mut v.state {
            ClassState::Music(m) => {
                m.set_tempo(*tempo_bpm);
                true
            }
            _ => false,
        },
        DeviceCommand::SetRoutes(routes) => match &mut v.state {
            ClassState::Crossbar { routes: r } => {
                for route in routes {
                    if route.connected {
                        r.insert((route.input, route.output));
                    } else {
                        r.remove(&(route.input, route.output));
                    }
                }
                true
            }
            _ => false,
        },
        DeviceCommand::SendDtmf(digits) => {
            // Immediate DTMF: install or extend the overlay.
            if v.class != DeviceClass::Telephone {
                return false;
            }
            let tones = da_dsp::dtmf::dial_string(v.rate, digits, 12000);
            match &mut v.op {
                Some(ActiveOp::SendDtmf { buf, .. }) => buf.extend(tones),
                Some(_) => return false,
                None => v.op = Some(ActiveOp::SendDtmf { buf: tones, pos: 0 }),
            }
            true
        }
        // Queued-only commands are rejected by the dispatcher before this
        // point.
        _ => false,
    }
}
