//! Full-structure invariant checker: the mechanical form of the
//! protocol's consistency rules (paper §5).
//!
//! [`check_all`] walks the whole [`Core`] and returns every violated
//! invariant; [`check`] returns the first. The invariant identifiers
//! (`V1` ...) match the "Invariants catalog" section of `DESIGN.md`.
//!
//! The checker runs in three roles:
//!
//! - after every dispatched request in debug builds (a `debug_assert!`
//!   style hook in [`crate::dispatch::dispatch`]), so any request
//!   handler that corrupts the structure fails loudly in tests;
//! - as the oracle of the model-checking property test
//!   (`crates/core/tests/proptest_validate.rs`), which drives arbitrary
//!   request sequences and asserts the structure stays consistent;
//! - in dedicated negative tests that seed a corrupt structure and
//!   assert the checker catches it.
//!
//! Everything checked here is a *structural* invariant — true between
//! any two dispatches regardless of timing. Creation-time-only rules
//! (e.g. a `Digital` wire type admitting an endpoint's rate, which can
//! legally drift when activation rebinds the endpoint's hardware rate)
//! are enforced in dispatch but deliberately not re-checked here.

use crate::core::Core;
use crate::plan::compute_route_plan;
use crate::vdevice::HwBinding;
use da_hw::registry::HwSlot;
use da_proto::types::{PortDir, QueueState, WireType};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Catalog identifier (`V1` ... `V14`), matching DESIGN.md.
    pub invariant: &'static str,
    /// What exactly is inconsistent.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

fn violate(out: &mut Vec<Violation>, invariant: &'static str, detail: String) {
    out.push(Violation { invariant, detail });
}

/// Checks every invariant; returns the first violation, if any.
pub fn check(core: &Core) -> Result<(), Violation> {
    match check_all(core).into_iter().next() {
        None => Ok(()),
        Some(v) => Err(v),
    }
}

/// Checks every invariant and returns all violations.
pub fn check_all(core: &Core) -> Vec<Violation> {
    let mut out = Vec::new();
    check_loud_tree(core, &mut out);
    check_vdev_containment(core, &mut out);
    check_wires(core, &mut out);
    check_active_stack(core, &mut out);
    check_queues(core, &mut out);
    check_bindings(core, &mut out);
    check_plan_cache(core, &mut out);
    check_worklists(core, &mut out);
    check_queue_parser(core, &mut out);
    check_client_liveness(core, &mut out);
    check_sound_store(core, &mut out);
    out
}

/// The root of a LOUD, walking parents with a cycle guard. Returns
/// `None` when the chain is broken or cyclic (already reported by V1).
fn root_of(core: &Core, mut id: u32) -> Option<u32> {
    let mut hops = 0usize;
    loop {
        let l = core.louds.get(&id)?;
        match l.parent {
            None => return Some(id),
            Some(p) => {
                hops += 1;
                if hops > core.louds.len() {
                    return None;
                }
                id = p;
            }
        }
    }
}

/// V1: the LOUD forest is a forest — parent and child pointers agree,
/// every LOUD has at most one parent, and parent chains are acyclic
/// (paper §5.4: LOUDs "form a tree").
fn check_loud_tree(core: &Core, out: &mut Vec<Violation>) {
    let mut child_seen: HashMap<u32, u32> = HashMap::new();
    for (&id, l) in &core.louds {
        if let Some(p) = l.parent {
            if p == id {
                violate(out, "V1", format!("loud {id} is its own parent"));
                continue;
            }
            match core.louds.get(&p) {
                None => violate(out, "V1", format!("loud {id} has dangling parent {p}")),
                Some(pl) => {
                    if !pl.children.contains(&id) {
                        violate(
                            out,
                            "V1",
                            format!("loud {id} has parent {p} but is not among its children"),
                        );
                    }
                }
            }
        }
        let mut dedup = HashSet::new();
        for &c in &l.children {
            if !dedup.insert(c) {
                violate(out, "V1", format!("loud {id} lists child {c} twice"));
                continue;
            }
            if let Some(prev) = child_seen.insert(c, id) {
                violate(
                    out,
                    "V1",
                    format!("loud {c} is a child of both {prev} and {id}"),
                );
            }
            match core.louds.get(&c) {
                None => violate(out, "V1", format!("loud {id} has dangling child {c}")),
                Some(cl) => {
                    if cl.parent != Some(id) {
                        violate(
                            out,
                            "V1",
                            format!(
                                "loud {id} lists child {c} whose parent is {:?}",
                                cl.parent
                            ),
                        );
                    }
                }
            }
        }
        if root_of(core, id).is_none() {
            violate(out, "V1", format!("loud {id} has a broken or cyclic parent chain"));
        }
    }
}

/// V2: every virtual device lives in an existing LOUD, the LOUD lists it
/// back, and its cached `root` matches the tree it is actually in
/// (paper §5.1, §5.4).
fn check_vdev_containment(core: &Core, out: &mut Vec<Violation>) {
    for (&id, v) in &core.vdevs {
        if id != v.id.0 {
            violate(out, "V2", format!("vdev key {id} != id field {}", v.id.0));
        }
        match core.louds.get(&v.loud) {
            None => violate(out, "V2", format!("vdev {id} in dangling loud {}", v.loud)),
            Some(l) => {
                if !l.vdevs.contains(&id) {
                    violate(
                        out,
                        "V2",
                        format!("vdev {id} not listed by its loud {}", v.loud),
                    );
                }
                if root_of(core, v.loud).is_some_and(|r| r != v.root) {
                    violate(
                        out,
                        "V2",
                        format!("vdev {id} caches root {} but its tree root differs", v.root),
                    );
                }
            }
        }
    }
    for (&id, l) in &core.louds {
        for &d in &l.vdevs {
            match core.vdevs.get(&d) {
                None => violate(out, "V2", format!("loud {id} lists dangling vdev {d}")),
                Some(v) => {
                    if v.loud != id {
                        violate(
                            out,
                            "V2",
                            format!("loud {id} lists vdev {d} which claims loud {}", v.loud),
                        );
                    }
                }
            }
        }
    }
}

/// V3 + V4 + V5: wires connect two distinct existing devices of the same
/// tree through valid ports (V3), carry a digital or unconstrained type —
/// analog wires exist only inside the hardware's device LOUD, never as
/// client resources (V4, paper §5.2/§5.9) — and the wire graph stays
/// acyclic so topological routing is sound (V5).
fn check_wires(core: &Core, out: &mut Vec<Violation>) {
    for (&id, w) in &core.wires {
        if id != w.id.0 {
            violate(out, "V3", format!("wire key {id} != id field {}", w.id.0));
        }
        let (src, dst) = (core.vdevs.get(&w.src.0), core.vdevs.get(&w.dst.0));
        match (src, dst) {
            (Some(s), Some(d)) => {
                if w.src.0 == w.dst.0 {
                    violate(out, "V3", format!("wire {id} connects vdev {} to itself", w.src.0));
                }
                if s.root != d.root {
                    violate(
                        out,
                        "V3",
                        format!("wire {id} crosses trees ({} -> {})", s.root, d.root),
                    );
                }
                if !s.has_port(PortDir::Source, w.src_port) {
                    violate(
                        out,
                        "V3",
                        format!("wire {id} uses bad source port {} on vdev {}", w.src_port, w.src.0),
                    );
                }
                if !d.has_port(PortDir::Sink, w.dst_port) {
                    violate(
                        out,
                        "V3",
                        format!("wire {id} uses bad sink port {} on vdev {}", w.dst_port, w.dst.0),
                    );
                }
            }
            _ => {
                violate(out, "V3", format!("wire {id} has a dangling endpoint"));
            }
        }
        match w.wire_type {
            WireType::Analog => violate(
                out,
                "V4",
                format!("wire {id} is analog; analog wires exist only in the device LOUD"),
            ),
            WireType::Digital(t) => {
                if t.sample_rate == 0 || t.channels == 0 {
                    violate(
                        out,
                        "V4",
                        format!(
                            "wire {id} has degenerate digital type ({} Hz, {} ch)",
                            t.sample_rate, t.channels
                        ),
                    );
                }
            }
            WireType::Any => {}
        }
    }
    // V5: DFS over the wire graph (edges src -> dst).
    let mut edges: HashMap<u32, Vec<u32>> = HashMap::new();
    for w in core.wires.values() {
        edges.entry(w.src.0).or_default().push(w.dst.0);
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut mark: HashMap<u32, u8> = HashMap::new();
    fn dfs(v: u32, edges: &HashMap<u32, Vec<u32>>, mark: &mut HashMap<u32, u8>) -> bool {
        match mark.get(&v).copied().unwrap_or(0) {
            1 => return false,
            2 => return true,
            _ => {}
        }
        mark.insert(v, 1);
        for &n in edges.get(&v).into_iter().flatten() {
            if !dfs(n, edges, mark) {
                return false;
            }
        }
        mark.insert(v, 2);
        true
    }
    let mut srcs: Vec<u32> = edges.keys().copied().collect();
    srcs.sort_unstable();
    for v in srcs {
        if !dfs(v, &edges, &mut mark) {
            violate(out, "V5", format!("wire graph has a cycle reachable from vdev {v}"));
            break;
        }
    }
}

/// V6: the active stack holds each mapped root exactly once, every entry
/// is an existing root LOUD, a root is mapped iff it is on the stack,
/// and only mapped LOUDs are active (paper §5.6: the activation stack
/// orders the mapped LOUDs).
fn check_active_stack(core: &Core, out: &mut Vec<Violation>) {
    let mut seen = HashSet::new();
    for &r in &core.active_stack {
        if !seen.insert(r) {
            violate(out, "V6", format!("root {r} appears twice on the active stack"));
        }
        match core.louds.get(&r) {
            None => violate(out, "V6", format!("active stack names dangling loud {r}")),
            Some(l) => {
                if l.parent.is_some() {
                    violate(out, "V6", format!("active stack names non-root loud {r}"));
                }
                if !l.mapped {
                    violate(out, "V6", format!("stacked root {r} is not mapped"));
                }
            }
        }
    }
    for (&id, l) in &core.louds {
        if l.parent.is_none() && l.mapped && !seen.contains(&id) {
            violate(out, "V6", format!("mapped root {id} missing from the active stack"));
        }
        if l.active && !l.mapped {
            violate(out, "V6", format!("loud {id} is active but not mapped"));
        }
    }
    // Manager redirection bookkeeping: deferred maps/raises exist only
    // while a manager is registered, and only for live roots (paper §6).
    if core.redirect_client.is_none()
        && (!core.pending_maps.is_empty() || !core.pending_raises.is_empty())
    {
        violate(out, "V6", "pending redirected maps without a manager".into());
    }
    for &r in core.pending_maps.iter().chain(core.pending_raises.iter()) {
        if !core.louds.contains_key(&r) {
            violate(out, "V6", format!("pending redirect names dangling loud {r}"));
        }
    }
}

/// V7 + V8: exactly the root LOUDs own command queues (paper §5.5: "Each
/// root LOUD owns a command queue"), and a server-paused queue implies a
/// deactivated root — the server pauses queues only on deactivation and
/// resumes them on reactivation.
fn check_queues(core: &Core, out: &mut Vec<Violation>) {
    for (&id, l) in &core.louds {
        let is_root = l.parent.is_none();
        if is_root && l.queue.is_none() {
            violate(out, "V7", format!("root loud {id} has no command queue"));
        }
        if !is_root && l.queue.is_some() {
            violate(out, "V7", format!("non-root loud {id} has a command queue"));
        }
        if let Some(q) = &l.queue {
            if q.state() == QueueState::ServerPaused && l.active {
                violate(
                    out,
                    "V8",
                    format!("queue of root {id} is server-paused while the root is active"),
                );
            }
        }
    }
}

/// V9: every hardware binding names a slot the registry actually has
/// (paper §5.9: activation assigns physical devices).
fn check_bindings(core: &Core, out: &mut Vec<Violation>) {
    let lines: HashSet<_> = (0..core.hw.device_count())
        .filter_map(|i| match core.hw.slot(i) {
            Some(HwSlot::Line(l)) => Some(l),
            _ => None,
        })
        .collect();
    for (&id, v) in &core.vdevs {
        match v.binding {
            Some(HwBinding::Speaker(i)) if i >= core.hw.speakers.len() => {
                violate(out, "V9", format!("vdev {id} bound to missing speaker {i}"));
            }
            Some(HwBinding::Microphone(i)) if i >= core.hw.microphones.len() => {
                violate(out, "V9", format!("vdev {id} bound to missing microphone {i}"));
            }
            Some(HwBinding::Line(l)) if !lines.contains(&l) => {
                violate(out, "V9", format!("vdev {id} bound to unknown line {l:?}"));
            }
            _ => {}
        }
    }
}

/// V11: deferred work-lists reference live root LOUDs. `pending_maps`
/// and `pending_raises` hold redirected requests awaiting an audio
/// manager's decision (paper §5.8); `queue_failures` holds roots whose
/// current command failed mid-tick. A destroyed LOUD must be purged
/// from all three, or a later drain would act on a dangling id.
fn check_worklists(core: &Core, out: &mut Vec<Violation>) {
    let lists: [(&str, &[u32]); 3] = [
        ("pending_maps", &core.pending_maps),
        ("pending_raises", &core.pending_raises),
        ("queue_failures", &core.queue_failures),
    ];
    for (name, list) in lists {
        for &r in list {
            match core.louds.get(&r) {
                None => violate(out, "V11", format!("{name} references destroyed loud {r}")),
                Some(l) if l.parent.is_some() => {
                    violate(out, "V11", format!("{name} references non-root loud {r}"));
                }
                Some(_) => {}
            }
        }
    }
}

/// V12: queue parser conservation (paper §5.5 brackets). The parser
/// consumes balanced `CoBegin`/`CoEnd` and `Delay`/`DelayEnd` units
/// greedily, so (a) an idle queue has no open brackets left, and (b) a
/// non-empty raw tail always begins with an opener still awaiting its
/// closer — anything parseable must already have been parsed.
fn check_queue_parser(core: &Core, out: &mut Vec<Violation>) {
    use da_proto::command::QueueEntry;
    for (&id, l) in &core.louds {
        let Some(q) = &l.queue else { continue };
        if q.idle() && q.open_depth() != 0 {
            violate(
                out,
                "V12",
                format!("idle queue of root {id} reports open bracket depth {}", q.open_depth()),
            );
        }
        if let Some(head) = q.raw_entries().next() {
            if !matches!(head, QueueEntry::CoBegin | QueueEntry::Delay { .. }) {
                violate(
                    out,
                    "V12",
                    format!("queue of root {id} left a parseable head entry {head:?} unparsed"),
                );
            }
        }
    }
}

/// V13: no state references a departed client. Every resource's owner
/// is a connected client, the audio-manager redirect names a connected
/// client, and every event selection and property table is keyed on a
/// resource that still exists. `Core::remove_client` must cascade —
/// destroying the departed client's trees, sounds and redirections and
/// sweeping survivors' selections — and this is the invariant that
/// catches any missed sweep (the original bug was a no-op
/// `selections.retain(|_, _| true)`).
fn check_client_liveness(core: &Core, out: &mut Vec<Violation>) {
    let live = |key: &crate::core::ResKey| match key.0 {
        0 => core.louds.contains_key(&key.1),
        1 => core.vdevs.contains_key(&key.1),
        2 => core.sounds.contains_key(&key.1),
        _ => (key.1 as usize) < core.hw.device_count(),
    };
    for (&id, l) in &core.louds {
        if !core.clients.contains_key(&l.owner.0) {
            violate(out, "V13", format!("loud {id} owned by departed client {}", l.owner.0));
        }
    }
    for (&id, v) in &core.vdevs {
        if !core.clients.contains_key(&v.owner.0) {
            violate(out, "V13", format!("vdev {id} owned by departed client {}", v.owner.0));
        }
    }
    for (&id, w) in &core.wires {
        if !core.clients.contains_key(&w.owner.0) {
            violate(out, "V13", format!("wire {id} owned by departed client {}", w.owner.0));
        }
    }
    for (&id, s) in &core.sounds {
        if !core.clients.contains_key(&s.owner.0) {
            violate(out, "V13", format!("sound {id} owned by departed client {}", s.owner.0));
        }
    }
    if let Some(mgr) = core.redirect_client {
        if !core.clients.contains_key(&mgr) {
            violate(out, "V13", format!("redirect held by departed client {mgr}"));
        }
    }
    for key in core.properties.keys() {
        if !live(key) {
            violate(
                out,
                "V13",
                format!("property table keyed on destroyed resource ({}, {})", key.0, key.1),
            );
        }
    }
    for (&cid, cs) in &core.clients {
        for key in cs.selections.keys() {
            if !live(key) {
                violate(
                    out,
                    "V13",
                    format!(
                        "client {cid} holds a selection on destroyed resource ({}, {})",
                        key.0, key.1
                    ),
                );
            }
        }
    }
}

/// V14: sound/store consistency (DESIGN.md §17). A sound holding a
/// shared payload has handed its private buffer to the store (`data`
/// empty) and is finalized (`complete`); a content hash exists only on
/// complete sounds — streaming content has no stable identity. Catches
/// any dispatch arm that interns early, forgets `mem::take`, or leaves
/// a stale hash after `reset_for_recording`.
fn check_sound_store(core: &Core, out: &mut Vec<Violation>) {
    for (&id, s) in &core.sounds {
        if s.shared.is_some() {
            if !s.data.is_empty() {
                violate(
                    out,
                    "V14",
                    format!("sound {id} holds both a shared payload and private data"),
                );
            }
            if !s.complete {
                violate(out, "V14", format!("sound {id} shares a payload while incomplete"));
            }
        }
        if s.content_hash.is_some() && !s.complete {
            violate(
                out,
                "V14",
                format!("incomplete sound {id} carries a content hash"),
            );
        }
    }
}

/// V10: a plan cache claiming to be built at the current topology
/// generation really describes the current topology — the active-root
/// list and every cached route equal a fresh recompute. A stale
/// generation is fine (the next tick rebuilds); a *lying* generation is
/// the bug class `Core::invalidate_plans` exists to prevent.
fn check_plan_cache(core: &Core, out: &mut Vec<Violation>) {
    let plans = &core.plane.plans;
    let gen = core.topology_gen.load(std::sync::atomic::Ordering::Relaxed);
    if plans.built_generation() != Some(gen) {
        return;
    }
    let expected_roots: Vec<u32> = core
        .active_stack
        .iter()
        .copied()
        .filter(|r| core.louds.get(r).map(|l| l.active) == Some(true))
        .collect();
    if plans.active_roots != expected_roots {
        violate(
            out,
            "V10",
            format!(
                "plan cache active roots {:?} != live {:?} at generation {}",
                plans.active_roots, expected_roots, gen
            ),
        );
        return;
    }
    for &root in &expected_roots {
        let fresh = compute_route_plan(core, root);
        if plans.routes.get(&root) != Some(&fresh) {
            violate(
                out,
                "V10",
                format!("cached route plan for root {root} differs from a fresh recompute"),
            );
        }
    }
}
