//! The event-driven connection plane (DESIGN.md §13).
//!
//! A small pool of I/O worker threads replaces the old two-threads-per-
//! client design: each worker owns many connections and drives them with
//! non-blocking reads/writes over the [`Pollable`] readiness abstraction
//! — total I/O threads are O(workers), never O(clients). Per connection
//! the worker performs incremental length-prefixed frame reassembly
//! (partial headers and one-byte-per-wakeup payloads are fine), request
//! dispatch (sharded fast path first, global write lock otherwise), and
//! outbound-queue draining with the PR 5 flow-control semantics intact:
//! bounded per-client channels, event-drop accounting, and slow-client
//! eviction with a typed farewell frame.
//!
//! Wakeups: in-process byte pipes carry a waker that unparks the owning
//! worker the moment bytes or buffer space appear; TCP sockets have no
//! waker, so an idle worker parks for at most [`IDLE_PARK`] and polls.

use crate::core::{Core, DisconnectReason, ServerMsg, CLIENT_CHANNEL_DEPTH};
use crate::dispatch::dispatch;
use crate::telem::{FlightRecorder, ServerMetrics};
use bytes::BytesMut;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use da_proto::codec::{Frame, FrameKind, WireReader, WireWriter};
use da_proto::event::Event;
use da_proto::transport::Pollable;
use da_proto::{Request, SetupReply, SetupRequest, WireRead, WireWrite};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long an idle worker parks before re-polling its connections
/// (TCP sockets have no waker; pipes wake the worker earlier).
const IDLE_PARK: Duration = Duration::from_millis(1);

/// Per-connection read budget per pump round, so one firehose client
/// cannot starve its worker siblings.
const READ_BUDGET: usize = 64 * 1024;

/// Unflushed write-backlog bytes beyond which a connection stops
/// draining its outbound channel. While the backlog sits above this
/// cap the bounded per-client channel backs up, so the slow-client
/// policy (`try_send` `Full` → kicked → eviction, DESIGN.md §12)
/// engages exactly as it did when a blocking writer thread applied
/// backpressure — without the cap, eager draining would turn `wrbuf`
/// into an unbounded queue for a stalled reader. Sized to hold a few
/// channel depths of typical frames.
const WRITE_BACKLOG_CAP: usize = 64 * 1024;

/// How long a closing connection may take to drain its farewell before
/// the worker gives up on it.
const FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Counters shared between the workers and the plane handle.
struct PlaneShared {
    /// Live connections per worker (gauges mirror these).
    per_worker: Vec<AtomicI64>,
    /// Busy share of each worker's last sampling window, in permille.
    busy_permille: Vec<AtomicI64>,
}

/// A cloneable handle that feeds new connections to the workers.
pub struct PlaneInjector {
    injectors: Vec<Sender<Box<dyn Pollable>>>,
    threads: Vec<std::thread::Thread>,
    next: AtomicUsize,
    metrics: ServerMetrics,
}

impl PlaneInjector {
    /// Hands a new connection to the next worker (round robin) and
    /// wakes it. A worker whose channel is disconnected (its thread
    /// died) is skipped and the next one tried; only when every worker
    /// is gone is the connection dropped, counted in
    /// `conn_plane_unplaced_total`.
    pub fn add(&self, io: Box<dyn Pollable>) {
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut io = io;
        for attempt in 0..self.injectors.len() {
            let idx = (start + attempt) % self.injectors.len();
            match self.injectors[idx].send(io) { // rt-ok: unbounded mpsc send enqueues without blocking
                Ok(()) => {
                    self.threads[idx].unpark();
                    return;
                }
                Err(returned) => io = returned.0,
            }
        }
        self.metrics.conn_plane_unplaced_total.inc();
    }
}

/// The worker pool. One per [`crate::server::AudioServer`].
pub struct ConnPlane {
    injector: Arc<PlaneInjector>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ConnPlane {
    /// Spawns `workers` event-loop threads over the shared core.
    pub fn start(
        core: &Arc<RwLock<Core>>,
        shutdown: &Arc<AtomicBool>,
        workers: usize,
    ) -> std::io::Result<ConnPlane> {
        let workers = workers.max(1);
        let (metrics, recorder) = {
            let c = core.read();
            (c.tel.metrics.clone(), Arc::clone(&c.tel.recorder))
        };
        metrics.conn_plane_workers.set(workers as i64);
        let shared = Arc::new(PlaneShared {
            per_worker: (0..workers).map(|_| AtomicI64::new(0)).collect(),
            busy_permille: (0..workers).map(|_| AtomicI64::new(0)).collect(),
        });
        let mut injectors = Vec::new();
        let mut threads = Vec::new();
        let mut handles = Vec::new();
        for index in 0..workers {
            let (tx, rx) = unbounded::<Box<dyn Pollable>>();
            let mut worker = Worker {
                core: Arc::clone(core),
                shutdown: Arc::clone(shutdown),
                injector: rx,
                metrics: metrics.clone(),
                recorder: Arc::clone(&recorder),
                shared: Arc::clone(&shared),
                index,
                conns: Vec::new(),
                busy_window: Duration::ZERO,
                window_start: Instant::now(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("da-io-{index}"))
                .spawn(move || worker.run())?;
            threads.push(handle.thread().clone());
            handles.push(handle);
            injectors.push(tx);
        }
        let injector =
            Arc::new(PlaneInjector { injectors, threads, next: AtomicUsize::new(0), metrics });
        Ok(ConnPlane { injector, handles })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Hands a new connection to a worker (round robin).
    pub fn add(&self, io: Box<dyn Pollable>) {
        self.injector.add(io);
    }

    /// A shareable handle for feeding connections from other threads
    /// (the TCP accept loop).
    pub fn injector(&self) -> Arc<PlaneInjector> {
        Arc::clone(&self.injector)
    }

    /// Wakes every worker (shutdown kick) and joins them.
    pub fn join(&mut self) {
        for t in &self.injector.threads {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One established client session inside a connection.
struct ClientSession {
    client: da_proto::ids::ClientId,
    msg_rx: Receiver<ServerMsg>,
    counters: Arc<da_telemetry::ConnCounters>,
    kicked: Arc<AtomicBool>,
    /// Whether `remove_client` has run for this session.
    removed: bool,
}

/// One connection owned by a worker.
struct PlaneConn {
    io: Box<dyn Pollable>,
    /// Partial-frame reassembly buffer.
    rdbuf: BytesMut,
    /// Encoded outbound bytes not yet accepted by the transport.
    wrbuf: Vec<u8>,
    /// How much of `wrbuf` has been written.
    wroff: usize,
    /// `None` until the setup handshake completes.
    session: Option<ClientSession>,
    /// Set once the server has decided to end the connection: stop
    /// reading, flush the farewell, then drop.
    closing: bool,
    /// Deadline for the closing flush.
    flush_deadline: Option<Instant>,
    /// Terminal: the worker reaps the connection this round.
    dead: bool,
    /// The owning worker's wake callback; attached to the core's
    /// client entry at setup so engine-side sends flush promptly.
    waker: da_proto::transport::Waker,
}

impl PlaneConn {
    fn new(io: Box<dyn Pollable>, waker: da_proto::transport::Waker) -> PlaneConn {
        PlaneConn {
            io,
            rdbuf: BytesMut::new(),
            wrbuf: Vec::new(),
            wroff: 0,
            session: None,
            closing: false,
            flush_deadline: None,
            dead: false,
            waker,
        }
    }
}

/// One event-loop worker.
struct Worker {
    core: Arc<RwLock<Core>>,
    shutdown: Arc<AtomicBool>,
    injector: Receiver<Box<dyn Pollable>>,
    metrics: ServerMetrics,
    recorder: Arc<FlightRecorder>,
    shared: Arc<PlaneShared>,
    index: usize,
    conns: Vec<PlaneConn>,
    busy_window: Duration,
    window_start: Instant,
}

impl Worker {
    fn run(&mut self) {
        let pending = Arc::new(AtomicBool::new(false));
        let waker: da_proto::transport::Waker = {
            let pending = Arc::clone(&pending);
            let me = std::thread::current();
            Arc::new(move || {
                pending.store(true, Ordering::Release);
                me.unpark();
            })
        };
        loop {
            let progress = self.iterate(&waker);
            if self.shutdown.load(Ordering::Relaxed) && self.conns.is_empty() {
                break;
            }
            if !progress && !pending.swap(false, Ordering::Acquire) {
                std::thread::park_timeout(IDLE_PARK);
                pending.store(false, Ordering::Release);
            }
        }
        self.shared.per_worker[self.index].store(0, Ordering::Relaxed);
        self.publish_gauges();
    }

    /// One loop iteration: adopt, pump every connection, reap, account.
    /// Returns whether any connection made progress.
    fn iterate(&mut self, waker: &da_proto::transport::Waker) -> bool {
        let before = self.conns.len();
        while let Ok(mut io) = self.injector.try_recv() {
            io.set_waker(Arc::clone(waker));
            self.conns.push(PlaneConn::new(io, Arc::clone(waker)));
        }
        let started = Instant::now();
        let shutting = self.shutdown.load(Ordering::Relaxed);
        let mut progress = self.conns.len() != before;
        let mut conns = std::mem::take(&mut self.conns);
        for conn in &mut conns {
            progress |= pump_conn(&self.core, &self.metrics, &self.recorder, shutting, conn);
        }
        // Eager reaping: a finished connection leaves the worker's list
        // (and frees its buffers) the round it dies, not at shutdown.
        conns.retain(|c| !c.dead);
        self.conns = conns;
        if progress {
            let spent = started.elapsed();
            self.metrics.conn_worker_loop_us.record_duration_us(spent);
            self.busy_window += spent;
        }
        let count_changed = self.conns.len() != before;
        if progress || count_changed {
            self.shared.per_worker[self.index].store(self.conns.len() as i64, Ordering::Relaxed);
        }
        let window = self.window_start.elapsed();
        if window >= Duration::from_millis(500) {
            let permille = ((self.busy_window.as_secs_f64() / window.as_secs_f64()) * 1000.0)
                .min(1000.0) as i64; // cast-ok: bounded to [0, 1000]
            self.shared.busy_permille[self.index].store(permille, Ordering::Relaxed);
            self.busy_window = Duration::ZERO;
            self.window_start = Instant::now();
            self.publish_gauges();
        } else if count_changed {
            // Adoption and reaping republish immediately so the
            // connection gauges track churn, not the 500 ms window.
            self.publish_gauges();
        }
        progress
    }

    fn publish_gauges(&self) {
        let mut total = 0i64;
        let mut max_conns = 0i64;
        let mut max_busy = 0i64;
        for (c, b) in self.shared.per_worker.iter().zip(&self.shared.busy_permille) {
            let c = c.load(Ordering::Relaxed);
            total += c;
            max_conns = max_conns.max(c);
            max_busy = max_busy.max(b.load(Ordering::Relaxed));
        }
        self.metrics.conn_plane_connections.set(total);
        self.metrics.conn_worker_max_connections.set(max_conns);
        self.metrics.conn_plane_busy_permille.set(max_busy);
    }
}

/// Drives one connection as far as it will go without blocking.
/// Returns whether any progress was made.
fn pump_conn(
    core: &Arc<RwLock<Core>>,
    metrics: &ServerMetrics,
    recorder: &FlightRecorder,
    shutting: bool,
    conn: &mut PlaneConn,
) -> bool {
    if conn.dead {
        return false;
    }
    let mut progress = false;

    // 1. Server-initiated teardown: shutdown or slow-client eviction.
    //    Queued messages drain first, then the typed farewell, exactly
    //    the old writer-thread ordering.
    if !conn.closing {
        let reason = match &conn.session {
            Some(_) if shutting => Some(DisconnectReason::ServerShutdown),
            Some(sess) if sess.kicked.load(Ordering::Relaxed) => {
                Some(DisconnectReason::SlowClient)
            }
            Some(_) => None,
            None if shutting => {
                // Never completed setup; nothing to say.
                conn.dead = true;
                return true;
            }
            None => None,
        };
        if let Some(reason) = reason {
            // A Shutdown that rode the channel already carried its own
            // farewell (drain sets `closing`); only synthesize one if
            // none was drained, so the client never sees two.
            drain_outbound(conn, metrics, recorder);
            if !conn.closing {
                let frame = encode_msg(ServerMsg::Shutdown(reason));
                conn.wrbuf.extend_from_slice(&frame.encode());
            }
            begin_close(core, conn);
            progress = true;
        }
    }

    // 2. Non-blocking reads into the reassembly buffer.
    if !conn.closing {
        let mut taken = 0usize;
        let mut chunk = [0u8; 4096];
        loop {
            match conn.io.try_read(&mut chunk) {
                Ok(0) => {
                    // Peer closed: nobody left to read a farewell.
                    finish_conn(core, conn);
                    return true;
                }
                Ok(n) => {
                    conn.rdbuf.extend_from_slice(&chunk[..n]);
                    taken += n;
                    progress = true;
                    if taken >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    finish_conn(core, conn);
                    return true;
                }
            }
        }
    }

    // 3. Frame reassembly and dispatch.
    while !conn.closing && !conn.dead {
        match Frame::decode(&mut conn.rdbuf) {
            Ok(Some(frame)) => {
                progress = true;
                handle_frame(core, metrics, recorder, conn, frame);
            }
            Ok(None) => break,
            Err(_) => {
                // Oversized or malformed length prefix: rejected before
                // any payload allocation; the connection is garbage.
                finish_conn(core, conn);
                return true;
            }
        }
    }

    // 4. Drain the session's bounded outbound channel into the write
    //    buffer (replies > events priority is enforced at enqueue time
    //    by the slow-client policy; here we just drain FIFO). Draining
    //    pauses while the unflushed backlog exceeds WRITE_BACKLOG_CAP,
    //    so a stalled reader backs the channel up and eviction fires.
    if !conn.closing {
        progress |= drain_outbound(conn, metrics, recorder);
        if conn.closing {
            // A Shutdown message rode the channel: close after flush.
            begin_close(core, conn);
        }
    }

    // 5. Flush the write buffer.
    while conn.wroff < conn.wrbuf.len() {
        match conn.io.try_write(&conn.wrbuf[conn.wroff..]) {
            Ok(0) => break,
            Ok(n) => {
                conn.wroff += n;
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => {
                finish_conn(core, conn);
                return true;
            }
        }
    }
    if conn.wroff == conn.wrbuf.len() && conn.wroff > 0 {
        conn.wrbuf.clear();
        conn.wroff = 0;
    }

    // 6. A closing connection dies once flushed (or past its grace).
    if conn.closing {
        let flushed = conn.wroff == conn.wrbuf.len();
        let expired = conn.flush_deadline.map(|d| Instant::now() >= d).unwrap_or(false);
        if flushed || expired {
            finish_conn(core, conn);
            progress = true;
        }
    }
    progress
}

/// Starts the close sequence: the client leaves the core immediately
/// (its resources are reclaimed now, not when the flush finishes), the
/// connection stops reading, and the farewell gets a bounded grace
/// period to drain.
fn begin_close(core: &Arc<RwLock<Core>>, conn: &mut PlaneConn) {
    conn.closing = true;
    conn.flush_deadline = Some(Instant::now() + FLUSH_GRACE);
    if let Some(sess) = &mut conn.session {
        if !sess.removed {
            sess.removed = true;
            core.write().remove_client(sess.client);
        }
    }
}

/// Terminal teardown: removes the client (if not already removed) and
/// marks the connection for reaping.
fn finish_conn(core: &Arc<RwLock<Core>>, conn: &mut PlaneConn) {
    if let Some(sess) = &mut conn.session {
        if !sess.removed {
            sess.removed = true;
            core.write().remove_client(sess.client);
        }
    }
    conn.dead = true;
}

/// Handles one reassembled frame.
fn handle_frame(
    core: &Arc<RwLock<Core>>,
    metrics: &ServerMetrics,
    recorder: &FlightRecorder,
    conn: &mut PlaneConn,
    frame: Frame,
) {
    match &conn.session {
        None => {
            // Handshake: the first frame must be Setup.
            if frame.kind != FrameKind::Setup {
                finish_conn(core, conn);
                return;
            }
            let Ok(setup) = SetupRequest::from_wire(&frame.payload) else {
                finish_conn(core, conn);
                return;
            };
            let (msg_tx, msg_rx) = bounded::<ServerMsg>(CLIENT_CHANNEL_DEPTH);
            let counters = Arc::new(da_telemetry::ConnCounters::default());
            let (client, id_base, id_mask, kicked, vendor) = {
                let mut c = core.write();
                let (client, id_base, id_mask) = c.add_client_with_counters(
                    setup.client_name.clone(),
                    msg_tx,
                    Arc::clone(&counters),
                );
                c.attach_waker(client, Arc::clone(&conn.waker));
                let kicked = Arc::clone(&c.clients[&client.0].kicked);
                (client, id_base, id_mask, kicked, c.config.vendor.clone())
            };
            let reply = SetupReply {
                protocol_major: da_proto::PROTOCOL_MAJOR,
                protocol_minor: da_proto::PROTOCOL_MINOR,
                client,
                id_base,
                id_mask,
                vendor,
            };
            let mut w = WireWriter::new();
            reply.write(&mut w);
            let out = Frame { kind: FrameKind::SetupReply, payload: w.finish() };
            conn.wrbuf.extend_from_slice(&out.encode());
            conn.session = Some(ClientSession { client, msg_rx, counters, kicked, removed: false });
        }
        Some(sess) => {
            if frame.kind != FrameKind::Request {
                return;
            }
            da_telemetry::ConnCounters::bump(&sess.counters.requests, 1);
            da_telemetry::ConnCounters::bump(&sess.counters.bytes_in, frame.payload.len() as u64);
            metrics.wire_frames_in_total.inc();
            metrics.wire_bytes_in_total.add(frame.payload.len() as u64);
            let client = sess.client;
            let mut r = WireReader::new(&frame.payload);
            let decoded = r.u32().ok().and_then(|seq| Request::read(&mut r).ok().map(|req| (seq, req)));
            match decoded {
                Some((seq, req)) => {
                    // Ingress stage: frame reassembly + decode complete.
                    recorder.ingress(client.0, seq, req.opcode());
                    // Sharded fast path first; the write lock only for
                    // requests that touch cross-shard state.
                    if !crate::fastpath::try_dispatch(core, client, seq, &req) {
                        let mut c = core.write();
                        dispatch(&mut c, client, seq, req);
                    }
                }
                None => {
                    let mut r = WireReader::new(&frame.payload);
                    let seq = r.u32().unwrap_or(0);
                    let c = core.read();
                    c.send_to_client(
                        client,
                        ServerMsg::Error(
                            seq,
                            da_proto::ProtoError::new(
                                da_proto::ErrorCode::BadRequest,
                                0,
                                "undecodable request",
                            ),
                        ),
                    );
                }
            }
        }
    }
}

/// Moves queued outbound messages into the write buffer until the
/// channel is empty or the unflushed backlog reaches
/// [`WRITE_BACKLOG_CAP`], keeping the per-connection and server wire
/// counters in step (the old writer thread's `emit_msg` accounting).
/// The cap is what lets the bounded channel fill and the slow-client
/// eviction engage when the transport stops accepting bytes. Returns
/// whether anything moved; sets `conn.closing` if a Shutdown message
/// was dequeued.
fn drain_outbound(conn: &mut PlaneConn, metrics: &ServerMetrics, recorder: &FlightRecorder) -> bool {
    let mut moved = false;
    loop { // rt-ok: bounded by the write-backlog cap and try_recv, both break on exhaustion
        if conn.wrbuf.len() - conn.wroff >= WRITE_BACKLOG_CAP {
            break;
        }
        let Some(sess) = &conn.session else { break };
        let Ok(msg) = sess.msg_rx.try_recv() else { break };
        moved = true;
        let last = matches!(msg, ServerMsg::Shutdown(_));
        let slot = match &msg {
            ServerMsg::Reply(..) => Some(&sess.counters.replies),
            ServerMsg::Event(..) => Some(&sess.counters.events),
            ServerMsg::Error(..) => Some(&sess.counters.errors),
            ServerMsg::Shutdown(_) => None,
        };
        // Drain stage: the correlated message reaches the write buffer.
        match &msg {
            ServerMsg::Reply(seq, _) | ServerMsg::Error(seq, _) => {
                recorder.drain_reply(sess.client.0, *seq);
            }
            ServerMsg::Event(Event::CommandDone { loud, index, .. }) => {
                recorder.drain_event(loud.0, *index, sess.client.0);
            }
            _ => {}
        }
        let frame = encode_msg(msg);
        if let Some(slot) = slot {
            da_telemetry::ConnCounters::bump(slot, 1);
            da_telemetry::ConnCounters::bump(&sess.counters.bytes_out, frame.payload.len() as u64);
            metrics.wire_frames_out_total.inc();
            metrics.wire_bytes_out_total.add(frame.payload.len() as u64);
        }
        conn.wrbuf.extend_from_slice(&frame.encode());
        if last {
            conn.closing = true;
            break;
        }
    }
    moved
}

/// Encodes one server message as a wire frame.
pub(crate) fn encode_msg(msg: ServerMsg) -> Frame {
    match msg {
        ServerMsg::Reply(seq, reply) => {
            let mut w = WireWriter::new();
            w.u32(seq);
            reply.write(&mut w);
            Frame { kind: FrameKind::Reply, payload: w.finish() }
        }
        ServerMsg::Event(event) => {
            let mut w = WireWriter::new();
            event.write(&mut w);
            Frame { kind: FrameKind::Event, payload: w.finish() }
        }
        ServerMsg::Error(seq, e) => {
            let mut w = WireWriter::new();
            w.u32(seq);
            e.write(&mut w);
            Frame { kind: FrameKind::Error, payload: w.finish() }
        }
        ServerMsg::Shutdown(reason) => {
            // The farewell rides the error channel with sequence 0
            // (never a live request), so old clients fail soft and new
            // ones can surface the reason.
            let detail = match reason {
                DisconnectReason::ServerShutdown => "server shutting down",
                DisconnectReason::SlowClient => "evicted: outbound channel full (slow client)",
            };
            let mut w = WireWriter::new();
            w.u32(0);
            da_proto::ProtoError::new(da_proto::ErrorCode::BadAccess, 0, detail).write(&mut w);
            Frame { kind: FrameKind::Error, payload: w.finish() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServerConfig;
    use da_proto::codec::MAX_FRAME_PAYLOAD;

    /// A scripted transport: `try_read` hands out the scripted chunks
    /// one per call (empty script → WouldBlock), `try_write` collects
    /// everything.
    struct ScriptedPoll {
        chunks: std::collections::VecDeque<Vec<u8>>,
        written: Vec<u8>,
        eof_after_script: bool,
        /// When set, `try_write` refuses bytes (a stalled TCP reader).
        write_blocked: bool,
    }

    impl ScriptedPoll {
        fn new(chunks: Vec<Vec<u8>>) -> ScriptedPoll {
            ScriptedPoll {
                chunks: chunks.into(),
                written: Vec::new(),
                eof_after_script: false,
                write_blocked: false,
            }
        }
    }

    impl Pollable for ScriptedPoll {
        fn try_read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.chunks.pop_front() {
                Some(chunk) => {
                    assert!(chunk.len() <= buf.len(), "scripted chunk larger than read buffer");
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
                None if self.eof_after_script => Ok(0),
                None => Err(std::io::ErrorKind::WouldBlock.into()),
            }
        }
        fn try_write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.write_blocked {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn set_waker(&mut self, _waker: da_proto::transport::Waker) {}
    }

    /// Fetches the metrics handle without leaving a read guard bound
    /// in the caller's scope (keeps the lock-order lint exact).
    fn metrics_of(core: &Arc<RwLock<Core>>) -> ServerMetrics {
        core.read().tel.metrics.clone()
    }

    /// Fetches the flight recorder the same way.
    fn recorder_of(core: &Arc<RwLock<Core>>) -> Arc<FlightRecorder> {
        Arc::clone(&core.read().tel.recorder)
    }

    fn test_core() -> Arc<RwLock<Core>> {
        Arc::new(RwLock::new(Core::new(ServerConfig {
            manual_ticks: true,
            ..ServerConfig::default()
        })))
    }

    fn setup_frame() -> Vec<u8> {
        let s = SetupRequest {
            protocol_major: da_proto::PROTOCOL_MAJOR,
            protocol_minor: da_proto::PROTOCOL_MINOR,
            client_name: "reassembly-test".into(),
        };
        let mut w = WireWriter::new();
        s.write(&mut w);
        Frame { kind: FrameKind::Setup, payload: w.finish() }.encode()
    }

    fn pump_until_quiet(core: &Arc<RwLock<Core>>, metrics: &ServerMetrics, conn: &mut PlaneConn) {
        let recorder = recorder_of(core);
        for _ in 0..1000 {
            if !pump_conn(core, metrics, &recorder, false, conn) {
                break;
            }
        }
    }

    /// Decodes every frame currently in the scripted transport's write
    /// capture.
    fn written_frames(conn: &mut PlaneConn) -> Vec<Frame> {
        // SAFETY: the test Pollable is always a ScriptedPoll (every test
        // conn is built over one), so the raw downcast re-views the same
        // allocation at its concrete type; `&mut conn.io` is exclusive.
        let io: &mut ScriptedPoll = unsafe {
            // lint: allow-unwrap -- n/a (no unwrap; raw downcast scoped to tests)
            &mut *(std::ptr::addr_of_mut!(*conn.io) as *mut ScriptedPoll)
        };
        let mut buf = BytesMut::from(&io.written[..]);
        let mut out = Vec::new();
        while let Ok(Some(f)) = Frame::decode(&mut buf) {
            out.push(f);
        }
        out
    }

    #[test]
    fn header_split_across_wakeups_reassembles() {
        let core = test_core();
        let metrics = metrics_of(&core);
        let setup = setup_frame();
        // Split mid-header: 2 bytes of the length word, then the rest.
        let chunks = vec![setup[..2].to_vec(), setup[2..].to_vec()];
        let mut conn = PlaneConn::new(Box::new(ScriptedPoll::new(chunks)), Arc::new(|| {}));
        pump_until_quiet(&core, &metrics, &mut conn);
        assert!(!conn.dead);
        assert!(conn.session.is_some(), "setup should complete from a split header");
        let frames = written_frames(&mut conn);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].kind, FrameKind::SetupReply);
        assert_eq!(core.read().clients.len(), 1);
    }

    #[test]
    fn payload_one_byte_per_readiness_event() {
        let core = test_core();
        let metrics = metrics_of(&core);
        let setup = setup_frame();
        // One byte per wakeup, the worst legal fragmentation.
        let chunks: Vec<Vec<u8>> = setup.iter().map(|&b| vec![b]).collect();
        let mut conn = PlaneConn::new(Box::new(ScriptedPoll::new(chunks)), Arc::new(|| {}));
        pump_until_quiet(&core, &metrics, &mut conn);
        assert!(conn.session.is_some(), "setup should complete byte by byte");
        let frames = written_frames(&mut conn);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].kind, FrameKind::SetupReply);
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let core = test_core();
        let metrics = metrics_of(&core);
        // A 5-byte header declaring a payload beyond MAX_FRAME_PAYLOAD;
        // no payload bytes ever arrive, and none are needed: the length
        // word alone must kill the connection.
        let declared = (MAX_FRAME_PAYLOAD as u32) + 1;
        let mut header = declared.to_le_bytes().to_vec();
        header.push(5); // FrameKind::Setup
        let mut conn = PlaneConn::new(Box::new(ScriptedPoll::new(vec![header])), Arc::new(|| {}));
        pump_until_quiet(&core, &metrics, &mut conn);
        assert!(conn.dead, "oversized frame must kill the connection");
        assert!(conn.session.is_none());
        // The reassembly buffer holds only the 5 header bytes — the
        // declared 16 MiB payload was never allocated.
        assert!(conn.rdbuf.len() <= 5);
        assert_eq!(core.read().clients.len(), 0);
    }

    #[test]
    fn stalled_reader_backlog_caps_and_evicts() {
        let core = test_core();
        let metrics = metrics_of(&core);
        let mut script = ScriptedPoll::new(vec![setup_frame()]);
        script.write_blocked = true;
        let mut conn = PlaneConn::new(Box::new(script), Arc::new(|| {}));
        pump_until_quiet(&core, &metrics, &mut conn);
        let client = conn.session.as_ref().expect("setup completes").client;
        // The transport accepts nothing; keep queueing replies while
        // pumping. The drain must stall at WRITE_BACKLOG_CAP so the
        // bounded channel fills and the §12 eviction path fires.
        let detail = "x".repeat(200);
        let mut evicted = false;
        for _ in 0..100 {
            {
                let c = core.read();
                for seq in 0..64u32 {
                    c.send_to_client(
                        client,
                        ServerMsg::Error(
                            seq,
                            da_proto::ProtoError::new(da_proto::ErrorCode::BadRequest, 0, &*detail),
                        ),
                    );
                }
            }
            pump_conn(&core, &metrics, &recorder_of(&core), false, &mut conn);
            if conn.closing {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "a stalled reader must be evicted, not buffered forever");
        assert_eq!(metrics.clients_evicted_total.get(), 1);
        assert!(
            conn.wrbuf.len() - conn.wroff < WRITE_BACKLOG_CAP + 1024,
            "write backlog must stay near the cap, got {} bytes",
            conn.wrbuf.len() - conn.wroff
        );
        assert_eq!(core.read().clients.len(), 0, "evicted client leaves the core");
    }

    #[test]
    fn channel_shutdown_yields_single_farewell() {
        let core = test_core();
        let metrics = metrics_of(&core);
        let mut conn = PlaneConn::new(Box::new(ScriptedPoll::new(vec![setup_frame()])), Arc::new(|| {}));
        pump_until_quiet(&core, &metrics, &mut conn);
        let client = conn.session.as_ref().expect("setup completes").client;
        // A farewell rides the channel *and* the shutdown flag is up:
        // the teardown branch must not append a second farewell.
        core.read().send_to_client(client, ServerMsg::Shutdown(DisconnectReason::ServerShutdown));
        let recorder = recorder_of(&core);
        for _ in 0..10 {
            pump_conn(&core, &metrics, &recorder, true, &mut conn);
        }
        assert!(conn.dead);
        let frames = written_frames(&mut conn);
        let farewells = frames.iter().filter(|f| f.kind == FrameKind::Error).count();
        assert_eq!(farewells, 1, "client must see exactly one farewell frame");
    }

    #[test]
    fn injector_skips_dead_workers_and_counts_unplaceable() {
        let core = test_core();
        let metrics = metrics_of(&core);
        let (dead_tx, dead_rx) = unbounded::<Box<dyn Pollable>>();
        drop(dead_rx); // worker 0's thread is gone
        let (live_tx, live_rx) = unbounded::<Box<dyn Pollable>>();
        let inj = PlaneInjector {
            injectors: vec![dead_tx, live_tx],
            threads: vec![std::thread::current(), std::thread::current()],
            next: AtomicUsize::new(0),
            metrics: metrics.clone(),
        };
        // Round robin starts at the dead worker; the connection must
        // fail over to the live one rather than vanish.
        inj.add(Box::new(ScriptedPoll::new(vec![])));
        assert!(live_rx.try_recv().is_ok(), "connection fails over to the live worker");
        assert_eq!(metrics.conn_plane_unplaced_total.get(), 0);
        // With every worker gone, the drop is counted.
        drop(live_rx);
        inj.add(Box::new(ScriptedPoll::new(vec![])));
        assert_eq!(metrics.conn_plane_unplaced_total.get(), 1);
    }

    #[test]
    fn eof_reaps_client_eagerly() {
        let core = test_core();
        let metrics = metrics_of(&core);
        let mut script = ScriptedPoll::new(vec![setup_frame()]);
        script.eof_after_script = true;
        let mut conn = PlaneConn::new(Box::new(script), Arc::new(|| {}));
        pump_until_quiet(&core, &metrics, &mut conn);
        assert!(conn.dead, "EOF after setup tears the connection down");
        assert_eq!(core.read().clients.len(), 0, "client must be removed on EOF");
    }
}
