//! Virtual devices: the protocol's device-independent building blocks.
//!
//! "The different classes of virtual devices are subclasses of a common
//! virtual device object class" (paper §6.1). Here the common object is
//! [`VDev`]; the subclass payload is [`ClassState`]. Virtual devices hold
//! *all* state for their operations, which is what lets the server
//! deactivate a LOUD and later restore its devices "to their state prior
//! to the moment the LOUD was deactivated" (paper §5.4): a deactivated
//! device simply stops being stepped by the engine, its state frozen in
//! place.

use da_dsp::dtmf::Detector as DtmfDetector;
use da_dsp::silence::PauseDetector;
use da_proto::command::RecordTermination;
use da_proto::ids::{Atom, ClientId, VDeviceId};
use da_proto::types::{Attribute, DeviceClass};
use da_synth::music::MusicSynth;
use da_synth::recog::Recognizer;
use da_synth::tts::Synthesizer;
use da_hw::pstn::LineId;
use std::collections::{HashMap, VecDeque};

/// Which physical device a virtual device is bound to while active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwBinding {
    /// A speaker, by hardware index.
    Speaker(usize),
    /// A microphone, by hardware index.
    Microphone(usize),
    /// A telephone line.
    Line(LineId),
    /// A software device (player, recorder, mixer, ...): no physical
    /// resource needed (paper §5.9: "The player and recorder will be
    /// software devices, or algorithms").
    Software,
}

/// Class-specific device state.
#[derive(Debug)]
pub enum ClassState {
    /// External input (microphone).
    Input,
    /// External output (speaker).
    Output,
    /// Sound player.
    Player,
    /// Sound recorder.
    Recorder,
    /// Telephone line endpoint.
    Telephone(TelephoneState),
    /// N-to-1 mixer with per-input percentages.
    Mixer {
        /// Percent contribution per sink port.
        gains: Vec<u8>,
    },
    /// Text-to-speech engine.
    Synth(Box<Synthesizer>),
    /// Word recognizer.
    Recognizer(Box<Recognizer>),
    /// Note synthesizer.
    Music(Box<MusicSynth>),
    /// N-to-M routing switch.
    Crossbar {
        /// Connected (input, output) pairs.
        routes: std::collections::HashSet<(u8, u8)>,
    },
    /// Generic stream processor (device-control configured).
    Dsp {
        /// The active effect.
        effect: DspEffect,
    },
}

/// Effects selectable on a DSP device through the `EFFECT` device control
/// (paper §2: extensibility "to support new devices and signal processing
/// algorithms as they emerge" without protocol changes).
#[derive(Debug)]
pub enum DspEffect {
    /// Samples pass through with only the device gain applied.
    PassThrough,
    /// Feedback echo.
    Echo(da_dsp::effects::Echo),
    /// Single-pole low-pass filter.
    LowPass(da_dsp::effects::LowPass),
}

/// Telephone per-device runtime: in-band DTMF detection and call-state
/// tracking for event generation.
#[derive(Debug)]
pub struct TelephoneState {
    /// Detector running over received audio.
    pub dtmf: DtmfDetector,
    /// Last observed line state, for edge-triggered events.
    pub last_state: da_hw::pstn::LineState,
}

impl TelephoneState {
    /// Creates fresh telephone state.
    pub fn new() -> Self {
        TelephoneState {
            dtmf: DtmfDetector::new(da_hw::pstn::LINE_RATE),
            last_state: da_hw::pstn::LineState::OnHook,
        }
    }
}

impl Default for TelephoneState {
    fn default() -> Self {
        Self::new()
    }
}

/// A durational operation in progress on a device (driven by the command
/// queue, or for `SendDtmf` possibly issued immediately).
#[derive(Debug)]
pub enum ActiveOp {
    /// Playing a sound resource.
    Play {
        /// The sound's raw resource id.
        sound: u32,
        /// Next frame to emit.
        pos: u64,
        /// Whether `PlayStarted` has been emitted.
        started: bool,
        /// Frames of silence substituted due to streaming underrun.
        underrun: u64,
        /// Frame position of the last sync mark.
        last_sync: u64,
    },
    /// Playing a pre-rendered buffer (speech or music synthesis output).
    Render {
        /// Rendered samples.
        buf: Vec<i16>,
        /// Next sample to emit.
        pos: usize,
    },
    /// Recording into a sound resource.
    Record {
        /// The sound's raw resource id.
        sound: u32,
        /// Frames recorded so far.
        frames: u64,
        /// Termination condition.
        term: RecordTermination,
        /// Pause detector for `OnPause` termination.
        pause: PauseDetector,
        /// Frames to discard at the start (mid-tick seam alignment).
        skip: u64,
        /// Whether `RecordStarted` has been emitted.
        started: bool,
        /// Set when the feeding call hung up.
        hangup_seen: bool,
        /// Frame position of the last sync mark.
        last_sync: u64,
        /// Automatic gain control, when the AGC device control is set
        /// (paper §5.1 recorder attributes).
        agc: Option<Box<da_dsp::agc::Agc>>,
        /// Remove long pauses from the finished recording (paper §5.1:
        /// "compress the recorded audio by removing pauses").
        compress_pauses: bool,
    },
    /// Dialing and awaiting call progress.
    Dial {
        /// The number to dial.
        number: String,
        /// Whether the dial has been issued to the line.
        issued: bool,
    },
    /// Waiting for (or having just performed) an answer.
    Answer,
    /// Emitting DTMF tones in-band.
    SendDtmf {
        /// Pre-rendered tone samples.
        buf: Vec<i16>,
        /// Next sample to emit.
        pos: usize,
    },
}

impl ActiveOp {
    /// Whether this operation produces samples on the device's source
    /// path toward other devices.
    pub fn is_producing(&self) -> bool {
        matches!(self, ActiveOp::Play { .. } | ActiveOp::Render { .. })
    }
}

/// The common virtual-device object.
#[derive(Debug)]
pub struct VDev {
    /// Resource id.
    pub id: VDeviceId,
    /// Owning client.
    pub owner: ClientId,
    /// Containing LOUD (raw id).
    pub loud: u32,
    /// Root of the containing LOUD tree (raw id).
    pub root: u32,
    /// Device class.
    pub class: DeviceClass,
    /// Constraint attributes (grown by `AugmentVDevice`).
    pub attrs: Vec<Attribute>,
    /// Output gain in milli-units (1000 = unity).
    pub gain_milli: u32,
    /// Physical binding while the LOUD is active.
    pub binding: Option<HwBinding>,
    /// Operating sample rate (resolved at activation; 8000 default).
    pub rate: u32,
    /// Frames between sync marks (0 = default: 100 ms).
    pub sync_interval: u32,
    /// Device controls (paper §5.1): extension knobs by atom.
    pub controls: HashMap<Atom, Vec<u8>>,
    /// Class-specific state.
    pub state: ClassState,
    /// Source-port buffers: samples produced this tick (and any carry).
    pub src_bufs: Vec<VecDeque<i16>>,
    /// Sink-port buffers: samples delivered by wires.
    pub sink_bufs: Vec<VecDeque<i16>>,
    /// Paused by an immediate `Pause` command.
    pub paused: bool,
    /// Current durational operation.
    pub op: Option<ActiveOp>,
    /// Set by an immediate `Stop` to abort `op` at the next engine step.
    pub abort_op: bool,
}

/// Number of (source, sink) ports for a device of `class` with `attrs`.
pub fn port_counts(class: DeviceClass, attrs: &[Attribute]) -> (usize, usize) {
    let attr_srcs = attrs.iter().find_map(|a| match a {
        Attribute::SourcePorts(n) => Some(*n as usize),
        _ => None,
    });
    let attr_sinks = attrs.iter().find_map(|a| match a {
        Attribute::SinkPorts(n) => Some(*n as usize),
        _ => None,
    });
    let (d_src, d_sink) = match class {
        DeviceClass::Input => (1, 0),
        DeviceClass::Output => (0, 1),
        DeviceClass::Player => (1, 0),
        DeviceClass::Recorder => (0, 1),
        DeviceClass::Telephone => (1, 1),
        DeviceClass::Mixer => (1, 2),
        DeviceClass::SpeechSynthesizer => (1, 0),
        DeviceClass::SpeechRecognizer => (0, 1),
        DeviceClass::MusicSynthesizer => (1, 0),
        DeviceClass::Crossbar => (2, 2),
        DeviceClass::Dsp => (1, 1),
    };
    // Every port the class's engine code addresses must exist: attributes
    // may widen a device but never remove its mandatory ports (a Recorder
    // with zero sinks would be unusable — and uncrashable-into).
    let (min_src, min_sink) = (d_src.min(1), d_sink.min(1));
    (
        attr_srcs.unwrap_or(d_src).clamp(min_src, 16),
        attr_sinks.unwrap_or(d_sink).clamp(min_sink, 16),
    )
}

impl VDev {
    /// Creates a virtual device. The class payload is initialised with
    /// software engines where the class requires them.
    pub fn new(
        id: VDeviceId,
        owner: ClientId,
        loud: u32,
        root: u32,
        class: DeviceClass,
        attrs: Vec<Attribute>,
    ) -> Self {
        let (n_src, n_sink) = port_counts(class, &attrs);
        let rate = attrs
            .iter()
            .find_map(|a| match a {
                Attribute::SampleRate(r) => Some(*r),
                _ => None,
            })
            .unwrap_or(8000);
        let state = match class {
            DeviceClass::Input => ClassState::Input,
            DeviceClass::Output => ClassState::Output,
            DeviceClass::Player => ClassState::Player,
            DeviceClass::Recorder => ClassState::Recorder,
            DeviceClass::Telephone => ClassState::Telephone(TelephoneState::new()),
            DeviceClass::Mixer => ClassState::Mixer { gains: vec![100; n_sink] },
            DeviceClass::SpeechSynthesizer => {
                ClassState::Synth(Box::new(Synthesizer::new(rate)))
            }
            DeviceClass::SpeechRecognizer => {
                ClassState::Recognizer(Box::new(Recognizer::new()))
            }
            DeviceClass::MusicSynthesizer => ClassState::Music(Box::new(MusicSynth::new(rate))),
            DeviceClass::Crossbar => ClassState::Crossbar { routes: Default::default() },
            DeviceClass::Dsp => ClassState::Dsp { effect: DspEffect::PassThrough },
        };
        VDev {
            id,
            owner,
            loud,
            root,
            class,
            attrs,
            gain_milli: da_dsp::gain::UNITY,
            binding: None,
            rate,
            sync_interval: 0,
            controls: HashMap::new(),
            state,
            src_bufs: (0..n_src).map(|_| VecDeque::new()).collect(),
            sink_bufs: (0..n_sink).map(|_| VecDeque::new()).collect(),
            paused: false,
            op: None,
            abort_op: false,
        }
    }

    /// Effective sync-mark spacing in frames.
    pub fn sync_every(&self) -> u64 {
        if self.sync_interval > 0 {
            self.sync_interval as u64
        } else {
            (self.rate as u64) / 10
        }
    }

    /// Whether a source/sink port index is valid.
    pub fn has_port(&self, dir: da_proto::types::PortDir, index: u8) -> bool {
        match dir {
            da_proto::types::PortDir::Source => (index as usize) < self.src_bufs.len(),
            da_proto::types::PortDir::Sink => (index as usize) < self.sink_bufs.len(),
        }
    }

    /// Drains up to `n` samples from a sink port, padding with silence to
    /// exactly `n`.
    pub fn drain_sink(&mut self, port: usize, n: usize) -> Vec<i16> {
        let mut out = Vec::with_capacity(n);
        self.drain_sink_into(port, n, &mut out);
        out
    }

    /// Drains up to `n` samples from a sink port into `out`, padding with
    /// silence to exactly `n` appended samples. Bulk slice copies instead
    /// of per-sample pops; allocation-free when `out` has capacity.
    pub fn drain_sink_into(&mut self, port: usize, n: usize, out: &mut Vec<i16>) {
        let buf = &mut self.sink_bufs[port];
        let have = buf.len().min(n);
        let (a, b) = buf.as_slices();
        let from_a = have.min(a.len());
        out.extend_from_slice(&a[..from_a]);
        out.extend_from_slice(&b[..have - from_a]);
        buf.drain(..have);
        out.resize(out.len() + (n - have), 0);
    }

    /// Clears all port buffers (on deactivate/stop, so stale audio never
    /// leaks into a later activation).
    pub fn clear_ports(&mut self) {
        for b in &mut self.src_bufs {
            b.clear();
        }
        for b in &mut self.sink_bufs {
            b.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(class: DeviceClass, attrs: Vec<Attribute>) -> VDev {
        VDev::new(VDeviceId(1), ClientId(1), 10, 10, class, attrs)
    }

    #[test]
    fn default_port_counts() {
        assert_eq!(port_counts(DeviceClass::Player, &[]), (1, 0));
        assert_eq!(port_counts(DeviceClass::Recorder, &[]), (0, 1));
        assert_eq!(port_counts(DeviceClass::Telephone, &[]), (1, 1));
        assert_eq!(port_counts(DeviceClass::Mixer, &[]), (1, 2));
        assert_eq!(port_counts(DeviceClass::Output, &[]), (0, 1));
    }

    #[test]
    fn zero_port_attributes_cannot_strip_mandatory_ports() {
        // A hostile client must not be able to make the engine index a
        // missing port.
        let attrs = vec![Attribute::SinkPorts(0), Attribute::SourcePorts(0)];
        assert_eq!(port_counts(DeviceClass::Recorder, &attrs), (0, 1));
        assert_eq!(port_counts(DeviceClass::Player, &attrs), (1, 0));
        assert_eq!(port_counts(DeviceClass::Telephone, &attrs), (1, 1));
        assert_eq!(port_counts(DeviceClass::Output, &attrs), (0, 1));
        assert_eq!(port_counts(DeviceClass::SpeechRecognizer, &attrs), (0, 1));
        let d = dev(DeviceClass::Recorder, attrs);
        assert_eq!(d.sink_bufs.len(), 1);
    }

    #[test]
    fn attr_port_counts_override() {
        let attrs = vec![Attribute::SinkPorts(4)];
        assert_eq!(port_counts(DeviceClass::Mixer, &attrs), (1, 4));
        let d = dev(DeviceClass::Mixer, attrs);
        assert_eq!(d.sink_bufs.len(), 4);
        if let ClassState::Mixer { gains } = &d.state {
            assert_eq!(gains.len(), 4);
        } else {
            panic!("expected mixer state");
        }
    }

    #[test]
    fn rate_from_attrs() {
        let d = dev(DeviceClass::Player, vec![Attribute::SampleRate(44_100)]);
        assert_eq!(d.rate, 44_100);
        let d = dev(DeviceClass::Player, vec![]);
        assert_eq!(d.rate, 8_000);
    }

    #[test]
    fn sync_interval_default_is_100ms() {
        let d = dev(DeviceClass::Player, vec![]);
        assert_eq!(d.sync_every(), 800);
        let mut d = dev(DeviceClass::Player, vec![Attribute::SampleRate(16_000)]);
        assert_eq!(d.sync_every(), 1600);
        d.sync_interval = 123;
        assert_eq!(d.sync_every(), 123);
    }

    #[test]
    fn drain_sink_pads_silence() {
        let mut d = dev(DeviceClass::Output, vec![]);
        d.sink_bufs[0].extend([1, 2, 3]);
        assert_eq!(d.drain_sink(0, 5), vec![1, 2, 3, 0, 0]);
        assert!(d.sink_bufs[0].is_empty());
    }

    #[test]
    fn port_validity() {
        use da_proto::types::PortDir;
        let d = dev(DeviceClass::Telephone, vec![]);
        assert!(d.has_port(PortDir::Source, 0));
        assert!(d.has_port(PortDir::Sink, 0));
        assert!(!d.has_port(PortDir::Source, 1));
        let o = dev(DeviceClass::Output, vec![]);
        assert!(!o.has_port(PortDir::Source, 0));
    }

    #[test]
    fn clear_ports_empties_buffers() {
        let mut d = dev(DeviceClass::Dsp, vec![]);
        d.src_bufs[0].extend([1, 2]);
        d.sink_bufs[0].extend([3]);
        d.clear_ports();
        assert!(d.src_bufs[0].is_empty());
        assert!(d.sink_bufs[0].is_empty());
    }
}
