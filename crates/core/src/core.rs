//! The server's central state: resources, clients, hardware, activation.
//!
//! One [`Core`] lives behind a mutex; client reader threads lock it to
//! dispatch requests and the engine thread locks it once per tick. (The
//! paper's prototype used finer-grained threads — §6.1 — but all of them
//! ultimately serialise on the shared device and resource state; a single
//! lock with a tick-quantum engine gives the same architecture its
//! deterministic reference implementation.)

use crate::atoms::AtomTable;
use crate::loud::Loud;
use crate::queue::{CommandQueue, TypedQueue};
use crate::shard::{ShardSet, ShardedMap};
use crate::sound::{Catalogs, Sound};
use crate::vdevice::{HwBinding, VDev};
use crate::wire::Wire;
use crossbeam::channel::{Sender, TrySendError};
use da_hw::registry::{DeviceKind, Hardware, HwSlot, HwSpec};
use da_proto::event::{Event, EventMask};
use da_proto::ids::{Atom, ClientId, DeviceId, ResourceId};
use da_proto::reply::Reply;
use da_proto::types::{Attribute, DeviceClass, Property, QueueState};
use da_proto::ProtoError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A message queued toward one client's writer thread.
#[derive(Debug, Clone)]
pub enum ServerMsg {
    /// A reply to request `seq`.
    Reply(u32, Reply),
    /// An asynchronous event.
    Event(Event),
    /// An asynchronous error for request `seq`.
    Error(u32, ProtoError),
    /// The server is closing this connection, with the reason why.
    Shutdown(DisconnectReason),
}

/// Why the server is closing a connection (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectReason {
    /// The whole server is shutting down.
    ServerShutdown,
    /// The client stopped draining replies and its bounded outbound
    /// channel filled: after low-priority events were already dropped,
    /// a reply or error could not be queued.
    SlowClient,
}

/// Depth of each client's bounded outbound channel (frames of
/// reply/event/error backlog a client may accumulate before the
/// slow-client policy engages; DESIGN.md §12).
pub const CLIENT_CHANNEL_DEPTH: usize = 256;

/// Normalised key for event selections and properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResKey(pub u8, pub u32);

/// Converts a protocol resource id to a selection/property key.
pub fn res_key(r: ResourceId) -> ResKey {
    match r {
        ResourceId::Loud(id) => ResKey(0, id.0),
        ResourceId::VDevice(id) => ResKey(1, id.0),
        ResourceId::Sound(id) => ResKey(2, id.0),
        ResourceId::Device(id) => ResKey(3, id.0),
    }
}

/// Per-connection client state held by the core.
#[derive(Debug)]
pub struct ClientState {
    /// Connection id.
    pub id: ClientId,
    /// Diagnostic name from setup.
    pub name: String,
    /// Channel to the client's writer thread.
    pub tx: Sender<ServerMsg>,
    /// Event selections: resource → mask.
    pub selections: HashMap<ResKey, EventMask>,
    /// Wire counters shared with the connection's reader/writer threads
    /// (per-client accounting for `ListClients`).
    pub counters: std::sync::Arc<da_telemetry::ConnCounters>,
    /// Set when the slow-client policy decides to evict this client;
    /// the connection's reader thread polls it and tears down.
    pub kicked: std::sync::Arc<std::sync::atomic::AtomicBool>,
    /// Wakes the I/O worker that owns this client's connection, so a
    /// message queued by the engine is flushed on the next pump rather
    /// than after an idle-park interval.
    pub waker: Option<ClientWaker>,
}

/// Wake callback for the I/O worker owning a client's connection
/// (newtype so [`ClientState`] can keep deriving `Debug`).
pub struct ClientWaker(pub da_proto::transport::Waker);

impl ClientWaker {
    fn wake(&self) {
        (self.0)();
    }
}

impl std::fmt::Debug for ClientWaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ClientWaker")
    }
}

/// Aggregate engine statistics (the E3 CPU-fraction experiment reads
/// these).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Wall time spent inside tick processing.
    pub busy: Duration,
    /// Total frames delivered to all speakers.
    pub speaker_frames: u64,
    /// Wall time of the most recent tick.
    pub last_tick: Duration,
    /// Longest single tick observed.
    pub max_tick: Duration,
    /// Route-plan cache rebuilds (cache misses after topology changes).
    /// Stays flat across steady-state ticks.
    pub plan_rebuilds: u64,
    /// Tick index at which this snapshot was taken. `0` on the live
    /// struct inside the core; [`crate::server::ServerControl::stats`]
    /// stamps it so a copy can be dated against later ones.
    pub captured_at_tick: u64,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine pacing (virtual for tests/benches, real-time for live use).
    pub pacing: da_hw::clock::Pacing,
    /// Engine quantum in microseconds.
    pub quantum_us: u64,
    /// Hardware inventory.
    pub hw: HwSpec,
    /// TCP listen address (`None` disables the TCP listener).
    pub tcp_addr: Option<String>,
    /// When set, no engine thread is spawned; ticks are driven manually
    /// through `ServerControl::tick_n` (deterministic tests and benches).
    pub manual_ticks: bool,
    /// Vendor string reported at setup.
    pub vendor: String,
    /// Resource-map shard count (fast-path dispatch concurrency).
    pub shards: usize,
    /// Connection-plane event-loop worker threads (total I/O threads are
    /// O(this), never O(clients)).
    pub io_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pacing: da_hw::clock::Pacing::Virtual,
            quantum_us: 10_000,
            hw: HwSpec::desktop(),
            tcp_addr: None,
            manual_ticks: false,
            vendor: "desktop-audio reference server".to_string(),
            shards: 8,
            io_workers: 4,
        }
    }
}

/// The complete mutable server state.
pub struct Core {
    /// Configuration the server was started with.
    pub config: ServerConfig,
    /// Live hardware.
    pub hw: Hardware,
    /// Remote parties scripted by tests/benches, ticked by the engine.
    pub remote_parties: Vec<da_hw::pstn::RemoteParty>,
    /// Connected clients.
    pub clients: HashMap<u32, ClientState>,
    /// All LOUDs by raw id (sharded by owning client; DESIGN.md §13).
    pub louds: ShardedMap<u32, Loud>,
    /// All virtual devices by raw id (sharded).
    pub vdevs: ShardedMap<u32, VDev>,
    /// All wires by raw id (sharded).
    pub wires: ShardedMap<u32, Wire>,
    /// All sounds by raw id (sharded).
    pub sounds: ShardedMap<u32, Sound>,
    /// Server-side sound catalogues.
    pub catalogs: Catalogs,
    /// Content-addressed shared sound store and transcode cache
    /// (DESIGN.md §17). A leaf structure: interior-mutable behind its
    /// own mutex, ranked below the core lock and the stripes, usable
    /// from both dispatch paths and the engine tick.
    pub store: crate::store::SoundStore,
    /// Interned names.
    pub atoms: AtomTable,
    /// Properties by resource (sharded).
    pub properties: ShardedMap<ResKey, HashMap<u32, Property>>,
    /// Per-shard stripe locks for the fast dispatch path. Lock order:
    /// core → stripe, at most one stripe per thread.
    pub stripes: ShardSet,
    /// Mapped root LOUDs, top of stack first (paper §5.4).
    pub active_stack: Vec<u32>,
    /// The audio manager connection holding redirection, if any.
    pub redirect_client: Option<u32>,
    /// Root LOUDs whose map request awaits manager approval.
    pub pending_maps: Vec<u32>,
    /// Root LOUDs whose raise request awaits manager approval.
    pub pending_raises: Vec<u32>,
    /// Roots whose current queue command failed this tick (engine use).
    pub queue_failures: Vec<u32>,
    /// Device time: frames elapsed at the nominal 8 kHz rate.
    pub device_time: u64,
    /// Tick counter.
    pub tick_index: u64,
    /// Engine statistics.
    pub stats: EngineStats,
    /// Topology generation: bumped by every mutation that can change
    /// routing (wires, devices, LOUD structure, activation/bindings).
    /// The engine's plan cache rebuilds when this moves. Atomic so the
    /// read-locked fast path can bump it without the write lock.
    pub topology_gen: AtomicU64,
    /// Cached route plans and scratch buffers (engine data plane).
    pub plane: crate::plan::DataPlane,
    /// Metrics registry, journal, and per-opcode dispatch counts.
    pub tel: crate::telem::ServerTelemetry,
    /// Next client id to hand out.
    pub next_client: u32,
    /// Set when the server is shutting down.
    pub shutting_down: bool,
}

impl Core {
    /// Creates the core from a configuration.
    pub fn new(config: ServerConfig) -> Self {
        let hw = Hardware::new(config.hw.clone());
        let shards = config.shards.max(1);
        let tel = crate::telem::ServerTelemetry::default();
        let catalogs = Catalogs::with_system_sounds();
        let store = crate::store::SoundStore::new(&tel.metrics);
        // Catalogue payloads are content-addressed from the start, so a
        // client upload of identical bytes dedupes against them.
        for cat in catalogs.sounds() {
            store.adopt(cat.hash, &cat.data);
        }
        Core {
            config,
            hw,
            remote_parties: Vec::new(),
            clients: HashMap::new(),
            louds: ShardedMap::new(shards),
            vdevs: ShardedMap::new(shards),
            wires: ShardedMap::new(shards),
            sounds: ShardedMap::new(shards),
            catalogs,
            store,
            atoms: AtomTable::new(),
            properties: ShardedMap::new(shards),
            stripes: ShardSet::new(shards),
            active_stack: Vec::new(),
            redirect_client: None,
            pending_maps: Vec::new(),
            pending_raises: Vec::new(),
            queue_failures: Vec::new(),
            device_time: 0,
            tick_index: 0,
            stats: EngineStats::default(),
            topology_gen: AtomicU64::new(0),
            plane: crate::plan::DataPlane::default(),
            tel,
            next_client: 1,
        shutting_down: false,
        }
    }

    /// Marks the routing topology as changed: the engine rebuilds its
    /// cached route plans before the next tick. Cheap (a counter bump),
    /// so every mutation path calls it unconditionally. Shared-reference
    /// form so the read-locked fast path can also call it.
    pub fn invalidate_plans(&self) {
        self.topology_gen.fetch_add(1, Ordering::Relaxed);
    }

    // ---- clients -----------------------------------------------------------

    /// Registers a new client, returning its id and id range.
    pub fn add_client(&mut self, name: String, tx: Sender<ServerMsg>) -> (ClientId, u32, u32) {
        self.add_client_with_counters(name, tx, Default::default())
    }

    /// Registers a new client whose connection threads share `counters`.
    pub fn add_client_with_counters(
        &mut self,
        name: String,
        tx: Sender<ServerMsg>,
        counters: std::sync::Arc<da_telemetry::ConnCounters>,
    ) -> (ClientId, u32, u32) {
        let id = self.next_client;
        self.next_client += 1;
        let client = ClientId(id);
        self.clients.insert(
            id,
            ClientState {
                id: client,
                name,
                tx,
                selections: HashMap::new(),
                counters,
                kicked: Default::default(),
                waker: None,
            },
        );
        self.tel.metrics.clients_total.inc();
        self.tel.metrics.clients_connected.set(self.clients.len() as i64);
        // 20 bits of id space per client, X-style.
        let base = id << 20;
        let mask = 0x000F_FFFF;
        (client, base, mask)
    }

    /// Attaches the owning I/O worker's wake callback to a client, so
    /// outbound messages queued by other threads (engine, other
    /// clients' dispatches) get flushed promptly instead of waiting
    /// out the worker's idle park.
    pub fn attach_waker(&mut self, client: ClientId, waker: da_proto::transport::Waker) {
        if let Some(cs) = self.clients.get_mut(&client.0) {
            cs.waker = Some(ClientWaker(waker));
        }
    }

    /// Removes a client and destroys everything it owns.
    pub fn remove_client(&mut self, client: ClientId) {
        // Unmap and destroy the client's root LOUDs (which cascades).
        let roots: Vec<u32> = self
            .louds
            .values()
            .filter(|l| l.owner == client && l.is_root())
            .map(|l| l.id.0)
            .collect();
        for root in roots {
            self.destroy_loud(root);
        }
        // Sounds die with their owner — and so must their property
        // tables, which `DeleteSound` removes but a plain `retain` on
        // the sound map would leak.
        let dead_sounds: Vec<u32> = self
            .sounds
            .iter()
            .filter(|(_, s)| s.owner == client)
            .map(|(&id, _)| id)
            .collect();
        for id in dead_sounds {
            self.sounds.remove(&id);
            self.properties.remove(&ResKey(2, id));
        }
        if self.redirect_client == Some(client.0) {
            self.redirect_client = None;
            // Approve anything the departed manager was sitting on.
            let pending: Vec<u32> = self.pending_maps.drain(..).collect();
            for loud in pending {
                self.map_loud_now(loud);
            }
            let raises: Vec<u32> = self.pending_raises.drain(..).collect();
            for loud in raises {
                self.raise_loud_now(loud);
            }
        }
        self.clients.remove(&client.0);
        // Departed clients must leave no orphan partial traces or queue
        // watches behind (DESIGN.md §15).
        self.tel.recorder.purge_client(client.0);
        // Surviving clients may hold event selections keyed on the
        // resources that just died with the departed client; sweep them
        // so nothing references a destroyed id (invariant V13).
        for cs in self.clients.values_mut() {
            cs.selections.retain(|key, _| match key.0 {
                0 => self.louds.contains_key(&key.1),
                1 => self.vdevs.contains_key(&key.1),
                2 => self.sounds.contains_key(&key.1),
                _ => (key.1 as usize) < self.hw.device_count(),
            });
        }
        self.tel.metrics.clients_connected.set(self.clients.len() as i64);
        self.recompute_activation();
    }

    // ---- events ------------------------------------------------------------

    /// Sends an event to every client that selected its category on
    /// `key`.
    pub fn send_event(&self, key: ResKey, event: Event) {
        // Relax: events fire at op boundaries and call progress, and each
        // subscriber takes one payload copy — human-timescale work.
        let _relax = crate::rt::AllocRelax::scope();
        let cat = event.category();
        for cs in self.clients.values() {
            if let Some(mask) = cs.selections.get(&key) {
                if mask.contains(cat) {
                    self.queue_event(cs, event.clone()); // rt-ok: events fire at op boundaries and call progress, one copy per subscriber
                }
            }
        }
    }

    /// Sends an event to the audio manager (redirection holder).
    pub fn send_manager_event(&self, event: Event) {
        if let Some(mgr) = self.redirect_client {
            if let Some(cs) = self.clients.get(&mgr) {
                self.queue_event(cs, event);
            }
        }
    }

    /// Queues an event on one client's bounded channel. Events are the
    /// low-priority tier of the slow-client policy (DESIGN.md §12): a
    /// full channel drops the event (counted, never blocking — these
    /// sends run under the core lock, so blocking here would stall the
    /// engine for every other client).
    fn queue_event(&self, cs: &ClientState, event: Event) {
        match cs.tx.try_send(ServerMsg::Event(event)) {
            Ok(()) => {
                if let Some(w) = &cs.waker {
                    w.wake();
                }
            }
            Err(TrySendError::Full(_)) => {
                da_telemetry::ConnCounters::bump(&cs.counters.events_dropped, 1);
                self.tel.metrics.events_dropped_total.inc();
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// Sends a message directly to one client regardless of selections.
    ///
    /// Replies and errors are the high-priority tier: a client whose
    /// channel is still full after events have been dropped is beyond
    /// coalescing, so it is marked for eviction (its reader thread
    /// polls the flag and tears the connection down with
    /// [`DisconnectReason::SlowClient`]). Never blocks: callers hold
    /// the core lock.
    pub fn send_to_client(&self, client: ClientId, msg: ServerMsg) {
        let Some(cs) = self.clients.get(&client.0) else { return };
        match msg {
            ServerMsg::Event(event) => self.queue_event(cs, event),
            ServerMsg::Shutdown(_) => {
                // Best-effort farewell; the connection is closing
                // either way.
                let _ = cs.tx.try_send(msg);
                if let Some(w) = &cs.waker {
                    w.wake();
                }
            }
            reply_or_error => {
                if let ServerMsg::Reply(seq, _) | ServerMsg::Error(seq, _) = &reply_or_error {
                    // Outbound stage stamp precedes the enqueue so the
                    // drain stamp can never come first (DESIGN.md §15).
                    self.tel.recorder.reply_outbound(client.0, *seq);
                }
                match cs.tx.try_send(reply_or_error) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        if !cs.kicked.swap(true, std::sync::atomic::Ordering::Relaxed) {
                            self.tel.metrics.clients_evicted_total.inc();
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => {}
                }
                // Wake even on the full/evicted path: the worker is the
                // one that notices `kicked` and sends the farewell.
                if let Some(w) = &cs.waker {
                    w.wake();
                }
            }
        }
    }

    // ---- resource helpers ----------------------------------------------------

    /// The root of the LOUD tree containing `loud`.
    pub fn root_of(&self, loud: u32) -> u32 {
        let mut cur = loud;
        while let Some(l) = self.louds.get(&cur) {
            match l.parent {
                Some(p) => cur = p,
                None => return cur,
            }
        }
        cur
    }

    /// Collects every virtual device in the tree rooted at `root`.
    pub fn tree_vdevs(&self, root: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![root]; // rt-ok: plan-rebuild helper, runs only on topology change
        while let Some(lid) = stack.pop() {
            if let Some(l) = self.louds.get(&lid) {
                out.extend(&l.vdevs);
                stack.extend(&l.children);
            }
        }
        out
    }

    /// Removes every client's event selection on a resource being
    /// destroyed: no selection may outlive its resource (invariant
    /// V13), whether it dies by explicit destroy or owner disconnect.
    pub fn purge_selections(&mut self, key: ResKey) {
        for cs in self.clients.values_mut() {
            cs.selections.remove(&key);
        }
    }

    /// Destroys a LOUD subtree: children, devices, wires, queue.
    pub fn destroy_loud(&mut self, loud: u32) {
        if !self.louds.contains_key(&loud) {
            return;
        }
        // A dying root takes its queue with it: pending trace watches
        // on it can never resolve, so the recorder drops them now.
        self.tel.recorder.purge_root(loud);
        self.invalidate_plans();
        let l = self.louds.get(&loud).expect("checked above");
        let is_root = l.is_root();
        let parent = l.parent;
        let children = l.children.clone();
        let vdevs = l.vdevs.clone();
        for c in children {
            self.destroy_loud(c);
        }
        for v in vdevs {
            self.destroy_vdev(v);
        }
        if let Some(p) = parent {
            if let Some(pl) = self.louds.get_mut(&p) {
                pl.children.retain(|&c| c != loud);
            }
        }
        if is_root {
            self.active_stack.retain(|&r| r != loud);
            self.pending_maps.retain(|&r| r != loud);
            self.pending_raises.retain(|&r| r != loud);
        }
        self.properties.remove(&ResKey(0, loud));
        self.purge_selections(ResKey(0, loud));
        self.louds.remove(&loud);
        if is_root {
            self.recompute_activation();
        }
    }

    /// Destroys a virtual device and its wires.
    pub fn destroy_vdev(&mut self, vdev: u32) {
        self.invalidate_plans();
        let wire_ids: Vec<u32> = self
            .wires
            .values()
            .filter(|w| w.src.0 == vdev || w.dst.0 == vdev)
            .map(|w| w.id.0)
            .collect();
        for w in wire_ids {
            self.wires.remove(&w);
        }
        if let Some(v) = self.vdevs.remove(&vdev) {
            // A telephone device that vanishes mid-call must not leave a
            // zombie call on the line.
            if let Some(HwBinding::Line(line)) = v.binding {
                self.hw.pstn.on_hook(line);
            }
            if let Some(l) = self.louds.get_mut(&v.loud) {
                l.vdevs.retain(|&d| d != vdev);
            }
        }
        self.properties.remove(&ResKey(1, vdev));
        self.purge_selections(ResKey(1, vdev));
    }

    // ---- mapping: virtual → physical (paper §5.3) ---------------------------

    /// Does hardware device `idx` satisfy a virtual device request of
    /// `class` with `attrs`?
    pub fn device_matches(&self, idx: usize, class: DeviceClass, attrs: &[Attribute]) -> bool {
        let Some(spec) = self.hw.spec().devices.get(idx) else { return false };
        let kind_ok = matches!(
            (&spec.kind, class),
            (DeviceKind::Speaker { .. }, DeviceClass::Output)
                | (DeviceKind::Microphone { .. }, DeviceClass::Input)
                | (DeviceKind::PhoneLine { .. }, DeviceClass::Telephone)
        );
        if !kind_ok {
            return false;
        }
        for attr in attrs {
            let ok = match attr {
                Attribute::Device(DeviceId(id)) => *id as usize == idx,
                Attribute::Name(n) => &spec.name == n,
                Attribute::SampleRate(r) => match &spec.kind {
                    DeviceKind::Speaker { rate, .. } | DeviceKind::Microphone { rate } => {
                        rate == r
                    }
                    DeviceKind::PhoneLine { .. } => *r == da_hw::pstn::LINE_RATE,
                },
                Attribute::Channels(c) => match &spec.kind {
                    DeviceKind::Speaker { channels, .. } => channels == c,
                    _ => *c == 1,
                },
                Attribute::AmbientDomain(d) => spec.domains.contains(d),
                Attribute::PhoneNumber(n) => match &spec.kind {
                    DeviceKind::PhoneLine { number, .. } => number == n,
                    _ => false,
                },
                Attribute::CallerId(want) => match &spec.kind {
                    DeviceKind::PhoneLine { caller_id, .. } => caller_id == want,
                    _ => false,
                },
                // Exclusivity attributes constrain activation, not device
                // choice; capability attributes are satisfied by the
                // software implementations; encodings are converted.
                _ => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Whether a virtual-device class needs a physical device at all.
    pub fn needs_hardware(class: DeviceClass) -> bool {
        matches!(class, DeviceClass::Input | DeviceClass::Output | DeviceClass::Telephone)
    }

    // ---- activation (paper §5.4) ----------------------------------------------

    /// Recomputes which mapped LOUDs are active, walking the stack from
    /// the top and activating every LOUD whose resource needs can be met
    /// ("The server activates as many LOUDs as it can at one time",
    /// paper §5.4).
    pub fn recompute_activation(&mut self) {
        use std::collections::HashSet;
        // Bindings and the active set feed the engine's cached plans;
        // any recompute may change them.
        self.invalidate_plans();
        let mut exclusive_devices: HashSet<usize> = HashSet::new();
        let mut used_devices: HashSet<usize> = HashSet::new();
        let mut excl_in_domains: HashSet<u32> = HashSet::new();
        let mut excl_out_domains: HashSet<u32> = HashSet::new();
        let stack = self.active_stack.clone();
        let mut transitions: Vec<(u32, bool)> = Vec::new();
        for root in stack {
            let vdevs = self.tree_vdevs(root);
            // Trial bind.
            let mut bindings: Vec<(u32, HwBinding, u32)> = Vec::new();
            let mut ok = true;
            let mut trial_exclusive: Vec<usize> = Vec::new();
            let mut trial_used: Vec<usize> = Vec::new();
            let mut trial_in_domains: Vec<u32> = Vec::new();
            let mut trial_out_domains: Vec<u32> = Vec::new();
            for &vid in &vdevs {
                let Some(v) = self.vdevs.get(&vid) else { continue };
                if !Self::needs_hardware(v.class) {
                    bindings.push((vid, HwBinding::Software, v.rate));
                    continue;
                }
                let wants_exclusive_use =
                    v.attrs.iter().any(|a| matches!(a, Attribute::ExclusiveUse));
                let mut chosen = None;
                for idx in 0..self.hw.spec().devices.len() {
                    if !self.device_matches(idx, v.class, &v.attrs) {
                        continue;
                    }
                    if exclusive_devices.contains(&idx) || trial_exclusive.contains(&idx) {
                        continue;
                    }
                    if wants_exclusive_use
                        && (used_devices.contains(&idx) || trial_used.contains(&idx))
                    {
                        continue;
                    }
                    // Ambient-domain exclusion (paper §5.8): an active
                    // exclusive-input claim blocks input devices sharing
                    // any of its domains; likewise for output.
                    let spec = &self.hw.spec().devices[idx];
                    let blocked = match v.class {
                        DeviceClass::Input => spec.domains.iter().any(|d| {
                            excl_in_domains.contains(d) || trial_in_domains.contains(d)
                        }),
                        DeviceClass::Output => spec.domains.iter().any(|d| {
                            excl_out_domains.contains(d) || trial_out_domains.contains(d)
                        }),
                        _ => false,
                    };
                    if blocked {
                        continue;
                    }
                    chosen = Some(idx);
                    break;
                }
                let Some(idx) = chosen else {
                    ok = false;
                    break;
                };
                trial_used.push(idx);
                if wants_exclusive_use {
                    trial_exclusive.push(idx);
                }
                let spec = &self.hw.spec().devices[idx];
                if v.attrs.iter().any(|a| matches!(a, Attribute::ExclusiveInput)) {
                    trial_in_domains.extend(spec.domains.iter().copied());
                }
                if v.attrs.iter().any(|a| matches!(a, Attribute::ExclusiveOutput)) {
                    trial_out_domains.extend(spec.domains.iter().copied());
                }
                let (binding, rate) = match self.hw.slot(idx) {
                    Some(HwSlot::Speaker(s)) => {
                        (HwBinding::Speaker(s), self.hw.speakers[s].rate())
                    }
                    Some(HwSlot::Microphone(m)) => {
                        (HwBinding::Microphone(m), self.hw.microphones[m].rate())
                    }
                    Some(HwSlot::Line(l)) => (HwBinding::Line(l), da_hw::pstn::LINE_RATE),
                    None => {
                        ok = false;
                        break;
                    }
                };
                bindings.push((vid, binding, rate));
            }
            let was_active = self.louds.get(&root).map(|l| l.active).unwrap_or(false);
            if ok {
                used_devices.extend(trial_used);
                exclusive_devices.extend(trial_exclusive);
                excl_in_domains.extend(trial_in_domains);
                excl_out_domains.extend(trial_out_domains);
                for (vid, binding, rate) in bindings {
                    if let Some(v) = self.vdevs.get_mut(&vid) {
                        v.binding = Some(binding);
                        if binding != HwBinding::Software {
                            v.rate = rate;
                        }
                    }
                }
                if let Some(l) = self.louds.get_mut(&root) {
                    l.active = true;
                }
                if !was_active {
                    transitions.push((root, true));
                }
            } else {
                for &vid in &vdevs {
                    if let Some(v) = self.vdevs.get_mut(&vid) {
                        v.binding = None;
                    }
                }
                if let Some(l) = self.louds.get_mut(&root) {
                    l.active = false;
                }
                if was_active {
                    transitions.push((root, false));
                }
            }
        }
        // Queue state follows activation (paper §5.5: deactivation pauses
        // the queue; reactivation resumes a server-paused queue).
        for (root, activated) in &transitions {
            if let Some(l) = self.louds.get_mut(root) {
                if let Some(q) = &mut l.queue {
                    match q.typed() {
                        TypedQueue::ServerPaused(t) if *activated => {
                            t.reactivate();
                        }
                        TypedQueue::Started(t) if !*activated => {
                            t.server_pause();
                        }
                        _ => {}
                    }
                }
            }
        }
        for (root, activated) in transitions {
            let lid = da_proto::ids::LoudId(root);
            let event = if activated {
                Event::ActivateNotify { loud: lid }
            } else {
                Event::DeactivateNotify { loud: lid }
            };
            self.send_event(ResKey(0, root), event.clone());
            // Queue pause/resume notifications accompany the transition.
            if let Some(l) = self.louds.get(&root) {
                if let Some(q) = &l.queue {
                    if activated && q.state() == QueueState::Started {
                        self.send_event(ResKey(0, root), Event::QueueResumed { loud: lid });
                    } else if !activated && q.state() == QueueState::ServerPaused {
                        self.send_event(
                            ResKey(0, root),
                            Event::QueuePaused { loud: lid, by_server: true },
                        );
                    }
                }
            }
        }
    }

    /// Performs the actual map (after any manager redirection).
    pub fn map_loud_now(&mut self, root: u32) {
        let Some(l) = self.louds.get_mut(&root) else { return };
        if l.mapped {
            return;
        }
        l.mapped = true;
        self.active_stack.insert(0, root);
        self.send_event(ResKey(0, root), Event::MapNotify { loud: da_proto::ids::LoudId(root) });
        self.recompute_activation();
    }

    /// Performs the actual raise.
    pub fn raise_loud_now(&mut self, root: u32) {
        if let Some(pos) = self.active_stack.iter().position(|&r| r == root) {
            self.active_stack.remove(pos);
            self.active_stack.insert(0, root);
            self.recompute_activation();
        }
    }

    /// Unmaps a root LOUD.
    pub fn unmap_loud(&mut self, root: u32) {
        let Some(l) = self.louds.get_mut(&root) else { return };
        if !l.mapped {
            return;
        }
        l.mapped = false;
        l.active = false;
        if let Some(q) = &mut l.queue {
            if let TypedQueue::Started(t) = q.typed() {
                t.server_pause();
            }
        }
        self.active_stack.retain(|&r| r != root);
        self.send_event(ResKey(0, root), Event::UnmapNotify { loud: da_proto::ids::LoudId(root) });
        self.recompute_activation();
    }

    // ---- queue access ----------------------------------------------------------

    /// The queue of a root LOUD.
    pub fn queue_mut(&mut self, root: u32) -> Option<&mut CommandQueue> {
        self.louds.get_mut(&root).and_then(|l| l.queue.as_mut())
    }

    // ---- device LOUD ------------------------------------------------------------

    /// Builds the device-LOUD description (paper §5.1: "a special LOUD
    /// tree ... encapsulates all of the available functions in every
    /// device controlled by the server").
    pub fn device_loud(&self) -> (Vec<da_proto::reply::PhysDeviceInfo>, Vec<da_proto::reply::HardWire>) {
        let mut devices = Vec::new();
        for (idx, spec) in self.hw.spec().devices.iter().enumerate() {
            let (class, mut attrs) = match &spec.kind {
                DeviceKind::Speaker { rate, channels } => (
                    DeviceClass::Output,
                    vec![
                        Attribute::SampleRate(*rate),
                        Attribute::Channels(*channels),
                    ],
                ),
                DeviceKind::Microphone { rate } => {
                    (DeviceClass::Input, vec![Attribute::SampleRate(*rate)])
                }
                DeviceKind::PhoneLine { number, caller_id } => (
                    DeviceClass::Telephone,
                    vec![
                        Attribute::PhoneNumber(number.clone()),
                        Attribute::PhoneLines(1),
                        Attribute::CallerId(*caller_id),
                        Attribute::SampleRate(da_hw::pstn::LINE_RATE),
                    ],
                ),
            };
            attrs.push(Attribute::Name(spec.name.clone()));
            devices.push(da_proto::reply::PhysDeviceInfo {
                id: DeviceId(idx as u32),
                class,
                attrs,
                domains: spec.domains.clone(),
            });
        }
        let hard_wires = self
            .hw
            .spec()
            .hard_wires
            .iter()
            .map(|&(s, sp, d, dp)| da_proto::reply::HardWire {
                src: DeviceId(s as u32),
                src_port: sp,
                dst: DeviceId(d as u32),
                dst_port: dp,
            })
            .collect();
        (devices, hard_wires)
    }

    // ---- atoms & properties --------------------------------------------------

    /// Interns an atom name.
    pub fn intern(&mut self, name: &str) -> Atom {
        self.atoms.intern(name)
    }
}
