//! Server telemetry: the metric registry, journal, and protocol
//! snapshots.
//!
//! Every metric name in the server is registered exactly once, here, in
//! [`ServerMetrics::new`] — `xtask lint` enforces that each
//! `counter!`/`gauge!`/`histogram!` name is unique, snake_case, and
//! listed in the DESIGN.md §10 catalog. Hot paths hold pre-registered
//! handles (relaxed atomics), never the registry lock.
//!
//! The registry is **per-core**, not process-global: tests and benches
//! run many servers concurrently in one process and must not
//! cross-contaminate each other's numbers.

use crate::core::Core;
use da_proto::reply::{
    ClientStatsData, CounterSample, GaugeSample, HistogramSample, Reply, ServerStatsData,
};
use da_proto::request::Request;
use da_telemetry::{counter, gauge, histogram};
use da_telemetry::{ConnCounters, Counter, Gauge, Histogram, Journal, Registry};
use std::sync::Arc;

/// Pre-registered handles for every server metric.
///
/// Grouped by subsystem; see DESIGN.md §10 for the catalog with
/// semantics and units.
#[derive(Clone)]
pub struct ServerMetrics {
    // -- dispatch ---------------------------------------------------------
    /// Requests dispatched (all opcodes).
    pub dispatch_requests_total: Counter,
    /// Dispatches that produced a protocol error.
    pub dispatch_errors_total: Counter,
    /// Wall time of one dispatch, in microseconds.
    pub dispatch_latency_us: Histogram,
    // -- engine -----------------------------------------------------------
    /// Engine ticks executed.
    pub engine_ticks_total: Counter,
    /// Wall time of one tick, in microseconds.
    pub engine_tick_us: Histogram,
    /// Ticks whose wall time exceeded the configured quantum.
    pub engine_tick_overruns_total: Counter,
    /// Frames of silence substituted because a playing stream starved.
    pub engine_underrun_frames_total: Counter,
    // -- plan cache -------------------------------------------------------
    /// Route-plan cache consultations (one per tick).
    pub plan_cache_lookups_total: Counter,
    /// Route-plan cache rebuilds (misses after topology changes).
    pub plan_cache_rebuilds_total: Counter,
    /// Wall time of one cache rebuild, in microseconds.
    pub plan_build_us: Histogram,
    // -- queues -----------------------------------------------------------
    /// Queue state transitions, summed over all queues (mirrored).
    pub queue_transitions_total: Counter,
    /// Entries accepted by `Enqueue`, summed over all queues (mirrored).
    pub queue_entries_enqueued_total: Counter,
    /// Pending entries across all live queues.
    pub queue_depth: Gauge,
    /// Active root LOUDs.
    pub active_roots: Gauge,
    // -- connections ------------------------------------------------------
    /// Currently connected clients.
    pub clients_connected: Gauge,
    /// Clients ever connected.
    pub clients_total: Counter,
    /// Request payload bytes received, all connections.
    pub wire_bytes_in_total: Counter,
    /// Reply/event/error payload bytes sent, all connections.
    pub wire_bytes_out_total: Counter,
    /// Request frames received, all connections.
    pub wire_frames_in_total: Counter,
    /// Reply/event/error frames sent, all connections.
    pub wire_frames_out_total: Counter,
    /// Events dropped because a client's bounded channel was full.
    pub events_dropped_total: Counter,
    /// Clients evicted by the slow-client policy.
    pub clients_evicted_total: Counter,
    // -- connection plane & sharding (DESIGN.md §13) ----------------------
    /// Requests dispatched on the sharded fast path (read lock + stripe).
    pub dispatch_fast_total: Counter,
    /// Requests dispatched on the global-write-lock slow path.
    pub dispatch_slow_total: Counter,
    /// Wait to acquire a shard stripe lock, in microseconds.
    pub shard_lock_wait_us: Histogram,
    /// Hold time of a shard stripe lock, in microseconds.
    pub shard_lock_hold_us: Histogram,
    /// Event-loop I/O worker threads in the connection plane.
    pub conn_plane_workers: Gauge,
    /// Connections currently owned by the plane, all workers.
    pub conn_plane_connections: Gauge,
    /// Connections owned by the most loaded worker.
    pub conn_worker_max_connections: Gauge,
    /// Busy share of the most loaded worker's loop, in permille.
    pub conn_plane_busy_permille: Gauge,
    /// Connections dropped because every I/O worker was gone.
    pub conn_plane_unplaced_total: Counter,
    /// Wall time of one worker loop iteration doing work, in
    /// microseconds.
    pub conn_worker_loop_us: Histogram,
    // -- hardware ---------------------------------------------------------
    /// Speaker-reported underrun frames, all speakers (mirrored).
    pub speaker_underrun_frames_total: Counter,
    // -- dsp --------------------------------------------------------------
    /// Per-tick nanoseconds spent in encode/decode conversions.
    pub dsp_convert_ns: Histogram,
    /// Per-tick nanoseconds spent mixing.
    pub dsp_mix_ns: Histogram,
    /// Per-tick nanoseconds spent resampling.
    pub dsp_resample_ns: Histogram,
}

impl ServerMetrics {
    /// Registers every server metric on `reg`.
    pub fn new(reg: &Registry) -> ServerMetrics {
        ServerMetrics {
            dispatch_requests_total: counter!(reg, "dispatch_requests_total"),
            dispatch_errors_total: counter!(reg, "dispatch_errors_total"),
            dispatch_latency_us: histogram!(reg, "dispatch_latency_us"),
            engine_ticks_total: counter!(reg, "engine_ticks_total"),
            engine_tick_us: histogram!(reg, "engine_tick_us"),
            engine_tick_overruns_total: counter!(reg, "engine_tick_overruns_total"),
            engine_underrun_frames_total: counter!(reg, "engine_underrun_frames_total"),
            plan_cache_lookups_total: counter!(reg, "plan_cache_lookups_total"),
            plan_cache_rebuilds_total: counter!(reg, "plan_cache_rebuilds_total"),
            plan_build_us: histogram!(reg, "plan_build_us"),
            queue_transitions_total: counter!(reg, "queue_transitions_total"),
            queue_entries_enqueued_total: counter!(reg, "queue_entries_enqueued_total"),
            queue_depth: gauge!(reg, "queue_depth"),
            active_roots: gauge!(reg, "active_roots"),
            clients_connected: gauge!(reg, "clients_connected"),
            clients_total: counter!(reg, "clients_total"),
            wire_bytes_in_total: counter!(reg, "wire_bytes_in_total"),
            wire_bytes_out_total: counter!(reg, "wire_bytes_out_total"),
            wire_frames_in_total: counter!(reg, "wire_frames_in_total"),
            wire_frames_out_total: counter!(reg, "wire_frames_out_total"),
            events_dropped_total: counter!(reg, "events_dropped_total"),
            clients_evicted_total: counter!(reg, "clients_evicted_total"),
            dispatch_fast_total: counter!(reg, "dispatch_fast_total"),
            dispatch_slow_total: counter!(reg, "dispatch_slow_total"),
            shard_lock_wait_us: histogram!(reg, "shard_lock_wait_us"),
            shard_lock_hold_us: histogram!(reg, "shard_lock_hold_us"),
            conn_plane_workers: gauge!(reg, "conn_plane_workers"),
            conn_plane_connections: gauge!(reg, "conn_plane_connections"),
            conn_worker_max_connections: gauge!(reg, "conn_worker_max_connections"),
            conn_plane_busy_permille: gauge!(reg, "conn_plane_busy_permille"),
            conn_plane_unplaced_total: counter!(reg, "conn_plane_unplaced_total"),
            conn_worker_loop_us: histogram!(reg, "conn_worker_loop_us"),
            speaker_underrun_frames_total: counter!(reg, "speaker_underrun_frames_total"),
            dsp_convert_ns: histogram!(reg, "dsp_convert_ns"),
            dsp_mix_ns: histogram!(reg, "dsp_mix_ns"),
            dsp_resample_ns: histogram!(reg, "dsp_resample_ns"),
        }
    }
}

/// Telemetry state owned by one [`Core`].
pub struct ServerTelemetry {
    /// The registry backing [`ServerTelemetry::metrics`].
    pub registry: Arc<Registry>,
    /// Pre-registered metric handles.
    pub metrics: ServerMetrics,
    /// The structured event journal (Info filter by default).
    pub journal: Arc<Journal>,
    /// Per-opcode dispatch counts, indexed by request opcode. Atomic:
    /// the sharded fast path counts under the core *read* lock, where
    /// many dispatchers run at once.
    pub per_opcode: Vec<std::sync::atomic::AtomicU64>,
}

impl ServerTelemetry {
    /// Records one dispatch of `op` (relaxed; loads happen behind the
    /// write lock in [`server_stats_reply`]).
    pub fn count_opcode(&self, op: usize) {
        if let Some(slot) = self.per_opcode.get(op) {
            slot.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl Default for ServerTelemetry {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = ServerMetrics::new(&registry);
        ServerTelemetry {
            registry,
            metrics,
            journal: Arc::new(Journal::new(1024)),
            per_opcode: (0..Request::COUNT).map(|_| std::sync::atomic::AtomicU64::new(0)).collect(),
        }
    }
}

impl std::fmt::Debug for ServerTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTelemetry")
            .field("journal", &self.journal)
            .finish_non_exhaustive()
    }
}

/// Refreshes registry metrics that mirror state tracked elsewhere:
/// queue counters (plain fields behind the core lock), queue depth,
/// active roots, and hardware lifetime stats.
pub fn refresh_mirrors(core: &mut Core) {
    let mut transitions = 0u64;
    let mut enqueued = 0u64;
    let mut depth = 0i64;
    for l in core.louds.values() {
        if let Some(q) = &l.queue {
            transitions += q.transitions;
            enqueued += q.enqueued_entries;
            depth += q.pending_len() as i64;
        }
    }
    let m = &core.tel.metrics;
    m.queue_transitions_total.mirror(transitions);
    m.queue_entries_enqueued_total.mirror(enqueued);
    m.queue_depth.set(depth);
    m.active_roots.set(core.plane.plans.active_roots.len() as i64);
    m.speaker_underrun_frames_total.mirror(core.hw.total_speaker_underruns());
}

/// Builds the `QueryServerStats` reply from the live core.
pub fn server_stats_reply(core: &mut Core) -> Reply {
    refresh_mirrors(core);
    let snap = core.tel.registry.snapshot();
    Reply::ServerStats {
        stats: ServerStatsData {
            captured_at_tick: core.tick_index,
            device_time: core.device_time,
            per_opcode: core
                .tel
                .per_opcode
                .iter()
                .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                .collect(),
            counters: snap
                .counters
                .into_iter()
                .map(|(name, value)| CounterSample { name, value })
                .collect(),
            gauges: snap
                .gauges
                .into_iter()
                .map(|(name, value)| GaugeSample { name, value })
                .collect(),
            histograms: snap
                .histograms
                .into_iter()
                .map(|(name, h)| HistogramSample {
                    name,
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets.to_vec(),
                })
                .collect(),
        },
    }
}

/// Builds the `ListClients` reply from the live core.
pub fn client_list_reply(core: &Core) -> Reply {
    let mut ids: Vec<u32> = core.clients.keys().copied().collect();
    ids.sort_unstable();
    let clients = ids
        .iter()
        .filter_map(|id| core.clients.get(id))
        .map(|cs| {
            let c = &cs.counters;
            ClientStatsData {
                client: cs.id,
                name: cs.name.clone(),
                requests: ConnCounters::load(&c.requests),
                replies: ConnCounters::load(&c.replies),
                events: ConnCounters::load(&c.events),
                errors: ConnCounters::load(&c.errors),
                bytes_in: ConnCounters::load(&c.bytes_in),
                bytes_out: ConnCounters::load(&c.bytes_out),
                louds: core.louds.values().filter(|l| l.owner == cs.id).count() as u32,
                vdevs: core.vdevs.values().filter(|v| v.owner == cs.id).count() as u32,
                wires: core.wires.values().filter(|w| w.owner == cs.id).count() as u32,
                sounds: core.sounds.values().filter(|s| s.owner == cs.id).count() as u32,
            }
        })
        .collect();
    Reply::ClientList { clients }
}
