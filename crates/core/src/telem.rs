//! Server telemetry: the metric registry, journal, and protocol
//! snapshots.
//!
//! Every metric name in the server is registered exactly once, here, in
//! [`ServerMetrics::new`] — `xtask lint` enforces that each
//! `counter!`/`gauge!`/`histogram!` name is unique, snake_case, and
//! listed in the DESIGN.md §10 catalog. Hot paths hold pre-registered
//! handles (relaxed atomics), never the registry lock.
//!
//! The registry is **per-core**, not process-global: tests and benches
//! run many servers concurrently in one process and must not
//! cross-contaminate each other's numbers.

use crate::core::Core;
use da_proto::reply::{
    ClientStatsData, CounterSample, GaugeSample, HistogramSample, Reply, ServerStatsData,
    TraceData, TraceStage, TraceStageSample,
};
use da_proto::request::Request;
use da_telemetry::{counter, gauge, histogram};
use da_telemetry::{ConnCounters, Counter, Gauge, Histogram, Journal, Registry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Pre-registered handles for every server metric.
///
/// Grouped by subsystem; see DESIGN.md §10 for the catalog with
/// semantics and units.
#[derive(Clone)]
pub struct ServerMetrics {
    // -- dispatch ---------------------------------------------------------
    /// Requests dispatched (all opcodes).
    pub dispatch_requests_total: Counter,
    /// Dispatches that produced a protocol error.
    pub dispatch_errors_total: Counter,
    /// Wall time of one dispatch, in microseconds.
    pub dispatch_latency_us: Histogram,
    // -- engine -----------------------------------------------------------
    /// Engine ticks executed.
    pub engine_ticks_total: Counter,
    /// Wall time of one tick, in microseconds.
    pub engine_tick_us: Histogram,
    /// Ticks whose wall time exceeded the configured quantum.
    pub engine_tick_overruns_total: Counter,
    /// Frames of silence substituted because a playing stream starved.
    pub engine_underrun_frames_total: Counter,
    // -- plan cache -------------------------------------------------------
    /// Route-plan cache consultations (one per tick).
    pub plan_cache_lookups_total: Counter,
    /// Route-plan cache rebuilds (misses after topology changes).
    pub plan_cache_rebuilds_total: Counter,
    /// Wall time of one cache rebuild, in microseconds.
    pub plan_build_us: Histogram,
    // -- queues -----------------------------------------------------------
    /// Queue state transitions, summed over all queues (mirrored).
    pub queue_transitions_total: Counter,
    /// Entries accepted by `Enqueue`, summed over all queues (mirrored).
    pub queue_entries_enqueued_total: Counter,
    /// Pending entries across all live queues.
    pub queue_depth: Gauge,
    /// Active root LOUDs.
    pub active_roots: Gauge,
    // -- connections ------------------------------------------------------
    /// Currently connected clients.
    pub clients_connected: Gauge,
    /// Clients ever connected.
    pub clients_total: Counter,
    /// Request payload bytes received, all connections.
    pub wire_bytes_in_total: Counter,
    /// Reply/event/error payload bytes sent, all connections.
    pub wire_bytes_out_total: Counter,
    /// Request frames received, all connections.
    pub wire_frames_in_total: Counter,
    /// Reply/event/error frames sent, all connections.
    pub wire_frames_out_total: Counter,
    /// Events dropped because a client's bounded channel was full.
    pub events_dropped_total: Counter,
    /// Clients evicted by the slow-client policy.
    pub clients_evicted_total: Counter,
    // -- connection plane & sharding (DESIGN.md §13) ----------------------
    /// Requests dispatched on the sharded fast path (read lock + stripe).
    pub dispatch_fast_total: Counter,
    /// Requests dispatched on the global-write-lock slow path.
    pub dispatch_slow_total: Counter,
    /// Wait to acquire a shard stripe lock, in microseconds.
    pub shard_lock_wait_us: Histogram,
    /// Hold time of a shard stripe lock, in microseconds.
    pub shard_lock_hold_us: Histogram,
    /// Event-loop I/O worker threads in the connection plane.
    pub conn_plane_workers: Gauge,
    /// Connections currently owned by the plane, all workers.
    pub conn_plane_connections: Gauge,
    /// Connections owned by the most loaded worker.
    pub conn_worker_max_connections: Gauge,
    /// Busy share of the most loaded worker's loop, in permille.
    pub conn_plane_busy_permille: Gauge,
    /// Connections dropped because every I/O worker was gone.
    pub conn_plane_unplaced_total: Counter,
    /// Wall time of one worker loop iteration doing work, in
    /// microseconds.
    pub conn_worker_loop_us: Histogram,
    // -- hardware ---------------------------------------------------------
    /// Speaker-reported underrun frames, all speakers (mirrored).
    pub speaker_underrun_frames_total: Counter,
    // -- shared sound store & transcode cache (DESIGN.md §17) -------------
    /// Bytes of encoded sound payload interned in the shared store
    /// (each distinct content counted once, however many sounds bind it).
    pub store_bytes_shared: Gauge,
    /// Live interned payloads in the shared store.
    pub store_payloads: Gauge,
    /// Uploads finalized into an already-resident payload (zero-copy).
    pub store_dedupe_hits_total: Counter,
    /// Engine decode windows served from the transcode cache.
    pub transcode_cache_hits_total: Counter,
    /// Decode windows that had to build a cache entry (full decode).
    pub transcode_cache_misses_total: Counter,
    /// Transcode-cache entries evicted by the byte budget (LRU).
    pub transcode_cache_evictions_total: Counter,
    /// Estimated decode time avoided by cache hits, in microseconds.
    pub transcode_us_saved_total: Counter,
    /// `WriteSoundData` requests rejected for exceeding the max sound
    /// size, before any allocation.
    pub sounds_rejected_oversize_total: Counter,
    // -- dsp --------------------------------------------------------------
    /// Per-tick nanoseconds spent in encode/decode conversions.
    pub dsp_convert_ns: Histogram,
    /// Per-tick nanoseconds spent mixing.
    pub dsp_mix_ns: Histogram,
    /// Per-tick nanoseconds spent resampling.
    pub dsp_resample_ns: Histogram,
    // -- causal tracing (DESIGN.md §15) -----------------------------------
    /// Traces assembled to completion by the flight recorder.
    pub trace_completed_total: Counter,
    /// Partial traces discarded before completion (cap eviction, client
    /// removal, root teardown).
    pub trace_dropped_total: Counter,
    /// End-to-end wall time of one completed trace, in microseconds.
    pub trace_total_us: Histogram,
    /// Frame-reassembly-to-dispatch-start wait, in microseconds.
    pub trace_stage_ingress_us: Histogram,
    /// Dispatch execution time (start to end), in microseconds.
    pub trace_stage_dispatch_us: Histogram,
    /// Dispatch end to the engine tick that first services the queued
    /// action, in microseconds.
    pub trace_stage_engine_us: Histogram,
    /// Previous stage to outbound channel enqueue, in microseconds.
    pub trace_stage_outbound_us: Histogram,
    /// Outbound enqueue to writer drain, in microseconds.
    pub trace_stage_drain_us: Histogram,
}

impl ServerMetrics {
    /// Registers every server metric on `reg`.
    pub fn new(reg: &Registry) -> ServerMetrics {
        ServerMetrics {
            dispatch_requests_total: counter!(reg, "dispatch_requests_total"),
            dispatch_errors_total: counter!(reg, "dispatch_errors_total"),
            dispatch_latency_us: histogram!(reg, "dispatch_latency_us"),
            engine_ticks_total: counter!(reg, "engine_ticks_total"),
            engine_tick_us: histogram!(reg, "engine_tick_us"),
            engine_tick_overruns_total: counter!(reg, "engine_tick_overruns_total"),
            engine_underrun_frames_total: counter!(reg, "engine_underrun_frames_total"),
            plan_cache_lookups_total: counter!(reg, "plan_cache_lookups_total"),
            plan_cache_rebuilds_total: counter!(reg, "plan_cache_rebuilds_total"),
            plan_build_us: histogram!(reg, "plan_build_us"),
            queue_transitions_total: counter!(reg, "queue_transitions_total"),
            queue_entries_enqueued_total: counter!(reg, "queue_entries_enqueued_total"),
            queue_depth: gauge!(reg, "queue_depth"),
            active_roots: gauge!(reg, "active_roots"),
            clients_connected: gauge!(reg, "clients_connected"),
            clients_total: counter!(reg, "clients_total"),
            wire_bytes_in_total: counter!(reg, "wire_bytes_in_total"),
            wire_bytes_out_total: counter!(reg, "wire_bytes_out_total"),
            wire_frames_in_total: counter!(reg, "wire_frames_in_total"),
            wire_frames_out_total: counter!(reg, "wire_frames_out_total"),
            events_dropped_total: counter!(reg, "events_dropped_total"),
            clients_evicted_total: counter!(reg, "clients_evicted_total"),
            dispatch_fast_total: counter!(reg, "dispatch_fast_total"),
            dispatch_slow_total: counter!(reg, "dispatch_slow_total"),
            shard_lock_wait_us: histogram!(reg, "shard_lock_wait_us"),
            shard_lock_hold_us: histogram!(reg, "shard_lock_hold_us"),
            conn_plane_workers: gauge!(reg, "conn_plane_workers"),
            conn_plane_connections: gauge!(reg, "conn_plane_connections"),
            conn_worker_max_connections: gauge!(reg, "conn_worker_max_connections"),
            conn_plane_busy_permille: gauge!(reg, "conn_plane_busy_permille"),
            conn_plane_unplaced_total: counter!(reg, "conn_plane_unplaced_total"),
            conn_worker_loop_us: histogram!(reg, "conn_worker_loop_us"),
            speaker_underrun_frames_total: counter!(reg, "speaker_underrun_frames_total"),
            store_bytes_shared: gauge!(reg, "store_bytes_shared"),
            store_payloads: gauge!(reg, "store_payloads"),
            store_dedupe_hits_total: counter!(reg, "store_dedupe_hits_total"),
            transcode_cache_hits_total: counter!(reg, "transcode_cache_hits_total"),
            transcode_cache_misses_total: counter!(reg, "transcode_cache_misses_total"),
            transcode_cache_evictions_total: counter!(reg, "transcode_cache_evictions_total"),
            transcode_us_saved_total: counter!(reg, "transcode_us_saved_total"),
            sounds_rejected_oversize_total: counter!(reg, "sounds_rejected_oversize_total"),
            dsp_convert_ns: histogram!(reg, "dsp_convert_ns"),
            dsp_mix_ns: histogram!(reg, "dsp_mix_ns"),
            dsp_resample_ns: histogram!(reg, "dsp_resample_ns"),
            trace_completed_total: counter!(reg, "trace_completed_total"),
            trace_dropped_total: counter!(reg, "trace_dropped_total"),
            trace_total_us: histogram!(reg, "trace_total_us"),
            trace_stage_ingress_us: histogram!(reg, "trace_stage_ingress_us"),
            trace_stage_dispatch_us: histogram!(reg, "trace_stage_dispatch_us"),
            trace_stage_engine_us: histogram!(reg, "trace_stage_engine_us"),
            trace_stage_outbound_us: histogram!(reg, "trace_stage_outbound_us"),
            trace_stage_drain_us: histogram!(reg, "trace_stage_drain_us"),
        }
    }
}

/// Telemetry state owned by one [`Core`].
pub struct ServerTelemetry {
    /// The registry backing [`ServerTelemetry::metrics`].
    pub registry: Arc<Registry>,
    /// Pre-registered metric handles.
    pub metrics: ServerMetrics,
    /// The structured event journal (Info filter by default).
    pub journal: Arc<Journal>,
    /// The causal-tracing flight recorder (DESIGN.md §15). Shared with
    /// the connection-plane workers, which stamp ingress and drain
    /// stages without holding the core lock.
    pub recorder: Arc<FlightRecorder>,
    /// Per-opcode dispatch counts, indexed by request opcode. Atomic:
    /// the sharded fast path counts under the core *read* lock, where
    /// many dispatchers run at once.
    pub per_opcode: Vec<std::sync::atomic::AtomicU64>,
}

impl ServerTelemetry {
    /// Records one dispatch of `op` (relaxed; loads happen behind the
    /// write lock in [`server_stats_reply`]).
    pub fn count_opcode(&self, op: usize) {
        if let Some(slot) = self.per_opcode.get(op) {
            slot.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl Default for ServerTelemetry {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = ServerMetrics::new(&registry);
        let recorder = Arc::new(FlightRecorder::new(&metrics));
        ServerTelemetry {
            registry,
            metrics,
            journal: Arc::new(Journal::new(1024)),
            recorder,
            per_opcode: (0..Request::COUNT).map(|_| std::sync::atomic::AtomicU64::new(0)).collect(),
        }
    }
}

impl std::fmt::Debug for ServerTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerTelemetry")
            .field("journal", &self.journal)
            .finish_non_exhaustive()
    }
}

/// Refreshes registry metrics that mirror state tracked elsewhere:
/// queue counters (plain fields behind the core lock), queue depth,
/// active roots, and hardware lifetime stats.
pub fn refresh_mirrors(core: &mut Core) {
    let mut transitions = 0u64;
    let mut enqueued = 0u64;
    let mut depth = 0i64;
    for l in core.louds.values() {
        if let Some(q) = &l.queue {
            transitions += q.transitions;
            enqueued += q.enqueued_entries;
            depth += q.pending_len() as i64;
        }
    }
    let m = &core.tel.metrics;
    m.queue_transitions_total.mirror(transitions);
    m.queue_entries_enqueued_total.mirror(enqueued);
    m.queue_depth.set(depth);
    m.active_roots.set(core.plane.plans.active_roots.len() as i64);
    m.speaker_underrun_frames_total.mirror(core.hw.total_speaker_underruns());
    core.store.refresh_gauges();
}

/// Builds the `QueryServerStats` reply from the live core.
pub fn server_stats_reply(core: &mut Core) -> Reply {
    refresh_mirrors(core);
    let snap = core.tel.registry.snapshot();
    Reply::ServerStats {
        stats: ServerStatsData {
            captured_at_tick: core.tick_index,
            device_time: core.device_time,
            per_opcode: core
                .tel
                .per_opcode
                .iter()
                .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                .collect(),
            counters: snap
                .counters
                .into_iter()
                .map(|(name, value)| CounterSample { name, value })
                .collect(),
            gauges: snap
                .gauges
                .into_iter()
                .map(|(name, value)| GaugeSample { name, value })
                .collect(),
            histograms: snap
                .histograms
                .into_iter()
                .map(|(name, h)| HistogramSample {
                    name,
                    count: h.count,
                    sum: h.sum,
                    buckets: h.buckets.to_vec(),
                })
                .collect(),
        },
    }
}

// ---- causal tracing: the flight recorder (DESIGN.md §15) -----------------

/// Most partial (in-flight) traces retained at once; beyond this the
/// oldest partial is evicted and counted in `trace_dropped_total`.
const PARTIAL_CAP: usize = 1024;
/// Completed traces retained in the ring; older completions rotate out
/// (rotation is normal operation, not a drop).
const RING_CAP: usize = 256;
/// Default ring-admission sampling: one completed trace in N.
const DEFAULT_SAMPLE_EVERY: u32 = 16;
/// Requests slower than this end-to-end always enter the ring,
/// regardless of sampling.
const DEFAULT_THRESHOLD_US: u64 = 5_000;

/// One in-flight trace, keyed by `(client, seq)`.
struct Partial {
    opcode: u8,
    fast_path: bool,
    shard_wait_us: u64,
    engine_tick: u64,
    /// Set once a queue watch is registered: completion then waits for
    /// the correlated `CommandDone` drain, not the dispatch end.
    watch_root: Option<u32>,
    /// Dispatch start (not a wire stage; feeds `trace_stage_ingress_us`).
    dispatch_begin_us: Option<u64>,
    /// Wire-stage stamps, indexed by [`TraceStage`] discriminant.
    stages: [Option<u64>; TraceStage::COUNT],
}

impl Partial {
    fn new(opcode: u8) -> Partial {
        Partial {
            opcode,
            fast_path: false,
            shard_wait_us: 0,
            engine_tick: 0,
            watch_root: None,
            dispatch_begin_us: None,
            stages: [None; TraceStage::COUNT],
        }
    }
}

/// A pending correlation from a queue root to the request that enqueued
/// onto it: queue nodes with `index >= first_index` (up to the next
/// watch's cursor) belong to request `(client, seq)`.
struct Watch {
    first_index: u32,
    client: u32,
    seq: u32,
}

struct RecorderInner {
    partials: HashMap<(u32, u32), Partial>,
    /// FIFO of partial keys for cap eviction; stale keys are skipped.
    order: VecDeque<(u32, u32)>,
    /// Queue watches by root LOUD id.
    watches: HashMap<u32, Vec<Watch>>,
    ring: VecDeque<TraceData>,
    sample_counter: u64,
}

/// The per-core flight recorder: assembles per-request stage stamps
/// into completed traces (DESIGN.md §15).
///
/// Stamps arrive from three concurrency domains — connection-plane
/// workers (ingress, drain), dispatchers under the core read or write
/// lock (dispatch, outbound), and the engine tick (engine, outbound) —
/// so the state sits behind its own leaf mutex with O(1) critical
/// sections. No recorder method ever takes the core lock or a stripe.
///
/// Every stamp is a no-op unless `ingress` created the partial first,
/// which keeps direct-dispatch harnesses (model check, fuzz, unit
/// rigs) out of the recorder entirely.
pub struct FlightRecorder {
    epoch: std::time::Instant,
    /// Kill switch: when false, `ingress` creates no partials, which
    /// makes every downstream stamp a no-op (overhead measurements).
    enabled: std::sync::atomic::AtomicBool,
    /// Ring-admission sampling period (1 = every completion).
    sample_every: std::sync::atomic::AtomicU32,
    /// Always-capture latency threshold, µs.
    threshold_us: std::sync::atomic::AtomicU64,
    /// Fast guard for the engine-side hooks: number of live watches.
    watch_count: std::sync::atomic::AtomicUsize,
    completed_total: Counter,
    dropped_total: Counter,
    total_us: Histogram,
    stage_ingress_us: Histogram,
    stage_dispatch_us: Histogram,
    stage_engine_us: Histogram,
    stage_outbound_us: Histogram,
    stage_drain_us: Histogram,
    inner: parking_lot::Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// Builds a recorder recording per-stage figures into `metrics`.
    pub fn new(metrics: &ServerMetrics) -> FlightRecorder {
        FlightRecorder {
            epoch: std::time::Instant::now(),
            enabled: std::sync::atomic::AtomicBool::new(true),
            sample_every: std::sync::atomic::AtomicU32::new(DEFAULT_SAMPLE_EVERY),
            threshold_us: std::sync::atomic::AtomicU64::new(DEFAULT_THRESHOLD_US),
            watch_count: std::sync::atomic::AtomicUsize::new(0),
            completed_total: metrics.trace_completed_total.clone(),
            dropped_total: metrics.trace_dropped_total.clone(),
            total_us: metrics.trace_total_us.clone(),
            stage_ingress_us: metrics.trace_stage_ingress_us.clone(),
            stage_dispatch_us: metrics.trace_stage_dispatch_us.clone(),
            stage_engine_us: metrics.trace_stage_engine_us.clone(),
            stage_outbound_us: metrics.trace_stage_outbound_us.clone(),
            stage_drain_us: metrics.trace_stage_drain_us.clone(),
            inner: parking_lot::Mutex::new(RecorderInner {
                partials: HashMap::new(),
                order: VecDeque::new(),
                watches: HashMap::new(),
                ring: VecDeque::new(),
                sample_counter: 0,
            }),
        }
    }

    /// Microseconds since this recorder's epoch.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Reconfigures ring-admission sampling (tests and capacity runs).
    pub fn set_sampling(&self, every: u32, threshold_us: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.sample_every.store(every.max(1), Relaxed);
        self.threshold_us.store(threshold_us, Relaxed);
    }

    /// Turns tracing off (or back on) entirely; disabled, a request
    /// costs one relaxed load at ingress and nothing anywhere else.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Stage 0: a request frame finished reassembly and decoded.
    /// Creates the partial; every later stamp is a no-op without it.
    pub fn ingress(&self, client: u32, seq: u32, opcode: u8) {
        if !self.enabled.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        let at = self.now_us();
        let mut inner = self.inner.lock();
        if inner.partials.len() >= PARTIAL_CAP {
            self.evict_oldest(&mut inner);
        }
        let mut p = Partial::new(opcode);
        p.stages[TraceStage::Ingress as usize] = Some(at);
        if inner.partials.insert((client, seq), p).is_some() {
            // A reused (client, seq) key abandons the older partial.
            self.dropped_total.inc();
        } else {
            inner.order.push_back((client, seq));
        }
    }

    /// Dispatch is about to execute (fast or slow path). May run twice
    /// for one request when the fast path punts; the later stamp wins.
    pub fn dispatch_begin(&self, client: u32, seq: u32) {
        let at = self.now_us();
        let mut inner = self.inner.lock();
        if let Some(p) = inner.partials.get_mut(&(client, seq)) {
            p.dispatch_begin_us = Some(at);
        }
    }

    /// Stage 1: dispatch finished executing. `completes` closes the
    /// trace here — used for fire-and-forget requests that queue no
    /// work and send no reply or error.
    pub fn dispatch_done(
        &self,
        client: u32,
        seq: u32,
        fast_path: bool,
        shard_wait_us: u64,
        completes: bool,
    ) {
        let at = self.now_us();
        let mut inner = self.inner.lock();
        let Some(p) = inner.partials.get_mut(&(client, seq)) else { return };
        p.fast_path = fast_path;
        p.shard_wait_us = shard_wait_us;
        p.stages[TraceStage::Dispatch as usize] = Some(at);
        if completes && p.watch_root.is_none() {
            self.finalize(&mut inner, (client, seq));
        }
    }

    /// Correlates queue nodes `first_index..` on `root` with request
    /// `(client, seq)`; the trace then completes at the correlated
    /// `CommandDone` drain. No-op unless the partial exists.
    pub fn register_watch(&self, root: u32, first_index: u32, client: u32, seq: u32) {
        let mut inner = self.inner.lock(); // rt-ok: recorder mutex guards O(1) map updates, never held across I/O
        let Some(p) = inner.partials.get_mut(&(client, seq)) else { return };
        p.watch_root = Some(root);
        inner.watches.entry(root).or_default().push(Watch { first_index, client, seq });
        self.watch_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Stage 2: the engine started a queue node. Stamps the owning
    /// request's trace on the first node it services.
    pub fn engine_stage(&self, root: u32, index: u32, tick: u64) {
        if self.watch_count.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            return;
        }
        let at = self.now_us();
        let mut inner = self.inner.lock(); // rt-ok: recorder mutex guards O(1) map updates, never held across I/O
        let Some(key) = resolve_watch(&inner.watches, root, index) else { return };
        if let Some(p) = inner.partials.get_mut(&key) {
            let slot = &mut p.stages[TraceStage::Engine as usize];
            if slot.is_none() {
                *slot = Some(at);
                p.engine_tick = tick;
            }
        }
    }

    /// Stage 3 for queued work: the correlated `CommandDone` event is
    /// about to be enqueued to clients.
    pub fn event_outbound(&self, root: u32, index: u32) {
        if self.watch_count.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            return;
        }
        let at = self.now_us();
        let mut inner = self.inner.lock(); // rt-ok: recorder mutex guards O(1) map updates, never held across I/O
        let Some(key) = resolve_watch(&inner.watches, root, index) else { return };
        if let Some(p) = inner.partials.get_mut(&key) {
            let slot = &mut p.stages[TraceStage::Outbound as usize];
            if slot.is_none() {
                *slot = Some(at);
            }
        }
    }

    /// Stage 3 for replies and errors: the message is about to be
    /// enqueued on the client's channel.
    pub fn reply_outbound(&self, client: u32, seq: u32) {
        let at = self.now_us();
        let mut inner = self.inner.lock();
        if let Some(p) = inner.partials.get_mut(&(client, seq)) {
            let slot = &mut p.stages[TraceStage::Outbound as usize];
            if slot.is_none() {
                *slot = Some(at);
            }
        }
    }

    /// Stage 4 for replies and errors: the frame was encoded into the
    /// connection's write buffer. Completes the trace.
    pub fn drain_reply(&self, client: u32, seq: u32) {
        let at = self.now_us();
        let mut inner = self.inner.lock(); // rt-ok: recorder mutex guards O(1) map updates, never held across I/O
        let Some(p) = inner.partials.get_mut(&(client, seq)) else { return };
        p.stages[TraceStage::Drain as usize] = Some(at);
        self.finalize(&mut inner, (client, seq));
    }

    /// Stage 4 for queued work: a `CommandDone` frame was encoded into
    /// the *originating* client's write buffer. Completes the trace and
    /// retires the watch.
    pub fn drain_event(&self, root: u32, index: u32, conn_client: u32) {
        if self.watch_count.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            return;
        }
        let at = self.now_us();
        let mut inner = self.inner.lock(); // rt-ok: recorder mutex guards O(1) map updates, never held across I/O
        let Some(key) = resolve_watch(&inner.watches, root, index) else { return };
        if key.0 != conn_client {
            // Another subscriber drained the event first; the trace
            // waits for the originator's copy.
            return;
        }
        if let Some(p) = inner.partials.get_mut(&key) {
            // The event may have outrun the engine-side outbound stamp;
            // backfill so stage order stays total.
            let outbound = &mut p.stages[TraceStage::Outbound as usize];
            if outbound.is_none() {
                *outbound = Some(at);
            }
            p.stages[TraceStage::Drain as usize] = Some(at);
        }
        self.finalize(&mut inner, key);
    }

    /// Drops every partial and watch owned by a departing client.
    pub fn purge_client(&self, client: u32) {
        let mut inner = self.inner.lock();
        let keys: Vec<(u32, u32)> = inner
            .partials
            .keys()
            .filter(|(c, _)| *c == client)
            .copied()
            .collect();
        for key in keys {
            self.drop_partial(&mut inner, key);
        }
    }

    /// Drops watches (and their unfinished partials) on a root that is
    /// being destroyed: the queue dies, so no `CommandDone` will ever
    /// resolve them.
    pub fn purge_root(&self, root: u32) {
        if self.watch_count.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let keys: Vec<(u32, u32)> = inner
            .watches
            .get(&root)
            .map(|ws| ws.iter().map(|w| (w.client, w.seq)).collect())
            .unwrap_or_default();
        for key in keys {
            self.drop_partial(&mut inner, key);
        }
    }

    /// The `max` slowest retained traces, slowest first (ties newest
    /// first).
    pub fn snapshot(&self, max: u32) -> Vec<TraceData> {
        let inner = self.inner.lock();
        let mut traces: Vec<TraceData> = inner.ring.iter().rev().cloned().collect();
        drop(inner);
        traces.sort_by_key(|t| std::cmp::Reverse(t.total_us()));
        traces.truncate(max as usize);
        traces
    }

    /// Live partial-trace count (test observability).
    pub fn partial_count(&self) -> usize {
        self.inner.lock().partials.len()
    }

    /// Retained completed-trace count (test observability).
    pub fn ring_len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Live watch count (test observability).
    pub fn watch_len(&self) -> usize {
        self.watch_count.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn evict_oldest(&self, inner: &mut RecorderInner) {
        while let Some(key) = inner.order.pop_front() {
            if inner.partials.contains_key(&key) {
                self.drop_partial(inner, key);
                return;
            }
        }
    }

    /// Discards a partial without completing it.
    fn drop_partial(&self, inner: &mut RecorderInner, key: (u32, u32)) {
        let Some(p) = inner.partials.remove(&key) else { return };
        self.remove_watch(inner, &p, key);
        self.dropped_total.inc();
    }

    fn remove_watch(&self, inner: &mut RecorderInner, p: &Partial, key: (u32, u32)) {
        let Some(root) = p.watch_root else { return };
        if let Some(ws) = inner.watches.get_mut(&root) {
            let before = ws.len();
            ws.retain(|w| (w.client, w.seq) != key);
            let removed = before - ws.len();
            if ws.is_empty() {
                inner.watches.remove(&root);
            }
            if removed > 0 {
                self.watch_count.fetch_sub(removed, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    /// Completes a trace: records per-stage histograms and, subject to
    /// sampling, admits it to the ring.
    fn finalize(&self, inner: &mut RecorderInner, key: (u32, u32)) {
        use std::sync::atomic::Ordering::Relaxed;
        let Some(p) = inner.partials.remove(&key) else { return };
        self.remove_watch(inner, &p, key);
        let stamped: Vec<(TraceStage, u64)> = (0..TraceStage::COUNT)
            .filter_map(|i| {
                let stage = TraceStage::from_u8(i as u8)?; // cast-ok: stage discriminant, < COUNT
                p.stages[i].map(|at| (stage, at))
            })
            .collect();
        let Some(&(_, first)) = stamped.first() else { return };
        let Some(&(_, last)) = stamped.last() else { return };
        let total = last.saturating_sub(first);
        self.completed_total.inc();
        self.total_us.record(total);
        let ingress = p.stages[TraceStage::Ingress as usize];
        let dispatch = p.stages[TraceStage::Dispatch as usize];
        if let (Some(i), Some(b)) = (ingress, p.dispatch_begin_us) {
            self.stage_ingress_us.record(b.saturating_sub(i));
        }
        if let (Some(b), Some(d)) = (p.dispatch_begin_us, dispatch) {
            self.stage_dispatch_us.record(d.saturating_sub(b));
        }
        let mut prev = dispatch.or(ingress);
        for (stage, at) in stamped.iter().copied() {
            match stage {
                TraceStage::Ingress | TraceStage::Dispatch => {}
                TraceStage::Engine => {
                    if let Some(pv) = prev {
                        self.stage_engine_us.record(at.saturating_sub(pv));
                    }
                    prev = Some(at);
                }
                TraceStage::Outbound => {
                    if let Some(pv) = prev {
                        self.stage_outbound_us.record(at.saturating_sub(pv));
                    }
                    prev = Some(at);
                }
                TraceStage::Drain => {
                    if let Some(pv) = prev {
                        self.stage_drain_us.record(at.saturating_sub(pv));
                    }
                    prev = Some(at);
                }
            }
        }
        inner.sample_counter += 1;
        let every = self.sample_every.load(Relaxed).max(1) as u64;
        let admit = inner.sample_counter.is_multiple_of(every)
            || total >= self.threshold_us.load(Relaxed);
        if !admit {
            return;
        }
        let trace = TraceData {
            client: da_proto::ids::ClientId(key.0),
            seq: key.1,
            opcode: p.opcode,
            fast_path: p.fast_path,
            shard_wait_us: p.shard_wait_us,
            engine_tick: p.engine_tick,
            stages: stamped
                .into_iter()
                .map(|(stage, at_us)| TraceStageSample { stage, at_us })
                .collect(),
        };
        if inner.ring.len() >= RING_CAP {
            inner.ring.pop_front();
        }
        inner.ring.push_back(trace);
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder").finish_non_exhaustive()
    }
}

/// The watch owning queue node `index` on `root`: the one with the
/// greatest `first_index <= index`.
fn resolve_watch(
    watches: &HashMap<u32, Vec<Watch>>,
    root: u32,
    index: u32,
) -> Option<(u32, u32)> {
    watches
        .get(&root)?
        .iter()
        .filter(|w| w.first_index <= index)
        .max_by_key(|w| w.first_index)
        .map(|w| (w.client, w.seq))
}

/// Builds the `QueryTraces` reply from the flight recorder.
pub fn traces_reply(core: &Core, max: u32) -> Reply {
    Reply::Traces { traces: core.tel.recorder.snapshot(max) }
}

/// Builds the `ListClients` reply from the live core.
pub fn client_list_reply(core: &Core) -> Reply {
    let mut ids: Vec<u32> = core.clients.keys().copied().collect();
    ids.sort_unstable();
    let clients = ids
        .iter()
        .filter_map(|id| core.clients.get(id))
        .map(|cs| {
            let c = &cs.counters;
            ClientStatsData {
                client: cs.id,
                name: cs.name.clone(),
                requests: ConnCounters::load(&c.requests),
                replies: ConnCounters::load(&c.replies),
                events: ConnCounters::load(&c.events),
                errors: ConnCounters::load(&c.errors),
                bytes_in: ConnCounters::load(&c.bytes_in),
                bytes_out: ConnCounters::load(&c.bytes_out),
                louds: core.louds.values().filter(|l| l.owner == cs.id).count() as u32,
                vdevs: core.vdevs.values().filter(|v| v.owner == cs.id).count() as u32,
                wires: core.wires.values().filter(|w| w.owner == cs.id).count() as u32,
                sounds: core.sounds.values().filter(|s| s.owner == cs.id).count() as u32,
            }
        })
        .collect();
    Reply::ClientList { clients }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> FlightRecorder {
        let tel = ServerTelemetry::default();
        let r = FlightRecorder::new(&tel.metrics);
        r.set_sampling(1, u64::MAX); // record every completion, no threshold
        r
    }

    /// Full reply-path lifecycle for `(client, seq)`.
    fn drive_reply(r: &FlightRecorder, client: u32, seq: u32) {
        r.ingress(client, seq, 12);
        r.dispatch_begin(client, seq);
        r.dispatch_done(client, seq, true, 2, false);
        r.reply_outbound(client, seq);
        r.drain_reply(client, seq);
    }

    /// Full queued-work lifecycle: Enqueue with a watch on `root`.
    fn drive_queued(r: &FlightRecorder, client: u32, seq: u32, root: u32, index: u32) {
        r.ingress(client, seq, 12);
        r.dispatch_begin(client, seq);
        r.register_watch(root, index, client, seq);
        r.dispatch_done(client, seq, true, 0, false);
        r.engine_stage(root, index, 7);
        r.event_outbound(root, index);
        r.drain_event(root, index, client);
    }

    #[test]
    fn stage_stamps_are_monotone_and_gaps_sum_to_total() {
        let r = recorder();
        drive_reply(&r, 1, 1);
        drive_queued(&r, 1, 2, 40, 0);
        let traces = r.snapshot(8);
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert!(t.stages.len() >= 2, "trace has too few stages: {t:?}");
            let mut gap_sum = 0u64;
            for pair in t.stages.windows(2) {
                assert!(
                    pair[1].at_us >= pair[0].at_us,
                    "stamps out of order: {:?}",
                    t.stages
                );
                gap_sum += pair[1].at_us - pair[0].at_us;
            }
            assert_eq!(gap_sum, t.total_us(), "gaps must sum to the total");
        }
    }

    #[test]
    fn queued_trace_records_all_five_stages() {
        let r = recorder();
        drive_queued(&r, 3, 9, 17, 5);
        let traces = r.snapshot(1);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.stages.len(), TraceStage::COUNT);
        for (i, sample) in t.stages.iter().enumerate() {
            assert_eq!(sample.stage as usize, i);
        }
        assert_eq!(t.engine_tick, 7);
        assert!(t.fast_path);
        assert_eq!(r.partial_count(), 0);
        assert_eq!(r.watch_len(), 0);
    }

    #[test]
    fn ring_never_exceeds_bound_under_churn() {
        let r = recorder();
        for seq in 0..(RING_CAP as u32 * 4) {
            drive_reply(&r, 1, seq);
            assert!(r.ring_len() <= RING_CAP);
        }
        assert_eq!(r.ring_len(), RING_CAP);
        assert_eq!(r.partial_count(), 0);
        // Ring rotation is not a drop.
        assert_eq!(r.dropped_total.get(), 0);
    }

    #[test]
    fn partial_cap_evicts_oldest_in_flight_trace() {
        let r = recorder();
        for seq in 0..(PARTIAL_CAP as u32 + 16) {
            r.ingress(2, seq, 5);
        }
        assert_eq!(r.partial_count(), PARTIAL_CAP);
        assert_eq!(r.dropped_total.get(), 16);
        // The oldest 16 were evicted: their later stamps are no-ops.
        r.drain_reply(2, 0);
        assert_eq!(r.ring_len(), 0);
        // The newest survived and can still complete.
        r.drain_reply(2, PARTIAL_CAP as u32 + 15);
        assert_eq!(r.ring_len(), 1);
    }

    #[test]
    fn purge_client_leaves_no_orphan_partials_or_watches() {
        let r = recorder();
        r.ingress(1, 1, 12);
        r.register_watch(30, 0, 1, 1);
        r.ingress(1, 2, 5);
        r.ingress(2, 1, 12);
        r.register_watch(31, 0, 2, 1);
        r.purge_client(1);
        assert_eq!(r.partial_count(), 1);
        assert_eq!(r.watch_len(), 1);
        assert_eq!(r.dropped_total.get(), 2);
        // Client 2's queued trace still resolves end to end.
        r.engine_stage(31, 0, 1);
        r.event_outbound(31, 0);
        r.drain_event(31, 0, 2);
        assert_eq!(r.partial_count(), 0);
        assert_eq!(r.watch_len(), 0);
        assert_eq!(r.ring_len(), 1);
    }

    #[test]
    fn purge_root_drops_unresolvable_watched_traces() {
        let r = recorder();
        r.ingress(1, 1, 12);
        r.register_watch(9, 0, 1, 1);
        r.purge_root(9);
        assert_eq!(r.partial_count(), 0);
        assert_eq!(r.watch_len(), 0);
        assert_eq!(r.dropped_total.get(), 1);
    }

    #[test]
    fn sampling_admits_one_in_n_plus_threshold_hits() {
        let r = recorder();
        r.set_sampling(4, u64::MAX);
        for seq in 0..8 {
            drive_reply(&r, 1, seq);
        }
        assert_eq!(r.ring_len(), 2);
        assert_eq!(r.completed_total.get(), 8);
        // Threshold 0 admits everything regardless of the period.
        r.set_sampling(1_000_000, 0);
        drive_reply(&r, 1, 100);
        assert_eq!(r.ring_len(), 3);
    }

    #[test]
    fn snapshot_orders_slowest_first() {
        let r = recorder();
        drive_reply(&r, 1, 1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        // A slower request: stretch the drain stage.
        r.ingress(1, 2, 12);
        r.dispatch_begin(1, 2);
        r.dispatch_done(1, 2, false, 0, false);
        std::thread::sleep(std::time::Duration::from_millis(5));
        r.reply_outbound(1, 2);
        r.drain_reply(1, 2);
        let traces = r.snapshot(8);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].seq, 2);
        assert!(traces[0].total_us() >= traces[1].total_us());
        assert!(!traces[0].fast_path);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = recorder();
        r.set_enabled(false);
        drive_reply(&r, 1, 1);
        assert_eq!(r.partial_count(), 0);
        assert_eq!(r.ring_len(), 0);
        assert_eq!(r.completed_total.get(), 0);
        r.set_enabled(true);
        drive_reply(&r, 1, 2);
        assert_eq!(r.ring_len(), 1);
    }

    #[test]
    fn stamps_without_ingress_are_no_ops() {
        let r = recorder();
        r.dispatch_begin(5, 1);
        r.dispatch_done(5, 1, true, 0, true);
        r.reply_outbound(5, 1);
        r.drain_reply(5, 1);
        r.register_watch(3, 0, 5, 1);
        assert_eq!(r.partial_count(), 0);
        assert_eq!(r.ring_len(), 0);
        assert_eq!(r.watch_len(), 0);
        assert_eq!(r.completed_total.get(), 0);
    }
}
