//! Real-time allocation sentinel (DESIGN.md §16).
//!
//! The dynamic half of the `xtask rtsafe` contract: in
//! `debug_assertions` builds the crate installs a global allocator that
//! delegates to [`System`] but watches a set of thread-local flags, so
//! the hot paths the static analyzer proves allocation-free are *also*
//! checked at runtime, across the whole test suite:
//!
//! - [`ScopedAllocGuard::arm`] — panic mode. Armed at the top of
//!   `engine::tick`; any allocation on the engine thread inside the
//!   scope panics unless it happens under an [`AllocRelax`] scope.
//!   Every `AllocRelax` in the engine corresponds to a justification
//!   marker the static `rtsafe` pass accepts — the two mechanisms are
//!   kept in lockstep by review, and a relax scope without a marker
//!   (or vice versa) is a PR defect.
//! - [`ScopedAllocGuard::count`] — count mode. Wrapped around the
//!   fast-path `exec_fast` call; allocations are tallied per-thread
//!   (readable via [`scope_allocs`]) instead of panicking, because
//!   creation/query arms legitimately allocate replies and resources.
//!   The zero-alloc suite asserts the *pure* opcodes tally zero.
//! - [`count_allocs`] — the counting gate the PR 1 zero-alloc tests
//!   used to carry in their own `#[global_allocator]`; it lives here
//!   now because a process gets exactly one global allocator.
//!
//! Release builds get the plain [`System`] allocator (no
//! `#[global_allocator]` attribute at all) and every guard constructor
//! compiles to a unit struct: zero overhead, enforced by the
//! `sentinel_is_compiled_out_of_release` test.

use std::alloc::{GlobalAlloc, Layout, System};
#[cfg(debug_assertions)]
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(debug_assertions)]
#[global_allocator]
static SENTINEL: SentinelAlloc = SentinelAlloc;

#[cfg(debug_assertions)]
thread_local! {
    /// Depth of armed (panic-mode) guards on this thread.
    static ARMED: Cell<u32> = const { Cell::new(0) };
    /// Depth of [`AllocRelax`] scopes on this thread.
    static RELAXED: Cell<u32> = const { Cell::new(0) };
    /// Depth of count-mode guards on this thread.
    static SCOPED: Cell<u32> = const { Cell::new(0) };
    /// Allocations seen under a count-mode guard on this thread.
    static SCOPE_ALLOCS: Cell<usize> = const { Cell::new(0) };
    /// The [`count_allocs`] gate.
    static GATED: Cell<bool> = const { Cell::new(false) };
}

/// Allocations seen while [`count_allocs`]' gate was open, all threads
/// (the gate itself is per-thread, so only the measuring thread adds).
static GATE_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-delegating allocator that enforces/observes the RT
/// scopes. All bookkeeping is const-initialised thread-locals and one
/// atomic, so the hooks themselves never allocate.
pub struct SentinelAlloc;

#[cfg(debug_assertions)]
fn note_alloc() {
    // `try_with` because allocation can happen during TLS teardown.
    if GATED.try_with(Cell::get).unwrap_or(false) {
        GATE_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
    if SCOPED.try_with(Cell::get).unwrap_or(0) > 0 {
        let _ = SCOPE_ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
    if ARMED.try_with(Cell::get).unwrap_or(0) > 0
        && RELAXED.try_with(Cell::get).unwrap_or(0) == 0
    {
        // Disarm before panicking: boxing the panic payload allocates,
        // which would otherwise re-enter this hook and double-panic.
        let _ = ARMED.try_with(|c| c.set(0));
        panic!(
            "allocation inside an RT-armed scope — a tick-path allocation \
             outside any AllocRelax scope (DESIGN.md §16)"
        );
    }
}

// SAFETY: every operation delegates directly to `System`; the extra
// bookkeeping touches only const-initialised thread-locals and a
// relaxed atomic, and never allocates or unwinds except for the
// deliberate armed-scope panic (which disarms first).
unsafe impl GlobalAlloc for SentinelAlloc {
    // SAFETY: forwards the caller's contract unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        #[cfg(debug_assertions)]
        note_alloc();
        System.alloc(layout)
    }

    // SAFETY: forwards the caller's contract unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards the caller's contract unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        #[cfg(debug_assertions)]
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwards the caller's contract unchanged to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        #[cfg(debug_assertions)]
        note_alloc();
        System.alloc_zeroed(layout)
    }
}

/// Whether the sentinel allocator is installed (debug builds only).
/// Mirrors the §14 `sanitizer_active` treatment: CI's debug test step
/// asserts this so the suite can't silently run unwatched.
pub fn sentinel_active() -> bool {
    cfg!(debug_assertions)
}

/// An RT scope: panic mode ([`ScopedAllocGuard::arm`]) or count mode
/// ([`ScopedAllocGuard::count`]). Both nest; both are no-ops in release
/// builds.
#[must_use = "the guard protects only while it is alive"]
pub struct ScopedAllocGuard {
    #[cfg(debug_assertions)]
    panic_mode: bool,
}

impl ScopedAllocGuard {
    /// Panic mode: any allocation on this thread while the guard lives
    /// panics, unless inside an [`AllocRelax`] scope.
    pub fn arm() -> ScopedAllocGuard {
        #[cfg(debug_assertions)]
        ARMED.with(|c| c.set(c.get() + 1));
        ScopedAllocGuard {
            #[cfg(debug_assertions)]
            panic_mode: true,
        }
    }

    /// Count mode: allocations on this thread while the guard lives
    /// increment the tally behind [`scope_allocs`].
    pub fn count() -> ScopedAllocGuard {
        #[cfg(debug_assertions)]
        SCOPED.with(|c| c.set(c.get() + 1));
        ScopedAllocGuard {
            #[cfg(debug_assertions)]
            panic_mode: false,
        }
    }
}

impl Drop for ScopedAllocGuard {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        if self.panic_mode {
            // `saturating_sub`: the armed-panic path zeroes the depth
            // before unwinding through this drop.
            ARMED.with(|c| c.set(c.get().saturating_sub(1)));
        } else {
            SCOPED.with(|c| c.set(c.get().saturating_sub(1)));
        }
    }
}

/// Total allocations this thread has made under count-mode guards.
/// Sample before and after to measure one region (the zero-alloc suite
/// measures `exec_fast` through this).
pub fn scope_allocs() -> usize {
    #[cfg(debug_assertions)]
    {
        SCOPE_ALLOCS.with(Cell::get)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// A justified-allocation scope: inside it, an armed guard does not
/// panic. Each use in the engine pairs with a justification marker
/// the static `rtsafe` pass accepts — see the module docs.
#[must_use = "the relaxation lasts only while the value is alive"]
pub struct AllocRelax {
    _priv: (),
}

impl AllocRelax {
    /// Opens a relax scope on this thread.
    pub fn scope() -> AllocRelax {
        #[cfg(debug_assertions)]
        RELAXED.with(|c| c.set(c.get() + 1));
        AllocRelax { _priv: () }
    }
}

impl Drop for AllocRelax {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        RELAXED.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Runs `f` under an [`AllocRelax`] scope — shorthand for wrapping one
/// statement whose allocation is justified (pooled-buffer warmup growth,
/// op-boundary work). The justification comment belongs at the call
/// site, next to the code it describes.
pub fn relaxed<R>(f: impl FnOnce() -> R) -> R {
    let _relax = AllocRelax::scope();
    f()
}

/// Runs `f` with this thread's counting gate open and returns how many
/// allocations the thread made. In release builds (no sentinel) this
/// always returns 0 — callers assert equality with 0, which stays true.
pub fn count_allocs(f: impl FnOnce()) -> usize {
    let before = GATE_ALLOCS.load(Ordering::Relaxed);
    #[cfg(debug_assertions)]
    GATED.with(|g| g.set(true));
    f();
    #[cfg(debug_assertions)]
    GATED.with(|g| g.set(false));
    GATE_ALLOCS.load(Ordering::Relaxed) - before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_allocs_sees_boxing() {
        let n = count_allocs(|| {
            let v: Vec<u64> = Vec::with_capacity(32);
            std::hint::black_box(&v);
        });
        if sentinel_active() {
            assert!(n >= 1, "Vec::with_capacity must register");
        } else {
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn count_scope_tallies_and_nests() {
        let before = scope_allocs();
        {
            let _g = ScopedAllocGuard::count();
            let v: Vec<u64> = Vec::with_capacity(8);
            std::hint::black_box(&v);
        }
        let outside: Vec<u64> = Vec::with_capacity(8);
        std::hint::black_box(&outside);
        let delta = scope_allocs() - before;
        if sentinel_active() {
            assert!(delta >= 1, "scoped allocation must tally");
        } else {
            assert_eq!(delta, 0);
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn armed_guard_panics_on_allocation() {
        let result = std::panic::catch_unwind(|| {
            let _g = ScopedAllocGuard::arm();
            let v: Vec<u64> = Vec::with_capacity(16);
            std::hint::black_box(&v);
        });
        assert!(result.is_err(), "armed scope must panic on allocation");
        // The panic disarmed the guard; the thread is reusable.
        assert_eq!(ARMED.with(Cell::get), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn relax_scope_permits_allocation() {
        let _g = ScopedAllocGuard::arm();
        let _r = AllocRelax::scope();
        let v: Vec<u64> = Vec::with_capacity(16);
        std::hint::black_box(&v);
    }
}
