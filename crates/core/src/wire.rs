//! Wires: the data paths between virtual devices.
//!
//! "Wires establish the flow of data between virtual devices... A wire
//! connects a source port of a virtual device to a sink port of another
//! virtual device" (paper §5.2). Each wire owns a streaming resampler so
//! devices of different rates interconnect seamlessly.

use da_dsp::resample::Resampler;
use da_proto::ids::{ClientId, VDeviceId, WireId};
use da_proto::types::WireType;

/// One wire.
#[derive(Debug)]
pub struct Wire {
    /// Resource id.
    pub id: WireId,
    /// Owning client.
    pub owner: ClientId,
    /// Source (producing) device.
    pub src: VDeviceId,
    /// Source port index.
    pub src_port: u8,
    /// Sink (consuming) device.
    pub dst: VDeviceId,
    /// Sink port index.
    pub dst_port: u8,
    /// Declared data-path type (checked at creation, paper §5.2).
    pub wire_type: WireType,
    /// Rate adaptation state, rebuilt when endpoint rates change.
    pub resampler: Option<Resampler>,
    /// Rates the resampler was built for.
    pub resampler_rates: (u32, u32),
}

impl Wire {
    /// Creates a wire between two ports.
    pub fn new(
        id: WireId,
        owner: ClientId,
        src: VDeviceId,
        src_port: u8,
        dst: VDeviceId,
        dst_port: u8,
        wire_type: WireType,
    ) -> Self {
        Wire {
            id,
            owner,
            src,
            src_port,
            dst,
            dst_port,
            wire_type,
            resampler: None,
            resampler_rates: (0, 0),
        }
    }

    /// Moves `samples` from the source to the sink side, adapting sample
    /// rates as needed.
    pub fn transfer(&mut self, samples: &[i16], src_rate: u32, dst_rate: u32) -> Vec<i16> {
        let mut out = Vec::new();
        self.transfer_into(samples, src_rate, dst_rate, &mut out);
        out
    }

    /// Moves `samples` from the source to the sink side, appending to
    /// `out`. Allocation-free when `out` has capacity (except the one-time
    /// resampler construction when endpoint rates change).
    pub fn transfer_into(
        &mut self,
        samples: &[i16],
        src_rate: u32,
        dst_rate: u32,
        out: &mut Vec<i16>,
    ) {
        if src_rate == dst_rate {
            self.resampler = None;
            out.extend_from_slice(samples);
            return;
        }
        if self.resampler.is_none() || self.resampler_rates != (src_rate, dst_rate) {
            self.resampler = Some(Resampler::new(src_rate, dst_rate));
            self.resampler_rates = (src_rate, dst_rate);
        }
        self.resampler.as_mut().expect("just set").push_into(samples, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> Wire {
        Wire::new(WireId(1), ClientId(1), VDeviceId(2), 0, VDeviceId(3), 0, WireType::Any)
    }

    #[test]
    fn same_rate_passthrough() {
        let mut w = wire();
        assert_eq!(w.transfer(&[1, 2, 3], 8000, 8000), vec![1, 2, 3]);
        assert!(w.resampler.is_none());
    }

    #[test]
    fn rate_adaptation_upsamples() {
        let mut w = wire();
        let mut total = 0usize;
        for _ in 0..100 {
            total += w.transfer(&[100; 80], 8000, 16000).len();
        }
        // 8000 frames in -> ~16000 out (minus lookahead latency).
        assert!((total as i64 - 16000).abs() < 8, "{total}");
    }

    #[test]
    fn resampler_rebuilt_on_rate_change() {
        let mut w = wire();
        w.transfer(&[0; 80], 8000, 16000);
        assert_eq!(w.resampler_rates, (8000, 16000));
        w.transfer(&[0; 80], 8000, 44100);
        assert_eq!(w.resampler_rates, (8000, 44100));
    }
}
