//! Logical audio devices (LOUDs).
//!
//! Virtual devices are organised within containers called logical audio
//! devices, which form tree hierarchies (paper §5.1). The root of a LOUD
//! tree controls and coordinates the audio streams of the tree: it is the
//! unit of mapping, activation and command queueing.

use crate::queue::CommandQueue;
use da_proto::ids::{ClientId, LoudId};

/// One logical audio device.
#[derive(Debug)]
pub struct Loud {
    /// Resource id.
    pub id: LoudId,
    /// Owning client.
    pub owner: ClientId,
    /// Parent LOUD (raw id), `None` for roots.
    pub parent: Option<u32>,
    /// Child LOUDs (raw ids).
    pub children: Vec<u32>,
    /// Virtual devices directly contained (raw ids).
    pub vdevs: Vec<u32>,
    /// Whether the root is mapped (on the active stack). Meaningful for
    /// roots only.
    pub mapped: bool,
    /// Whether the server currently has the root activated.
    pub active: bool,
    /// The command queue (roots only, paper §5.1: "A command queue is
    /// provided for each root LOUD").
    pub queue: Option<CommandQueue>,
}

impl Loud {
    /// Creates a LOUD; roots get a command queue.
    pub fn new(id: LoudId, owner: ClientId, parent: Option<u32>) -> Self {
        let queue = if parent.is_none() { Some(CommandQueue::new()) } else { None };
        Loud { id, owner, parent, children: Vec::new(), vdevs: Vec::new(), mapped: false, active: false, queue }
    }

    /// Whether this LOUD is a root.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }
}
