//! Server-side sounds and catalogues.
//!
//! A sound is "a typed object that represents digitized audio data"
//! (paper §5.6). Its contents live on the server side; data may be
//! supplied by the client (uploaded, or streamed in real time with the
//! sound left incomplete) or by the server itself through named
//! catalogues ("libraries").

use da_dsp::convert::PcmEncoding;
use da_proto::ids::{ClientId, SoundId};
use da_proto::types::{Encoding, SoundType};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Converts a protocol encoding to the DSP crate's enum.
pub fn pcm_encoding(e: Encoding) -> PcmEncoding {
    match e {
        Encoding::ULaw => PcmEncoding::ULaw,
        Encoding::ALaw => PcmEncoding::ALaw,
        Encoding::Pcm8 => PcmEncoding::Pcm8,
        Encoding::Pcm16 => PcmEncoding::Pcm16,
        Encoding::ImaAdpcm => PcmEncoding::ImaAdpcm,
    }
}

/// Immutable audio data shared between a catalogue and any number of
/// client sound bindings.
#[derive(Debug)]
pub struct CatalogSound {
    /// The sound's type.
    pub stype: SoundType,
    /// Encoded bytes.
    pub data: Arc<Vec<u8>>,
    /// Content hash of (type, bytes) — the key under which the shared
    /// sound store tracks this payload (DESIGN.md §17).
    pub hash: u64,
}

/// A live sound resource.
#[derive(Debug)]
pub struct Sound {
    /// Resource id.
    pub id: SoundId,
    /// Owning client.
    pub owner: ClientId,
    /// The sound's type.
    pub stype: SoundType,
    /// Mutable client data (empty when `shared` is set).
    pub data: Vec<u8>,
    /// Shared catalogue data, if bound with `OpenCatalogSound`.
    pub shared: Option<Arc<Vec<u8>>>,
    /// Whether the final block has been written. Streaming sounds stay
    /// incomplete while the client supplies data in real time.
    pub complete: bool,
    /// Content hash of (type, bytes) once the sound is finalized and
    /// interned in the shared store (DESIGN.md §17). `None` while
    /// streaming or for recorder-private content.
    pub content_hash: Option<u64>,
}

impl Sound {
    /// Creates an empty, incomplete client sound.
    pub fn new(id: SoundId, owner: ClientId, stype: SoundType) -> Self {
        Sound {
            id,
            owner,
            stype,
            data: Vec::new(),
            shared: None,
            complete: false,
            content_hash: None,
        }
    }

    /// Creates a sound bound to catalogue data (always complete).
    pub fn from_catalog(id: SoundId, owner: ClientId, cat: &CatalogSound) -> Self {
        Sound {
            id,
            owner,
            stype: cat.stype,
            data: Vec::new(),
            shared: Some(Arc::clone(&cat.data)),
            complete: true,
            content_hash: Some(cat.hash),
        }
    }

    /// The encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.shared {
            Some(s) => s,
            None => &self.data,
        }
    }

    /// Encoded length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.bytes().len() as u64
    }

    /// Length in sample frames.
    pub fn len_frames(&self) -> u64 {
        self.stype.frames_for_bytes(self.len_bytes())
    }

    /// Appends encoded data (ignored for catalogue-bound sounds).
    pub fn append(&mut self, data: &[u8], eof: bool) -> bool {
        if self.shared.is_some() {
            return false;
        }
        self.data.extend_from_slice(data);
        if eof {
            self.complete = true;
        }
        true
    }

    /// Replaces contents (used by recorders starting a fresh take).
    pub fn reset_for_recording(&mut self) {
        self.shared = None;
        self.data.clear();
        self.complete = false;
        self.content_hash = None;
    }

    /// Decodes `frames` sample frames starting at frame `from` into
    /// linear PCM (mono: channels are averaged down). Returns fewer
    /// frames if the sound is shorter.
    pub fn decode_frames(&self, from: u64, frames: u64) -> Vec<i16> {
        let mut out = Vec::new();
        self.decode_frames_into(from, frames, &mut out);
        out
    }

    /// Decodes `frames` sample frames starting at frame `from`, appending
    /// linear PCM to `out`. Allocation-free when `out` has capacity and
    /// the hot path applies (mono, non-ADPCM).
    pub fn decode_frames_into(&self, from: u64, frames: u64, out: &mut Vec<i16>) {
        // Relax: appends into a pooled caller buffer; capacity amortizes
        // after warmup (the zero-alloc suite pins the steady state at 0).
        let _relax = crate::rt::AllocRelax::scope();
        let enc = pcm_encoding(self.stype.encoding);
        let ch = self.stype.channels.max(1) as u64;
        // ADPCM cannot be decoded from an arbitrary offset without state;
        // decode from the start (sounds are small at 4 bits/sample).
        if self.stype.encoding == Encoding::ImaAdpcm {
            let all = da_dsp::convert::decode_to_pcm16(enc, self.bytes());
            let start = (from * ch) as usize;
            let want = (frames * ch) as usize;
            let end = (start + want).min(all.len());
            let samples = if start >= all.len() { &[][..] } else { &all[start..end] };
            downmix_into(samples, ch as usize, out);
            return;
        }
        let from_byte = self.stype.bytes_for_frames(from) as usize;
        let want_bytes = self.stype.bytes_for_frames(frames) as usize;
        let bytes = self.bytes();
        if from_byte >= bytes.len() {
            return;
        }
        let end = (from_byte + want_bytes).min(bytes.len());
        if ch <= 1 {
            // Hot path: decode straight into the caller's buffer.
            da_dsp::convert::decode_to_pcm16_into(enc, &bytes[from_byte..end], out);
        } else {
            let samples = da_dsp::convert::decode_to_pcm16(enc, &bytes[from_byte..end]);
            downmix_into(&samples, ch as usize, out);
        }
    }
}

fn downmix_into(samples: &[i16], channels: usize, out: &mut Vec<i16>) {
    if channels <= 1 {
        out.extend_from_slice(samples);
        return;
    }
    out.extend(samples.chunks(channels).map(|frame| {
        let sum: i32 = frame.iter().map(|&s| s as i32).sum();
        let ch = channels as i32;
        // Round half away from zero: plain `/` truncates toward zero,
        // which biases negative-sum frames upward by up to one LSB.
        let adj = if sum >= 0 { ch / 2 } else { -(ch / 2) };
        ((sum + adj) / ch) as i16
    }));
}

/// Named catalogues of server-side sounds.
#[derive(Debug, Default)]
pub struct Catalogs {
    catalogs: BTreeMap<String, BTreeMap<String, CatalogSound>>,
}

impl Catalogs {
    /// Creates the catalogue store with the built-in "system" catalogue:
    /// beep, ring, DTMF digits, a second of silence.
    pub fn with_system_sounds() -> Self {
        let mut c = Catalogs::default();
        let tel = SoundType::TELEPHONE;
        let to_ulaw = |pcm: &[i16]| da_dsp::mulaw::encode_slice(pcm);
        c.insert("system", "beep", tel, to_ulaw(&da_dsp::tone::beep(8000)));
        c.insert(
            "system",
            "ring",
            tel,
            to_ulaw(&da_dsp::tone::dual_tone(8000, 440.0, 480.0, 8000, 12000)),
        );
        c.insert("system", "silence-1s", tel, vec![da_dsp::mulaw::SILENCE; 8000]);
        let mut digits = Vec::new();
        for d in b"0123456789*#" {
            if let Some(s) = da_dsp::dtmf::digit(8000, *d, 100, 50, 12000) {
                digits.push((*d, s));
            }
        }
        for (d, s) in digits {
            c.insert("system", &format!("dtmf-{}", d as char), tel, to_ulaw(&s));
        }
        c
    }

    /// Inserts a sound into a catalogue, replacing any previous entry.
    pub fn insert(&mut self, catalog: &str, name: &str, stype: SoundType, data: Vec<u8>) {
        let hash = crate::store::content_hash(stype, &data);
        self.catalogs
            .entry(catalog.to_string())
            .or_default()
            .insert(name.to_string(), CatalogSound { stype, data: Arc::new(data), hash });
    }

    /// Looks up a catalogue sound.
    pub fn get(&self, catalog: &str, name: &str) -> Option<&CatalogSound> {
        self.catalogs.get(catalog)?.get(name)
    }

    /// Iterates every catalogue sound (the store adopts their payloads
    /// at server start).
    pub fn sounds(&self) -> impl Iterator<Item = &CatalogSound> {
        self.catalogs.values().flat_map(|m| m.values())
    }

    /// Lists sound names in a catalogue, or catalogue names if `catalog`
    /// is empty.
    pub fn list(&self, catalog: &str) -> Vec<String> {
        if catalog.is_empty() {
            return self.catalogs.keys().cloned().collect();
        }
        self.catalogs
            .get(catalog)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tel_sound(frames: usize) -> Sound {
        let mut s = Sound::new(SoundId(1), ClientId(1), SoundType::TELEPHONE);
        let pcm = da_dsp::tone::sine(8000, 440.0, frames, 10000);
        s.append(&da_dsp::mulaw::encode_slice(&pcm), true);
        s
    }

    #[test]
    fn length_accounting() {
        let s = tel_sound(800);
        assert_eq!(s.len_bytes(), 800);
        assert_eq!(s.len_frames(), 800);
        assert!(s.complete);
    }

    #[test]
    fn decode_frames_windows() {
        let s = tel_sound(800);
        let all = s.decode_frames(0, 800);
        assert_eq!(all.len(), 800);
        let mid = s.decode_frames(100, 50);
        assert_eq!(mid, &all[100..150]);
        // Past the end: short or empty.
        assert_eq!(s.decode_frames(790, 50).len(), 10);
        assert!(s.decode_frames(800, 10).is_empty());
        assert!(s.decode_frames(9999, 10).is_empty());
    }

    #[test]
    fn stereo_downmix() {
        let mut s = Sound::new(
            SoundId(1),
            ClientId(1),
            SoundType { encoding: Encoding::Pcm16, sample_rate: 8000, channels: 2 },
        );
        // Two frames: (100, 300), (-100, -300).
        let pcm: Vec<i16> = vec![100, 300, -100, -300];
        s.append(&da_dsp::convert::encode_from_pcm16(PcmEncoding::Pcm16, &pcm), true);
        assert_eq!(s.len_frames(), 2);
        assert_eq!(s.decode_frames(0, 2), vec![200, -200]);
    }

    #[test]
    fn stereo_downmix_rounds_negative_sums() {
        let mut s = Sound::new(
            SoundId(1),
            ClientId(1),
            SoundType { encoding: Encoding::Pcm16, sample_rate: 8000, channels: 2 },
        );
        // Odd sums in both signs: (-3 + -4)/2 = -3.5 must round to -4
        // (away from zero), not truncate to -3; (3 + 4)/2 = 3.5 → 4.
        // The last frame's -1.5 pins the half-sample case negative.
        let pcm: Vec<i16> = vec![-3, -4, 3, 4, -1, -2];
        s.append(&da_dsp::convert::encode_from_pcm16(PcmEncoding::Pcm16, &pcm), true);
        assert_eq!(s.decode_frames(0, 3), vec![-4, 4, -2]);
    }

    #[test]
    fn adpcm_offset_decoding_consistent() {
        let pcm = da_dsp::tone::sine(8000, 300.0, 1000, 9000);
        let mut s = Sound::new(
            SoundId(1),
            ClientId(1),
            SoundType { encoding: Encoding::ImaAdpcm, sample_rate: 8000, channels: 1 },
        );
        s.append(&da_dsp::adpcm::encode_slice(&pcm), true);
        let whole = s.decode_frames(0, 1000);
        let part = s.decode_frames(500, 100);
        assert_eq!(part, &whole[500..600]);
    }

    #[test]
    fn streaming_append() {
        let mut s = Sound::new(SoundId(1), ClientId(1), SoundType::TELEPHONE);
        assert!(!s.complete);
        s.append(&[0xFF; 100], false);
        assert_eq!(s.len_frames(), 100);
        s.append(&[0xFF; 100], true);
        assert!(s.complete);
        assert_eq!(s.len_frames(), 200);
    }

    #[test]
    fn catalog_sounds_are_shared_and_immutable() {
        let cats = Catalogs::with_system_sounds();
        let beep = cats.get("system", "beep").expect("beep exists");
        let mut s = Sound::from_catalog(SoundId(2), ClientId(1), beep);
        assert!(s.complete);
        assert!(s.len_frames() > 0);
        assert!(!s.append(&[1, 2, 3], true), "catalogue data must be immutable");
    }

    #[test]
    fn catalog_listing() {
        let cats = Catalogs::with_system_sounds();
        assert_eq!(cats.list(""), vec!["system".to_string()]);
        let names = cats.list("system");
        assert!(names.contains(&"beep".to_string()));
        assert!(names.contains(&"dtmf-5".to_string()));
        assert!(cats.list("nonexistent").is_empty());
    }

    #[test]
    fn recording_reset() {
        let mut s = tel_sound(100);
        s.reset_for_recording();
        assert_eq!(s.len_frames(), 0);
        assert!(!s.complete);
        assert!(s.append(&[0xFF; 10], true));
    }
}
