//! Sharded resource maps and per-shard stripe locks (DESIGN.md §13).
//!
//! The core's resource maps (LOUDs, vdevices, wires, sounds, properties)
//! are partitioned into `N` shards by **owning client**: every resource
//! id carries its creator in the high bits (`id >> 20`), so one client's
//! resources always land in one shard. The fast dispatch path takes the
//! core `RwLock` in *read* mode plus the one stripe lock for the
//! requesting client's shard, and may then mutate that shard's partition
//! of every sharded map while reading (never writing) global state. The
//! slow path takes the core lock in *write* mode and sees the exact
//! pre-sharding world: `ShardedMap` keeps the `HashMap` surface the rest
//! of the server was written against.
//!
//! # Safety protocol
//!
//! `ShardedMap` stores each shard in an `UnsafeCell` so the fast path
//! can obtain `&mut HashMap` for *its* shard through a shared `&Core`.
//! The aliasing rules that make this sound:
//!
//! 1. **Write lock** (`core.write()`): unrestricted access, exactly the
//!    old single-mutex world. All `&self`/`&mut self` methods are safe.
//! 2. **Read lock** (`core.read()`): a thread may call
//!    [`ShardedMap::shard_mut`] for shard `s` only while holding stripe
//!    `s` (see [`ShardSet`]), and while that `&mut` view is live it must
//!    not touch the same map through any `&self` accessor. Different
//!    shards never alias (distinct `UnsafeCell`s); the same shard is
//!    serialised by its stripe; readers-vs-writer is excluded by the
//!    `RwLock` itself.
//! 3. Lock order is `core` → `stripe`, at most one stripe per thread
//!    (enforced by the xtask LOCK_ORDER lint).
//!
//! # Borrow sanitizer (debug builds)
//!
//! The protocol is machine-checked three ways (DESIGN.md §14): the
//! `cargo run -p xtask -- races` lint checks it statically, the
//! modelcheck scheduler explores interleavings of it, and — here — a
//! dependency-free borrow sanitizer watches it at runtime. Each shard
//! carries one atomic word (bit 31 = live [`shard_mut`] view, low bits =
//! live readers). [`ShardedMap::shard_mut`] returns a [`ShardMut`] guard
//! that registers a writer for its lifetime; every `&self` accessor
//! opens a reader window around its `HashMap` operation. Overlapping
//! exclusive views or a read during an exclusive view panic with a
//! `shard sanitizer:` message instead of silently racing. The whole
//! mechanism is `#[cfg(debug_assertions)]`: release builds compile the
//! guard down to a plain `&mut HashMap` wrapper with no atomics.

use std::cell::UnsafeCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;

use crate::core::ResKey;

/// Whether the debug-build borrow sanitizer is compiled in. The soak
/// driver and CI assert on this so debug-profile runs can prove the
/// aliasing protocol was actually being watched.
pub const fn sanitizer_active() -> bool {
    cfg!(debug_assertions)
}

/// Sanitizer state: one word per shard. Bit 31 flags a live exclusive
/// [`ShardMut`] view; the low 31 bits count live reader windows.
#[cfg(debug_assertions)]
struct ShardFlags {
    words: Vec<std::sync::atomic::AtomicU32>,
}

#[cfg(debug_assertions)]
const WRITER_BIT: u32 = 1 << 31;

#[cfg(debug_assertions)]
impl ShardFlags {
    fn new(n: usize) -> ShardFlags {
        ShardFlags { words: (0..n).map(|_| std::sync::atomic::AtomicU32::new(0)).collect() }
    }

    fn begin_read(&self, idx: usize) {
        use std::sync::atomic::Ordering;
        let prev = self.words[idx].fetch_add(1, Ordering::SeqCst);
        if prev & WRITER_BIT != 0 {
            self.words[idx].fetch_sub(1, Ordering::SeqCst);
            panic!(
                "shard sanitizer: shard {idx} read while an exclusive shard_mut view \
                 is live (mut-while-shared aliasing)"
            );
        }
    }

    fn end_read(&self, idx: usize) {
        self.words[idx].fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }

    fn begin_write(&self, idx: usize) {
        use std::sync::atomic::Ordering;
        let prev = self.words[idx].fetch_or(WRITER_BIT, Ordering::SeqCst);
        if prev & WRITER_BIT != 0 {
            panic!(
                "shard sanitizer: overlapping shard_mut views of shard {idx} \
                 (aliased &mut — a second exclusive view while one is live)"
            );
        }
        if prev != 0 {
            self.words[idx].fetch_and(!WRITER_BIT, Ordering::SeqCst);
            panic!(
                "shard sanitizer: shard_mut view of shard {idx} taken while {prev} \
                 reader window(s) are open (mut-while-shared aliasing)"
            );
        }
    }

    fn end_write(&self, idx: usize) {
        self.words[idx].fetch_and(!WRITER_BIT, std::sync::atomic::Ordering::SeqCst);
    }

    fn assert_quiescent(&self, idx: usize) {
        let w = self.words[idx].load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            w == 0,
            "shard sanitizer: exclusive (&mut self) access to shard {idx} while a \
             shard_mut view or reader window is live (word {w:#x})"
        );
    }
}

/// Client id space: resource ids are `client << ID_SHIFT | serial`.
pub const ID_SHIFT: u32 = 20;

/// Keys that know which shard they live in.
pub trait ShardKey: Copy + Eq + Hash {
    /// Owning-client number used for shard assignment.
    fn owner(&self) -> u32;
    /// Shard index for a table of `n` shards.
    fn shard_of(&self, n: usize) -> usize {
        // cast-ok: reduced mod n immediately.
        (self.owner() as usize) % n.max(1)
    }
}

/// Raw resource ids: the owning client sits in the high bits.
impl ShardKey for u32 {
    fn owner(&self) -> u32 {
        self >> ID_SHIFT
    }
}

/// Selection/property keys wrap a raw resource id. Device targets
/// (`ResKey(3, _)`) have small ids and all fall into shard 0; that is
/// fine because device-targeted requests never take the fast path.
impl ShardKey for ResKey {
    fn owner(&self) -> u32 {
        self.1 >> ID_SHIFT
    }
}

/// A `HashMap` partitioned into shards by [`ShardKey`].
///
/// All `&self` accessors are safe under the write lock or whenever no
/// concurrent [`shard_mut`](Self::shard_mut) view of the touched shard
/// exists (see the module-level safety protocol).
pub struct ShardedMap<K, V> {
    shards: Vec<UnsafeCell<HashMap<K, V>>>,
    #[cfg(debug_assertions)]
    flags: ShardFlags,
}

/// Exclusive view of one shard's partition, returned by
/// [`ShardedMap::shard_mut`]. Dereferences to the shard's `HashMap`.
///
/// In debug builds, constructing it registers an exclusive borrow with
/// the shard's sanitizer word and dropping it unregisters; overlapping
/// views and concurrent `&self` reads panic. Release builds compile it
/// to a transparent `&mut HashMap` wrapper.
pub struct ShardMut<'a, K, V> {
    map: &'a mut HashMap<K, V>,
    #[cfg(debug_assertions)]
    flags: &'a ShardFlags,
    #[cfg(debug_assertions)]
    idx: usize,
}

impl<K, V> std::ops::Deref for ShardMut<'_, K, V> {
    type Target = HashMap<K, V>;
    fn deref(&self) -> &HashMap<K, V> {
        self.map
    }
}

impl<K, V> std::ops::DerefMut for ShardMut<'_, K, V> {
    fn deref_mut(&mut self) -> &mut HashMap<K, V> {
        self.map
    }
}

impl<K, V> Drop for ShardMut<'_, K, V> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        self.flags.end_write(self.idx);
    }
}

// SAFETY: a ShardedMap is a plain collection of HashMaps; cross-thread
// access is governed by the core RwLock + stripe protocol documented at
// module level, which prevents data races on any individual shard.
unsafe impl<K: Send, V: Send> Send for ShardedMap<K, V> {}
// SAFETY: see above — `&self` methods only race with `shard_mut` views,
// and the lock protocol makes those mutually exclusive per shard. The
// accessors hand out `&K`/`&V` that shared-`&self` callers may use from
// many threads at once, so `K: Sync + V: Sync` is also required — with
// only `Send`, safe code could race a `Cell` value through `get()`.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for ShardedMap<K, V> {}

impl<K: ShardKey, V> ShardedMap<K, V> {
    /// An empty map with `n` shards (minimum 1).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        ShardedMap {
            shards: (0..n).map(|_| UnsafeCell::new(HashMap::new())).collect(),
            #[cfg(debug_assertions)]
            flags: ShardFlags::new(n),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index a key belongs to.
    pub fn shard_of(&self, key: &K) -> usize {
        key.shard_of(self.shards.len())
    }

    /// Runs `f` over one shard's `HashMap` inside a sanitizer reader
    /// window: the shared deref and the operation both happen while the
    /// shard's reader count is raised, so a concurrent exclusive view is
    /// caught in either direction (debug builds only).
    fn with_shard<'s, R>(&'s self, idx: usize, f: impl FnOnce(&'s HashMap<K, V>) -> R) -> R {
        #[cfg(debug_assertions)]
        self.flags.begin_read(idx);
        // SAFETY: shared deref; callers uphold the module-level protocol
        // (no live `shard_mut` view of this shard on another thread).
        let out = f(unsafe { &*self.shards[idx].get() });
        #[cfg(debug_assertions)]
        self.flags.end_read(idx);
        out
    }

    /// Debug-build check that shard `idx` has no live borrow at all —
    /// used by the `&mut self` (write-lock path) accessors, where a live
    /// [`ShardMut`] guard would mean a fast-path view leaked across into
    /// the write-lock world.
    fn debug_quiescent(&self, idx: usize) {
        #[cfg(debug_assertions)]
        self.flags.assert_quiescent(idx);
        #[cfg(not(debug_assertions))]
        let _ = idx;
    }

    fn debug_all_quiescent(&self) {
        #[cfg(debug_assertions)]
        for i in 0..self.shards.len() {
            self.flags.assert_quiescent(i);
        }
    }

    /// Exclusive view of one shard's partition through a shared
    /// reference — the fast-path entry point.
    ///
    /// # Safety
    ///
    /// The caller must hold the core lock in read mode *and* stripe
    /// `idx`, and must not access this map through any other method
    /// (on any shard-`idx` key) while the returned guard is live.
    pub unsafe fn shard_mut(&self, idx: usize) -> ShardMut<'_, K, V> {
        #[cfg(debug_assertions)]
        self.flags.begin_write(idx);
        ShardMut {
            map: &mut *self.shards[idx].get(),
            #[cfg(debug_assertions)]
            flags: &self.flags,
            #[cfg(debug_assertions)]
            idx,
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.with_shard(self.shard_of(key), |m| m.get(key))
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.with_shard(self.shard_of(key), |m| m.contains_key(key))
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.with_shard(i, |m| m.len())).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        (0..self.shards.len()).all(|i| self.with_shard(i, |m| m.is_empty()))
    }

    /// Iterates all entries (shard-major order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        (0..self.shards.len()).flat_map(|i| self.with_shard(i, |m| m.iter()))
    }

    /// Iterates all keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates all values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Mutable lookup (write-lock path).
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = self.shard_of(key);
        self.debug_quiescent(idx);
        self.shards[idx].get_mut().get_mut(key)
    }

    /// Inserts, returning any previous value (write-lock path).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let idx = self.shard_of(&key);
        self.debug_quiescent(idx);
        self.shards[idx].get_mut().insert(key, value)
    }

    /// Removes a key (write-lock path).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.shard_of(key);
        self.debug_quiescent(idx);
        self.shards[idx].get_mut().remove(key)
    }

    /// Entry API on the owning shard (write-lock path).
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        let idx = self.shard_of(&key);
        self.debug_quiescent(idx);
        self.shards[idx].get_mut().entry(key)
    }

    /// Keeps only entries the predicate accepts (write-lock path).
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.debug_all_quiescent();
        for shard in &mut self.shards {
            shard.get_mut().retain(|k, v| f(k, v));
        }
    }

    /// Iterates all values mutably (write-lock path).
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.debug_all_quiescent();
        self.shards.iter_mut().flat_map(|s| s.get_mut().values_mut())
    }

    /// Iterates all entries mutably (write-lock path).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.debug_all_quiescent();
        self.shards.iter_mut().flat_map(|s| s.get_mut().iter_mut())
    }
}

impl<'a, K: ShardKey, V> IntoIterator for &'a ShardedMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Box<dyn Iterator<Item = (&'a K, &'a V)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl<K: ShardKey, V> std::ops::Index<&K> for ShardedMap<K, V> {
    type Output = V;
    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry found for key")
    }
}

impl<K: ShardKey + std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// One stripe (plain mutex) per shard, taken by the fast path after the
/// core read lock. Lock order: `core` → `stripe`; a thread holds at most
/// one stripe at a time.
pub struct ShardSet {
    stripes: Vec<parking_lot::Mutex<()>>,
}

impl ShardSet {
    /// A set of `n` stripes (minimum 1).
    pub fn new(n: usize) -> Self {
        ShardSet { stripes: (0..n.max(1)).map(|_| parking_lot::Mutex::new(())).collect() }
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Whether the set is empty (never true: minimum one stripe).
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// The stripe mutex guarding shard `idx`.
    pub fn stripe(&self, idx: usize) -> &parking_lot::Mutex<()> {
        &self.stripes[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(client: u32, serial: u32) -> u32 {
        (client << ID_SHIFT) | serial
    }

    #[test]
    fn shard_assignment_follows_owner() {
        let m: ShardedMap<u32, &str> = ShardedMap::new(8);
        assert_eq!(m.shard_of(&id(1, 7)), 1);
        assert_eq!(m.shard_of(&id(9, 7)), 1); // 9 % 8
        assert_eq!(m.shard_of(&id(3, 0xFFFFF)), 3);
        // ResKey shards by the wrapped id's owner.
        let p: ShardedMap<ResKey, &str> = ShardedMap::new(8);
        assert_eq!(p.shard_of(&ResKey(0, id(5, 1))), 5);
        assert_eq!(p.shard_of(&ResKey(3, 2)), 0); // device keys: shard 0
    }

    #[test]
    fn hashmap_facade_roundtrip() {
        let mut m: ShardedMap<u32, String> = ShardedMap::new(4);
        assert!(m.is_empty());
        for c in 1..=6u32 {
            for s in 1..=3u32 {
                m.insert(id(c, s), format!("{c}/{s}"));
            }
        }
        assert_eq!(m.len(), 18);
        assert!(m.contains_key(&id(2, 2)));
        assert_eq!(m[&id(4, 1)], "4/1");
        assert_eq!(m.get(&id(6, 3)).map(String::as_str), Some("6/3"));
        assert_eq!(m.get_mut(&id(6, 3)).map(|v| v.push('!')), Some(()));
        assert_eq!(m.remove(&id(6, 3)).as_deref(), Some("6/3!"));
        assert_eq!(m.keys().count(), 17);
        assert_eq!(m.values().count(), 17);
        assert_eq!(m.iter().count(), 17);
        m.entry(id(1, 9)).or_insert_with(|| "late".into());
        m.retain(|k, _| k.owner() != 2);
        assert_eq!(m.len(), 15);
        for v in m.values_mut() {
            v.push('.');
        }
        assert_eq!(m[&id(1, 9)], "late.");
    }

    #[test]
    fn shard_mut_sees_only_its_partition() {
        let mut m: ShardedMap<u32, u32> = ShardedMap::new(4);
        m.insert(id(1, 1), 11);
        m.insert(id(2, 1), 21);
        m.insert(id(5, 1), 51); // 5 % 4 == 1: same shard as client 1
        // SAFETY: single-threaded test — no concurrent access at all.
        let mut view = unsafe { m.shard_mut(1) };
        assert_eq!(view.len(), 2);
        view.insert(id(1, 2), 12);
        assert_eq!(view.get(&id(2, 1)), None);
        drop(view);
        assert_eq!(m.len(), 4);
        assert_eq!(m[&id(1, 2)], 12);
    }

    /// Seeded aliasing overlap: two exclusive views of the same shard.
    /// The debug-build sanitizer must refuse the second one.
    #[cfg(debug_assertions)]
    #[test]
    fn sanitizer_catches_overlapping_shard_mut() {
        let m: ShardedMap<u32, u32> = ShardedMap::new(4);
        // SAFETY: single-threaded; the aliasing overlap is the point —
        // the sanitizer panics before the second `&mut` materialises.
        let _live = unsafe { m.shard_mut(1) };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: see above — never returns.
            let _second = unsafe { m.shard_mut(1) };
        }))
        .expect_err("overlapping shard_mut views must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("overlapping shard_mut"), "unexpected panic: {msg}");
        // A different shard is unaffected.
        // SAFETY: shard 2 has no live view.
        let _other = unsafe { m.shard_mut(2) };
    }

    /// Mut-while-shared: a `&self` read of a shard with a live exclusive
    /// view must panic in debug builds.
    #[cfg(debug_assertions)]
    #[test]
    fn sanitizer_catches_read_during_shard_mut() {
        let mut m: ShardedMap<u32, u32> = ShardedMap::new(4);
        m.insert(id(1, 1), 11);
        // SAFETY: single-threaded; the illegal read below is the point.
        let _live = unsafe { m.shard_mut(1) };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = m.get(&id(1, 1));
        }))
        .expect_err("reading a shard with a live shard_mut view must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("mut-while-shared"), "unexpected panic: {msg}");
        // Reads of other shards stay legal while the view is live.
        assert_eq!(m.get(&id(2, 1)), None);
    }

    /// Dropping the guard ends the exclusive borrow: the same shard is
    /// immediately readable and re-borrowable again.
    #[test]
    fn sanitizer_releases_on_drop() {
        let mut m: ShardedMap<u32, u32> = ShardedMap::new(4);
        m.insert(id(1, 1), 11);
        for _ in 0..3 {
            // SAFETY: single-threaded test; views are strictly sequential.
            let mut view = unsafe { m.shard_mut(1) };
            view.insert(id(1, 2), 12);
            drop(view);
            assert_eq!(m.get(&id(1, 1)), Some(&11));
        }
        assert!(sanitizer_active() == cfg!(debug_assertions));
    }

    #[test]
    fn stripes_are_independent() {
        let s = ShardSet::new(4);
        assert_eq!(s.len(), 4);
        let zero = s.stripe(0);
        let g = zero.lock();
        // A different stripe is still free while 0 is held.
        let one = s.stripe(1);
        assert!(one.try_lock().is_some());
        assert!(zero.try_lock().is_none());
        drop(g);
        assert!(zero.try_lock().is_some());
    }
}
