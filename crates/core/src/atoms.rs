//! The atom table: interned names for properties and device controls.

use da_proto::ids::Atom;
use std::collections::HashMap;

/// Atoms the server pre-interns, so common names have stable ids.
pub const PREDEFINED: &[(&str, u32)] = &[
    ("STRING", 1),
    ("INTEGER", 2),
    ("DOMAIN", 3),
    ("PRIORITY", 4),
    ("WM_NAME", 5),
    ("GAIN", 6),
    ("SYNC_INTERVAL", 7),
    ("AGC", 8),
    ("PAUSE_COMPRESSION", 9),
    ("UNDERRUN_POLICY", 10),
    ("EFFECT", 11),
];

/// A bidirectional name ↔ atom map.
#[derive(Debug)]
pub struct AtomTable {
    by_name: HashMap<String, Atom>,
    by_id: Vec<String>,
}

impl AtomTable {
    /// Creates a table holding the predefined atoms.
    pub fn new() -> Self {
        let mut t = AtomTable { by_name: HashMap::new(), by_id: vec![String::new()] };
        for (name, id) in PREDEFINED {
            debug_assert_eq!(*id as usize, t.by_id.len());
            t.by_name.insert((*name).to_string(), Atom(*id));
            t.by_id.push((*name).to_string());
        }
        t
    }

    /// Interns a name, creating a new atom if needed.
    pub fn intern(&mut self, name: &str) -> Atom {
        if let Some(a) = self.by_name.get(name) {
            return *a;
        }
        let atom = Atom(self.by_id.len() as u32);
        self.by_name.insert(name.to_string(), atom);
        self.by_id.push(name.to_string());
        atom
    }

    /// Looks up an existing atom without creating it.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.by_name.get(name).copied()
    }

    /// The name of an atom, if it exists.
    pub fn name(&self, atom: Atom) -> Option<&str> {
        if atom.0 == 0 {
            return None;
        }
        self.by_id.get(atom.0 as usize).map(|s| s.as_str())
    }
}

impl Default for AtomTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_atoms_present() {
        let t = AtomTable::new();
        assert_eq!(t.lookup("STRING"), Some(Atom(1)));
        assert_eq!(t.name(Atom(3)), Some("DOMAIN"));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = AtomTable::new();
        let a = t.intern("MY_PROP");
        let b = t.intern("MY_PROP");
        assert_eq!(a, b);
        assert_eq!(t.name(a), Some("MY_PROP"));
    }

    #[test]
    fn unknown_atoms_are_none() {
        let t = AtomTable::new();
        assert_eq!(t.name(Atom(0)), None);
        assert_eq!(t.name(Atom(999)), None);
        assert_eq!(t.lookup("NOPE"), None);
    }
}
