//! Sharded fast-path dispatch (DESIGN.md §13).
//!
//! A request is *fast-eligible* when its opcode is on the whitelist
//! below and every resource id it references belongs to the requesting
//! client (`id >> 20 == client`). Such a request touches only the
//! client's own shard of the resource maps plus read-only global state,
//! so it dispatches under the core **read** lock + that shard's stripe
//! — concurrently with fast-path requests from clients on other shards.
//! Everything else (activation, destroys, manager redirection, event
//! selection, stats) punts to the global-write-lock slow path in
//! [`crate::dispatch`], which sees the exact single-lock world.
//!
//! The handlers here mirror the slow-path arms byte for byte in their
//! observable behaviour (same error codes, same events, same replies);
//! the debug-build invariant sweep after every fast dispatch and the
//! soak/model-check harnesses are the safety net for keeping them in
//! lockstep.
//!
//! Aliasing rule: handlers reach the sharded maps **only** through the
//! [`ShardView`] (never through `core.louds` etc. — mixing a `&` read
//! with the view's `&mut` on the same map is UB), and use `&Core` only
//! for state that is mutated exclusively under the write lock (clients,
//! selections, hardware, atoms, catalogs, config, device time) or is
//! atomic (`topology_gen`).

use crate::core::{Core, ResKey, ServerMsg};
use crate::loud::Loud;
use crate::shard::ShardMut;
use crate::queue::TypedQueue;
use crate::sound::Sound;
use crate::vdevice::VDev;
use crate::wire::Wire;
use da_proto::error::{ErrorCode, ProtoError};
use da_proto::event::Event;
use da_proto::ids::{ClientId, LoudId, ResourceId};
use da_proto::reply::Reply;
use da_proto::request::Request;
use da_proto::types::{PortDir, Property, QueueState, WireType};
use parking_lot::RwLock;
use std::collections::HashMap;

type DispatchResult = Result<Option<Reply>, ProtoError>;

fn err(code: ErrorCode, value: u32, detail: impl Into<String>) -> ProtoError {
    ProtoError::new(code, value, detail)
}

/// Whether `id` is inside `client`'s allocated id range.
fn owns_id(client: ClientId, id: u32) -> bool {
    id >> 20 == client.0 && id & 0x000F_FFFF != 0
}

/// An own-client resource target (never a physical device).
fn own_target(client: ClientId, target: ResourceId) -> bool {
    match target {
        ResourceId::Loud(id) => owns_id(client, id.0),
        ResourceId::VDevice(id) => owns_id(client, id.0),
        ResourceId::Sound(id) => owns_id(client, id.0),
        ResourceId::Device(_) => false,
    }
}

/// What sharded state an opcode's handler touches — the proof obligation
/// behind the fast-path whitelist (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// Touches only the requesting client's shard plus read-only global
    /// state: fast-eligible under read lock + one stripe.
    Own,
    /// Touches no sharded state at all and only read-only globals:
    /// fast-eligible trivially.
    Global,
    /// May touch other clients' shards or mutable global state (active
    /// stack, selections, hardware bindings, engine plans): must punt to
    /// the write-lock slow path.
    Cross,
}

/// Per-opcode shard footprint, one row per `Request` variant with the
/// reason the classification holds. The `xtask races` lint cross-checks
/// this table three ways: every variant has exactly one row, the
/// [`eligible`] whitelist is exactly the `Own`/`Global` rows, and the
/// [`exec_fast`] arm set matches the whitelist — so a handler added to
/// one place but not the others fails CI instead of silently punting or,
/// worse, running cross-shard work under a read lock.
pub const OPCODE_TOUCHES: &[(&str, Footprint, &str)] = &[
    ("CreateLoud", Footprint::Own, "new loud + own-shard parent link"),
    ("DestroyLoud", Footprint::Cross, "cascades into active stack, selections, engine plans"),
    ("MapLoud", Footprint::Cross, "active stack + activation recompute are global"),
    ("UnmapLoud", Footprint::Cross, "active stack + activation recompute are global"),
    ("RaiseLoud", Footprint::Cross, "restacks the global active stack"),
    ("LowerLoud", Footprint::Cross, "restacks the global active stack"),
    ("RequestActivate", Footprint::Cross, "activation walks every tree for preemption"),
    ("RequestDeactivate", Footprint::Cross, "activation walks every tree for preemption"),
    ("QueryActiveStack", Footprint::Cross, "reads the global active stack"),
    ("CreateVDevice", Footprint::Own, "own loud tree; punts pre-mutation if tree is active"),
    ("DestroyVDevice", Footprint::Cross, "may rebind hardware and rewrite engine plans"),
    ("AugmentVDevice", Footprint::Cross, "attribute change can force a hardware rebind"),
    ("QueryVDeviceAttributes", Footprint::Own, "own vdev + read-only hardware registry"),
    ("SetDeviceControl", Footprint::Cross, "drives physical device state"),
    ("GetDeviceControl", Footprint::Cross, "reads physical device state"),
    ("CreateWire", Footprint::Own, "both endpoints owned; cycle check stays in-shard"),
    ("DestroyWire", Footprint::Own, "own wire removal; plan cache invalidated atomically"),
    ("QueryWire", Footprint::Own, "reads one own-shard wire"),
    ("QueryDeviceWires", Footprint::Own, "a client's wire component lives in its shard"),
    ("Enqueue", Footprint::Own, "appends to the own root's queue"),
    ("Immediate", Footprint::Cross, "bypasses the queue into live engine state"),
    ("StartQueue", Footprint::Own, "own queue + own-shard device unpause"),
    ("StopQueue", Footprint::Cross, "tears down running entries via engine state"),
    ("PauseQueue", Footprint::Cross, "pauses running devices through the engine"),
    ("ResumeQueue", Footprint::Cross, "resumes running devices through the engine"),
    ("FlushQueue", Footprint::Cross, "cancels running entries via engine state"),
    ("QueryQueue", Footprint::Own, "reads the own root's queue"),
    ("CreateSound", Footprint::Own, "new own-shard sound"),
    ("DeleteSound", Footprint::Cross, "must check no queue on any shard references it"),
    ("WriteSoundData", Footprint::Own, "appends to an own-shard sound"),
    ("ReadSoundData", Footprint::Own, "reads an own-shard sound"),
    ("QuerySound", Footprint::Own, "reads an own-shard sound"),
    ("ListCatalog", Footprint::Global, "read-only catalog registry"),
    ("OpenCatalogSound", Footprint::Own, "new own-shard sound from the read-only catalog"),
    ("SelectEvents", Footprint::Cross, "selections live in global client state"),
    ("SetSyncInterval", Footprint::Own, "writes one own-shard vdev field"),
    ("InternAtom", Footprint::Cross, "mutates the global atom table"),
    ("GetAtomName", Footprint::Global, "read-only atom table"),
    ("ChangeProperty", Footprint::Own, "own-target property write + event fan-out"),
    ("GetProperty", Footprint::Own, "reads an own-target property"),
    ("DeleteProperty", Footprint::Own, "own-target property removal + event fan-out"),
    ("ListProperties", Footprint::Own, "reads own-target properties"),
    ("QueryDeviceLoud", Footprint::Cross, "walks the device LOUD (shard 0, shared)"),
    ("SetRedirect", Footprint::Cross, "installs the global manager redirect"),
    ("AllowMap", Footprint::Cross, "manager approval mutates the active stack"),
    ("AllowRaise", Footprint::Cross, "manager approval mutates the active stack"),
    ("GetServerInfo", Footprint::Global, "read-only config + device time"),
    ("Sync", Footprint::Global, "pure fence, no state"),
    ("QueryServerStats", Footprint::Cross, "aggregates telemetry across all clients"),
    ("ListClients", Footprint::Cross, "reads the global client table"),
    ("QueryTraces", Footprint::Cross, "snapshots the cross-client flight-recorder ring"),
];

/// Exclusive access to one shard's partition of every sharded map. Each
/// field is a [`ShardMut`] guard: in debug builds its lifetime is
/// registered with the borrow sanitizer, so any `&Core` read of the same
/// shard while the view is live panics instead of racing.
pub struct ShardView<'a> {
    pub louds: ShardMut<'a, u32, Loud>,
    pub vdevs: ShardMut<'a, u32, VDev>,
    pub wires: ShardMut<'a, u32, Wire>,
    pub sounds: ShardMut<'a, u32, Sound>,
    pub properties: ShardMut<'a, ResKey, HashMap<u32, Property>>,
}

impl<'a> ShardView<'a> {
    /// Builds the view over shard `shard`.
    ///
    /// # Safety
    ///
    /// The caller must hold the core lock in read mode and stripe
    /// `shard`, and must not access any of the five sharded maps on
    /// shard-`shard` keys through `&Core` while the view is live.
    pub unsafe fn new(core: &'a Core, shard: usize) -> ShardView<'a> {
        ShardView {
            louds: core.louds.shard_mut(shard),
            vdevs: core.vdevs.shard_mut(shard),
            wires: core.wires.shard_mut(shard),
            sounds: core.sounds.shard_mut(shard),
            properties: core.properties.shard_mut(shard),
        }
    }
}

/// Outcome of a fast-path attempt.
enum FastOutcome {
    /// Executed to completion (reply/error already determined).
    Done(DispatchResult),
    /// Needs the slow path; **no state was mutated**.
    Punt,
}

/// Is the request on the fast-path whitelist with every referenced id
/// inside the client's own id range?
fn eligible(client: ClientId, request: &Request) -> bool {
    match request {
        Request::CreateLoud { id, parent } => {
            owns_id(client, id.0) && parent.map(|p| owns_id(client, p.0)).unwrap_or(true)
        }
        Request::CreateVDevice { id, loud, .. } => {
            owns_id(client, id.0) && owns_id(client, loud.0)
        }
        Request::CreateWire { id, src, dst, .. } => {
            owns_id(client, id.0) && owns_id(client, src.0) && owns_id(client, dst.0)
        }
        Request::DestroyWire { id }
        | Request::QueryWire { id } => owns_id(client, id.0),
        Request::QueryDeviceWires { id }
        | Request::QueryVDeviceAttributes { id } => owns_id(client, id.0),
        Request::SetSyncInterval { vdev, .. } => owns_id(client, vdev.0),
        Request::Enqueue { loud, .. }
        | Request::StartQueue { loud }
        | Request::QueryQueue { loud } => owns_id(client, loud.0),
        Request::CreateSound { id, .. }
        | Request::OpenCatalogSound { id, .. }
        | Request::WriteSoundData { id, .. }
        | Request::ReadSoundData { id, .. }
        | Request::QuerySound { id } => owns_id(client, id.0),
        Request::ChangeProperty { target, .. }
        | Request::GetProperty { target, .. }
        | Request::DeleteProperty { target, .. }
        | Request::ListProperties { target } => own_target(client, *target),
        Request::ListCatalog { .. }
        | Request::GetAtomName { .. }
        | Request::GetServerInfo
        | Request::Sync => true,
        _ => false,
    }
}

/// Attempts the fast path. Returns `true` when the request was fully
/// handled (reply/error queued); `false` means nothing happened and the
/// caller must dispatch under the write lock.
pub fn try_dispatch(core: &RwLock<Core>, client: ClientId, seq: u32, request: &Request) -> bool {
    if !eligible(client, request) {
        return false;
    }
    let done = {
        let c = core.read();
        if c.shutting_down {
            return false;
        }
        let started = std::time::Instant::now();
        let op = request.opcode();
        c.tel.recorder.dispatch_begin(client.0, seq);
        let shard = (client.0 as usize) % c.stripes.len();
        let waited = std::time::Instant::now();
        let stripe = c.stripes.stripe(shard);
        let _stripe = stripe.lock();
        let shard_wait = waited.elapsed();
        c.tel.metrics.shard_lock_wait_us.record_duration_us(shard_wait);
        let held = std::time::Instant::now();
        let _span =
            da_telemetry::span!(c.tel.journal, "dispatch", client = client.0, opcode = op);
        let outcome = {
            // Debug builds tally allocations made by the fast-path
            // executor itself (readable via `rt::scope_allocs`); the
            // zero-alloc suite asserts pure opcodes tally zero.
            let _count = crate::rt::ScopedAllocGuard::count();
            // SAFETY: core read lock + stripe `shard` held; within this
            // block the sharded maps are accessed only through the view.
            let mut view = unsafe { ShardView::new(&c, shard) };
            exec_fast(&c, &mut view, client, seq, request)
        };
        let handled = match outcome {
            FastOutcome::Punt => false,
            FastOutcome::Done(result) => {
                c.tel.count_opcode(op as usize);
                c.tel.metrics.dispatch_requests_total.inc();
                c.tel.metrics.dispatch_fast_total.inc();
                if result.is_err() {
                    c.tel.metrics.dispatch_errors_total.inc();
                }
                c.tel.metrics.dispatch_latency_us.record_duration_us(started.elapsed());
                let completes = !request.has_reply() && result.is_ok();
                c.tel.recorder.dispatch_done(
                    client.0,
                    seq,
                    true,
                    shard_wait.as_micros() as u64, // cast-ok: stripe wait in µs, far below u64::MAX
                    completes,
                );
                match result {
                    Ok(Some(reply)) => c.send_to_client(client, ServerMsg::Reply(seq, reply)),
                    Ok(None) => {
                        if request.has_reply() {
                            c.send_to_client(
                                client,
                                ServerMsg::Error(
                                    seq,
                                    err(ErrorCode::Unimplemented, 0, "no reply produced"),
                                ),
                            );
                        }
                    }
                    Err(e) => c.send_to_client(client, ServerMsg::Error(seq, e)),
                }
                true
            }
        };
        c.tel.metrics.shard_lock_hold_us.record_duration_us(held.elapsed());
        handled
    };
    // Debug builds re-establish the full invariant set after every fast
    // dispatch, exactly like the slow path — under the write lock, so
    // the sweep sees a quiesced world.
    #[cfg(debug_assertions)]
    if done {
        let c = core.write();
        if let Err(v) = crate::validate::check(&c) {
            let dbg = format!("{request:?}");
            let name = dbg.split(|ch: char| !ch.is_alphanumeric()).next().unwrap_or("?");
            panic!("protocol invariant violated after fast-path {name}: {v}");
        }
    }
    done
}

/// The root of the LOUD tree containing `loud`, walking the view.
fn root_of(louds: &HashMap<u32, Loud>, loud: u32) -> u32 {
    let mut cur = loud;
    while let Some(l) = louds.get(&cur) {
        match l.parent {
            Some(p) => cur = p,
            None => return cur,
        }
    }
    cur
}

/// Is `to` reachable from `from` along this shard's wires? Complete for
/// own-client endpoints: wires always join two devices of one owner, so
/// the wire graph decomposes per client and a client's component lives
/// wholly inside its shard.
fn reaches(wires: &HashMap<u32, Wire>, from: u32, to: u32) -> bool {
    let mut stack = vec![from];
    let mut seen = std::collections::HashSet::new();
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if !seen.insert(v) {
            continue;
        }
        for w in wires.values() {
            if w.src.0 == v {
                stack.push(w.dst.0);
            }
        }
    }
    false
}

/// A property/selection target must exist; fast-eligible targets are
/// always own-client, so the view is authoritative.
fn validate_target(view: &ShardView, core: &Core, target: ResourceId) -> Result<(), ProtoError> {
    match target {
        ResourceId::Loud(id) => view
            .louds
            .get(&id.0)
            .map(|_| ())
            .ok_or_else(|| err(ErrorCode::BadLoud, id.0, "no such loud")),
        ResourceId::VDevice(id) => view
            .vdevs
            .get(&id.0)
            .map(|_| ())
            .ok_or_else(|| err(ErrorCode::BadDevice, id.0, "no such device")),
        ResourceId::Sound(id) => view
            .sounds
            .get(&id.0)
            .map(|_| ())
            .ok_or_else(|| err(ErrorCode::BadSound, id.0, "no such sound")),
        ResourceId::Device(id) => {
            // Unreachable: device targets are never fast-eligible.
            let _ = core;
            Err(err(ErrorCode::BadDevice, id.0, "no such physical device"))
        }
    }
}

/// Executes one fast-eligible request against the client's shard.
fn exec_fast(
    core: &Core,
    view: &mut ShardView,
    client: ClientId,
    seq: u32,
    request: &Request,
) -> FastOutcome {
    use FastOutcome::{Done, Punt};
    match request {
        Request::CreateLoud { id, parent } => {
            if view.louds.contains_key(&id.0) {
                return Done(Err(err(ErrorCode::BadIdChoice, id.0, "loud id unavailable")));
            }
            let parent_raw = match parent {
                None => None,
                Some(p) => {
                    let Some(pl) = view.louds.get(&p.0) else {
                        return Done(Err(err(ErrorCode::BadLoud, p.0, "parent loud")));
                    };
                    if pl.owner != client {
                        return Done(Err(err(
                            ErrorCode::BadAccess,
                            p.0,
                            "parent owned by another client",
                        )));
                    }
                    Some(p.0)
                }
            };
            view.louds.insert(id.0, Loud::new(*id, client, parent_raw));
            if let Some(p) = parent_raw {
                if let Some(pl) = view.louds.get_mut(&p) {
                    pl.children.push(id.0);
                }
            }
            Done(Ok(None))
        }

        Request::CreateVDevice { id, loud, class, attrs } => {
            if view.vdevs.contains_key(&id.0) {
                return Done(Err(err(ErrorCode::BadIdChoice, id.0, "vdevice id unavailable")));
            }
            let Some(l) = view.louds.get(&loud.0) else {
                return Done(Err(err(ErrorCode::BadLoud, loud.0, "no such loud")));
            };
            if l.owner != client {
                return Done(Err(err(ErrorCode::BadAccess, loud.0, "not owner")));
            }
            if Core::needs_hardware(*class) {
                let any =
                    (0..core.hw.device_count()).any(|i| core.device_matches(i, *class, attrs));
                if !any {
                    return Done(Err(err(
                        ErrorCode::DeviceBusy,
                        id.0,
                        "no physical device satisfies the attribute constraints",
                    )));
                }
            }
            let root = root_of(&view.louds, loud.0);
            // An already-active tree must rebind (recompute_activation),
            // which walks cross-shard state — punt before mutating.
            if view.louds.get(&root).map(|l| l.active) == Some(true) {
                return Punt;
            }
            let v = VDev::new(*id, client, loud.0, root, *class, attrs.clone());
            view.vdevs.insert(id.0, v);
            core.invalidate_plans();
            if let Some(l) = view.louds.get_mut(&loud.0) {
                l.vdevs.push(id.0);
            }
            Done(Ok(None))
        }

        Request::QueryVDeviceAttributes { id } => {
            let Some(v) = view.vdevs.get(&id.0) else {
                return Done(Err(err(ErrorCode::BadDevice, id.0, "no such device")));
            };
            let mapped_device = match v.binding {
                Some(crate::vdevice::HwBinding::Speaker(_))
                | Some(crate::vdevice::HwBinding::Microphone(_))
                | Some(crate::vdevice::HwBinding::Line(_)) => {
                    let b = v.binding;
                    (0..core.hw.device_count())
                        .find(|&i| match (core.hw.slot(i), b) {
                            (
                                Some(da_hw::registry::HwSlot::Speaker(s)),
                                Some(crate::vdevice::HwBinding::Speaker(bs)),
                            ) => s == bs,
                            (
                                Some(da_hw::registry::HwSlot::Microphone(m)),
                                Some(crate::vdevice::HwBinding::Microphone(bm)),
                            ) => m == bm,
                            (
                                Some(da_hw::registry::HwSlot::Line(l)),
                                Some(crate::vdevice::HwBinding::Line(bl)),
                            ) => l == bl,
                            _ => false,
                        })
                        .map(|i| da_proto::ids::DeviceId(i as u32)) // cast-ok: device-LOUD slot index, bounded by physical device count
                }
                _ => None,
            };
            Done(Ok(Some(Reply::VDeviceAttributes { attrs: v.attrs.clone(), mapped_device })))
        }

        Request::SetSyncInterval { vdev, interval_frames } => {
            let Some(v) = view.vdevs.get_mut(&vdev.0) else {
                return Done(Err(err(ErrorCode::BadDevice, vdev.0, "no such device")));
            };
            if v.owner != client {
                return Done(Err(err(ErrorCode::BadAccess, vdev.0, "not owner")));
            }
            v.sync_interval = *interval_frames;
            Done(Ok(None))
        }

        Request::CreateWire { id, src, src_port, dst, dst_port, wire_type } => {
            if view.wires.contains_key(&id.0) {
                return Done(Err(err(ErrorCode::BadIdChoice, id.0, "wire id unavailable")));
            }
            let Some(sv) = view.vdevs.get(&src.0) else {
                return Done(Err(err(ErrorCode::BadDevice, src.0, "no such device")));
            };
            let Some(dv) = view.vdevs.get(&dst.0) else {
                return Done(Err(err(ErrorCode::BadDevice, dst.0, "no such device")));
            };
            if sv.owner != client || dv.owner != client {
                return Done(Err(err(
                    ErrorCode::BadAccess,
                    id.0,
                    "devices owned by another client",
                )));
            }
            if src.0 == dst.0 {
                return Done(Err(err(
                    ErrorCode::BadMatch,
                    id.0,
                    "cannot wire a device to itself",
                )));
            }
            if sv.root != dv.root {
                return Done(Err(err(ErrorCode::BadMatch, id.0, "wire crosses LOUD trees")));
            }
            if !sv.has_port(PortDir::Source, *src_port) {
                return Done(Err(err(
                    ErrorCode::BadValue,
                    u32::from(*src_port),
                    "bad source port",
                )));
            }
            if !dv.has_port(PortDir::Sink, *dst_port) {
                return Done(Err(err(
                    ErrorCode::BadValue,
                    u32::from(*dst_port),
                    "bad sink port",
                )));
            }
            let src_t = WireType::Digital(da_proto::types::SoundType {
                encoding: da_proto::types::Encoding::Pcm16,
                sample_rate: sv.rate,
                channels: 1,
            });
            let dst_t = WireType::Digital(da_proto::types::SoundType {
                encoding: da_proto::types::Encoding::Pcm16,
                sample_rate: dv.rate,
                channels: 1,
            });
            match wire_type {
                WireType::Any => {}
                WireType::Analog => {
                    return Done(Err(err(
                        ErrorCode::BadMatch,
                        id.0,
                        "analog wires exist only in the device LOUD",
                    )));
                }
                t @ WireType::Digital(_) => {
                    if !t.admits(&src_t) && !t.admits(&dst_t) {
                        return Done(Err(err(ErrorCode::BadMatch, id.0, "wire type mismatch")));
                    }
                }
            }
            if reaches(&view.wires, dst.0, src.0) {
                return Done(Err(err(ErrorCode::BadMatch, id.0, "wire would create a cycle")));
            }
            let pinned = |v: &VDev| {
                v.attrs.iter().find_map(|a| match a {
                    da_proto::types::Attribute::Device(d) => Some(d.0 as usize),
                    _ => None,
                })
            };
            if let (Some(pa), Some(pb)) = (pinned(sv), pinned(dv)) {
                let hard = &core.hw.spec().hard_wires;
                let a_constrained = hard.iter().any(|&(s, _, d, _)| s == pa || d == pa);
                let b_constrained = hard.iter().any(|&(s, _, d, _)| s == pb || d == pb);
                if a_constrained || b_constrained {
                    let allowed = hard.iter().any(|&(s, _, d, _)| s == pa && d == pb);
                    if !allowed {
                        return Done(Err(err(
                            ErrorCode::BadMatch,
                            id.0,
                            "devices are hard-wired elsewhere; the requested path cannot exist",
                        )));
                    }
                }
            }
            view.wires
                .insert(id.0, Wire::new(*id, client, *src, *src_port, *dst, *dst_port, *wire_type));
            core.invalidate_plans();
            Done(Ok(None))
        }

        Request::DestroyWire { id } => {
            let Some(w) = view.wires.get(&id.0) else {
                return Done(Err(err(ErrorCode::BadWire, id.0, "no such wire")));
            };
            if w.owner != client {
                return Done(Err(err(ErrorCode::BadAccess, id.0, "not owner")));
            }
            view.wires.remove(&id.0);
            core.invalidate_plans();
            Done(Ok(None))
        }

        Request::QueryWire { id } => {
            let Some(w) = view.wires.get(&id.0) else {
                return Done(Err(err(ErrorCode::BadWire, id.0, "no such wire")));
            };
            Done(Ok(Some(Reply::WireInfo {
                src: w.src,
                src_port: w.src_port,
                dst: w.dst,
                dst_port: w.dst_port,
                wire_type: w.wire_type,
            })))
        }

        Request::QueryDeviceWires { id } => {
            if !view.vdevs.contains_key(&id.0) {
                return Done(Err(err(ErrorCode::BadDevice, id.0, "no such device")));
            }
            // Own-shard iteration is complete: any wire referencing this
            // device was created by — and is sharded with — its owner.
            let wires = view
                .wires
                .values()
                .filter(|w| w.src == *id || w.dst == *id)
                .map(|w| w.id)
                .collect();
            Done(Ok(Some(Reply::DeviceWires { wires })))
        }

        // ---- Queues -------------------------------------------------------
        Request::Enqueue { loud, entries } => {
            let Some(l) = view.louds.get_mut(&loud.0) else {
                return Done(Err(err(ErrorCode::BadLoud, loud.0, "no such loud")));
            };
            if l.owner != client {
                return Done(Err(err(ErrorCode::BadAccess, loud.0, "not owner")));
            }
            if !l.is_root() {
                return Done(Err(err(ErrorCode::BadLoud, loud.0, "queues live on root LOUDs")));
            }
            if let Some(q) = l.queue.as_mut() {
                let first = q.entry_cursor();
                q.enqueue(entries.clone());
                if q.entry_cursor() > first {
                    // The trace now completes at the CommandDone drain
                    // for the first node parsed from this request.
                    core.tel.recorder.register_watch(loud.0, first, client.0, seq);
                }
            }
            Done(Ok(None))
        }

        Request::StartQueue { loud } => {
            let root = loud.0;
            let Some(l) = view.louds.get_mut(&root) else {
                return Done(Err(err(ErrorCode::BadLoud, root, "no such loud")));
            };
            if l.owner != client {
                return Done(Err(err(ErrorCode::BadAccess, root, "not owner")));
            }
            let prior = {
                let Some(q) = l.queue.as_mut() else {
                    return Done(Err(err(ErrorCode::BadLoud, root, "not a root loud")));
                };
                let prior = q.state();
                match q.typed() {
                    TypedQueue::Stopped(t) => {
                        t.start();
                    }
                    TypedQueue::ClientPaused(t) => {
                        t.resume();
                    }
                    TypedQueue::Started(_) | TypedQueue::ServerPaused(_) => {}
                }
                prior
            };
            match prior {
                QueueState::Stopped => {
                    core.send_event(ResKey(0, root), Event::QueueStarted { loud: LoudId(root) });
                }
                QueueState::ClientPaused => {
                    // Unpause the queue's running devices (all in-tree,
                    // hence own-shard).
                    let devices = {
                        let Some(l) = view.louds.get(&root) else { return Done(Ok(None)) };
                        let mut devs = Vec::new();
                        if let Some(q) = &l.queue {
                            if let Some(run) = &q.running {
                                run.running_devices(&mut devs);
                            }
                        }
                        devs
                    };
                    for d in devices {
                        if let Some(v) = view.vdevs.get_mut(&d.0) {
                            v.paused = false;
                        }
                    }
                    core.send_event(ResKey(0, root), Event::QueueResumed { loud: LoudId(root) });
                }
                QueueState::Started | QueueState::ServerPaused => {}
            }
            Done(Ok(None))
        }

        Request::QueryQueue { loud } => {
            let Some(l) = view.louds.get(&loud.0) else {
                return Done(Err(err(ErrorCode::BadLoud, loud.0, "no such loud")));
            };
            let Some(q) = &l.queue else {
                return Done(Err(err(ErrorCode::BadLoud, loud.0, "not a root loud")));
            };
            Done(Ok(Some(Reply::QueueInfo {
                state: q.state(),
                pending: q.pending_len(),
                relative_frames: q.relative_frames,
            })))
        }

        // ---- Sounds -------------------------------------------------------
        Request::CreateSound { id, stype } => {
            if view.sounds.contains_key(&id.0) {
                return Done(Err(err(ErrorCode::BadIdChoice, id.0, "sound id unavailable")));
            }
            if stype.sample_rate == 0 || stype.channels == 0 {
                return Done(Err(err(ErrorCode::BadValue, id.0, "bad sound type")));
            }
            view.sounds.insert(id.0, Sound::new(*id, client, *stype));
            Done(Ok(None))
        }

        Request::OpenCatalogSound { id, catalog, name } => {
            if view.sounds.contains_key(&id.0) {
                return Done(Err(err(ErrorCode::BadIdChoice, id.0, "sound id unavailable")));
            }
            let Some(cat) = core.catalogs.get(catalog, name) else {
                return Done(Err(err(ErrorCode::BadValue, id.0, "no such catalogue sound")));
            };
            view.sounds.insert(id.0, Sound::from_catalog(*id, client, cat));
            Done(Ok(None))
        }

        Request::WriteSoundData { id, data, eof } => {
            let Some(s) = view.sounds.get_mut(&id.0) else {
                return Done(Err(err(ErrorCode::BadSound, id.0, "no such sound")));
            };
            if s.owner != client {
                return Done(Err(err(ErrorCode::BadAccess, id.0, "not owner")));
            }
            if s.complete {
                return Done(Err(err(ErrorCode::BadMatch, id.0, "sound already complete")));
            }
            if s.len_bytes() + data.len() as u64 > da_proto::types::MAX_SOUND_BYTES {
                // Rejected before any allocation, mirroring the
                // connection plane's oversized-frame policy.
                core.tel.metrics.sounds_rejected_oversize_total.inc();
                return Done(Err(err(ErrorCode::BadValue, id.0, "sound exceeds maximum size")));
            }
            if !s.append(data, *eof) {
                return Done(Err(err(
                    ErrorCode::BadMatch,
                    id.0,
                    "catalogue sounds are immutable",
                )));
            }
            if s.complete {
                // Final block: intern the finished payload so identical
                // content across clients shares one allocation
                // (DESIGN.md §17). The store is a leaf below the stripe.
                let (arc, hash) =
                    core.store.intern_payload(s.stype, std::mem::take(&mut s.data));
                s.shared = Some(arc);
                s.content_hash = Some(hash);
            }
            Done(Ok(None))
        }

        Request::ReadSoundData { id, offset, len } => {
            let Some(s) = view.sounds.get(&id.0) else {
                return Done(Err(err(ErrorCode::BadSound, id.0, "no such sound")));
            };
            let bytes = s.bytes();
            let start = (*offset as usize).min(bytes.len());
            let end = start.saturating_add(*len as usize).min(bytes.len());
            Done(Ok(Some(Reply::SoundData {
                data: bytes[start..end].to_vec(),
                // A streaming sound's tail is not the end: more data may
                // arrive until the `eof` block lands.
                at_end: s.complete && end == bytes.len(),
            })))
        }

        Request::QuerySound { id } => {
            let Some(s) = view.sounds.get(&id.0) else {
                return Done(Err(err(ErrorCode::BadSound, id.0, "no such sound")));
            };
            Done(Ok(Some(Reply::SoundInfo {
                stype: s.stype,
                bytes: s.len_bytes(),
                frames: s.len_frames(),
                complete: s.complete,
            })))
        }

        Request::ListCatalog { catalog } => {
            Done(Ok(Some(Reply::Catalog { names: core.catalogs.list(catalog) })))
        }

        // ---- Atoms & properties -------------------------------------------
        Request::GetAtomName { atom } => match core.atoms.name(*atom) {
            Some(n) => Done(Ok(Some(Reply::AtomName { name: n.to_string() }))),
            None => Done(Err(err(ErrorCode::BadAtom, atom.0, "unknown atom"))),
        },

        Request::ChangeProperty { target, name, type_, value } => {
            if let Err(e) = validate_target(view, core, *target) {
                return Done(Err(e));
            }
            if core.atoms.name(*name).is_none() {
                return Done(Err(err(ErrorCode::BadAtom, name.0, "unknown property atom")));
            }
            if core.atoms.name(*type_).is_none() {
                return Done(Err(err(ErrorCode::BadAtom, type_.0, "unknown type atom")));
            }
            let key = crate::core::res_key(*target);
            view.properties
                .entry(key)
                .or_default()
                .insert(name.0, Property { name: *name, type_: *type_, value: value.clone() });
            core.send_event(
                key,
                Event::PropertyNotify { target: *target, name: *name, deleted: false },
            );
            Done(Ok(None))
        }

        Request::GetProperty { target, name } => {
            if let Err(e) = validate_target(view, core, *target) {
                return Done(Err(e));
            }
            let key = crate::core::res_key(*target);
            let property = view.properties.get(&key).and_then(|m| m.get(&name.0)).cloned();
            Done(Ok(Some(Reply::Property { property })))
        }

        Request::DeleteProperty { target, name } => {
            if let Err(e) = validate_target(view, core, *target) {
                return Done(Err(e));
            }
            let key = crate::core::res_key(*target);
            let removed =
                view.properties.get_mut(&key).and_then(|m| m.remove(&name.0)).is_some();
            if removed {
                core.send_event(
                    key,
                    Event::PropertyNotify { target: *target, name: *name, deleted: true },
                );
            }
            Done(Ok(None))
        }

        Request::ListProperties { target } => {
            if let Err(e) = validate_target(view, core, *target) {
                return Done(Err(e));
            }
            let key = crate::core::res_key(*target);
            let names = view
                .properties
                .get(&key)
                .map(|m| m.values().map(|p| p.name).collect())
                .unwrap_or_default();
            Done(Ok(Some(Reply::PropertyList { names })))
        }

        // ---- Miscellaneous ------------------------------------------------
        Request::GetServerInfo => Done(Ok(Some(Reply::ServerInfo {
            vendor: core.config.vendor.clone(),
            protocol_major: da_proto::PROTOCOL_MAJOR,
            protocol_minor: da_proto::PROTOCOL_MINOR,
            device_time: core.device_time,
        }))),
        Request::Sync => Done(Ok(Some(Reply::Sync))),

        // Anything else on the whitelist is a bug in `eligible`; punt so
        // the slow path produces the authoritative answer.
        _ => Punt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServerConfig;
    use crossbeam::channel::unbounded;
    use da_proto::request::Request;

    fn rigged() -> (RwLock<Core>, ClientId, crossbeam::channel::Receiver<ServerMsg>) {
        let mut core = Core::new(ServerConfig { manual_ticks: true, ..ServerConfig::default() });
        let (tx, rx) = unbounded();
        let (client, _base, _mask) = core.add_client_with_counters(
            "fast".into(),
            tx,
            std::sync::Arc::new(da_telemetry::ConnCounters::default()),
        );
        (RwLock::new(core), client, rx)
    }

    #[test]
    fn own_client_create_loud_takes_fast_path() {
        let (core, client, rx) = rigged();
        let id = LoudId((client.0 << 20) | 1);
        let handled = try_dispatch(&core, client, 7, &Request::CreateLoud { id, parent: None });
        assert!(handled, "own-id CreateLoud must be fast-eligible");
        assert_eq!(core.read().tel.metrics.dispatch_fast_total.get(), 1);
        assert!(core.read().louds.contains_key(&id.0));
        // CreateLoud has no reply; nothing should have been sent.
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn foreign_id_punts() {
        let (core, client, _rx) = rigged();
        let id = LoudId(((client.0 + 1) << 20) | 1);
        assert!(!try_dispatch(&core, client, 7, &Request::CreateLoud { id, parent: None }));
        assert_eq!(core.read().tel.metrics.dispatch_fast_total.get(), 0);
    }

    #[test]
    fn sync_gets_fast_reply() {
        let (core, client, rx) = rigged();
        assert!(try_dispatch(&core, client, 9, &Request::Sync));
        match rx.try_recv() {
            Ok(ServerMsg::Reply(9, Reply::Sync)) => {}
            other => panic!("expected Sync reply, got {other:?}"),
        }
    }
}
