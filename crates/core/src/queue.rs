//! Command queues.
//!
//! Each root LOUD owns a command queue that synchronises the actions of
//! the virtual devices in its tree (paper §5.5). "Queues allow for the
//! sequential processing of commands within the server, without requiring
//! application notification and the associated round-trip communication."
//!
//! Entries arrive as a flat stream ([`da_proto::command::QueueEntry`])
//! possibly split across several `Enqueue` requests; the queue parses
//! complete top-level units — single commands, balanced
//! `CoBegin`/`CoEnd` brackets, balanced `Delay`/`DelayEnd` segments —
//! into [`QNode`] trees. An unbalanced tail stays raw until its closing
//! entry arrives. The four queue states of §5.5 are represented by
//! [`da_proto::types::QueueState`].

use da_proto::command::{DeviceCommand, QueueEntry};
use da_proto::ids::VDeviceId;
use da_proto::types::QueueState;
use std::collections::VecDeque;
use std::marker::PhantomData;

/// A parsed queue node.
#[derive(Debug, Clone, PartialEq)]
pub enum QNode {
    /// One device command.
    Cmd {
        /// Target device.
        vdev: VDeviceId,
        /// The command.
        cmd: DeviceCommand,
        /// Lifetime entry index (for `CommandDone` events).
        index: u32,
    },
    /// A `CoBegin`..`CoEnd` bracket: children start simultaneously; the
    /// bracket completes when all children complete.
    Par(Vec<QNode>),
    /// A `Delay`..`DelayEnd` segment: wait, then run the body
    /// sequentially.
    DelaySeg {
        /// Delay in milliseconds of queue-relative time.
        ms: u32,
        /// Sequential body.
        body: Vec<QNode>,
    },
}

/// Execution state of a started node.
#[derive(Debug)]
pub enum RunNode {
    /// A command in flight.
    Cmd {
        /// Target device.
        vdev: VDeviceId,
        /// The command (kept for restart/abort bookkeeping).
        cmd: DeviceCommand,
        /// Lifetime entry index.
        index: u32,
        /// Progress.
        state: CmdState,
    },
    /// A parallel bracket in flight.
    Par {
        /// Child run states.
        children: Vec<RunNode>,
    },
    /// A delay segment in flight.
    Delay {
        /// Frames of delay left (at the queue's nominal rate).
        remaining: u64,
        /// Unstarted body nodes.
        body: VecDeque<QNode>,
        /// Currently running body node.
        current: Option<Box<RunNode>>,
    },
}

/// Progress of one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdState {
    /// Waiting for its device to be free.
    Waiting,
    /// Installed on the device and running.
    Running,
    /// Finished.
    Done,
}

impl RunNode {
    /// Whether every command in this subtree has completed.
    pub fn done(&self) -> bool {
        match self {
            RunNode::Cmd { state, .. } => *state == CmdState::Done,
            RunNode::Par { children } => children.iter().all(|c| c.done()),
            RunNode::Delay { remaining, body, current } => {
                *remaining == 0
                    && body.is_empty()
                    && current.as_ref().is_none_or(|c| c.done())
            }
        }
    }

    /// Collects the devices with commands currently running in this
    /// subtree.
    pub fn running_devices(&self, out: &mut Vec<VDeviceId>) {
        match self {
            RunNode::Cmd { vdev, state, .. } => {
                if *state == CmdState::Running {
                    out.push(*vdev); // rt-ok: StopQueue path; scratch vector capacity amortizes across stops
                }
            }
            RunNode::Par { children } => {
                for c in children {
                    c.running_devices(out);
                }
            }
            RunNode::Delay { current, .. } => {
                if let Some(c) = current {
                    c.running_devices(out);
                }
            }
        }
    }
}

/// The per-root-LOUD command queue.
#[derive(Debug)]
pub struct CommandQueue {
    /// Raw entries not yet parseable (unbalanced tail).
    raw: VecDeque<QueueEntry>,
    /// Parsed, unstarted nodes.
    pub pending: VecDeque<QNode>,
    /// The node currently executing.
    pub running: Option<RunNode>,
    /// One of the four states of paper §5.5. Private: all transitions go
    /// through the typestate API ([`CommandQueue::typed`]) so that only
    /// the legal edges of the §5.5 state machine can be expressed.
    state: QueueState,
    /// Queue-relative time in frames at the nominal 8 kHz rate; suspends
    /// while paused (paper §5.5: "When a queue is paused, command queue
    /// relative time is suspended").
    pub relative_frames: u64,
    /// Next lifetime entry index.
    next_index: u32,
    /// Lifetime count of state transitions (mirrored into telemetry).
    pub transitions: u64,
    /// Lifetime count of entries accepted by `enqueue` (mirrored into
    /// telemetry).
    pub enqueued_entries: u64,
}

impl CommandQueue {
    /// Creates an empty, stopped queue.
    pub fn new() -> Self {
        CommandQueue {
            raw: VecDeque::new(),
            pending: VecDeque::new(),
            running: None,
            state: QueueState::Stopped,
            relative_frames: 0,
            next_index: 0,
            transitions: 0,
            enqueued_entries: 0,
        }
    }

    /// Appends entries and parses any newly completed top-level units.
    pub fn enqueue(&mut self, entries: Vec<QueueEntry>) {
        self.enqueued_entries += entries.len() as u64;
        self.raw.extend(entries);
        self.parse_available();
    }

    /// The current dynamic state (paper §5.5).
    pub fn state(&self) -> QueueState {
        self.state
    }

    /// Borrows the queue as its current typestate. Callers match on the
    /// returned [`TypedQueue`] and can then only invoke the transitions
    /// that are legal from that state — illegal edges (e.g. resuming a
    /// stopped queue) do not exist on the corresponding [`Queue`] type
    /// and fail to compile.
    pub fn typed(&mut self) -> TypedQueue<'_> {
        match self.state {
            QueueState::Stopped => TypedQueue::Stopped(Queue::wrap(self)),
            QueueState::Started => TypedQueue::Started(Queue::wrap(self)),
            QueueState::ClientPaused => TypedQueue::ClientPaused(Queue::wrap(self)),
            QueueState::ServerPaused => TypedQueue::ServerPaused(Queue::wrap(self)),
        }
    }

    /// Number of unstarted parsed nodes plus raw entries.
    pub fn pending_len(&self) -> u32 {
        (self.pending.len() + self.raw.len()) as u32
    }

    /// The raw entries not yet parsed into nodes (an unbalanced bracket
    /// tail), in enqueue order. Read-only: observers such as the model
    /// checker fingerprint queue contents without disturbing the parser.
    pub fn raw_entries(&self) -> impl ExactSizeIterator<Item = &QueueEntry> {
        self.raw.iter()
    }

    /// Lifetime entry cursor: the index the next parsed device command
    /// will receive. Monotonically non-decreasing; a frozen (paused or
    /// stopped) queue must not move it.
    pub fn entry_cursor(&self) -> u32 {
        self.next_index
    }

    /// Number of unmatched `CoBegin`/`Delay` openers in the raw tail.
    ///
    /// The parser consumes balanced units greedily, so all bracket
    /// imbalance lives in `raw`; a drained (idle) queue therefore always
    /// reports depth zero (paper §5.5 brackets).
    pub fn open_depth(&self) -> u32 {
        let mut depth = 0u32;
        for e in &self.raw {
            match e {
                QueueEntry::CoBegin | QueueEntry::Delay { .. } => depth += 1,
                QueueEntry::CoEnd | QueueEntry::DelayEnd => depth = depth.saturating_sub(1),
                QueueEntry::Device { .. } => {}
            }
        }
        depth
    }

    /// Discards everything not yet started (the `FlushQueue` request).
    pub fn flush(&mut self) {
        self.raw.clear();
        self.pending.clear();
    }

    /// Whether there is nothing running and nothing pending.
    pub fn idle(&self) -> bool {
        self.running.is_none() && self.pending.is_empty() && self.raw.is_empty()
    }

    fn parse_available(&mut self) {
        loop { // rt-ok: bounded by raw.len(); each pass pops one entry or breaks
            match self.raw.front() {
                None => break,
                Some(QueueEntry::Device { .. }) => {
                    if let Some(QueueEntry::Device { vdev, cmd }) = self.raw.pop_front() {
                        let index = self.next_index;
                        self.next_index += 1;
                        self.pending.push_back(QNode::Cmd { vdev, cmd, index });
                    }
                }
                Some(QueueEntry::CoBegin) | Some(QueueEntry::Delay { .. }) => {
                    match self.try_parse_bracket() {
                        Some(node) => self.pending.push_back(node),
                        None => break, // unbalanced tail: wait for more
                    }
                }
                Some(QueueEntry::CoEnd) | Some(QueueEntry::DelayEnd) => {
                    // Stray closer with no opener: drop it.
                    self.raw.pop_front();
                }
            }
        }
    }

    /// Attempts to parse one complete bracket from the front of `raw`.
    /// Returns `None` (leaving `raw` untouched) when the bracket is not
    /// yet closed.
    fn try_parse_bracket(&mut self) -> Option<QNode> {
        // First, find the end of the balanced unit without consuming.
        let mut depth = 0usize;
        let mut end = None;
        for (i, e) in self.raw.iter().enumerate() {
            match e {
                QueueEntry::CoBegin | QueueEntry::Delay { .. } => depth += 1,
                QueueEntry::CoEnd | QueueEntry::DelayEnd => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                QueueEntry::Device { .. } => {}
            }
        }
        let end = end?;
        let unit: Vec<QueueEntry> = self.raw.drain(..=end).collect();
        let mut pos = 0usize;
        
        self.parse_node(&unit, &mut pos)
    }

    fn parse_node(&mut self, entries: &[QueueEntry], pos: &mut usize) -> Option<QNode> {
        // Either closer ends either bracket: the balance scan in
        // `try_parse_bracket` treats them interchangeably, so the
        // recursive parse must too or a mismatched pair (`CoBegin` ...
        // `DelayEnd`) would swallow following commands.
        let is_closer = |e: Option<&QueueEntry>| {
            matches!(e, Some(QueueEntry::CoEnd) | Some(QueueEntry::DelayEnd) | None)
        };
        match entries.get(*pos)? {
            QueueEntry::Device { vdev, cmd } => {
                let n = QNode::Cmd {
                    vdev: *vdev,
                    cmd: cmd.clone(),
                    index: self.next_index,
                };
                self.next_index += 1;
                *pos += 1;
                Some(n)
            }
            QueueEntry::CoBegin => {
                *pos += 1;
                let mut children = Vec::new();
                while !is_closer(entries.get(*pos)) {
                    match self.parse_node(entries, pos) {
                        Some(n) => children.push(n),
                        None => break,
                    }
                }
                if entries.get(*pos).is_some() {
                    *pos += 1; // consume the closer
                }
                Some(QNode::Par(children))
            }
            QueueEntry::Delay { ms } => {
                let ms = *ms;
                *pos += 1;
                let mut body = Vec::new();
                while !is_closer(entries.get(*pos)) {
                    match self.parse_node(entries, pos) {
                        Some(n) => body.push(n),
                        None => break,
                    }
                }
                if entries.get(*pos).is_some() {
                    *pos += 1; // consume the closer
                }
                Some(QNode::DelaySeg { ms, body })
            }
            QueueEntry::CoEnd | QueueEntry::DelayEnd => None,
        }
    }
}

impl Default for CommandQueue {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Typestate transitions (paper §5.5)
// ---------------------------------------------------------------------------
//
// The four queue states are mirrored as zero-sized marker types so the
// legal-transition matrix is enforced by the compiler inside `core`:
//
//   Stopped      --start-->        Started
//   Started      --client_pause--> ClientPaused
//   Started      --server_pause--> ServerPaused
//   ClientPaused --resume-->       Started
//   ServerPaused --reactivate-->   Started
//   any          --stop-->         Stopped
//
// The dynamic [`QueueState`] enum remains the representation at the wire
// and dispatch boundary; [`CommandQueue::typed`] bridges from it into the
// typed world.

/// Marker: the queue is stopped (paper §5.5 "Stopped").
pub struct Stopped;
/// Marker: the queue is running (paper §5.5 "Started").
pub struct Started;
/// Marker: the client paused the queue with `PauseQueue`.
pub struct ClientPaused;
/// Marker: the server paused the queue because its root LOUD lost
/// activation (unmap or covered on the active stack).
pub struct ServerPaused;

/// A borrow of a [`CommandQueue`] whose state is pinned at type level.
/// Only the transitions legal from `S` are defined, so an illegal edge is
/// a compile error:
///
/// ```compile_fail
/// use da_server::queue::{CommandQueue, TypedQueue};
/// let mut q = CommandQueue::new();
/// if let TypedQueue::Stopped(t) = q.typed() {
///     t.resume(); // ERROR: no `resume` on Queue<'_, Stopped>
/// }
/// ```
///
/// ```compile_fail
/// use da_server::queue::{CommandQueue, TypedQueue};
/// let mut q = CommandQueue::new();
/// if let TypedQueue::ServerPaused(t) = q.typed() {
///     t.start(); // ERROR: a server-paused queue reactivates, it is not started
/// }
/// ```
pub struct Queue<'q, S> {
    q: &'q mut CommandQueue,
    _state: PhantomData<S>,
}

/// The runtime state of a queue lifted into the type system; the entry
/// point for all state transitions.
pub enum TypedQueue<'q> {
    /// The queue is stopped.
    Stopped(Queue<'q, Stopped>),
    /// The queue is running.
    Started(Queue<'q, Started>),
    /// The queue was paused by its owning client.
    ClientPaused(Queue<'q, ClientPaused>),
    /// The queue was paused by the server on deactivation.
    ServerPaused(Queue<'q, ServerPaused>),
}

impl<'q, S> Queue<'q, S> {
    fn wrap(q: &'q mut CommandQueue) -> Self {
        Queue { q, _state: PhantomData }
    }

    fn transition<T>(self, to: QueueState) -> Queue<'q, T> {
        self.q.state = to;
        self.q.transitions += 1;
        Queue { q: self.q, _state: PhantomData }
    }

    /// Stopping is legal from every state (paper §5.5: `StopQueue`
    /// "stops the queue"; the engine also stops a drained or failed
    /// queue regardless of how it was paused).
    pub fn stop(self) -> Queue<'q, Stopped> {
        self.transition(QueueState::Stopped)
    }
}

impl<'q> TypedQueue<'q> {
    /// Stops the queue from whichever state it is in. `StopQueue` and the
    /// engine's drain/error paths are the only transitions legal from all
    /// four states, so they get a convenience that erases the match.
    pub fn stop(self) -> Queue<'q, Stopped> {
        match self {
            TypedQueue::Stopped(t) => t.stop(),
            TypedQueue::Started(t) => t.stop(),
            TypedQueue::ClientPaused(t) => t.stop(),
            TypedQueue::ServerPaused(t) => t.stop(),
        }
    }
}

impl<'q> Queue<'q, Stopped> {
    /// `StartQueue` on a stopped queue: begins execution.
    pub fn start(self) -> Queue<'q, Started> {
        self.transition(QueueState::Started)
    }
}

impl<'q> Queue<'q, Started> {
    /// `PauseQueue`: the owning client suspends execution.
    pub fn client_pause(self) -> Queue<'q, ClientPaused> {
        self.transition(QueueState::ClientPaused)
    }

    /// The root LOUD lost activation (unmapped or covered): the server
    /// suspends execution until it is activated again.
    pub fn server_pause(self) -> Queue<'q, ServerPaused> {
        self.transition(QueueState::ServerPaused)
    }
}

impl<'q> Queue<'q, ClientPaused> {
    /// `ResumeQueue` (or `StartQueue`, which the protocol treats as a
    /// resume on a client-paused queue): execution continues.
    pub fn resume(self) -> Queue<'q, Started> {
        self.transition(QueueState::Started)
    }
}

impl<'q> Queue<'q, ServerPaused> {
    /// The root LOUD regained activation: execution continues.
    pub fn reactivate(self) -> Queue<'q, Started> {
        self.transition(QueueState::Started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use da_proto::ids::SoundId;

    fn play(v: u32, s: u32) -> QueueEntry {
        QueueEntry::Device { vdev: VDeviceId(v), cmd: DeviceCommand::Play(SoundId(s)) }
    }

    #[test]
    fn flat_commands_parse_in_order() {
        let mut q = CommandQueue::new();
        q.enqueue(vec![play(1, 10), play(1, 11)]);
        assert_eq!(q.pending.len(), 2);
        match &q.pending[0] {
            QNode::Cmd { index, .. } => assert_eq!(*index, 0),
            other => panic!("{other:?}"),
        }
        match &q.pending[1] {
            QNode::Cmd { index, .. } => assert_eq!(*index, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cobegin_groups() {
        let mut q = CommandQueue::new();
        q.enqueue(vec![
            QueueEntry::CoBegin,
            play(1, 10),
            play(2, 11),
            QueueEntry::CoEnd,
            play(1, 12),
        ]);
        assert_eq!(q.pending.len(), 2);
        match &q.pending[0] {
            QNode::Par(children) => assert_eq!(children.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_delay_example_parses() {
        // The §5.5 example: cobegin { play A; delay 5s { play B; stop 1 } }
        // coend; the delay segment nests inside the cobegin.
        let mut q = CommandQueue::new();
        q.enqueue(vec![
            QueueEntry::CoBegin,
            play(1, 10),
            QueueEntry::Delay { ms: 5000 },
            play(2, 11),
            QueueEntry::Device { vdev: VDeviceId(1), cmd: DeviceCommand::Stop },
            QueueEntry::DelayEnd,
            QueueEntry::CoEnd,
        ]);
        assert_eq!(q.pending.len(), 1);
        match &q.pending[0] {
            QNode::Par(children) => {
                assert_eq!(children.len(), 2);
                assert!(matches!(children[0], QNode::Cmd { .. }));
                match &children[1] {
                    QNode::DelaySeg { ms, body } => {
                        assert_eq!(*ms, 5000);
                        assert_eq!(body.len(), 2);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbalanced_bracket_waits_for_closer() {
        let mut q = CommandQueue::new();
        q.enqueue(vec![QueueEntry::CoBegin, play(1, 10)]);
        assert_eq!(q.pending.len(), 0);
        assert_eq!(q.pending_len(), 2);
        q.enqueue(vec![QueueEntry::CoEnd]);
        assert_eq!(q.pending.len(), 1);
        assert!(matches!(q.pending[0], QNode::Par(_)));
    }

    #[test]
    fn stray_closers_dropped() {
        let mut q = CommandQueue::new();
        q.enqueue(vec![QueueEntry::CoEnd, QueueEntry::DelayEnd, play(1, 10)]);
        assert_eq!(q.pending.len(), 1);
        assert!(matches!(q.pending[0], QNode::Cmd { .. }));
    }

    #[test]
    fn nested_cobegin() {
        let mut q = CommandQueue::new();
        q.enqueue(vec![
            QueueEntry::CoBegin,
            QueueEntry::CoBegin,
            play(1, 10),
            QueueEntry::CoEnd,
            play(2, 11),
            QueueEntry::CoEnd,
        ]);
        assert_eq!(q.pending.len(), 1);
        match &q.pending[0] {
            QNode::Par(children) => {
                assert!(matches!(children[0], QNode::Par(_)));
                assert!(matches!(children[1], QNode::Cmd { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flush_discards_pending_and_raw() {
        let mut q = CommandQueue::new();
        q.enqueue(vec![play(1, 10), QueueEntry::CoBegin, play(1, 11)]);
        assert_eq!(q.pending_len(), 3);
        q.flush();
        assert_eq!(q.pending_len(), 0);
        assert!(q.idle());
    }

    #[test]
    fn run_node_done_logic() {
        let done_cmd = RunNode::Cmd {
            vdev: VDeviceId(1),
            cmd: DeviceCommand::Stop,
            index: 0,
            state: CmdState::Done,
        };
        assert!(done_cmd.done());
        let par = RunNode::Par {
            children: vec![
                RunNode::Cmd {
                    vdev: VDeviceId(1),
                    cmd: DeviceCommand::Stop,
                    index: 0,
                    state: CmdState::Done,
                },
                RunNode::Cmd {
                    vdev: VDeviceId(2),
                    cmd: DeviceCommand::Stop,
                    index: 1,
                    state: CmdState::Running,
                },
            ],
        };
        assert!(!par.done());
        let mut devs = Vec::new();
        par.running_devices(&mut devs);
        assert_eq!(devs, vec![VDeviceId(2)]);
    }

    #[test]
    fn delay_done_logic() {
        let d = RunNode::Delay { remaining: 0, body: VecDeque::new(), current: None };
        assert!(d.done());
        let d = RunNode::Delay { remaining: 5, body: VecDeque::new(), current: None };
        assert!(!d.done());
    }
}
