//! The cached engine data plane: route plans and scratch buffers.
//!
//! The engine's steady state — audio flowing through an unchanging wire
//! graph — is by far the common case: topology mutations (creating
//! wires, mapping LOUDs, activation changes) happen at human speed while
//! ticks happen hundreds of times per second. This module caches
//! everything the tick loop would otherwise recompute per tick:
//!
//! - [`RoutePlan`]: per active root LOUD, the topological device order
//!   and, per source port, the resolved outgoing wire list. Computed by
//!   the pure [`compute_route_plan`] so property tests can compare a
//!   cached plan against a fresh recompute.
//! - [`PlanCache`]: the plans plus the other per-tick scans (hardware
//!   line slots, line→device bindings, the active bound-device list),
//!   invalidated by [`Core::topology_gen`](crate::core::Core), a
//!   generation counter bumped on every topology mutation.
//! - [`EngineScratch`]: pooled sample buffers the engine threads through
//!   routing, mixing and consumption so the steady-state tick makes no
//!   heap allocations.

use crate::core::Core;
use crate::vdevice::HwBinding;
use da_hw::pstn::LineId;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One outgoing wire, resolved to its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanWire {
    /// Wire resource id.
    pub wire: u32,
    /// Destination device.
    pub dst: u32,
    /// Destination sink port.
    pub dst_port: u8,
}

/// A source port with at least one outgoing wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanPort {
    /// Source port index.
    pub port: u8,
    /// Outgoing wires in stable (wire-id) order.
    pub wires: Vec<PlanWire>,
}

/// One device at its topological position, with resolved fan-out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDevice {
    /// Device resource id.
    pub vid: u32,
    /// Wired source ports only; unwired ports are never drained.
    pub ports: Vec<PlanPort>,
}

/// The routing plan for one root LOUD: devices in topological order
/// (wires define the edges; cycles are prevented at `CreateWire`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoutePlan {
    /// Devices in a deterministic topological order (smallest id first
    /// among ready devices).
    pub order: Vec<PlanDevice>,
}

/// Computes the routing plan for `root` from the live topology. Pure and
/// deterministic: the plan cache stores its output, and the property
/// tests verify a cached plan is identical to a fresh recompute.
// rt-ok(fn): plan computation is the acknowledged slow path; it runs only on topology
// change, and steady-state ticks reuse the cached plan (the zero-alloc test pins this)
pub fn compute_route_plan(core: &Core, root: u32) -> RoutePlan {
    let mut vdevs = core.tree_vdevs(root);
    vdevs.sort_unstable();
    let set: HashSet<u32> = vdevs.iter().copied().collect();
    // Edges within the tree: (src, src_port, wire, dst, dst_port),
    // sorted so per-port wire lists come out in wire-id order.
    let mut edges: Vec<(u32, u8, u32, u32, u8)> = core
        .wires
        .values()
        .filter(|w| set.contains(&w.src.0) && set.contains(&w.dst.0))
        .map(|w| (w.src.0, w.src_port, w.id.0, w.dst.0, w.dst_port))
        .collect();
    edges.sort_unstable();
    // Contiguous edge range per source device.
    let mut by_src: HashMap<u32, std::ops::Range<usize>> = HashMap::new();
    let mut i = 0;
    while i < edges.len() {
        let src = edges[i].0;
        let start = i;
        while i < edges.len() && edges[i].0 == src {
            i += 1;
        }
        by_src.insert(src, start..i);
    }
    // Kahn's algorithm, smallest ready id first for determinism.
    let mut indegree: HashMap<u32, usize> = vdevs.iter().map(|&v| (v, 0)).collect();
    for &(_, _, _, dst, _) in &edges {
        *indegree.get_mut(&dst).expect("dst in tree") += 1;
    }
    let mut ready: BinaryHeap<std::cmp::Reverse<u32>> = vdevs
        .iter()
        .copied()
        .filter(|v| indegree[v] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(vdevs.len());
    while let Some(std::cmp::Reverse(vid)) = ready.pop() {
        let mut ports: Vec<PlanPort> = Vec::new();
        if let Some(range) = by_src.get(&vid) {
            for &(_, src_port, wire, dst, dst_port) in &edges[range.clone()] {
                if ports.last().map(|p| p.port) != Some(src_port) {
                    ports.push(PlanPort { port: src_port, wires: Vec::new() });
                }
                ports
                    .last_mut()
                    .expect("just pushed")
                    .wires
                    .push(PlanWire { wire, dst, dst_port });
                let e = indegree.get_mut(&dst).expect("dst in tree");
                *e -= 1;
                if *e == 0 {
                    ready.push(std::cmp::Reverse(dst));
                }
            }
        }
        order.push(PlanDevice { vid, ports });
    }
    RoutePlan { order }
}

/// Cached per-tick topology state, rebuilt only when the core's topology
/// generation moves.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// Generation the cache was built at; `None` forces the first build.
    built_gen: Option<u64>,
    /// Active roots in stack order (the engine's iteration order).
    pub active_roots: Vec<u32>,
    /// Routing plan per active root.
    pub routes: HashMap<u32, RoutePlan>,
    /// Hardware telephone lines: (device index, line id).
    pub line_slots: Vec<(usize, LineId)>,
    /// Devices bound to each line, parallel to `line_slots`.
    pub line_bound: Vec<Vec<u32>>,
    /// Hardware-bound devices in active trees, sorted by id.
    pub active_bound: Vec<u32>,
}

impl PlanCache {
    /// The topology generation this cache was built at, if it has been
    /// built. The invariant checker ([`crate::validate`]) uses this to
    /// verify a cache claiming to be current really matches a fresh
    /// recompute.
    pub fn built_generation(&self) -> Option<u64> {
        self.built_gen
    }

    /// Rebuilds the cache if the topology generation moved since the
    /// last build. Returns whether a rebuild happened.
    pub fn ensure_fresh(&mut self, core: &Core) -> bool {
        let gen = core.topology_gen.load(std::sync::atomic::Ordering::Relaxed);
        if self.built_gen == Some(gen) {
            return false;
        }
        self.rebuild(core);
        self.built_gen = Some(gen);
        true
    }

    // rt-ok(fn): cache rebuild runs only when `ensure_fresh` sees a topology epoch bump
    fn rebuild(&mut self, core: &Core) {
        self.active_roots.clear();
        self.active_roots.extend(
            core.active_stack
                .iter()
                .copied()
                .filter(|r| core.louds.get(r).map(|l| l.active) == Some(true)),
        );
        self.routes.clear();
        for &root in &self.active_roots {
            self.routes.insert(root, compute_route_plan(core, root));
        }
        self.line_slots.clear();
        for i in 0..core.hw.device_count() {
            if let Some(da_hw::registry::HwSlot::Line(l)) = core.hw.slot(i) {
                self.line_slots.push((i, l));
            }
        }
        self.line_bound.clear();
        for &(_, line) in &self.line_slots {
            let mut bound: Vec<u32> = core
                .vdevs
                .values()
                .filter(|v| v.binding == Some(HwBinding::Line(line)))
                .map(|v| v.id.0)
                .collect();
            bound.sort_unstable();
            self.line_bound.push(bound);
        }
        self.active_bound.clear();
        self.active_bound.extend(
            core.vdevs
                .values()
                .filter(|v| v.binding.is_some())
                .filter(|v| core.louds.get(&v.root).map(|l| l.active) == Some(true))
                .map(|v| v.id.0),
        );
        self.active_bound.sort_unstable();
    }
}

/// Reusable sample buffers for the tick loop. Buffers are taken, used
/// and put back cleared; after warm-up their capacities stabilise and
/// the steady-state tick allocates nothing.
#[derive(Debug, Default)]
pub struct EngineScratch {
    i16_pool: Vec<Vec<i16>>,
    i32_pool: Vec<Vec<i32>>,
    u8_pool: Vec<Vec<u8>>,
    /// Per-speaker mix accumulators, kept across ticks.
    pub speaker_acc: Vec<Vec<i32>>,
    /// Whether any device fed each speaker this tick.
    pub speaker_fed: Vec<bool>,
    /// Clipped speaker output staging buffer.
    pub speaker_out: Vec<i16>,
    /// Per-tick DSP leaf timings, drained into telemetry at tick end.
    pub meter: da_dsp::meter::DspMeter,
}

impl EngineScratch {
    /// Takes a cleared `i16` buffer from the pool.
    pub fn take_i16(&mut self) -> Vec<i16> {
        self.i16_pool.pop().unwrap_or_default()
    }

    /// Returns an `i16` buffer to the pool, keeping its capacity.
    pub fn put_i16(&mut self, mut buf: Vec<i16>) {
        buf.clear();
        // Relax: the pool vector itself reaches steady capacity after warmup.
        let _relax = crate::rt::AllocRelax::scope();
        self.i16_pool.push(buf); // rt-ok: pool vector reaches steady capacity after warmup
    }

    /// Takes a cleared `i32` buffer from the pool.
    pub fn take_i32(&mut self) -> Vec<i32> {
        self.i32_pool.pop().unwrap_or_default()
    }

    /// Returns an `i32` buffer to the pool, keeping its capacity.
    pub fn put_i32(&mut self, mut buf: Vec<i32>) {
        buf.clear();
        // Relax: the pool vector itself reaches steady capacity after warmup.
        let _relax = crate::rt::AllocRelax::scope();
        self.i32_pool.push(buf); // rt-ok: pool vector reaches steady capacity after warmup
    }

    /// Takes a cleared byte buffer from the pool.
    pub fn take_u8(&mut self) -> Vec<u8> {
        self.u8_pool.pop().unwrap_or_default()
    }

    /// Returns a byte buffer to the pool, keeping its capacity.
    pub fn put_u8(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        // Relax: the pool vector itself reaches steady capacity after warmup.
        let _relax = crate::rt::AllocRelax::scope();
        self.u8_pool.push(buf); // rt-ok: pool vector reaches steady capacity after warmup
    }
}

/// The engine's persistent tick state: plan cache plus scratch pool.
/// Detached from the core with `mem::take` for the duration of a tick so
/// its borrows never conflict with core mutations.
#[derive(Debug, Default)]
pub struct DataPlane {
    /// Cached topology.
    pub plans: PlanCache,
    /// Pooled buffers.
    pub scratch: EngineScratch,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_buffers_keep_capacity() {
        let mut s = EngineScratch::default();
        let mut b = s.take_i16();
        b.extend_from_slice(&[1; 1000]);
        let cap = b.capacity();
        s.put_i16(b);
        let b = s.take_i16();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
    }
}
