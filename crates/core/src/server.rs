//! The audio server process: threads, connections, lifecycle.
//!
//! Mirrors the paper's thread architecture (§6.1) in spirit: a
//! **connection manager** accepts clients at a well-known port and keeps a
//! container object per connection; each client gets a **reader** thread
//! (decode → dispatch) and a **writer** thread (drain the client's
//! message channel); the **engine** thread steps devices once per
//! quantum. Virtual devices and data sources/sinks — separate threads in
//! the 1991 prototype — run as state machines inside the engine tick,
//! which makes the streaming guarantees deterministic (see DESIGN.md).

use crate::core::{Core, DisconnectReason, ServerConfig, ServerMsg, CLIENT_CHANNEL_DEPTH};
use crate::dispatch::dispatch;
use crate::engine;
use da_proto::transport::{pipe_pair, Duplex, TransportError, TxHalf};
use crossbeam::channel::bounded;
use da_hw::clock::Pacer;
use da_proto::codec::{Frame, FrameKind, WireReader, WireWriter};
use da_proto::{Request, SetupReply, SetupRequest, WireRead, WireWrite};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running audio server.
pub struct AudioServer {
    core: Arc<Mutex<Core>>,
    shutdown: Arc<AtomicBool>,
    engine: Option<std::thread::JoinHandle<()>>,
    listener: Option<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl AudioServer {
    /// Starts a server with the given configuration.
    pub fn start(config: ServerConfig) -> std::io::Result<AudioServer> {
        let pacing = config.pacing;
        let quantum = config.quantum_us;
        let manual = config.manual_ticks;
        let tcp = match &config.tcp_addr {
            Some(addr) => Some(TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
        let core = Arc::new(Mutex::new(Core::new(config)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));

        // Engine thread (absent in manual-tick mode).
        let engine = if manual {
            None
        } else {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            Some(std::thread::Builder::new().name("da-engine".into()).spawn(move || {
                let mut pacer = Pacer::new(pacing, quantum);
                while !shutdown.load(Ordering::Relaxed) {
                    pacer.wait_tick();
                    {
                        let mut core = core.lock();
                        engine::tick(&mut core);
                    }
                    // In virtual pacing give dispatch threads a chance at
                    // the lock.
                    std::thread::yield_now();
                }
            })?)
        };

        // Connection-manager thread ("a daemon at a well-known port that
        // detects incoming client connection requests", paper §6.1).
        let listener = match tcp {
            None => None,
            Some(l) => {
                l.set_nonblocking(true)?;
                let core = Arc::clone(&core);
                let shutdown = Arc::clone(&shutdown);
                let threads = Arc::clone(&conn_threads);
                Some(std::thread::Builder::new().name("da-connmgr".into()).spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        match l.accept() {
                            Ok((sock, _)) => {
                                if let Ok(duplex) = Duplex::tcp(sock) {
                                    spawn_connection(&core, &shutdown, &threads, duplex);
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => break,
                        }
                    }
                })?)
            }
        };

        Ok(AudioServer { core, shutdown, engine, listener, tcp_addr, conn_threads })
    }

    /// The TCP address the server listens on, if TCP is enabled.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Opens an in-process connection, returning the client's duplex.
    pub fn connect_pipe(&self) -> Duplex {
        let (client_side, server_side) = pipe_pair();
        spawn_connection(&self.core, &self.shutdown, &self.conn_threads, server_side);
        client_side
    }

    /// A control handle for tests, benches and embedded use.
    pub fn control(&self) -> ServerControl {
        ServerControl { core: Arc::clone(&self.core) }
    }

    /// Stops all threads and drops the server.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.core.lock().shutting_down = true;
        if let Some(e) = self.engine.take() {
            let _ = e.join();
        }
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        let threads: Vec<_> = self.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for AudioServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// Test/embedding control: look inside the running server.
#[derive(Clone)]
pub struct ServerControl {
    core: Arc<Mutex<Core>>,
}

impl ServerControl {
    /// Runs a closure against the locked core.
    pub fn with_core<R>(&self, f: impl FnOnce(&mut Core) -> R) -> R {
        f(&mut self.core.lock())
    }

    /// Current device time (8 kHz frames since start).
    pub fn device_time(&self) -> u64 {
        self.core.lock().device_time
    }

    /// Engine statistics snapshot, stamped with the tick it was captured
    /// at so callers can tell two snapshots apart.
    pub fn stats(&self) -> crate::core::EngineStats {
        let core = self.core.lock();
        let mut s = core.stats;
        s.captured_at_tick = core.tick_index;
        s
    }

    /// Adds a scripted remote party on a new external line; returns its
    /// index for [`ServerControl::with_party`].
    pub fn add_remote_party(&self, number: &str) -> usize {
        let mut core = self.core.lock();
        let line = core.hw.add_external_line(number);
        core.remote_parties.push(da_hw::pstn::RemoteParty::new(line));
        core.remote_parties.len() - 1
    }

    /// Runs a closure against a remote party (and the PSTN).
    pub fn with_party<R>(
        &self,
        index: usize,
        f: impl FnOnce(&mut da_hw::pstn::RemoteParty, &mut da_hw::pstn::Pstn) -> R,
    ) -> R {
        let mut core = self.core.lock();
        let core = &mut *core;
        f(&mut core.remote_parties[index], &mut core.hw.pstn)
    }

    /// Enables waveform capture on a speaker.
    pub fn set_speaker_capture(&self, speaker: usize, limit: usize) {
        self.core.lock().hw.speakers[speaker].set_capture(limit);
    }

    /// Takes the captured waveform from a speaker.
    pub fn take_captured(&self, speaker: usize) -> Vec<i16> {
        self.core.lock().hw.speakers[speaker].take_captured()
    }

    /// Speaker statistics.
    pub fn speaker_stats(&self, speaker: usize) -> da_hw::codec::SpeakerStats {
        self.core.lock().hw.speakers[speaker].stats()
    }

    /// Injects audio into a microphone (as if the user spoke).
    pub fn speak_into_microphone(&self, mic: usize, samples: &[i16]) {
        self.core.lock().hw.microphones[mic].inject(samples);
    }

    /// Polls `pred` against the core until it holds or `timeout` passes.
    /// Returns whether the predicate held.
    pub fn run_until(&self, timeout: Duration, mut pred: impl FnMut(&mut Core) -> bool) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            {
                let mut core = self.core.lock();
                if pred(&mut core) {
                    return true;
                }
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(300));
        }
    }

    /// Waits until device time reaches `frames` (8 kHz).
    pub fn wait_device_time(&self, frames: u64, timeout: Duration) -> bool {
        self.run_until(timeout, |c| c.device_time >= frames)
    }

    /// Runs `n` engine ticks synchronously (manual-tick servers).
    pub fn tick_n(&self, n: u64) {
        let mut core = self.core.lock();
        for _ in 0..n {
            crate::engine::tick(&mut core);
        }
    }
}

/// Spawns the reader/writer thread pair for one connection.
fn spawn_connection(
    core: &Arc<Mutex<Core>>,
    shutdown: &Arc<AtomicBool>,
    threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    duplex: Duplex,
) {
    let core = Arc::clone(core);
    let shutdown = Arc::clone(shutdown);
    let threads2 = Arc::clone(threads);
    let spawned = std::thread::Builder::new()
        .name("da-client".into())
        .spawn(move || serve_connection(core, shutdown, threads2, duplex));
    // Spawn failure (resource exhaustion) refuses the connection rather
    // than killing the server.
    if let Ok(handle) = spawned {
        threads.lock().push(handle);
    }
}

fn serve_connection(
    core: Arc<Mutex<Core>>,
    shutdown: Arc<AtomicBool>,
    threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    duplex: Duplex,
) {
    let (mut tx, mut rx) = duplex.into_split();
    // Setup handshake.
    let setup = loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match rx.recv(Some(Duration::from_millis(100))) {
            Ok(Some(frame)) if frame.kind == FrameKind::Setup => {
                match SetupRequest::from_wire(&frame.payload) {
                    Ok(s) => break s,
                    Err(_) => return,
                }
            }
            Ok(Some(_)) => return, // protocol violation before setup
            Ok(None) => continue,
            Err(_) => return,
        }
    };
    // Bounded: a client that stops reading exerts backpressure on its
    // own channel only; the slow-client policy (DESIGN.md §12) drops
    // its events and eventually evicts it, never blocking the core.
    let (msg_tx, msg_rx) = bounded::<ServerMsg>(CLIENT_CHANNEL_DEPTH);
    // Shared between the reader loop, the writer thread, and the core's
    // client table (for `ListClients`).
    let counters = Arc::new(da_telemetry::ConnCounters::default());
    let (client, id_base, id_mask, wire_metrics, kicked) = {
        let mut core = core.lock();
        let (client, id_base, id_mask) =
            core.add_client_with_counters(setup.client_name.clone(), msg_tx, Arc::clone(&counters));
        let kicked = Arc::clone(&core.clients[&client.0].kicked);
        (client, id_base, id_mask, core.tel.metrics.clone(), kicked)
    };
    let reply = SetupReply {
        protocol_major: da_proto::PROTOCOL_MAJOR,
        protocol_minor: da_proto::PROTOCOL_MINOR,
        client,
        id_base,
        id_mask,
        vendor: core.lock().config.vendor.clone(),
    };
    let mut w = WireWriter::new();
    reply.write(&mut w);
    if tx.send(&Frame { kind: FrameKind::SetupReply, payload: w.finish() }).is_err() {
        core.lock().remove_client(client);
        return;
    }

    // Writer thread: drains the client's message channel.
    let writer = {
        let shutdown = Arc::clone(&shutdown);
        let counters = Arc::clone(&counters);
        let metrics = wire_metrics.clone();
        std::thread::Builder::new().name("da-writer".into()).spawn(move || {
            loop {
                match msg_rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(msg) => {
                        let last = matches!(msg, ServerMsg::Shutdown(_));
                        if !emit_msg(&mut tx, &counters, &metrics, msg) || last {
                            break;
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if shutdown.load(Ordering::Relaxed) {
                            // Server shutdown can race replies already
                            // queued on this channel; drain them before
                            // exiting so nothing queued is ever lost.
                            while let Ok(msg) = msg_rx.try_recv() {
                                let last = matches!(msg, ServerMsg::Shutdown(_));
                                if !emit_msg(&mut tx, &counters, &metrics, msg) || last {
                                    break;
                                }
                            }
                            break;
                        }
                    }
                    // The shim only reports disconnection once the
                    // channel is drained, so nothing is lost here.
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        })
    };
    match writer {
        Ok(handle) => threads.lock().push(handle),
        Err(_) => {
            // No writer means no replies: refuse the connection.
            core.lock().remove_client(client);
            return;
        }
    }

    // Reader loop: decode and dispatch requests. `farewell` is the
    // typed reason sent to the client when *we* end the connection;
    // `None` means the peer vanished and there is nobody to tell.
    let mut farewell = None;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            farewell = Some(DisconnectReason::ServerShutdown);
            break;
        }
        if kicked.load(Ordering::Relaxed) {
            farewell = Some(DisconnectReason::SlowClient);
            break;
        }
        match rx.recv(Some(Duration::from_millis(100))) {
            Ok(Some(frame)) => {
                if frame.kind != FrameKind::Request {
                    continue;
                }
                da_telemetry::ConnCounters::bump(&counters.requests, 1);
                da_telemetry::ConnCounters::bump(&counters.bytes_in, frame.payload.len() as u64);
                wire_metrics.wire_frames_in_total.inc();
                wire_metrics.wire_bytes_in_total.add(frame.payload.len() as u64);
                let mut r = WireReader::new(&frame.payload);
                let decoded = r.u32().ok().and_then(|seq| {
                    Request::read(&mut r).ok().map(|req| (seq, req))
                });
                match decoded {
                    Some((seq, req)) => {
                        let mut core = core.lock();
                        dispatch(&mut core, client, seq, req);
                    }
                    None => {
                        // Undecodable request: the sequence number (if
                        // readable) gets a BadRequest error.
                        let mut r = WireReader::new(&frame.payload);
                        let seq = r.u32().unwrap_or(0);
                        let core = core.lock();
                        core.send_to_client(
                            client,
                            ServerMsg::Error(
                                seq,
                                da_proto::ProtoError::new(
                                    da_proto::ErrorCode::BadRequest,
                                    0,
                                    "undecodable request",
                                ),
                            ),
                        );
                    }
                }
            }
            Ok(None) => continue,
            Err(TransportError::Closed) | Err(_) => break,
        }
    }
    {
        let mut core = core.lock();
        if let Some(reason) = farewell {
            // Best-effort typed notice; queued FIFO behind any replies
            // still in flight, and the writer exits after sending it.
            core.send_to_client(client, ServerMsg::Shutdown(reason));
        }
        core.remove_client(client);
    }
}

/// Encodes and sends one queued message on the writer thread, keeping
/// the per-connection and server wire counters in step. Returns whether
/// the transport accepted it.
fn emit_msg(
    tx: &mut Box<dyn TxHalf>,
    counters: &da_telemetry::ConnCounters,
    metrics: &crate::telem::ServerMetrics,
    msg: ServerMsg,
) -> bool {
    let slot = match &msg {
        ServerMsg::Reply(..) => Some(&counters.replies),
        ServerMsg::Event(..) => Some(&counters.events),
        ServerMsg::Error(..) => Some(&counters.errors),
        ServerMsg::Shutdown(_) => None,
    };
    let frame = encode_msg(msg);
    if let Some(slot) = slot {
        da_telemetry::ConnCounters::bump(slot, 1);
        da_telemetry::ConnCounters::bump(&counters.bytes_out, frame.payload.len() as u64);
        metrics.wire_frames_out_total.inc();
        metrics.wire_bytes_out_total.add(frame.payload.len() as u64);
    }
    tx.send(&frame).is_ok()
}

fn encode_msg(msg: ServerMsg) -> Frame {
    match msg {
        ServerMsg::Reply(seq, reply) => {
            let mut w = WireWriter::new();
            w.u32(seq);
            reply.write(&mut w);
            Frame { kind: FrameKind::Reply, payload: w.finish() }
        }
        ServerMsg::Event(event) => {
            let mut w = WireWriter::new();
            event.write(&mut w);
            Frame { kind: FrameKind::Event, payload: w.finish() }
        }
        ServerMsg::Error(seq, e) => {
            let mut w = WireWriter::new();
            w.u32(seq);
            e.write(&mut w);
            Frame { kind: FrameKind::Error, payload: w.finish() }
        }
        ServerMsg::Shutdown(reason) => {
            // The farewell rides the error channel with sequence 0
            // (never a live request), so old clients fail soft and new
            // ones can surface the reason.
            let detail = match reason {
                DisconnectReason::ServerShutdown => "server shutting down",
                DisconnectReason::SlowClient => "evicted: outbound channel full (slow client)",
            };
            let mut w = WireWriter::new();
            w.u32(0);
            da_proto::ProtoError::new(da_proto::ErrorCode::BadAccess, 0, detail).write(&mut w);
            Frame { kind: FrameKind::Error, payload: w.finish() }
        }
    }
}
