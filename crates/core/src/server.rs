//! The audio server process: threads, connections, lifecycle.
//!
//! Mirrors the paper's thread architecture (§6.1) in spirit: a
//! **connection manager** accepts clients at a well-known port; a small
//! **connection plane** of event-loop I/O workers owns every client
//! connection (frame reassembly, dispatch, outbound draining — see
//! DESIGN.md §13), so total I/O threads are O(workers) rather than the
//! paper's two-threads-per-client; the **engine** thread steps devices
//! once per quantum. Virtual devices and data sources/sinks — separate
//! threads in the 1991 prototype — run as state machines inside the
//! engine tick, which makes the streaming guarantees deterministic.

use crate::connplane::ConnPlane;
use crate::core::{Core, ServerConfig};
use crate::engine;
use da_hw::clock::Pacer;
use da_proto::transport::{byte_pipe_pair, Duplex, TcpPoll};
use parking_lot::RwLock;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running audio server.
pub struct AudioServer {
    core: Arc<RwLock<Core>>,
    shutdown: Arc<AtomicBool>,
    engine: Option<std::thread::JoinHandle<()>>,
    listener: Option<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    plane: Option<ConnPlane>,
}

impl AudioServer {
    /// Starts a server with the given configuration.
    pub fn start(config: ServerConfig) -> std::io::Result<AudioServer> {
        let pacing = config.pacing;
        let quantum = config.quantum_us;
        let manual = config.manual_ticks;
        let io_workers = config.io_workers;
        let tcp = match &config.tcp_addr {
            Some(addr) => Some(TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
        let core = Arc::new(RwLock::new(Core::new(config)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let plane = ConnPlane::start(&core, &shutdown, io_workers)?;

        // Engine thread (absent in manual-tick mode).
        let engine = if manual {
            None
        } else {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            Some(std::thread::Builder::new().name("da-engine".into()).spawn(move || {
                let mut pacer = Pacer::new(pacing, quantum);
                while !shutdown.load(Ordering::Relaxed) {
                    pacer.wait_tick();
                    {
                        let mut core = core.write();
                        engine::tick(&mut core);
                    }
                    // In virtual pacing give dispatch threads a chance at
                    // the lock.
                    std::thread::yield_now();
                }
            })?)
        };

        // Connection-manager thread ("a daemon at a well-known port that
        // detects incoming client connection requests", paper §6.1).
        // Accepted sockets are handed to the plane, not given threads.
        let listener = match tcp {
            None => None,
            Some(l) => {
                l.set_nonblocking(true)?;
                let shutdown = Arc::clone(&shutdown);
                let plane_tx = plane.injector();
                Some(std::thread::Builder::new().name("da-connmgr".into()).spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        match l.accept() {
                            Ok((sock, _)) => {
                                if let Ok(poll) = TcpPoll::new(sock) {
                                    plane_tx.add(Box::new(poll));
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => break,
                        }
                    }
                })?)
            }
        };

        Ok(AudioServer { core, shutdown, engine, listener, tcp_addr, plane: Some(plane) })
    }

    /// The TCP address the server listens on, if TCP is enabled.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Opens an in-process connection, returning the client's duplex.
    pub fn connect_pipe(&self) -> Duplex {
        let (client_side, server_side) = byte_pipe_pair();
        if let Some(plane) = &self.plane {
            plane.add(Box::new(server_side));
        }
        client_side
    }

    /// Number of I/O worker threads in the connection plane.
    pub fn io_workers(&self) -> usize {
        self.plane.as_ref().map(|p| p.workers()).unwrap_or(0)
    }

    /// A control handle for tests, benches and embedded use.
    pub fn control(&self) -> ServerControl {
        ServerControl { core: Arc::clone(&self.core) }
    }

    /// Stops all threads and drops the server.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.core.write().shutting_down = true;
        if let Some(e) = self.engine.take() {
            let _ = e.join();
        }
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        if let Some(mut plane) = self.plane.take() {
            plane.join();
        }
    }
}

impl Drop for AudioServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// Test/embedding control: look inside the running server.
#[derive(Clone)]
pub struct ServerControl {
    core: Arc<RwLock<Core>>,
}

impl ServerControl {
    /// Runs a closure against the locked core.
    pub fn with_core<R>(&self, f: impl FnOnce(&mut Core) -> R) -> R {
        f(&mut self.core.write())
    }

    /// Current device time (8 kHz frames since start).
    pub fn device_time(&self) -> u64 {
        self.core.read().device_time
    }

    /// Runs one request through the sharded fast path on the calling
    /// thread, bypassing the connection plane. Returns whether the fast
    /// path handled it (`false` punts to the slow path *without* running
    /// it). Lets tests measure `exec_fast` synchronously — the per-thread
    /// [`crate::rt::scope_allocs`] tally is only visible to the thread
    /// that dispatched.
    pub fn fast_dispatch(
        &self,
        client: da_proto::ids::ClientId,
        seq: u32,
        request: &da_proto::request::Request,
    ) -> bool {
        crate::fastpath::try_dispatch(&self.core, client, seq, request)
    }

    /// Engine statistics snapshot, stamped with the tick it was captured
    /// at so callers can tell two snapshots apart.
    pub fn stats(&self) -> crate::core::EngineStats {
        let core = self.core.read();
        let mut s = core.stats;
        s.captured_at_tick = core.tick_index;
        s
    }

    /// Adds a scripted remote party on a new external line; returns its
    /// index for [`ServerControl::with_party`].
    pub fn add_remote_party(&self, number: &str) -> usize {
        let mut core = self.core.write();
        let line = core.hw.add_external_line(number);
        core.remote_parties.push(da_hw::pstn::RemoteParty::new(line));
        core.remote_parties.len() - 1
    }

    /// Runs a closure against a remote party (and the PSTN).
    pub fn with_party<R>(
        &self,
        index: usize,
        f: impl FnOnce(&mut da_hw::pstn::RemoteParty, &mut da_hw::pstn::Pstn) -> R,
    ) -> R {
        let mut core = self.core.write();
        let core = &mut *core;
        f(&mut core.remote_parties[index], &mut core.hw.pstn)
    }

    /// Enables waveform capture on a speaker.
    pub fn set_speaker_capture(&self, speaker: usize, limit: usize) {
        self.core.write().hw.speakers[speaker].set_capture(limit);
    }

    /// Takes the captured waveform from a speaker.
    pub fn take_captured(&self, speaker: usize) -> Vec<i16> {
        self.core.write().hw.speakers[speaker].take_captured()
    }

    /// Speaker statistics.
    pub fn speaker_stats(&self, speaker: usize) -> da_hw::codec::SpeakerStats {
        self.core.read().hw.speakers[speaker].stats()
    }

    /// Injects audio into a microphone (as if the user spoke).
    pub fn speak_into_microphone(&self, mic: usize, samples: &[i16]) {
        self.core.write().hw.microphones[mic].inject(samples);
    }

    /// Polls `pred` against the core until it holds or `timeout` passes.
    /// Returns whether the predicate held.
    pub fn run_until(&self, timeout: Duration, mut pred: impl FnMut(&mut Core) -> bool) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            {
                let mut core = self.core.write();
                if pred(&mut core) {
                    return true;
                }
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(300));
        }
    }

    /// Waits until device time reaches `frames` (8 kHz).
    pub fn wait_device_time(&self, frames: u64, timeout: Duration) -> bool {
        self.run_until(timeout, |c| c.device_time >= frames)
    }

    /// Runs `n` engine ticks synchronously (manual-tick servers).
    pub fn tick_n(&self, n: u64) {
        let mut core = self.core.write();
        for _ in 0..n {
            crate::engine::tick(&mut core);
        }
    }
}
