//! Request dispatch.
//!
//! Decodes and executes one request at a time against the core. Requests
//! are asynchronous; replies are generated only for queries, and errors
//! are queued back to the client with the failing request's sequence
//! number (paper §4.1).

use crate::core::{res_key, Core, ResKey, ServerMsg};
use crate::engine;
use crate::loud::Loud;
use crate::queue::TypedQueue;
use crate::sound::Sound;
use crate::vdevice::VDev;
use crate::wire::Wire;
use da_proto::error::{ErrorCode, ProtoError};
use da_proto::event::Event;
use da_proto::ids::{ClientId, LoudId, ResourceId, SoundId, VDeviceId, WireId};
use da_proto::reply::Reply;
use da_proto::request::Request;
use da_proto::types::{DeviceClass, PortDir, Property, QueueState, WireType};

type DispatchResult = Result<Option<Reply>, ProtoError>;

fn err(code: ErrorCode, value: u32, detail: impl Into<String>) -> ProtoError {
    ProtoError::new(code, value, detail)
}

/// Whether `id` is inside `client`'s allocated id range.
fn owns_id(client: ClientId, id: u32) -> bool {
    id >> 20 == client.0 && id & 0x000F_FFFF != 0
}

/// Executes one request for a client, sending any reply or error to the
/// client's channel.
pub fn dispatch(core: &mut Core, client: ClientId, seq: u32, request: Request) {
    let started = std::time::Instant::now();
    let op = request.opcode();
    core.tel.recorder.dispatch_begin(client.0, seq);
    let _span = da_telemetry::span!(core.tel.journal, "dispatch", client = client.0, opcode = op);
    let result = execute(core, client, seq, &request);
    core.tel.count_opcode(op as usize);
    core.tel.metrics.dispatch_requests_total.inc();
    core.tel.metrics.dispatch_slow_total.inc();
    if result.is_err() {
        core.tel.metrics.dispatch_errors_total.inc();
    }
    core.tel.metrics.dispatch_latency_us.record_duration_us(started.elapsed());
    // Fire-and-forget successes close their trace here; queries and
    // errors close at the reply/error drain, queued work at the
    // correlated CommandDone drain (DESIGN.md §15).
    let completes = !request.has_reply() && result.is_ok();
    core.tel.recorder.dispatch_done(client.0, seq, false, 0, completes);
    match result {
        Ok(Some(reply)) => core.send_to_client(client, ServerMsg::Reply(seq, reply)),
        Ok(None) => {
            if request.has_reply() {
                // Defensive: a query that produced no reply is a bug; keep
                // the client from deadlocking.
                core.send_to_client(
                    client,
                    ServerMsg::Error(seq, err(ErrorCode::Unimplemented, 0, "no reply produced")),
                );
            }
        }
        Err(e) => core.send_to_client(client, ServerMsg::Error(seq, e)),
    }
    // In debug builds every dispatch re-establishes the full structural
    // invariant set (paper §5); a handler that corrupts the structure
    // fails here, at the request that did it, not ticks later.
    #[cfg(debug_assertions)]
    if let Err(v) = crate::validate::check(core) {
        let dbg = format!("{request:?}");
        let name = dbg.split(|c: char| !c.is_alphanumeric()).next().unwrap_or("?");
        panic!("protocol invariant violated after {name}: {v}");
    }
}

fn execute(core: &mut Core, client: ClientId, seq: u32, request: &Request) -> DispatchResult {
    match request {
        // ---- LOUDs ---------------------------------------------------------
        Request::CreateLoud { id, parent } => {
            if !owns_id(client, id.0) || core.louds.contains_key(&id.0) {
                return Err(err(ErrorCode::BadIdChoice, id.0, "loud id unavailable"));
            }
            let parent_raw = match parent {
                None => None,
                Some(p) => {
                    let pl = core
                        .louds
                        .get(&p.0)
                        .ok_or_else(|| err(ErrorCode::BadLoud, p.0, "parent loud"))?;
                    if pl.owner != client {
                        return Err(err(ErrorCode::BadAccess, p.0, "parent owned by another client"));
                    }
                    Some(p.0)
                }
            };
            core.louds.insert(id.0, Loud::new(*id, client, parent_raw));
            if let Some(p) = parent_raw {
                if let Some(pl) = core.louds.get_mut(&p) {
                    pl.children.push(id.0);
                }
            }
            Ok(None)
        }
        Request::DestroyLoud { id } => {
            let l = lookup_loud(core, *id)?;
            if l.owner != client {
                return Err(err(ErrorCode::BadAccess, id.0, "not owner"));
            }
            core.destroy_loud(id.0);
            Ok(None)
        }
        Request::MapLoud { id } => {
            let l = lookup_loud(core, *id)?;
            if !l.is_root() {
                return Err(err(ErrorCode::BadMatch, id.0, "only roots map"));
            }
            if l.mapped {
                return Ok(None);
            }
            // Audio-manager redirection (paper §5.8): when another client
            // holds the redirect, the map becomes a MapRequest event.
            let redirected = core
                .redirect_client
                .filter(|&mgr| mgr != client.0)
                .is_some();
            if redirected {
                core.pending_maps.push(id.0);
                core.send_manager_event(Event::MapRequest { loud: *id, client });
            } else {
                core.map_loud_now(id.0);
            }
            Ok(None)
        }
        Request::UnmapLoud { id } => {
            lookup_loud(core, *id)?;
            core.unmap_loud(id.0);
            Ok(None)
        }
        Request::RaiseLoud { id } => {
            let l = lookup_loud(core, *id)?;
            if !l.mapped {
                return Err(err(ErrorCode::NotMapped, id.0, "raise requires mapped loud"));
            }
            let redirected = core
                .redirect_client
                .filter(|&mgr| mgr != client.0)
                .is_some();
            if redirected {
                core.pending_raises.push(id.0);
                core.send_manager_event(Event::RaiseRequest { loud: *id, client });
            } else {
                core.raise_loud_now(id.0);
            }
            Ok(None)
        }
        Request::LowerLoud { id } => {
            let l = lookup_loud(core, *id)?;
            if !l.mapped {
                return Err(err(ErrorCode::NotMapped, id.0, "lower requires mapped loud"));
            }
            if let Some(pos) = core.active_stack.iter().position(|&r| r == id.0) {
                core.active_stack.remove(pos);
                core.active_stack.push(id.0);
                core.recompute_activation();
            }
            Ok(None)
        }
        Request::RequestActivate { id } => {
            let l = lookup_loud(core, *id)?;
            if !l.mapped {
                return Err(err(ErrorCode::NotMapped, id.0, "activate requires mapped loud"));
            }
            // Activation preference is expressed by stack position.
            core.raise_loud_now(id.0);
            Ok(None)
        }
        Request::RequestDeactivate { id } => {
            let l = lookup_loud(core, *id)?;
            if !l.mapped {
                return Err(err(ErrorCode::NotMapped, id.0, "deactivate requires mapped loud"));
            }
            if let Some(pos) = core.active_stack.iter().position(|&r| r == id.0) {
                core.active_stack.remove(pos);
                core.active_stack.push(id.0);
                core.recompute_activation();
            }
            Ok(None)
        }
        Request::QueryActiveStack => {
            let entries = core
                .active_stack
                .iter()
                .map(|&r| da_proto::reply::StackEntry {
                    loud: LoudId(r),
                    active: core.louds.get(&r).map(|l| l.active).unwrap_or(false),
                })
                .collect();
            Ok(Some(Reply::ActiveStack { entries }))
        }

        // ---- Virtual devices --------------------------------------------------
        Request::CreateVDevice { id, loud, class, attrs } => {
            if !owns_id(client, id.0) || core.vdevs.contains_key(&id.0) {
                return Err(err(ErrorCode::BadIdChoice, id.0, "vdevice id unavailable"));
            }
            let l = lookup_loud(core, *loud)?;
            if l.owner != client {
                return Err(err(ErrorCode::BadAccess, loud.0, "not owner"));
            }
            // A hardware-backed class must have at least one matching
            // physical device, or the request can never be satisfied.
            if Core::needs_hardware(*class) {
                let any = (0..core.hw.device_count())
                    .any(|i| core.device_matches(i, *class, attrs));
                if !any {
                    return Err(err(
                        ErrorCode::DeviceBusy,
                        id.0,
                        "no physical device satisfies the attribute constraints",
                    ));
                }
            }
            let root = core.root_of(loud.0);
            let v = VDev::new(*id, client, loud.0, root, *class, attrs.clone());
            core.vdevs.insert(id.0, v);
            core.invalidate_plans();
            if let Some(l) = core.louds.get_mut(&loud.0) {
                l.vdevs.push(id.0);
            }
            // If the tree is already active, rebind so the new device
            // gets a binding too.
            if core.louds.get(&root).map(|l| l.active) == Some(true) {
                core.recompute_activation();
            }
            Ok(None)
        }
        Request::DestroyVDevice { id } => {
            let v = lookup_vdev(core, *id)?;
            if v.owner != client {
                return Err(err(ErrorCode::BadAccess, id.0, "not owner"));
            }
            core.destroy_vdev(id.0);
            Ok(None)
        }
        Request::AugmentVDevice { id, attrs } => {
            let v = lookup_vdev(core, *id)?;
            if v.owner != client {
                return Err(err(ErrorCode::BadAccess, id.0, "not owner"));
            }
            let class = v.class;
            let mut combined = v.attrs.clone();
            combined.extend(attrs.iter().cloned());
            if Core::needs_hardware(class) {
                let any =
                    (0..core.hw.device_count()).any(|i| core.device_matches(i, class, &combined));
                if !any {
                    return Err(err(
                        ErrorCode::BadMatch,
                        id.0,
                        "augmented constraints match no device",
                    ));
                }
            }
            if let Some(v) = core.vdevs.get_mut(&id.0) {
                v.attrs = combined;
            }
            core.recompute_activation();
            Ok(None)
        }
        Request::QueryVDeviceAttributes { id } => {
            let v = lookup_vdev(core, *id)?;
            let mapped_device = match v.binding {
                Some(crate::vdevice::HwBinding::Speaker(_))
                | Some(crate::vdevice::HwBinding::Microphone(_))
                | Some(crate::vdevice::HwBinding::Line(_)) => {
                    // Find the device-LOUD index for the binding.
                    let b = v.binding;
                    (0..core.hw.device_count())
                        .find(|&i| match (core.hw.slot(i), b) {
                            (
                                Some(da_hw::registry::HwSlot::Speaker(s)),
                                Some(crate::vdevice::HwBinding::Speaker(bs)),
                            ) => s == bs,
                            (
                                Some(da_hw::registry::HwSlot::Microphone(m)),
                                Some(crate::vdevice::HwBinding::Microphone(bm)),
                            ) => m == bm,
                            (
                                Some(da_hw::registry::HwSlot::Line(l)),
                                Some(crate::vdevice::HwBinding::Line(bl)),
                            ) => l == bl,
                            _ => false,
                        })
                        .map(|i| da_proto::ids::DeviceId(i as u32)) // cast-ok: device-LOUD slot index, bounded by physical device count
                }
                _ => None,
            };
            Ok(Some(Reply::VDeviceAttributes { attrs: v.attrs.clone(), mapped_device }))
        }
        Request::SetDeviceControl { id, name, value } => {
            let v = lookup_vdev(core, *id)?;
            if v.owner != client {
                return Err(err(ErrorCode::BadAccess, id.0, "not owner"));
            }
            if core.atoms.name(*name).is_none() {
                return Err(err(ErrorCode::BadAtom, name.0, "unknown atom"));
            }
            // SYNC_INTERVAL is honoured as a control as well as a request.
            if core.atoms.name(*name) == Some("SYNC_INTERVAL") && value.len() == 4 {
                let frames = u32::from_le_bytes([value[0], value[1], value[2], value[3]]);
                if let Some(v) = core.vdevs.get_mut(&id.0) {
                    v.sync_interval = frames;
                }
            }
            // EFFECT selects the DSP device's algorithm: "none",
            // "echo:<delay_frames>:<feedback_milli>", "lowpass:<hz>".
            if core.atoms.name(*name) == Some("EFFECT") {
                let spec = String::from_utf8_lossy(value).to_string();
                let Some(v) = core.vdevs.get_mut(&id.0) else {
                    return Err(err(ErrorCode::BadDevice, id.0, "no such device"));
                };
                let rate = v.rate;
                if let crate::vdevice::ClassState::Dsp { effect } = &mut v.state {
                    let mut parts = spec.split(':');
                    *effect = match parts.next() {
                        Some("none") | Some("") => crate::vdevice::DspEffect::PassThrough,
                        Some("echo") => {
                            let delay: usize =
                                parts.next().and_then(|p| p.parse().ok()).unwrap_or(2000);
                            let fb: u32 =
                                parts.next().and_then(|p| p.parse().ok()).unwrap_or(500);
                            crate::vdevice::DspEffect::Echo(da_dsp::effects::Echo::new(
                                delay, fb,
                            ))
                        }
                        Some("lowpass") => {
                            let hz: f64 =
                                parts.next().and_then(|p| p.parse().ok()).unwrap_or(1000.0);
                            crate::vdevice::DspEffect::LowPass(
                                da_dsp::effects::LowPass::new(rate, hz),
                            )
                        }
                        _ => {
                            return Err(err(ErrorCode::BadValue, id.0, "unknown effect"));
                        }
                    };
                } else {
                    return Err(err(ErrorCode::BadMatch, id.0, "EFFECT applies to DSP devices"));
                }
            }
            if let Some(v) = core.vdevs.get_mut(&id.0) {
                v.controls.insert(*name, value.clone());
            }
            Ok(None)
        }
        Request::GetDeviceControl { id, name } => {
            let v = lookup_vdev(core, *id)?;
            Ok(Some(Reply::DeviceControl { value: v.controls.get(name).cloned() }))
        }

        // ---- Wires ---------------------------------------------------------------
        Request::CreateWire { id, src, src_port, dst, dst_port, wire_type } => {
            if !owns_id(client, id.0) || core.wires.contains_key(&id.0) {
                return Err(err(ErrorCode::BadIdChoice, id.0, "wire id unavailable"));
            }
            let sv = lookup_vdev(core, *src)?;
            let dv = lookup_vdev(core, *dst)?;
            if sv.owner != client || dv.owner != client {
                return Err(err(ErrorCode::BadAccess, id.0, "devices owned by another client"));
            }
            if src.0 == dst.0 {
                return Err(err(ErrorCode::BadMatch, id.0, "cannot wire a device to itself"));
            }
            if sv.root != dv.root {
                return Err(err(ErrorCode::BadMatch, id.0, "wire crosses LOUD trees"));
            }
            if !sv.has_port(PortDir::Source, *src_port) {
                return Err(err(ErrorCode::BadValue, u32::from(*src_port), "bad source port"));
            }
            if !dv.has_port(PortDir::Sink, *dst_port) {
                return Err(err(ErrorCode::BadValue, u32::from(*dst_port), "bad sink port"));
            }
            // Type check (paper §5.2): the declared wire type must admit
            // both endpoints' digital types. Software endpoints are
            // digital at their operating rate.
            let src_t = WireType::Digital(da_proto::types::SoundType {
                encoding: da_proto::types::Encoding::Pcm16,
                sample_rate: sv.rate,
                channels: 1,
            });
            let dst_t = WireType::Digital(da_proto::types::SoundType {
                encoding: da_proto::types::Encoding::Pcm16,
                sample_rate: dv.rate,
                channels: 1,
            });
            match wire_type {
                WireType::Any => {}
                WireType::Analog => {
                    return Err(err(
                        ErrorCode::BadMatch,
                        id.0,
                        "analog wires exist only in the device LOUD",
                    ));
                }
                t @ WireType::Digital(_) => {
                    // The wire carries the source's type; rate adaptation
                    // to the sink is the wire's job, so only the source
                    // must match a tightly specified wire.
                    if !t.admits(&src_t) && !t.admits(&dst_t) {
                        return Err(err(ErrorCode::BadMatch, id.0, "wire type mismatch"));
                    }
                }
            }
            // Reject cycles so the engine's topological routing is sound.
            if reaches(core, dst.0, src.0) {
                return Err(err(ErrorCode::BadMatch, id.0, "wire would create a cycle"));
            }
            // Hard-wired hardware constrains virtual wiring (paper §5.2):
            // when both endpoints are pinned to physical devices and the
            // source device has permanent connections, the requested path
            // must follow one of them.
            let pinned = |v: &VDev| {
                v.attrs.iter().find_map(|a| match a {
                    da_proto::types::Attribute::Device(d) => Some(d.0 as usize),
                    _ => None,
                })
            };
            if let (Some(pa), Some(pb)) = (pinned(sv), pinned(dv)) {
                let hard = &core.hw.spec().hard_wires;
                let a_constrained = hard.iter().any(|&(s, _, d, _)| s == pa || d == pa);
                let b_constrained = hard.iter().any(|&(s, _, d, _)| s == pb || d == pb);
                if a_constrained || b_constrained {
                    let allowed = hard.iter().any(|&(s, _, d, _)| s == pa && d == pb);
                    if !allowed {
                        return Err(err(
                            ErrorCode::BadMatch,
                            id.0,
                            "devices are hard-wired elsewhere; the requested path cannot exist",
                        ));
                    }
                }
            }
            let root = sv.root;
            core.wires
                .insert(id.0, Wire::new(*id, client, *src, *src_port, *dst, *dst_port, *wire_type));
            let _ = root;
            core.invalidate_plans();
            Ok(None)
        }
        Request::DestroyWire { id } => {
            let w = lookup_wire(core, *id)?;
            if w.owner != client {
                return Err(err(ErrorCode::BadAccess, id.0, "not owner"));
            }
            core.wires.remove(&id.0);
            core.invalidate_plans();
            Ok(None)
        }
        Request::QueryWire { id } => {
            let w = lookup_wire(core, *id)?;
            Ok(Some(Reply::WireInfo {
                src: w.src,
                src_port: w.src_port,
                dst: w.dst,
                dst_port: w.dst_port,
                wire_type: w.wire_type,
            }))
        }
        Request::QueryDeviceWires { id } => {
            lookup_vdev(core, *id)?;
            let wires = core
                .wires
                .values()
                .filter(|w| w.src == *id || w.dst == *id)
                .map(|w| w.id)
                .collect();
            Ok(Some(Reply::DeviceWires { wires }))
        }

        // ---- Queues ---------------------------------------------------------------
        Request::Enqueue { loud, entries } => {
            let l = lookup_loud(core, *loud)?;
            if l.owner != client {
                return Err(err(ErrorCode::BadAccess, loud.0, "not owner"));
            }
            if !l.is_root() {
                return Err(err(ErrorCode::BadLoud, loud.0, "queues live on root LOUDs"));
            }
            // Queued-only validation happens at execution; but commands
            // that can never be queued (none today) would be caught here.
            let cursors = core.queue_mut(loud.0).map(|q| {
                let first = q.entry_cursor();
                q.enqueue(entries.clone());
                (first, q.entry_cursor())
            });
            if let Some((first, after)) = cursors {
                if after > first {
                    // The trace now completes at the CommandDone drain
                    // for the first node parsed from this request.
                    core.tel.recorder.register_watch(loud.0, first, client.0, seq);
                }
            }
            Ok(None)
        }
        Request::Immediate { vdev, cmd } => {
            let v = lookup_vdev(core, *vdev)?;
            if v.owner != client {
                return Err(err(ErrorCode::BadAccess, vdev.0, "not owner"));
            }
            if !cmd.immediate_ok() {
                return Err(err(
                    ErrorCode::BadQueueMode,
                    vdev.0,
                    "command is queued-mode only",
                ));
            }
            if !engine::apply_instant(core, vdev.0, cmd) {
                return Err(err(ErrorCode::BadMatch, vdev.0, "command does not fit device class"));
            }
            Ok(None)
        }
        Request::StartQueue { loud } => {
            let l = lookup_loud(core, *loud)?;
            if l.owner != client {
                return Err(err(ErrorCode::BadAccess, loud.0, "not owner"));
            }
            let root = loud.0;
            let prior = {
                let Some(q) = core.queue_mut(root) else {
                    return Err(err(ErrorCode::BadLoud, root, "not a root loud"));
                };
                let prior = q.state();
                match q.typed() {
                    TypedQueue::Stopped(t) => {
                        t.start();
                    }
                    // StartQueue on a client-paused queue acts as a resume.
                    TypedQueue::ClientPaused(t) => {
                        t.resume();
                    }
                    TypedQueue::Started(_) | TypedQueue::ServerPaused(_) => {}
                }
                prior
            };
            match prior {
                QueueState::Stopped => {
                    core.send_event(ResKey(0, root), Event::QueueStarted { loud: LoudId(root) });
                }
                QueueState::ClientPaused => {
                    unpause_devices(core, root);
                    core.send_event(ResKey(0, root), Event::QueueResumed { loud: LoudId(root) });
                }
                QueueState::Started | QueueState::ServerPaused => {}
            }
            Ok(None)
        }
        Request::StopQueue { loud } => {
            let l = lookup_loud(core, *loud)?;
            if l.owner != client {
                return Err(err(ErrorCode::BadAccess, loud.0, "not owner"));
            }
            engine::stop_queue(core, loud.0, da_proto::event::QueueStopReason::ClientRequest);
            Ok(None)
        }
        Request::PauseQueue { loud } => {
            let l = lookup_loud(core, *loud)?;
            if l.owner != client {
                return Err(err(ErrorCode::BadAccess, loud.0, "not owner"));
            }
            let root = loud.0;
            let running_devices = {
                let Some(q) = core.queue_mut(root) else {
                    return Err(err(ErrorCode::BadLoud, root, "not a root loud"));
                };
                if q.state() != QueueState::Started {
                    return Ok(None);
                }
                let mut devs = Vec::new();
                if let Some(run) = &q.running {
                    run.running_devices(&mut devs);
                }
                devs
            };
            // Unpausable commands stop the queue instead (paper §5.5).
            let unpausable = running_devices.iter().any(|d| {
                matches!(
                    core.vdevs.get(&d.0).and_then(|v| v.op.as_ref()),
                    Some(crate::vdevice::ActiveOp::Dial { .. })
                        | Some(crate::vdevice::ActiveOp::Answer)
                )
            });
            if unpausable {
                engine::stop_queue(core, root, da_proto::event::QueueStopReason::Unpausable);
                return Ok(None);
            }
            for d in &running_devices {
                if let Some(v) = core.vdevs.get_mut(&d.0) {
                    v.paused = true;
                }
            }
            if let Some(q) = core.queue_mut(root) {
                if let TypedQueue::Started(t) = q.typed() {
                    t.client_pause();
                }
            }
            core.send_event(
                ResKey(0, root),
                Event::QueuePaused { loud: LoudId(root), by_server: false },
            );
            Ok(None)
        }
        Request::ResumeQueue { loud } => {
            let l = lookup_loud(core, *loud)?;
            if l.owner != client {
                return Err(err(ErrorCode::BadAccess, loud.0, "not owner"));
            }
            let root = loud.0;
            let resumed = {
                let Some(q) = core.queue_mut(root) else {
                    return Err(err(ErrorCode::BadLoud, root, "not a root loud"));
                };
                if let TypedQueue::ClientPaused(t) = q.typed() {
                    t.resume();
                    true
                } else {
                    false
                }
            };
            if resumed {
                unpause_devices(core, root);
                core.send_event(ResKey(0, root), Event::QueueResumed { loud: LoudId(root) });
            }
            Ok(None)
        }
        Request::FlushQueue { loud } => {
            let l = lookup_loud(core, *loud)?;
            if l.owner != client {
                return Err(err(ErrorCode::BadAccess, loud.0, "not owner"));
            }
            if let Some(q) = core.queue_mut(loud.0) {
                q.flush();
            }
            Ok(None)
        }
        Request::QueryQueue { loud } => {
            let l = lookup_loud(core, *loud)?;
            let Some(q) = &l.queue else {
                return Err(err(ErrorCode::BadLoud, loud.0, "not a root loud"));
            };
            Ok(Some(Reply::QueueInfo {
                state: q.state(),
                pending: q.pending_len(),
                relative_frames: q.relative_frames,
            }))
        }

        // ---- Sounds ----------------------------------------------------------------
        Request::CreateSound { id, stype } => {
            if !owns_id(client, id.0) || core.sounds.contains_key(&id.0) {
                return Err(err(ErrorCode::BadIdChoice, id.0, "sound id unavailable"));
            }
            if stype.sample_rate == 0 || stype.channels == 0 {
                return Err(err(ErrorCode::BadValue, id.0, "bad sound type"));
            }
            core.sounds.insert(id.0, Sound::new(*id, client, *stype));
            Ok(None)
        }
        Request::DeleteSound { id } => {
            let s = lookup_sound(core, *id)?;
            if s.owner != client {
                return Err(err(ErrorCode::BadAccess, id.0, "not owner"));
            }
            core.sounds.remove(&id.0);
            core.properties.remove(&ResKey(2, id.0));
            core.purge_selections(ResKey(2, id.0));
            Ok(None)
        }
        Request::WriteSoundData { id, data, eof } => {
            let s = core
                .sounds
                .get_mut(&id.0)
                .ok_or_else(|| err(ErrorCode::BadSound, id.0, "no such sound"))?;
            if s.owner != client {
                return Err(err(ErrorCode::BadAccess, id.0, "not owner"));
            }
            if s.complete {
                return Err(err(ErrorCode::BadMatch, id.0, "sound already complete"));
            }
            if s.len_bytes() + data.len() as u64 > da_proto::types::MAX_SOUND_BYTES {
                // Rejected before any allocation, mirroring the
                // connection plane's oversized-frame policy.
                core.tel.metrics.sounds_rejected_oversize_total.inc();
                return Err(err(ErrorCode::BadValue, id.0, "sound exceeds maximum size"));
            }
            if !s.append(data, *eof) {
                return Err(err(ErrorCode::BadMatch, id.0, "catalogue sounds are immutable"));
            }
            if s.complete {
                // Final block: intern the finished payload so identical
                // content across clients shares one allocation
                // (DESIGN.md §17).
                let (arc, hash) =
                    core.store.intern_payload(s.stype, std::mem::take(&mut s.data));
                s.shared = Some(arc);
                s.content_hash = Some(hash);
            }
            Ok(None)
        }
        Request::ReadSoundData { id, offset, len } => {
            let s = lookup_sound(core, *id)?;
            let bytes = s.bytes();
            let start = (*offset as usize).min(bytes.len());
            let end = start.saturating_add(*len as usize).min(bytes.len());
            Ok(Some(Reply::SoundData {
                data: bytes[start..end].to_vec(),
                // A streaming sound's tail is not the end: more data may
                // arrive until the `eof` block lands.
                at_end: s.complete && end == bytes.len(),
            }))
        }
        Request::QuerySound { id } => {
            let s = lookup_sound(core, *id)?;
            Ok(Some(Reply::SoundInfo {
                stype: s.stype,
                bytes: s.len_bytes(),
                frames: s.len_frames(),
                complete: s.complete,
            }))
        }
        Request::ListCatalog { catalog } => {
            Ok(Some(Reply::Catalog { names: core.catalogs.list(catalog) }))
        }
        Request::OpenCatalogSound { id, catalog, name } => {
            if !owns_id(client, id.0) || core.sounds.contains_key(&id.0) {
                return Err(err(ErrorCode::BadIdChoice, id.0, "sound id unavailable"));
            }
            let cat = core
                .catalogs
                .get(catalog, name)
                .ok_or_else(|| err(ErrorCode::BadValue, id.0, "no such catalogue sound"))?;
            let sound = Sound::from_catalog(*id, client, cat);
            core.sounds.insert(id.0, sound);
            Ok(None)
        }

        // ---- Events -----------------------------------------------------------------
        Request::SelectEvents { target, mask } => {
            validate_target(core, *target)?;
            let key = res_key(*target);
            if let Some(cs) = core.clients.get_mut(&client.0) {
                if mask.0 == 0 {
                    cs.selections.remove(&key);
                } else {
                    cs.selections.insert(key, *mask);
                }
            }
            Ok(None)
        }
        Request::SetSyncInterval { vdev, interval_frames } => {
            let v = lookup_vdev(core, *vdev)?;
            if v.owner != client {
                return Err(err(ErrorCode::BadAccess, vdev.0, "not owner"));
            }
            if let Some(v) = core.vdevs.get_mut(&vdev.0) {
                v.sync_interval = *interval_frames;
            }
            Ok(None)
        }

        // ---- Atoms and properties ------------------------------------------------------
        Request::InternAtom { name } => {
            if name.is_empty() {
                return Err(err(ErrorCode::BadValue, 0, "empty atom name"));
            }
            let atom = core.intern(name);
            Ok(Some(Reply::Atom { atom }))
        }
        Request::GetAtomName { atom } => match core.atoms.name(*atom) {
            Some(n) => Ok(Some(Reply::AtomName { name: n.to_string() })),
            None => Err(err(ErrorCode::BadAtom, atom.0, "unknown atom")),
        },
        Request::ChangeProperty { target, name, type_, value } => {
            validate_target(core, *target)?;
            if core.atoms.name(*name).is_none() {
                return Err(err(ErrorCode::BadAtom, name.0, "unknown property atom"));
            }
            if core.atoms.name(*type_).is_none() {
                return Err(err(ErrorCode::BadAtom, type_.0, "unknown type atom"));
            }
            let key = res_key(*target);
            core.properties
                .entry(key)
                .or_default()
                .insert(name.0, Property { name: *name, type_: *type_, value: value.clone() });
            core.send_event(
                key,
                Event::PropertyNotify { target: *target, name: *name, deleted: false },
            );
            Ok(None)
        }
        Request::GetProperty { target, name } => {
            validate_target(core, *target)?;
            let key = res_key(*target);
            let property =
                core.properties.get(&key).and_then(|m| m.get(&name.0)).cloned();
            Ok(Some(Reply::Property { property }))
        }
        Request::DeleteProperty { target, name } => {
            validate_target(core, *target)?;
            let key = res_key(*target);
            let removed =
                core.properties.get_mut(&key).and_then(|m| m.remove(&name.0)).is_some();
            if removed {
                core.send_event(
                    key,
                    Event::PropertyNotify { target: *target, name: *name, deleted: true },
                );
            }
            Ok(None)
        }
        Request::ListProperties { target } => {
            validate_target(core, *target)?;
            let key = res_key(*target);
            let names = core
                .properties
                .get(&key)
                .map(|m| m.values().map(|p| p.name).collect())
                .unwrap_or_default();
            Ok(Some(Reply::PropertyList { names }))
        }

        // ---- Device LOUD and manager support ----------------------------------------------
        Request::QueryDeviceLoud => {
            let (devices, hard_wires) = core.device_loud();
            Ok(Some(Reply::DeviceLoud { devices, hard_wires }))
        }
        Request::SetRedirect { enable } => {
            if *enable {
                match core.redirect_client {
                    Some(mgr) if mgr != client.0 => {
                        // Only one audio manager at a time (paper §5.8).
                        return Err(err(
                            ErrorCode::BadAccess,
                            mgr,
                            "another client holds redirection",
                        ));
                    }
                    _ => core.redirect_client = Some(client.0),
                }
            } else if core.redirect_client == Some(client.0) {
                core.redirect_client = None;
                let pending: Vec<u32> = core.pending_maps.drain(..).collect();
                for loud in pending {
                    core.map_loud_now(loud);
                }
                let raises: Vec<u32> = core.pending_raises.drain(..).collect();
                for loud in raises {
                    core.raise_loud_now(loud);
                }
            }
            Ok(None)
        }
        Request::AllowMap { loud } => {
            if core.redirect_client != Some(client.0) {
                return Err(err(ErrorCode::BadAccess, loud.0, "not the audio manager"));
            }
            if let Some(pos) = core.pending_maps.iter().position(|&l| l == loud.0) {
                core.pending_maps.remove(pos);
                core.map_loud_now(loud.0);
            }
            Ok(None)
        }
        Request::AllowRaise { loud } => {
            if core.redirect_client != Some(client.0) {
                return Err(err(ErrorCode::BadAccess, loud.0, "not the audio manager"));
            }
            if let Some(pos) = core.pending_raises.iter().position(|&l| l == loud.0) {
                core.pending_raises.remove(pos);
                core.raise_loud_now(loud.0);
            }
            Ok(None)
        }

        // ---- Miscellaneous -------------------------------------------------------------------
        Request::GetServerInfo => Ok(Some(Reply::ServerInfo {
            vendor: core.config.vendor.clone(),
            protocol_major: da_proto::PROTOCOL_MAJOR,
            protocol_minor: da_proto::PROTOCOL_MINOR,
            device_time: core.device_time,
        })),
        Request::Sync => Ok(Some(Reply::Sync)),
        Request::QueryServerStats => Ok(Some(crate::telem::server_stats_reply(core))),
        Request::ListClients => Ok(Some(crate::telem::client_list_reply(core))),
        Request::QueryTraces { max } => Ok(Some(crate::telem::traces_reply(core, *max))),
    }
}

fn unpause_devices(core: &mut Core, root: u32) {
    let devices = {
        let Some(q) = core.queue_mut(root) else { return };
        let mut devs = Vec::new();
        if let Some(run) = &q.running {
            run.running_devices(&mut devs);
        }
        devs
    };
    for d in devices {
        if let Some(v) = core.vdevs.get_mut(&d.0) {
            v.paused = false;
        }
    }
}

fn lookup_loud(core: &Core, id: LoudId) -> Result<&Loud, ProtoError> {
    core.louds.get(&id.0).ok_or_else(|| err(ErrorCode::BadLoud, id.0, "no such loud"))
}

fn lookup_vdev(core: &Core, id: VDeviceId) -> Result<&VDev, ProtoError> {
    core.vdevs.get(&id.0).ok_or_else(|| err(ErrorCode::BadDevice, id.0, "no such device"))
}

fn lookup_wire(core: &Core, id: WireId) -> Result<&Wire, ProtoError> {
    core.wires.get(&id.0).ok_or_else(|| err(ErrorCode::BadWire, id.0, "no such wire"))
}

fn lookup_sound(core: &Core, id: SoundId) -> Result<&Sound, ProtoError> {
    core.sounds.get(&id.0).ok_or_else(|| err(ErrorCode::BadSound, id.0, "no such sound"))
}

fn validate_target(core: &Core, target: ResourceId) -> Result<(), ProtoError> {
    match target {
        ResourceId::Loud(id) => lookup_loud(core, id).map(|_| ()),
        ResourceId::VDevice(id) => lookup_vdev(core, id).map(|_| ()),
        ResourceId::Sound(id) => lookup_sound(core, id).map(|_| ()),
        ResourceId::Device(id) => {
            if (id.0 as usize) < core.hw.device_count() {
                Ok(())
            } else {
                Err(err(ErrorCode::BadDevice, id.0, "no such physical device"))
            }
        }
    }
}

/// Is `to` reachable from `from` along wires? Used for cycle rejection.
fn reaches(core: &Core, from: u32, to: u32) -> bool {
    let mut stack = vec![from];
    let mut seen = std::collections::HashSet::new();
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if !seen.insert(v) {
            continue;
        }
        for w in core.wires.values() {
            if w.src.0 == v {
                stack.push(w.dst.0);
            }
        }
    }
    false
}

/// What the class of a device class enum is; kept for dispatch-time
/// validation extensions.
#[allow(dead_code)]
fn class_of(v: &VDev) -> DeviceClass {
    v.class
}
