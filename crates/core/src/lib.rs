//! The desktop-audio server.
//!
//! A Rust reproduction of the audio/telephony server from *Integrating
//! Audio and Telephony in a Distributed Workstation Environment* (USENIX
//! Summer 1991): a single server process that owns the workstation's
//! audio hardware, shared by many simultaneous clients over the protocol
//! in [`da_proto`].
//!
//! Start one with [`server::AudioServer::start`]:
//!
//! ```
//! use da_server::core::ServerConfig;
//! use da_server::server::AudioServer;
//!
//! let server = AudioServer::start(ServerConfig::default()).unwrap();
//! let _conn = server.connect_pipe(); // hand to da-alib
//! server.shutdown();
//! ```
//!
//! Modules map onto the paper's structures:
//!
//! - [`transport`] — the reliable byte stream of §4.1 (TCP and in-proc);
//! - [`atoms`], [`sound`] — atoms, sounds and catalogues (§5.6, §5.8);
//! - [`loud`], [`vdevice`], [`wire`] — LOUD trees, virtual devices and
//!   wires (§5.1–5.3);
//! - [`queue`] — command queues with `CoBegin`/`Delay` brackets (§5.5);
//! - [`core`] — resources, mapping, the active stack (§5.4), ambient
//!   domains and redirection (§5.8);
//! - [`engine`] — the per-quantum streaming engine with seamless
//!   command transitions (§6.2);
//! - [`plan`] — the cached engine data plane: route plans invalidated
//!   by a topology generation counter, plus pooled scratch buffers so
//!   steady-state ticks are allocation-free;
//! - [`dispatch`] — request execution (§4.1);
//! - [`shard`], [`fastpath`] — sharded dispatch: requests that touch a
//!   single client's resources run under a read lock plus that client's
//!   shard stripe, bypassing the global write lock;
//! - [`connplane`] — the event-loop connection plane (I/O threads are
//!   O(workers), not O(clients));
//! - [`server`] — the thread architecture (§6.1).

pub mod atoms;
pub mod connplane;
pub mod core;
pub mod dispatch;
pub mod engine;
pub mod fastpath;
pub mod loud;
pub mod plan;
pub mod queue;
pub mod rt;
pub mod server;
pub mod shard;
pub mod sound;
pub mod store;
pub mod telem;

pub mod validate;
pub mod vdevice;

/// Byte-stream transports (re-exported from [`da_proto::transport`]).
pub use da_proto::transport;
pub mod wire;

pub use crate::core::{Core, ServerConfig};
pub use crate::server::{AudioServer, ServerControl};
