//! Negative tests for [`da_server::validate`]: seed structural
//! corruption directly into a [`Core`] — bypassing dispatch, which
//! would refuse it — and assert the checker reports the exact
//! invariant. This is what makes the validate oracle trustworthy: a
//! checker that never fires proves nothing.

use crossbeam::channel::unbounded;
use da_proto::ids::{ClientId, LoudId, VDeviceId, WireId};
use da_proto::request::Request;
use da_proto::types::{DeviceClass, WireType};
use da_server::core::{Core, ServerConfig};
use da_server::dispatch::dispatch;
use da_server::loud::Loud;
use da_server::validate;
use da_server::wire::Wire;

/// A core with one client, one mapped root LOUD, and two mixer devices
/// in it — a minimal legal topology to corrupt.
fn seeded() -> (Core, ClientId, u32) {
    let mut core = Core::new(ServerConfig::default());
    let (tx, _rx) = unbounded();
    let (client, base, _mask) = core.add_client("neg".into(), tx);
    dispatch(&mut core, client, 0, Request::CreateLoud { id: LoudId(base + 1), parent: None });
    for slot in 0..2u32 {
        dispatch(&mut core, client, 0, Request::CreateVDevice {
            id: VDeviceId(base + 0x10 + slot),
            loud: LoudId(base + 1),
            class: DeviceClass::Mixer,
            attrs: Vec::new(),
        });
    }
    (core, client, base)
}

fn codes(core: &Core) -> Vec<&'static str> {
    validate::check_all(core).into_iter().map(|v| v.invariant).collect()
}

#[test]
fn clean_core_validates() {
    let (core, _client, _base) = seeded();
    assert_eq!(validate::check_all(&core), Vec::new());
}

/// Acceptance case: an `Analog` wire between client virtual devices is
/// illegal (paper §5.2 — analog paths exist only between hardware), and
/// the checker must say so.
#[test]
fn seeded_analog_wire_is_caught() {
    let (mut core, client, base) = seeded();
    let wire = Wire::new(
        WireId(base + 0x100),
        client,
        VDeviceId(base + 0x10),
        0,
        VDeviceId(base + 0x11),
        0,
        WireType::Analog,
    );
    core.wires.insert(wire.id.0, wire);
    let found = codes(&core);
    assert!(found.contains(&"V4"), "expected a V4 violation, got {found:?}");
}

#[test]
fn dangling_wire_endpoint_is_caught() {
    let (mut core, client, base) = seeded();
    let wire = Wire::new(
        WireId(base + 0x100),
        client,
        VDeviceId(base + 0x10),
        0,
        VDeviceId(base + 0xFF), // no such device
        0,
        WireType::Any,
    );
    core.wires.insert(wire.id.0, wire);
    let found = codes(&core);
    assert!(found.contains(&"V3"), "expected a V3 violation, got {found:?}");
}

#[test]
fn dangling_parent_is_caught() {
    let (mut core, client, base) = seeded();
    core.louds
        .insert(base + 2, Loud::new(LoudId(base + 2), client, Some(base + 0xDEAD)));
    let found = codes(&core);
    assert!(found.contains(&"V1"), "expected a V1 violation, got {found:?}");
}

#[test]
fn one_sided_child_link_is_caught() {
    let (mut core, client, base) = seeded();
    // Child claims a parent that does not list it back.
    core.louds.insert(base + 2, Loud::new(LoudId(base + 2), client, Some(base + 1)));
    let found = codes(&core);
    assert!(found.contains(&"V1"), "expected a V1 violation, got {found:?}");
}

#[test]
fn mapped_without_stack_entry_is_caught() {
    let (mut core, _client, base) = seeded();
    dispatch(&mut core, _client, 0, Request::MapLoud { id: LoudId(base + 1) });
    assert_eq!(validate::check_all(&core), Vec::new());
    // Corrupt: mapped flag without a stack entry.
    core.active_stack.retain(|&r| r != base + 1);
    let found = codes(&core);
    assert!(found.contains(&"V6"), "expected a V6 violation, got {found:?}");
}

/// The debug-build dispatch hook turns any violation into a panic at
/// the offending request, so corruption cannot survive unnoticed past a
/// single dispatch in tests.
#[test]
#[cfg(debug_assertions)]
fn dispatch_hook_panics_on_corrupt_core() {
    let (mut core, client, base) = seeded();
    let wire = Wire::new(
        WireId(base + 0x100),
        client,
        VDeviceId(base + 0x10),
        0,
        VDeviceId(base + 0x11),
        0,
        WireType::Analog,
    );
    core.wires.insert(wire.id.0, wire);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dispatch(&mut core, client, 0, Request::QueryQueue { loud: LoudId(base + 1) });
    }));
    let msg = *r.expect_err("hook must panic").downcast::<String>().unwrap();
    assert!(msg.contains("protocol invariant violated"), "{msg}");
    assert!(msg.contains("V4"), "{msg}");
}
