//! Property tests for the command-queue parser: arbitrary entry streams
//! never panic or lose commands, balanced brackets always parse, and
//! chunked delivery matches one-shot delivery (entries may arrive split
//! across any number of `Enqueue` requests, paper §5.5).

use da_proto::command::{DeviceCommand, QueueEntry};
use da_proto::ids::{SoundId, VDeviceId};
use da_server::queue::{CommandQueue, QNode};
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = QueueEntry> {
    prop_oneof![
        4 => (any::<u32>(), any::<u32>()).prop_map(|(v, s)| QueueEntry::Device {
            vdev: VDeviceId(v),
            cmd: DeviceCommand::Play(SoundId(s)),
        }),
        1 => Just(QueueEntry::CoBegin),
        1 => Just(QueueEntry::CoEnd),
        1 => (0u32..100_000).prop_map(|ms| QueueEntry::Delay { ms }),
        1 => Just(QueueEntry::DelayEnd),
    ]
}

/// A recursively balanced entry stream.
fn arb_balanced() -> impl Strategy<Value = Vec<QueueEntry>> {
    let leaf = (any::<u32>(), any::<u32>()).prop_map(|(v, s)| {
        vec![QueueEntry::Device { vdev: VDeviceId(v), cmd: DeviceCommand::Play(SoundId(s)) }]
    });
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(|parts| {
                let mut out = vec![QueueEntry::CoBegin];
                for p in parts {
                    out.extend(p);
                }
                out.push(QueueEntry::CoEnd);
                out
            }),
            (0u32..10_000, prop::collection::vec(inner, 0..4)).prop_map(|(ms, parts)| {
                let mut out = vec![QueueEntry::Delay { ms }];
                for p in parts {
                    out.extend(p);
                }
                out.push(QueueEntry::DelayEnd);
                out
            }),
        ]
    })
}

fn count_commands(nodes: &[QNode]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            QNode::Cmd { .. } => 1,
            QNode::Par(children) => count_commands(children),
            QNode::DelaySeg { body, .. } => count_commands(body),
        })
        .sum()
}

proptest! {
    #[test]
    fn parser_never_panics(entries in prop::collection::vec(arb_entry(), 0..64)) {
        let mut q = CommandQueue::new();
        q.enqueue(entries);
        let _ = q.pending_len();
        q.flush();
        prop_assert!(q.idle());
    }

    #[test]
    fn balanced_streams_parse_completely(stream in arb_balanced()) {
        let commands_in = stream
            .iter()
            .filter(|e| matches!(e, QueueEntry::Device { .. }))
            .count();
        let mut q = CommandQueue::new();
        q.enqueue(stream);
        // Nothing left raw, and every command survives parsing.
        let parsed: Vec<QNode> = q.pending.iter().cloned().collect();
        prop_assert_eq!(count_commands(&parsed), commands_in);
        prop_assert_eq!(q.pending_len() as usize, q.pending.len());
    }

    #[test]
    fn chunked_enqueue_equals_oneshot(stream in arb_balanced(), chunk in 1usize..7) {
        let mut one = CommandQueue::new();
        one.enqueue(stream.clone());
        let mut many = CommandQueue::new();
        for c in stream.chunks(chunk) {
            many.enqueue(c.to_vec());
        }
        let a: Vec<QNode> = one.pending.iter().cloned().collect();
        let b: Vec<QNode> = many.pending.iter().cloned().collect();
        // Entry indices differ is impossible: both number sequentially.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn commands_never_lost_even_unbalanced(entries in prop::collection::vec(arb_entry(), 0..64)) {
        // Every Device entry is either parsed or still raw; none vanish.
        let commands_in = entries
            .iter()
            .filter(|e| matches!(e, QueueEntry::Device { .. }))
            .count();
        let mut q = CommandQueue::new();
        q.enqueue(entries.clone());
        let parsed: Vec<QNode> = q.pending.iter().cloned().collect();
        let parsed_cmds = count_commands(&parsed);
        let raw_cmds = q.pending_len() as usize - q.pending.len();
        // raw_cmds counts raw *entries*, some of which are brackets; the
        // invariant is that parsed commands never exceed input and, once
        // the stream is force-balanced, everything parses.
        prop_assert!(parsed_cmds <= commands_in);
        let _ = raw_cmds;
        // Force-balance by appending closers, then everything parses.
        let mut closers = Vec::new();
        let mut depth = 0i64;
        for e in &entries {
            match e {
                QueueEntry::CoBegin | QueueEntry::Delay { .. } => depth += 1,
                QueueEntry::CoEnd | QueueEntry::DelayEnd => depth = (depth - 1).max(0),
                _ => {}
            }
        }
        for _ in 0..depth {
            closers.push(QueueEntry::CoEnd);
        }
        q.enqueue(closers);
        let parsed: Vec<QNode> = q.pending.iter().cloned().collect();
        prop_assert_eq!(count_commands(&parsed), commands_in);
    }
}
