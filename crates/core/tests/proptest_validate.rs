//! Model check of the protocol's structural invariants: drive an
//! arbitrary request sequence — topology mutation, mapping, queue
//! control, destruction — against a bare [`Core`] and assert the full
//! invariant set of [`da_server::validate`] holds afterwards. Because
//! debug builds also re-check after *every* dispatch (the hook in
//! `dispatch()`), a violating intermediate state panics at the request
//! that caused it, making this a per-step model check, not just an
//! endpoint check.

use crossbeam::channel::unbounded;
use da_proto::command::{DeviceCommand, QueueEntry};
use da_proto::ids::{LoudId, SoundId, VDeviceId, WireId};
use da_proto::request::Request;
use da_proto::types::{DeviceClass, WireType};
use da_server::core::{Core, ServerConfig};
use da_server::dispatch::dispatch;
use da_server::validate;
use proptest::prelude::*;

/// One request. Slots index small fixed id spaces; dispatch rejects the
/// many illegal combinations (wrong ids, cycles, non-roots) with errors
/// that must leave the structure unchanged — exactly what the oracle
/// checks.
#[derive(Debug, Clone)]
enum Op {
    CreateRoot { slot: u8 },
    CreateChild { slot: u8, parent: u8 },
    DestroyLoud { slot: u8 },
    CreateVDev { slot: u8, class: u8, loud: u8 },
    DestroyVDev { slot: u8 },
    CreateWire { slot: u8, src: u8, sport: u8, dst: u8, dport: u8 },
    DestroyWire { slot: u8 },
    Map { loud: u8 },
    Unmap { loud: u8 },
    Raise { loud: u8 },
    Lower { loud: u8 },
    Enqueue { loud: u8, dev: u8, bracket: bool },
    StartQueue { loud: u8 },
    StopQueue { loud: u8 },
    PauseQueue { loud: u8 },
    ResumeQueue { loud: u8 },
    FlushQueue { loud: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (0u8..3).prop_map(|slot| Op::CreateRoot { slot }),
        2 => (0u8..6, 0u8..6).prop_map(|(slot, parent)| Op::CreateChild { slot, parent }),
        1 => (0u8..6).prop_map(|slot| Op::DestroyLoud { slot }),
        3 => (0u8..8, 0u8..5, 0u8..6)
            .prop_map(|(slot, class, loud)| Op::CreateVDev { slot, class, loud }),
        1 => (0u8..8).prop_map(|slot| Op::DestroyVDev { slot }),
        3 => (0u8..10, 0u8..8, 0u8..2, 0u8..8, 0u8..3)
            .prop_map(|(slot, src, sport, dst, dport)| Op::CreateWire {
                slot,
                src,
                sport,
                dst,
                dport,
            }),
        1 => (0u8..10).prop_map(|slot| Op::DestroyWire { slot }),
        2 => (0u8..6).prop_map(|loud| Op::Map { loud }),
        1 => (0u8..6).prop_map(|loud| Op::Unmap { loud }),
        1 => (0u8..6).prop_map(|loud| Op::Raise { loud }),
        1 => (0u8..6).prop_map(|loud| Op::Lower { loud }),
        2 => (0u8..6, 0u8..8, 0u8..2)
            .prop_map(|(loud, dev, b)| Op::Enqueue { loud, dev, bracket: b == 1 }),
        2 => (0u8..6).prop_map(|loud| Op::StartQueue { loud }),
        1 => (0u8..6).prop_map(|loud| Op::StopQueue { loud }),
        1 => (0u8..6).prop_map(|loud| Op::PauseQueue { loud }),
        1 => (0u8..6).prop_map(|loud| Op::ResumeQueue { loud }),
        1 => (0u8..6).prop_map(|loud| Op::FlushQueue { loud }),
    ]
}

fn class_of(idx: u8) -> DeviceClass {
    match idx % 5 {
        0 => DeviceClass::Mixer,
        1 => DeviceClass::Crossbar,
        2 => DeviceClass::Dsp,
        3 => DeviceClass::Player,
        _ => DeviceClass::Output,
    }
}

proptest! {
    #[test]
    fn invariants_hold_after_arbitrary_requests(ops in prop::collection::vec(arb_op(), 0..64)) {
        let mut core = Core::new(ServerConfig::default());
        let (tx, _rx) = unbounded();
        let (client, base, _mask) = core.add_client("model".into(), tx);
        let loud_id = |l: u8| LoudId(base + 1 + l as u32);
        let vdev_id = |s: u8| VDeviceId(base + 0x10 + s as u32);
        let wire_id = |s: u8| WireId(base + 0x100 + s as u32);

        for op in ops {
            let request = match op {
                Op::CreateRoot { slot } => {
                    Request::CreateLoud { id: loud_id(slot), parent: None }
                }
                Op::CreateChild { slot, parent } => Request::CreateLoud {
                    id: loud_id(slot),
                    parent: Some(loud_id(parent)),
                },
                Op::DestroyLoud { slot } => Request::DestroyLoud { id: loud_id(slot) },
                Op::CreateVDev { slot, class, loud } => Request::CreateVDevice {
                    id: vdev_id(slot),
                    loud: loud_id(loud),
                    class: class_of(class),
                    attrs: Vec::new(),
                },
                Op::DestroyVDev { slot } => Request::DestroyVDevice { id: vdev_id(slot) },
                Op::CreateWire { slot, src, sport, dst, dport } => Request::CreateWire {
                    id: wire_id(slot),
                    src: vdev_id(src),
                    src_port: sport,
                    dst: vdev_id(dst),
                    dst_port: dport,
                    wire_type: WireType::Any,
                },
                Op::DestroyWire { slot } => Request::DestroyWire { id: wire_id(slot) },
                Op::Map { loud } => Request::MapLoud { id: loud_id(loud) },
                Op::Unmap { loud } => Request::UnmapLoud { id: loud_id(loud) },
                Op::Raise { loud } => Request::RaiseLoud { id: loud_id(loud) },
                Op::Lower { loud } => Request::LowerLoud { id: loud_id(loud) },
                Op::Enqueue { loud, dev, bracket } => {
                    let cmd = QueueEntry::Device {
                        vdev: vdev_id(dev),
                        cmd: DeviceCommand::Play(SoundId(1)),
                    };
                    let entries = if bracket {
                        vec![QueueEntry::CoBegin, cmd, QueueEntry::CoEnd]
                    } else {
                        vec![cmd]
                    };
                    Request::Enqueue { loud: loud_id(loud), entries }
                }
                Op::StartQueue { loud } => Request::StartQueue { loud: loud_id(loud) },
                Op::StopQueue { loud } => Request::StopQueue { loud: loud_id(loud) },
                Op::PauseQueue { loud } => Request::PauseQueue { loud: loud_id(loud) },
                Op::ResumeQueue { loud } => Request::ResumeQueue { loud: loud_id(loud) },
                Op::FlushQueue { loud } => Request::FlushQueue { loud: loud_id(loud) },
            };
            // In debug builds this also re-validates after every step.
            dispatch(&mut core, client, 0, request);
        }

        let violations = validate::check_all(&core);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    // Client teardown (the other big structural mutation path) also
    // preserves the invariants.
    #[test]
    fn invariants_hold_after_client_teardown(ops in prop::collection::vec(arb_op(), 0..32)) {
        let mut core = Core::new(ServerConfig::default());
        let (tx, _rx) = unbounded();
        let (client, base, _mask) = core.add_client("model".into(), tx);
        let loud_id = |l: u8| LoudId(base + 1 + l as u32);
        for op in ops {
            if let Op::CreateRoot { slot } = op {
                dispatch(&mut core, client, 0, Request::CreateLoud {
                    id: loud_id(slot),
                    parent: None,
                });
                dispatch(&mut core, client, 0, Request::MapLoud { id: loud_id(slot) });
            }
        }
        core.remove_client(client);
        let violations = validate::check_all(&core);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }
}
