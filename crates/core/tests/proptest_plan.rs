//! Property tests for the cached engine data plane: after an arbitrary
//! sequence of topology mutations (device/wire creation and destruction,
//! mapping, raising, unmapping) with cache refreshes interleaved at
//! arbitrary points — exactly what engine ticks do — a refreshed
//! [`PlanCache`] is identical to a fresh recompute. This catches any
//! mutation path that forgets to bump `Core::topology_gen`: the final
//! `ensure_fresh` is a no-op unless the generation moved, so a missing
//! bump leaves the cache stale and the comparison fails.

use crossbeam::channel::unbounded;
use da_proto::ids::{LoudId, VDeviceId, WireId};
use da_proto::request::Request;
use da_proto::types::{DeviceClass, WireType};
use da_server::core::{Core, ServerConfig};
use da_server::dispatch::dispatch;
use da_server::plan::{compute_route_plan, PlanCache};
use da_server::vdevice::HwBinding;
use proptest::prelude::*;

/// One topology mutation (or a simulated engine tick's cache refresh).
/// Slots index small fixed id spaces; many combinations are rejected by
/// dispatch (bad ports, cycles, duplicate ids) which is fine — errors
/// leave the topology unchanged.
#[derive(Debug, Clone)]
enum Op {
    CreateVDev { slot: u8, class: u8, loud: u8 },
    DestroyVDev { slot: u8 },
    CreateWire { slot: u8, src: u8, sport: u8, dst: u8, dport: u8 },
    DestroyWire { slot: u8 },
    Map { loud: u8 },
    Unmap { loud: u8 },
    Raise { loud: u8 },
    /// An engine tick: refresh the cache if the generation moved.
    Sync,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..8, 0u8..4, 0u8..2)
            .prop_map(|(slot, class, loud)| Op::CreateVDev { slot, class, loud }),
        1 => (0u8..8).prop_map(|slot| Op::DestroyVDev { slot }),
        4 => (0u8..12, 0u8..8, 0u8..2, 0u8..8, 0u8..3)
            .prop_map(|(slot, src, sport, dst, dport)| Op::CreateWire {
                slot,
                src,
                sport,
                dst,
                dport,
            }),
        1 => (0u8..12).prop_map(|slot| Op::DestroyWire { slot }),
        2 => (0u8..2).prop_map(|loud| Op::Map { loud }),
        1 => (0u8..2).prop_map(|loud| Op::Unmap { loud }),
        1 => (0u8..2).prop_map(|loud| Op::Raise { loud }),
        2 => Just(Op::Sync),
    ]
}

fn class_of(idx: u8) -> DeviceClass {
    match idx % 4 {
        0 => DeviceClass::Mixer,
        1 => DeviceClass::Crossbar,
        2 => DeviceClass::Dsp,
        _ => DeviceClass::Player,
    }
}

proptest! {
    #[test]
    fn cached_plan_matches_fresh_recompute(ops in prop::collection::vec(arb_op(), 0..48)) {
        let mut core = Core::new(ServerConfig::default());
        let (tx, _rx) = unbounded();
        let (client, base, _mask) = core.add_client("prop".into(), tx);
        let loud_id = |l: u8| LoudId(base + 1 + l as u32);
        let vdev_id = |s: u8| VDeviceId(base + 0x10 + s as u32);
        let wire_id = |s: u8| WireId(base + 0x100 + s as u32);
        dispatch(&mut core, client, 0, Request::CreateLoud { id: loud_id(0), parent: None });
        dispatch(&mut core, client, 0, Request::CreateLoud { id: loud_id(1), parent: None });

        let mut cache = PlanCache::default();
        cache.ensure_fresh(&core);

        for op in ops {
            match op {
                Op::CreateVDev { slot, class, loud } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::CreateVDevice {
                        id: vdev_id(slot),
                        loud: loud_id(loud),
                        class: class_of(class),
                        attrs: Vec::new(),
                    },
                ),
                Op::DestroyVDev { slot } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::DestroyVDevice { id: vdev_id(slot) },
                ),
                Op::CreateWire { slot, src, sport, dst, dport } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::CreateWire {
                        id: wire_id(slot),
                        src: vdev_id(src),
                        src_port: sport,
                        dst: vdev_id(dst),
                        dst_port: dport,
                        wire_type: WireType::Any,
                    },
                ),
                Op::DestroyWire { slot } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::DestroyWire { id: wire_id(slot) },
                ),
                Op::Map { loud } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::MapLoud { id: loud_id(loud) },
                ),
                Op::Unmap { loud } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::UnmapLoud { id: loud_id(loud) },
                ),
                Op::Raise { loud } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::RaiseLoud { id: loud_id(loud) },
                ),
                Op::Sync => {
                    cache.ensure_fresh(&core);
                }
            }
        }

        // The next tick's refresh: a no-op unless the generation moved,
        // so a mutation path that forgot to invalidate leaves the cache
        // stale and the assertions below catch it.
        cache.ensure_fresh(&core);

        let expected_roots: Vec<u32> = core
            .active_stack
            .iter()
            .copied()
            .filter(|r| core.louds.get(r).map(|l| l.active) == Some(true))
            .collect();
        prop_assert_eq!(&cache.active_roots, &expected_roots);
        prop_assert_eq!(cache.routes.len(), expected_roots.len());
        for &root in &expected_roots {
            let fresh = compute_route_plan(&core, root);
            prop_assert_eq!(cache.routes.get(&root), Some(&fresh));
        }
        let mut expected_bound: Vec<u32> = core
            .vdevs
            .values()
            .filter(|v| v.binding.is_some())
            .filter(|v| core.louds.get(&v.root).map(|l| l.active) == Some(true))
            .map(|v| v.id.0)
            .collect();
        expected_bound.sort_unstable();
        prop_assert_eq!(&cache.active_bound, &expected_bound);
        for (i, &(_, line)) in cache.line_slots.iter().enumerate() {
            let mut bound: Vec<u32> = core
                .vdevs
                .values()
                .filter(|v| v.binding == Some(HwBinding::Line(line)))
                .map(|v| v.id.0)
                .collect();
            bound.sort_unstable();
            prop_assert_eq!(&cache.line_bound[i], &bound);
        }
    }

    // The plan computation itself is deterministic: recomputing from the
    // same topology yields an identical plan (HashMap iteration order
    // must not leak into the result).
    #[test]
    fn plan_computation_is_deterministic(ops in prop::collection::vec(arb_op(), 0..32)) {
        let mut core = Core::new(ServerConfig::default());
        let (tx, _rx) = unbounded();
        let (client, base, _mask) = core.add_client("prop".into(), tx);
        let loud_id = |l: u8| LoudId(base + 1 + l as u32);
        dispatch(&mut core, client, 0, Request::CreateLoud { id: loud_id(0), parent: None });
        dispatch(&mut core, client, 0, Request::CreateLoud { id: loud_id(1), parent: None });
        for op in ops {
            match op {
                Op::CreateVDev { slot, class, loud } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::CreateVDevice {
                        id: VDeviceId(base + 0x10 + slot as u32),
                        loud: loud_id(loud),
                        class: class_of(class),
                        attrs: Vec::new(),
                    },
                ),
                Op::CreateWire { slot, src, sport, dst, dport } => dispatch(
                    &mut core,
                    client,
                    0,
                    Request::CreateWire {
                        id: WireId(base + 0x100 + slot as u32),
                        src: VDeviceId(base + 0x10 + src as u32),
                        src_port: sport,
                        dst: VDeviceId(base + 0x10 + dst as u32),
                        dst_port: dport,
                        wire_type: WireType::Any,
                    },
                ),
                _ => {}
            }
        }
        for l in 0..2u8 {
            let root = loud_id(l).0;
            let a = compute_route_plan(&core, root);
            let b = compute_route_plan(&core, root);
            prop_assert_eq!(&a, &b);
            // Every tree device appears exactly once in the order.
            let mut vdevs = core.tree_vdevs(root);
            vdevs.sort_unstable();
            let mut planned: Vec<u32> = a.order.iter().map(|d| d.vid).collect();
            planned.sort_unstable();
            prop_assert_eq!(planned, vdevs);
        }
    }
}
