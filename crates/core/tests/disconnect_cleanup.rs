//! Regression tests for client-disconnect cleanup: when a client
//! departs, nothing in the core may keep referencing the resources that
//! died with it (invariant V13, DESIGN.md §9).
//!
//! The original bug: `Core::remove_client` contained a no-op
//! `selections.retain(|_, _| true)`, so a surviving client that had
//! selected events on a departed client's LOUD kept a selection keyed
//! on the destroyed resource forever — a per-disconnect memory leak and
//! a dangling id waiting for reuse.

use crossbeam::channel::unbounded;
use da_proto::event::EventMask;
use da_proto::ids::{LoudId, ResourceId, SoundId};
use da_proto::request::Request;
use da_proto::types::{Encoding, SoundType};
use da_server::core::{Core, ResKey, ServerConfig};
use da_server::dispatch::dispatch;
use da_server::validate;

/// Selections a survivor holds on a departed client's LOUD must be
/// purged when that client (and hence the LOUD) goes away.
#[test]
fn survivor_selections_on_departed_resources_are_purged() {
    let mut core = Core::new(ServerConfig::default());
    let (atx, _arx) = unbounded();
    let (btx, _brx) = unbounded();
    let (a, abase, _) = core.add_client("departing".into(), atx);
    let (b, _bbase, _) = core.add_client("survivor".into(), btx);

    let loud = LoudId(abase + 1);
    dispatch(&mut core, a, 0, Request::CreateLoud { id: loud, parent: None });
    dispatch(&mut core, b, 1, Request::SelectEvents {
        target: ResourceId::Loud(loud),
        mask: EventMask::all(),
    });
    let key = ResKey(0, loud.0);
    assert!(
        core.clients[&b.0].selections.contains_key(&key),
        "survivor's selection must be registered before the disconnect"
    );

    core.remove_client(a);

    assert!(
        !core.louds.contains_key(&loud.0),
        "departed client's LOUD must be destroyed"
    );
    assert!(
        !core.clients[&b.0].selections.contains_key(&key),
        "survivor still holds a selection on the departed client's LOUD"
    );
    assert_eq!(validate::check_all(&core), Vec::new());
}

/// A selection the survivor holds on its *own* (still live) resources
/// must survive another client's disconnect untouched.
#[test]
fn survivor_selections_on_live_resources_survive() {
    let mut core = Core::new(ServerConfig::default());
    let (atx, _arx) = unbounded();
    let (btx, _brx) = unbounded();
    let (a, _abase, _) = core.add_client("departing".into(), atx);
    let (b, bbase, _) = core.add_client("survivor".into(), btx);

    let own = LoudId(bbase + 1);
    dispatch(&mut core, b, 0, Request::CreateLoud { id: own, parent: None });
    dispatch(&mut core, b, 1, Request::SelectEvents {
        target: ResourceId::Loud(own),
        mask: EventMask::QUEUE,
    });

    core.remove_client(a);

    assert_eq!(
        core.clients[&b.0].selections.get(&ResKey(0, own.0)),
        Some(&EventMask::QUEUE),
        "selection on a live resource must not be swept"
    );
    assert_eq!(validate::check_all(&core), Vec::new());
}

/// Properties attached to a departed client's sounds must go with the
/// sounds; `remove_client`'s sound sweep used to leak them.
#[test]
fn departed_sound_properties_are_purged() {
    let mut core = Core::new(ServerConfig::default());
    let (atx, _arx) = unbounded();
    let (a, abase, _) = core.add_client("departing".into(), atx);

    let sound = SoundId(abase + 0x200);
    let stype = SoundType { encoding: Encoding::ULaw, sample_rate: 8000, channels: 1 };
    dispatch(&mut core, a, 0, Request::CreateSound { id: sound, stype });
    let name = dispatch_intern(&mut core, a, "TITLE");
    dispatch(&mut core, a, 1, Request::ChangeProperty {
        target: ResourceId::Sound(sound),
        name,
        type_: name,
        value: b"voicemail greeting".to_vec(),
    });
    assert!(core.properties.contains_key(&ResKey(2, sound.0)));

    core.remove_client(a);

    assert!(
        !core.sounds.contains_key(&sound.0),
        "departed client's sound must be destroyed"
    );
    assert!(
        !core.properties.contains_key(&ResKey(2, sound.0)),
        "properties of the departed client's sound leaked"
    );
    assert_eq!(validate::check_all(&core), Vec::new());
}

/// The acceptance fixture for V13: re-break `remove_client` by seeding
/// exactly the stale state the old code left behind, and assert the
/// validate oracle catches it. If someone reverts the sweep, both the
/// tests above and this invariant trip.
#[test]
fn v13_catches_rebroken_remove_client() {
    let mut core = Core::new(ServerConfig::default());
    let (atx, _arx) = unbounded();
    let (btx, _brx) = unbounded();
    let (a, abase, _) = core.add_client("departing".into(), atx);
    let (b, _bbase, _) = core.add_client("survivor".into(), btx);

    let loud = LoudId(abase + 1);
    dispatch(&mut core, a, 0, Request::CreateLoud { id: loud, parent: None });
    dispatch(&mut core, b, 1, Request::SelectEvents {
        target: ResourceId::Loud(loud),
        mask: EventMask::all(),
    });
    core.remove_client(a);
    assert_eq!(validate::check_all(&core), Vec::new());

    // Re-break: a selection keyed on the destroyed LOUD, as the no-op
    // retain used to leave behind.
    if let Some(cs) = core.clients.get_mut(&b.0) {
        cs.selections.insert(ResKey(0, loud.0), EventMask::all());
    }
    let found: Vec<_> = validate::check_all(&core).into_iter().map(|v| v.invariant).collect();
    assert!(found.contains(&"V13"), "expected a V13 violation, got {found:?}");
}

fn dispatch_intern(core: &mut Core, client: da_proto::ids::ClientId, name: &str) -> da_proto::ids::Atom {
    dispatch(core, client, 99, Request::InternAtom { name: name.to_string() });
    core.atoms.lookup(name).expect("atom interned")
}
