//! Differential suite: the sharded fast path and the write-lock slow
//! path must be observationally identical for every sound opcode.
//!
//! The two dispatch arms (`fastpath::exec_fast` and `dispatch::execute`)
//! implement each sound request twice; this suite drives identical
//! request sequences through both and requires identical reply/error
//! streams and identical final resource state, so the arms cannot
//! drift again (the `at_end` streaming-EOF bug fixed in this module's
//! first version lived in *both* arms precisely because nothing
//! compared them).

use crossbeam::channel::{unbounded, Receiver};
use da_proto::ids::{ClientId, SoundId};
use da_proto::request::Request;
use da_proto::types::{Encoding, SoundType};
use da_server::core::{Core, ServerConfig, ServerMsg};
use da_server::{dispatch, fastpath, validate};
use parking_lot::RwLock;

/// One scripted step: which client sends, and what.
type Step = (usize, Request);

/// Drains everything currently queued on a receiver.
fn drain(rx: &Receiver<ServerMsg>) -> Vec<ServerMsg> {
    let mut out = Vec::new();
    while let Ok(m) = rx.try_recv() {
        out.push(m);
    }
    out
}

struct Rig {
    core: RwLock<Core>,
    clients: Vec<(ClientId, Receiver<ServerMsg>)>,
}

fn rig(n_clients: usize) -> Rig {
    let mut core = Core::new(ServerConfig { manual_ticks: true, ..ServerConfig::default() });
    let clients = (0..n_clients)
        .map(|i| {
            let (tx, rx) = unbounded();
            let (client, _base, _mask) = core.add_client(format!("diff-{i}"), tx);
            (client, rx)
        })
        .collect();
    Rig { core: RwLock::new(core), clients }
}

/// Runs `script` through the fast path (slow fallback on punt, exactly
/// like the connection plane) and returns the per-client message
/// streams plus the final-state digest.
fn run_fast(script: &[Step]) -> (Vec<Vec<String>>, String) {
    let r = rig(2);
    for (seq, (who, req)) in script.iter().enumerate() {
        let client = r.clients[*who].0;
        if !fastpath::try_dispatch(&r.core, client, seq as u32, req) {
            dispatch::dispatch(&mut r.core.write(), client, seq as u32, req.clone());
        }
    }
    finish(r)
}

/// Runs `script` through the slow path only.
fn run_slow(script: &[Step]) -> (Vec<Vec<String>>, String) {
    let r = rig(2);
    for (seq, (who, req)) in script.iter().enumerate() {
        let client = r.clients[*who].0;
        dispatch::dispatch(&mut r.core.write(), client, seq as u32, req.clone());
    }
    finish(r)
}

fn finish(r: Rig) -> (Vec<Vec<String>>, String) {
    let core = r.core.read();
    let violations = validate::check_all(&core);
    assert!(violations.is_empty(), "invariants violated: {violations:?}");
    let streams = r
        .clients
        .iter()
        .map(|(_, rx)| drain(rx).iter().map(|m| format!("{m:?}")).collect())
        .collect();
    // Final-state digest: every sound's observable fields, in id order.
    let mut sounds: Vec<String> = core
        .sounds
        .iter()
        .map(|(id, s)| {
            format!(
                "{id}: owner={} stype={:?} bytes={} frames={} complete={}",
                s.owner.0,
                s.stype,
                s.len_bytes(),
                s.len_frames(),
                s.complete,
            )
        })
        .collect();
    sounds.sort();
    (streams, sounds.join("\n"))
}

/// Asserts fast and slow runs of `script` are observationally equal.
fn assert_differential(script: &[Step]) {
    let (fast_msgs, fast_state) = run_fast(script);
    let (slow_msgs, slow_state) = run_slow(script);
    assert_eq!(fast_msgs, slow_msgs, "fast/slow reply streams differ");
    assert_eq!(fast_state, slow_state, "fast/slow final sound state differs");
}

fn sid(client_slot: u32, n: u32) -> SoundId {
    // Client id spaces start at 1; slot 0 is client 1, etc.
    SoundId(((client_slot + 1) << 20) | n)
}

#[test]
fn all_six_sound_opcodes_are_differentially_equal() {
    let s1 = sid(0, 1);
    let s2 = sid(0, 2);
    let ulaw = SoundType::TELEPHONE;
    let script: Vec<Step> = vec![
        // Create: success, duplicate id, degenerate type.
        (0, Request::CreateSound { id: s1, stype: ulaw }),
        (0, Request::CreateSound { id: s1, stype: ulaw }),
        (0, Request::CreateSound { id: s2, stype: SoundType { channels: 0, ..ulaw } }),
        // Streaming write, mid-stream read (must not claim EOF), query.
        (0, Request::WriteSoundData { id: s1, data: vec![0x7F; 100], eof: false }),
        (0, Request::ReadSoundData { id: s1, offset: 0, len: 1000 }),
        (0, Request::QuerySound { id: s1 }),
        // Foreign client: not owner.
        (1, Request::WriteSoundData { id: s1, data: vec![1], eof: false }),
        // Final block, then write-after-complete, then full read.
        (0, Request::WriteSoundData { id: s1, data: vec![0x70; 50], eof: true }),
        (0, Request::WriteSoundData { id: s1, data: vec![2], eof: true }),
        (0, Request::ReadSoundData { id: s1, offset: 0, len: 1000 }),
        (0, Request::ReadSoundData { id: s1, offset: 120, len: 10 }),
        (0, Request::QuerySound { id: s1 }),
        // Catalogues: listing, bind, bad name, duplicate id, read, write.
        (0, Request::ListCatalog { catalog: String::new() }),
        (0, Request::ListCatalog { catalog: "system".into() }),
        (0, Request::OpenCatalogSound { id: s2, catalog: "system".into(), name: "beep".into() }),
        (0, Request::OpenCatalogSound { id: sid(0, 3), catalog: "system".into(), name: "nope".into() }),
        (0, Request::OpenCatalogSound { id: s2, catalog: "system".into(), name: "ring".into() }),
        (0, Request::ReadSoundData { id: s2, offset: 0, len: 64 }),
        (0, Request::WriteSoundData { id: s2, data: vec![3], eof: true }),
        (0, Request::QuerySound { id: s2 }),
        // Delete: success, then the id is gone for every opcode.
        (0, Request::DeleteSound { id: s1 }),
        (0, Request::DeleteSound { id: s1 }),
        (0, Request::ReadSoundData { id: s1, offset: 0, len: 10 }),
        (0, Request::QuerySound { id: s1 }),
        (0, Request::Sync),
    ];
    assert_differential(&script);
}

#[test]
fn adpcm_and_stereo_sounds_are_differentially_equal() {
    let s1 = sid(0, 1);
    let adpcm = SoundType { encoding: Encoding::ImaAdpcm, sample_rate: 8000, channels: 1 };
    let pcm = da_dsp::tone::sine(8000, 300.0, 400, 9000);
    let enc = da_dsp::adpcm::encode_slice(&pcm);
    let script: Vec<Step> = vec![
        (0, Request::CreateSound { id: s1, stype: adpcm }),
        (0, Request::WriteSoundData { id: s1, data: enc.clone(), eof: false }),
        (0, Request::ReadSoundData { id: s1, offset: 16, len: 32 }),
        (0, Request::WriteSoundData { id: s1, data: enc, eof: true }),
        (0, Request::ReadSoundData { id: s1, offset: 0, len: 4096 }),
        (0, Request::QuerySound { id: s1 }),
    ];
    assert_differential(&script);
}

/// Satellite regression: a streaming (incomplete) sound must never
/// report `at_end`, even when the read reaches the current tail — more
/// data may still arrive. Checked on both dispatch paths.
#[test]
fn streaming_read_does_not_report_eof_until_complete() {
    for fast in [false, true] {
        let r = rig(1);
        let client = r.clients[0].0;
        let s1 = sid(0, 1);
        let send = |seq: u32, req: Request| {
            if fast && fastpath::try_dispatch(&r.core, client, seq, &req) {
                return;
            }
            dispatch::dispatch(&mut r.core.write(), client, seq, req);
        };
        send(0, Request::CreateSound { id: s1, stype: SoundType::TELEPHONE });
        send(1, Request::WriteSoundData { id: s1, data: vec![0x7F; 64], eof: false });
        // Read the whole current tail: must NOT be the end yet.
        send(2, Request::ReadSoundData { id: s1, offset: 0, len: 64 });
        send(3, Request::WriteSoundData { id: s1, data: vec![0x7F; 64], eof: true });
        // Same read again: still not the end (64 < 128)...
        send(4, Request::ReadSoundData { id: s1, offset: 0, len: 64 });
        // ...but the full read of a complete sound is.
        send(5, Request::ReadSoundData { id: s1, offset: 0, len: 128 });
        let msgs = drain(&r.clients[0].1);
        let at_ends: Vec<bool> = msgs
            .iter()
            .filter_map(|m| match m {
                ServerMsg::Reply(_, da_proto::reply::Reply::SoundData { at_end, .. }) => {
                    Some(*at_end)
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            at_ends,
            vec![false, false, true],
            "streaming at_end sequence wrong (fast={fast})"
        );
    }
}

/// Satellite regression: `WriteSoundData` growing a sound past
/// `MAX_SOUND_BYTES` is rejected with a typed error before any byte is
/// appended, on both dispatch paths, and counts the rejection metric.
#[test]
fn oversized_write_is_rejected_before_allocation() {
    for fast in [false, true] {
        let r = rig(1);
        let client = r.clients[0].0;
        let s1 = sid(0, 1);
        let send = |seq: u32, req: Request| {
            if fast && fastpath::try_dispatch(&r.core, client, seq, &req) {
                return;
            }
            dispatch::dispatch(&mut r.core.write(), client, seq, req);
        };
        send(0, Request::CreateSound { id: s1, stype: SoundType::TELEPHONE });
        send(1, Request::WriteSoundData { id: s1, data: vec![0; 1000], eof: false });
        let huge = vec![0u8; da_proto::types::MAX_SOUND_BYTES as usize - 500];
        send(2, Request::WriteSoundData { id: s1, data: huge, eof: false });
        let core = r.core.read();
        let s = core.sounds.get(&s1.0).expect("sound exists");
        assert_eq!(s.len_bytes(), 1000, "rejected write must not grow the sound (fast={fast})");
        assert!(!s.complete);
        assert_eq!(core.tel.metrics.sounds_rejected_oversize_total.get(), 1);
        let saw_bad_value = drain(&r.clients[0].1).iter().any(|m| {
            matches!(m, ServerMsg::Error(_, e) if e.code == da_proto::error::ErrorCode::BadValue)
        });
        assert!(saw_bad_value, "expected a BadValue error (fast={fast})");
    }
}

/// Tentpole behavior: finalizing identical uploads from different
/// clients (and uploads matching a catalogue sound) dedupes to one
/// shared payload, on both dispatch paths.
#[test]
fn eof_finalize_interns_identical_uploads() {
    for fast in [false, true] {
        let r = rig(2);
        let data = da_dsp::mulaw::encode_slice(&da_dsp::tone::sine(8000, 440.0, 800, 10000));
        for (slot, n) in [(0usize, 1u32), (1, 1)] {
            let client = r.clients[slot].0;
            let id = sid(slot as u32, n);
            let send = |seq: u32, req: Request| {
                if fast && fastpath::try_dispatch(&r.core, client, seq, &req) {
                    return;
                }
                dispatch::dispatch(&mut r.core.write(), client, seq, req);
            };
            send(0, Request::CreateSound { id, stype: SoundType::TELEPHONE });
            send(1, Request::WriteSoundData { id, data: data.clone(), eof: true });
        }
        let core = r.core.read();
        let a = core.sounds.get(&sid(0, 1).0).expect("sound a");
        let b = core.sounds.get(&sid(1, 1).0).expect("sound b");
        let (pa, pb) = (a.shared.as_ref().expect("a interned"), b.shared.as_ref().expect("b interned"));
        assert!(
            std::sync::Arc::ptr_eq(pa, pb),
            "identical uploads must share one payload (fast={fast})"
        );
        assert_eq!(a.content_hash, b.content_hash);
        assert!(core.tel.metrics.store_dedupe_hits_total.get() >= 1);
        assert!(core.store.snapshot().shared_bytes >= data.len());
        let violations = validate::check_all(&core);
        assert!(violations.is_empty(), "invariants violated: {violations:?}");
    }
}
